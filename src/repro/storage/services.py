"""Concrete simulated storage services and the channel factory.

Performance envelopes come from Table 6 of the paper (measured on AWS):

* S3 — always-on, high-latency (80 ms), ~65 MB/s per connection, cheap
  per-request billing, effectively unlimited concurrency.
* ElastiCache Memcached — in-memory, 10 ms latency, node-dependent
  bandwidth (630 MB/s on cache.t3.medium), multi-threaded, but takes
  minutes to start and bills node-hours.
* ElastiCache Redis — same envelope as Memcached except a single worker
  thread, which serialises concurrent transfers (Section 4.3 finds it
  inferior to Memcached for large models / many workers).
* DynamoDB — always-on, lower latency than S3 (the paper reports ~20 %
  faster communication for small models) but a 400 KB item limit that
  rules out medium/large models.
* VM disk (EBS gp2) — used for checkpoints and the hot-data case study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.pricing.meter import CostMeter
from repro.storage.base import ObjectStore, StorageProfile

MB = 1024 * 1024

# ElastiCache node envelopes (bandwidth from Table 6 where measured).
ELASTICACHE_NODES = {
    "cache.t3.small": {"bandwidth_bps": 500 * MB, "latency_s": 1.2e-2},
    "cache.t3.medium": {"bandwidth_bps": 630 * MB, "latency_s": 1.0e-2},
    "cache.m5.large": {"bandwidth_bps": 1260 * MB, "latency_s": 0.8e-2},
}

ELASTICACHE_STARTUP_S = 140.0  # "more than two minutes to start Memcached"
DYNAMODB_MAX_ITEM_BYTES = 400 * 1024


class S3Store(ObjectStore):
    """Disk-based, always-on object storage with request billing."""

    def __init__(self, meter: CostMeter | None = None) -> None:
        profile = StorageProfile(
            name="s3",
            latency_s=8e-2,
            bandwidth_bps=65 * MB,
            concurrency=64,
            startup_s=0.0,
        )
        super().__init__(profile, meter=meter)

    def _bill(self, op: str, nbytes: int, count: int = 1) -> None:
        if self.meter is not None:
            self.meter.bill_s3_request(op, count)


class MemcachedStore(ObjectStore):
    """ElastiCache-for-Memcached: fast, multi-threaded, slow to start."""

    def __init__(self, node: str = "cache.t3.small", meter: CostMeter | None = None):
        try:
            env = ELASTICACHE_NODES[node]
        except KeyError:
            raise ConfigurationError(
                f"unknown ElastiCache node {node!r}; known: {sorted(ELASTICACHE_NODES)}"
            ) from None
        profile = StorageProfile(
            name=f"memcached[{node}]",
            latency_s=env["latency_s"],
            bandwidth_bps=env["bandwidth_bps"],
            concurrency=8,
            startup_s=ELASTICACHE_STARTUP_S,
        )
        super().__init__(profile, meter=meter)
        self.node = node


class RedisStore(ObjectStore):
    """ElastiCache-for-Redis: same node envelope, single worker thread."""

    def __init__(self, node: str = "cache.t3.small", meter: CostMeter | None = None):
        try:
            env = ELASTICACHE_NODES[node]
        except KeyError:
            raise ConfigurationError(
                f"unknown ElastiCache node {node!r}; known: {sorted(ELASTICACHE_NODES)}"
            ) from None
        profile = StorageProfile(
            name=f"redis[{node}]",
            latency_s=env["latency_s"],
            bandwidth_bps=env["bandwidth_bps"],
            concurrency=1,
            startup_s=ELASTICACHE_STARTUP_S,
        )
        super().__init__(profile, meter=meter)
        self.node = node


class DynamoDBStore(ObjectStore):
    """Serverless key-value DB: no startup, 400 KB item limit."""

    def __init__(self, meter: CostMeter | None = None) -> None:
        profile = StorageProfile(
            name="dynamodb",
            latency_s=6e-2,
            bandwidth_bps=80 * MB,
            concurrency=32,
            startup_s=0.0,
            max_item_bytes=DYNAMODB_MAX_ITEM_BYTES,
        )
        super().__init__(profile, meter=meter)

    def stored_item_bytes(self, nbytes: int) -> int:
        # Items are stored serialized; framing adds ~12 % plus a header,
        # which pushes the 378 KB RCV1 model over the 400 KB limit as
        # the paper observes ("infeasible for many median models").
        return int(nbytes * 1.12) + 256

    def _bill(self, op: str, nbytes: int, count: int = 1) -> None:
        if self.meter is not None:
            self.meter.bill_dynamodb_request(op, nbytes, count)


class VMDiskStore(ObjectStore):
    """EBS gp2 volume attached to a VM (checkpoints, hot data)."""

    def __init__(self, meter: CostMeter | None = None) -> None:
        profile = StorageProfile(
            name="ebs-gp2",
            latency_s=3e-5,
            bandwidth_bps=1950 * MB,
            concurrency=8,
            startup_s=0.0,
        )
        super().__init__(profile, meter=meter)


@dataclass
class Channel:
    """A communication channel plus the billing metadata the job needs."""

    store: ObjectStore
    kind: str
    node: str | None = None

    @property
    def startup_s(self) -> float:
        return self.store.profile.startup_s


def make_channel(
    kind: str,
    meter: CostMeter | None = None,
    node: str = "cache.t3.small",
) -> Channel:
    """Build a channel by name: s3 | memcached | redis | dynamodb."""
    if kind == "s3":
        return Channel(S3Store(meter=meter), kind)
    if kind == "memcached":
        return Channel(MemcachedStore(node=node, meter=meter), kind, node=node)
    if kind == "redis":
        return Channel(RedisStore(node=node, meter=meter), kind, node=node)
    if kind == "dynamodb":
        return Channel(DynamoDBStore(meter=meter), kind)
    raise ConfigurationError(
        f"unknown channel {kind!r}; expected s3|memcached|redis|dynamodb"
    )
