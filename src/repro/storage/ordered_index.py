"""An ordered string-key container with O(log n)-ish mutations.

:class:`OrderedKeyIndex` replaces the flat ``bisect.insort``-maintained
sorted list the object stores used through PR 7. The flat list gives
perfect O(log n + m) range queries, but every mutation pays an O(n)
C-level memmove — fine below ~10^5 keys, a wall at mega-scale: one
W=4096 ScatterReduce round keeps ~W^2 chunk keys in flight, and the
memmove alone dominated the engine profile from W≈512 up.

The container here is a *chunked sorted list* (the idiom the
``sortedcontainers`` library made standard, reimplemented in-repo so
the container image needs no new dependency): keys live in a list of
sorted sublists of bounded length, plus a parallel list of each
sublist's maximum for O(log n) sublist location.

* ``add``/``remove`` — one O(log n) bisect over the maxes, one bisect
  inside the target sublist, and a memmove bounded by the sublist
  length (≤ 2·LOAD keys, i.e. constant-bounded — never O(n)). Sublists
  split when they outgrow 2·LOAD and merge with a neighbour when they
  shrink far enough, so the structure cannot degenerate under
  adversarial insert/delete orders.
* ``list_range(lo, hi)`` — O(log n + m) for m matches: locate both
  endpoints, concatenate whole sublists between them.
* ``count_range(lo, hi)`` — O(log n + #sublists): two endpoint ranks;
  the rank sum walks sublist *lengths*, not keys (#sublists ≈ n/LOAD).
* Iteration yields keys in sorted order, like iterating the old flat
  list.

Ordering is plain ``str`` comparison — byte-for-byte the order the
flat list produced, which the engine's determinism guarantees rest on
(``_do_list`` output feeds simulated worker behaviour).

All keys must be unique: callers (``ObjectStore``) guard membership
through their object dict before touching the index.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterator

# Sublist capacity bounds. A sublist splits in two above 2*LOAD and is
# merged into a neighbour below LOAD // 8, so memmoves stay bounded by
# ~2*LOAD pointer moves and merge/split cannot ping-pong (a merged
# sublist is at most LOAD + LOAD//8 long, well under the split bound).
LOAD = 512


class OrderedKeyIndex:
    """Chunked sorted list of unique string keys."""

    __slots__ = ("_lists", "_maxes", "_len", "_load")

    def __init__(self, load: int = LOAD) -> None:
        self._load = load
        self._lists: list[list[str]] = []
        self._maxes: list[str] = []
        self._len = 0

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def add(self, key: str) -> None:
        """Insert `key` (must not already be present)."""
        maxes = self._maxes
        if not maxes:
            self._lists.append([key])
            maxes.append(key)
            self._len = 1
            return
        pos = bisect_left(maxes, key)
        if pos == len(maxes):
            # Larger than everything: append to the last sublist.
            pos -= 1
            sub = self._lists[pos]
            sub.append(key)
            maxes[pos] = key
        else:
            sub = self._lists[pos]
            insort(sub, key)
        self._len += 1
        if len(sub) > (self._load << 1):
            self._split(pos)

    def remove(self, key: str) -> None:
        """Delete `key` (must be present)."""
        maxes = self._maxes
        pos = bisect_left(maxes, key)
        if pos == len(maxes):
            raise KeyError(key)
        sub = self._lists[pos]
        idx = bisect_left(sub, key)
        if idx >= len(sub) or sub[idx] != key:
            raise KeyError(key)
        del sub[idx]
        self._len -= 1
        if not sub:
            del self._lists[pos]
            del maxes[pos]
            return
        if idx == len(sub):
            maxes[pos] = sub[-1]
        if len(sub) < (self._load >> 3):
            self._merge(pos)

    def _split(self, pos: int) -> None:
        sub = self._lists[pos]
        half = len(sub) >> 1
        tail = sub[half:]
        del sub[half:]
        self._lists.insert(pos + 1, tail)
        self._maxes[pos] = sub[-1]
        self._maxes.insert(pos + 1, tail[-1])

    def _merge(self, pos: int) -> None:
        """Fold an underfull sublist into a neighbour, if one has room."""
        sub = self._lists[pos]
        if pos > 0 and len(self._lists[pos - 1]) + len(sub) <= self._load:
            self._lists[pos - 1].extend(sub)
            self._maxes[pos - 1] = self._maxes[pos]
        elif (
            pos + 1 < len(self._lists)
            and len(self._lists[pos + 1]) + len(sub) <= self._load
        ):
            self._lists[pos + 1][:0] = sub
        else:
            return
        del self._lists[pos]
        del self._maxes[pos]

    # ------------------------------------------------------------------
    # Queries. `hi=None` means "to the end of the key space".
    # ------------------------------------------------------------------
    def _rank(self, key: str) -> int:
        """Number of stored keys strictly smaller than `key`."""
        maxes = self._maxes
        pos = bisect_left(maxes, key)
        if pos == len(maxes):
            return self._len
        lists = self._lists
        total = 0
        for i in range(pos):
            total += len(lists[i])
        return total + bisect_left(lists[pos], key)

    def count_range(self, lo: str, hi: str | None) -> int:
        """Number of keys k with lo <= k (< hi, when hi is given)."""
        if not self._len:
            return 0
        upper = self._len if hi is None else self._rank(hi)
        return upper - self._rank(lo)

    def list_range(self, lo: str, hi: str | None) -> list[str]:
        """Sorted list of keys k with lo <= k (< hi, when hi is given)."""
        maxes = self._maxes
        if not maxes:
            return []
        lists = self._lists
        n = len(maxes)
        # First sublist that can hold a key >= lo; sublists before
        # `stop` are entirely < hi, sublist `stop` (if any) is cut.
        start = bisect_left(maxes, lo)
        if start == n:
            return []
        first = lists[start]
        i = bisect_left(first, lo)
        if hi is None:
            stop = n
        else:
            stop = bisect_left(maxes, hi)
            if stop == start:
                return first[i:bisect_left(first, hi)]
        out = first[i:]
        for pos in range(start + 1, min(stop, n)):
            out.extend(lists[pos])
        if hi is not None and stop < n:
            tail = lists[stop]
            out.extend(tail[:bisect_left(tail, hi)])
        return out

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._len

    def __iter__(self) -> Iterator[str]:
        for sub in self._lists:
            yield from sub

    def __contains__(self, key: str) -> bool:
        maxes = self._maxes
        pos = bisect_left(maxes, key)
        if pos == len(maxes):
            return False
        sub = self._lists[pos]
        idx = bisect_left(sub, key)
        return idx < len(sub) and sub[idx] == key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OrderedKeyIndex({self._len} keys in {len(self._lists)} chunks)"
        )
