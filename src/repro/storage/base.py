"""Base object store: shared data plane + per-service timing/billing.

The data plane is a plain dict (the engine applies mutations at the
simulated completion time of each operation, so visibility is
chronologically consistent). The timing plane is a
:class:`StorageProfile` — latency, bandwidth, concurrency, startup
delay and item limit — which is where the services differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError, ItemTooLargeError, KeyNotFoundError
from repro.pricing.meter import CostMeter
from repro.simulation.resources import ServiceQueue


@dataclass(frozen=True)
class StorageProfile:
    """Performance/limit envelope of a storage service.

    bandwidth is bytes/second per connection; concurrency is how many
    operations the service can move in parallel before queueing (this
    is how Redis's single worker thread differs from Memcached's pool).
    """

    name: str
    latency_s: float
    bandwidth_bps: float
    concurrency: int
    startup_s: float = 0.0
    max_item_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.bandwidth_bps <= 0:
            raise ConfigurationError(f"invalid profile for {self.name}")
        if self.concurrency < 1:
            raise ConfigurationError(f"{self.name}: concurrency must be >= 1")


class ObjectStore:
    """A simulated key/value object service.

    Subclasses override :meth:`_bill` for service-specific pricing and
    may override :meth:`op_duration`. Data methods prefixed with `_do_`
    are invoked by the engine at operation-completion time and must not
    be called directly from worker code.
    """

    def __init__(
        self,
        profile: StorageProfile,
        meter: CostMeter | None = None,
        available_from: float | None = None,
    ) -> None:
        self.profile = profile
        self.meter = meter
        # The service accepts requests only once started; ElastiCache
        # nodes take minutes to come up while S3 is an always-on service.
        self.available_at = profile.startup_s if available_from is None else available_from
        self.queue = ServiceQueue(profile.concurrency)
        self._objects: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Timing plane (called by the engine)
    # ------------------------------------------------------------------
    def op_duration(self, op: str, nbytes: int) -> float:
        if op in ("put", "get"):
            return self.profile.latency_s + nbytes / self.profile.bandwidth_bps
        # list/delete move only metadata.
        return self.profile.latency_s

    def stored_item_bytes(self, nbytes: int) -> int:
        """Bytes the service actually stores for an `nbytes` payload.

        Subclasses add serialization framing overhead here; the limit
        check below applies to this inflated size (this is what makes a
        47236-float RCV1 model exceed DynamoDB's 400 KB item limit even
        though the raw buffer is 378 KB).
        """
        return nbytes

    def schedule_op(self, op: str, nbytes: int, arrival: float) -> tuple[float, float]:
        """Book the operation; returns (service_start, completion)."""
        if (
            op == "put"
            and self.profile.max_item_bytes is not None
            and self.stored_item_bytes(nbytes) > self.profile.max_item_bytes
        ):
            raise ItemTooLargeError(
                f"{self.profile.name}: item of {self.stored_item_bytes(nbytes)} B "
                f"(payload {nbytes} B) exceeds limit {self.profile.max_item_bytes} B"
            )
        arrival = max(arrival, self.available_at)
        duration = self.op_duration(op, nbytes)
        start, end = self.queue.schedule(arrival, duration)
        self._bill(op, nbytes)
        return start, end

    def record_polls(self, count: int) -> None:
        """Bill `count` metadata polls issued by a waiting worker."""
        for _ in range(count):
            self._bill("list", 0)

    def _bill(self, op: str, nbytes: int) -> None:
        """Default: free (subclasses bill requests or node-hours)."""

    # ------------------------------------------------------------------
    # Data plane (called by the engine at completion time)
    # ------------------------------------------------------------------
    def _do_put(self, key: str, value: Any) -> None:
        self._objects[key] = value

    def _do_get(self, key: str) -> Any:
        try:
            return self._objects[key]
        except KeyError:
            raise KeyNotFoundError(f"{self.profile.name}: no such key {key!r}") from None

    def _do_delete(self, key: str) -> None:
        self._objects.pop(key, None)

    def _do_list(self, prefix: str) -> list[str]:
        return sorted(k for k in self._objects if k.startswith(prefix))

    def _exists(self, key: str) -> bool:
        return key in self._objects

    def _count_prefix(self, prefix: str) -> int:
        return sum(1 for k in self._objects if k.startswith(prefix))

    # Test/diagnostic conveniences (no simulated time involved).
    def peek(self, key: str) -> Any:
        return self._do_get(key)

    def seed_object(self, key: str, value: Any) -> None:
        """Place an object without simulated time (e.g. pre-uploaded data)."""
        self._objects[key] = value

    def discard(self, key: str) -> None:
        """Zero-time housekeeping removal of a consumed object.

        Used by the communication patterns after a round's temporary
        files have been fully merged, so long simulations do not
        accumulate memory. Not billed and not timed — by construction
        the discarded keys can never be read again.
        """
        self._objects.pop(key, None)

    def __len__(self) -> int:
        return len(self._objects)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.profile.name!r}, {len(self)} objects)"
