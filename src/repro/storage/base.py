"""Base object store: shared data plane + per-service timing/billing.

The data plane is a plain dict (the engine applies mutations at the
simulated completion time of each operation, so visibility is
chronologically consistent) plus an incremental index: an
:class:`~repro.storage.ordered_index.OrderedKeyIndex` (a chunked
sorted list — bounded-memmove mutations), and live counters for every
prefix the engine has registered a waiter on. The index makes the
hot-path queries cheap at mega-scale:

* ``_do_list(prefix)`` — O(log n + m) for n stored keys, m matches
  (locate the prefix range, concatenate whole chunks);
* ``_count_prefix(prefix)`` — O(1) for a registered prefix (live
  counter), O(log n + n/chunk) otherwise (two endpoint ranks);
* each mutation — O(log n) bisects plus a memmove bounded by the
  chunk size (never O(n); this is what lifted the old flat sorted
  list's ~10^5-key ceiling) plus O(len(key)) dict probes to update
  the registered-prefix counters.

The timing plane is a :class:`StorageProfile` — latency, bandwidth,
concurrency, startup delay and item limit — which is where the
services differ.

A store may additionally carry a :class:`~repro.faults.plan.
StorageFaultPolicy` (attached by the job context when the config's
``storage_error_rate`` is non-zero). Each put/get then consults the
policy's deterministic error stream: failed attempts occupy the
service for one latency, wait out an exponential backoff, and are
billed like real requests; the data effect happens once, at the final
(successful) attempt's completion. With no policy attached the fast
path is untouched — byte-identical timing and dollars to the
pre-fault-plane engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import (
    ConfigurationError,
    ItemTooLargeError,
    KeyNotFoundError,
    TransientStorageError,
)
from repro.pricing.meter import CostMeter
from repro.simulation.resources import ServiceQueue
from repro.storage.ordered_index import OrderedKeyIndex

_MAX_CHAR = chr(0x10FFFF)


def _prefix_upper_bound(prefix: str) -> str | None:
    """Smallest string sorting after every string with `prefix`.

    Returns None when no such string exists (empty prefix or all
    characters already at the maximum code point), meaning the range
    extends to the end of the key space.
    """
    for i in range(len(prefix) - 1, -1, -1):
        if prefix[i] != _MAX_CHAR:
            return prefix[:i] + chr(ord(prefix[i]) + 1)
    return None


@dataclass(frozen=True)
class StorageProfile:
    """Performance/limit envelope of a storage service.

    bandwidth is bytes/second per connection; concurrency is how many
    operations the service can move in parallel before queueing (this
    is how Redis's single worker thread differs from Memcached's pool).
    """

    name: str
    latency_s: float
    bandwidth_bps: float
    concurrency: int
    startup_s: float = 0.0
    max_item_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.bandwidth_bps <= 0:
            raise ConfigurationError(f"invalid profile for {self.name}")
        if self.concurrency < 1:
            raise ConfigurationError(f"{self.name}: concurrency must be >= 1")


class ObjectStore:
    """A simulated key/value object service.

    Subclasses override :meth:`_bill` for service-specific pricing and
    may override :meth:`op_duration`. Data methods prefixed with `_do_`
    are invoked by the engine at operation-completion time and must not
    be called directly from worker code.
    """

    def __init__(
        self,
        profile: StorageProfile,
        meter: CostMeter | None = None,
        available_from: float | None = None,
    ) -> None:
        self.profile = profile
        self.meter = meter
        # The service accepts requests only once started; ElastiCache
        # nodes take minutes to come up while S3 is an always-on service.
        self.available_at = profile.startup_s if available_from is None else available_from
        self.queue = ServiceQueue(profile.concurrency)
        # Fault plane (see module docstring). fault_policy is attached
        # by the job context. Crash-injected runs attach a retention
        # window (repro.comm.patterns.RetentionWindow): respawned
        # workers re-read round files their dead predecessor already
        # consumed, so those files outlive their last reader — until
        # every rank's durable checkpoint has moved past their round.
        self.fault_policy = None
        self.gc_enabled = True
        self.retention = None
        self.fault_events = {
            "storage_errors": 0, "retries": 0, "backoff_s": 0.0, "exhaustions": 0,
        }
        self._op_index = 0
        self._objects: dict[str, Any] = {}
        # Incremental index: all stored keys in sorted order (chunked,
        # so mutations never pay an O(n) memmove), plus live match
        # counts for prefixes the engine is actively waiting on.
        self._keys = OrderedKeyIndex()
        self._prefix_counts: dict[str, int] = {}
        self._max_prefix_len = 0

    # ------------------------------------------------------------------
    # Timing plane (called by the engine)
    # ------------------------------------------------------------------
    def op_duration(self, op: str, nbytes: int) -> float:
        if op in ("put", "get"):
            return self.profile.latency_s + nbytes / self.profile.bandwidth_bps
        # list/delete move only metadata.
        return self.profile.latency_s

    def stored_item_bytes(self, nbytes: int) -> int:
        """Bytes the service actually stores for an `nbytes` payload.

        Subclasses add serialization framing overhead here; the limit
        check below applies to this inflated size (this is what makes a
        47236-float RCV1 model exceed DynamoDB's 400 KB item limit even
        though the raw buffer is 378 KB).
        """
        return nbytes

    def schedule_op(self, op: str, nbytes: int, arrival: float) -> tuple[float, float]:
        """Book the operation; returns (service_start, completion)."""
        if (
            op == "put"
            and self.profile.max_item_bytes is not None
            and self.stored_item_bytes(nbytes) > self.profile.max_item_bytes
        ):
            raise ItemTooLargeError(
                f"{self.profile.name}: item of {self.stored_item_bytes(nbytes)} B "
                f"(payload {nbytes} B) exceeds limit {self.profile.max_item_bytes} B"
            )
        arrival = max(arrival, self.available_at)
        policy = self.fault_policy
        if policy is not None and op in ("put", "get"):
            retried = self._schedule_failed_attempts(op, arrival, policy)
            if retried is not None:
                first_start, arrival = retried
                duration = self.op_duration(op, nbytes)
                _, end = self.queue.schedule(arrival, duration)
                self._bill(op, nbytes)
                return first_start, end
        duration = self.op_duration(op, nbytes)
        start, end = self.queue.schedule(arrival, duration)
        self._bill(op, nbytes)
        return start, end

    def _schedule_failed_attempts(self, op, arrival, policy):
        """Lay this op's transient failures onto simulated time.

        Returns ``None`` when the op succeeds first try (fast path), or
        ``(first_attempt_start, retry_arrival)``: the instant the first
        (failed) attempt started service and the instant the final
        attempt may be issued. Each failed attempt occupies the service
        for one latency (an error response is metadata, not a
        transfer), is billed like a real request, and is followed by
        the policy's exponential backoff. ``self._op_index`` advances
        exactly once per logical operation, so the plan's per-store
        error stream lines up across exact/record/replay runs.
        """
        op_index = self._op_index
        self._op_index += 1
        failures = policy.failures(op_index)
        if failures == 0:
            return None
        retry = policy.retry
        exhausted = failures > retry.limit
        events = self.fault_events
        events["storage_errors"] += failures
        # The final attempt of an exhausted op is abandoned, not retried.
        events["retries"] += failures if not exhausted else retry.limit
        first_start = None
        last_end = arrival
        for attempt in range(failures):
            start, end = self.queue.schedule(arrival, self.profile.latency_s)
            if first_start is None:
                first_start = start
            # A failed attempt is a real request but an error-sized
            # response: billed at zero transfer bytes (per-request
            # services charge the request; unit-priced services charge
            # one minimum unit), matching the latency-only service
            # occupation above.
            self._bill(op, 0)
            last_end = end
            if exhausted and attempt == failures - 1:
                break  # the op gives up here; no backoff after giving up
            backoff = retry.backoff_s(attempt)
            events["backoff_s"] += backoff
            arrival = end + backoff
        if exhausted:
            # Every failed attempt above was serviced, billed and
            # counted *before* the raise, so an exhaustion that aborts
            # (or recovers) a run still surfaces in the event summary.
            events["exhaustions"] += 1
            error = TransientStorageError(
                f"{self.profile.name}: {op} failed {failures} time(s), "
                f"exhausting the {retry.limit}-retry budget (op #{op_index})"
            )
            # When the op gives up (simulated completion of the last
            # failed attempt) — the engine delivers the error to the
            # issuing worker at this instant.
            error.failed_at = last_end
            raise error
        return first_start, arrival

    def record_polls(self, count: int) -> None:
        """Bill `count` metadata polls issued by a waiting worker."""
        self._bill("list", 0, count)

    def _bill(self, op: str, nbytes: int, count: int = 1) -> None:
        """Default: free (subclasses bill requests or node-hours)."""

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------
    def _index_add(self, key: str) -> None:
        self._keys.add(key)
        if self._prefix_counts:
            for prefix in self.matching_registered_prefixes(key):
                self._prefix_counts[prefix] += 1

    def _index_remove(self, key: str) -> None:
        self._keys.remove(key)
        if self._prefix_counts:
            for prefix in self.matching_registered_prefixes(key):
                self._prefix_counts[prefix] -= 1

    def matching_registered_prefixes(self, key: str) -> Iterator[str]:
        """Registered prefixes that `key` falls under (at most len(key)+1)."""
        counts = self._prefix_counts
        if not counts:
            return
        for i in range(min(len(key), self._max_prefix_len) + 1):
            prefix = key[:i]
            if prefix in counts:
                yield prefix

    def register_prefix(self, prefix: str) -> int:
        """Start tracking `prefix` with a live counter; returns the count.

        Idempotent. The engine registers a prefix when its first waiter
        blocks on it and unregisters when the last one is satisfied.
        """
        count = self._prefix_counts.get(prefix)
        if count is None:
            count = self._keys.count_range(prefix, _prefix_upper_bound(prefix))
            self._prefix_counts[prefix] = count
            self._max_prefix_len = max(self._max_prefix_len, len(prefix))
        return count

    def unregister_prefix(self, prefix: str) -> None:
        self._prefix_counts.pop(prefix, None)
        if not self._prefix_counts:
            self._max_prefix_len = 0

    # ------------------------------------------------------------------
    # Data plane (called by the engine at completion time)
    # ------------------------------------------------------------------
    def _do_put(self, key: str, value: Any) -> None:
        if key not in self._objects:
            self._index_add(key)
        self._objects[key] = value

    def _do_get(self, key: str) -> Any:
        try:
            return self._objects[key]
        except KeyError:
            raise KeyNotFoundError(f"{self.profile.name}: no such key {key!r}") from None

    def _do_delete(self, key: str) -> None:
        if key in self._objects:
            del self._objects[key]
            self._index_remove(key)

    def _do_list(self, prefix: str) -> list[str]:
        return self._keys.list_range(prefix, _prefix_upper_bound(prefix))

    def _exists(self, key: str) -> bool:
        return key in self._objects

    def _count_prefix(self, prefix: str) -> int:
        count = self._prefix_counts.get(prefix)
        if count is not None:
            return count
        return self._keys.count_range(prefix, _prefix_upper_bound(prefix))

    # Test/diagnostic conveniences (no simulated time involved).
    def peek(self, key: str) -> Any:
        return self._do_get(key)

    def seed_object(self, key: str, value: Any) -> None:
        """Place an object without simulated time (e.g. pre-uploaded data).

        A staging API for *before* the engine runs: the key is indexed
        (listings and prefix counts see it) but no waiter is notified —
        during a run, keys only become visible to blocked WaitKey /
        WaitKeyCount processes through a simulated Put.
        """
        self._do_put(key, value)

    def discard(self, key: str) -> None:
        """Zero-time housekeeping removal of a consumed object.

        Used by the communication patterns after a round's temporary
        files have been fully merged, so long simulations do not
        accumulate memory. Not billed and not timed — by construction
        the discarded keys can never be read again. Crash-injected runs
        attach a retention window instead: a respawned worker
        re-executes rounds back to its last durable checkpoint, so "can
        never be read again" only holds for rounds below the oldest
        live checkpoint — the window's floor. Retained keys are
        collected in bulk when the fault injector advances that floor.
        """
        if not self.gc_enabled:
            return
        if self.retention is not None and self.retention.retains(key):
            return
        self._do_delete(key)

    def __len__(self) -> int:
        return len(self._objects)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.profile.name!r}, {len(self)} objects)"
