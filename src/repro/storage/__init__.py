"""Simulated storage services used as FaaS communication channels.

Section 3.2.2 of the paper compares four external channels — S3,
ElastiCache for Memcached, ElastiCache for Redis, DynamoDB — plus a
VM-based parameter server (built in :mod:`repro.iaas.ps`). Each store
here shares the same object API but differs in latency, bandwidth,
concurrency, startup delay, item-size limits and billing, which is
exactly the tradeoff Table 1 measures.
"""

from repro.storage.base import ObjectStore, StorageProfile
from repro.storage.services import (
    DynamoDBStore,
    MemcachedStore,
    RedisStore,
    S3Store,
    VMDiskStore,
    make_channel,
)

__all__ = [
    "ObjectStore",
    "StorageProfile",
    "S3Store",
    "MemcachedStore",
    "RedisStore",
    "DynamoDBStore",
    "VMDiskStore",
    "make_channel",
]
