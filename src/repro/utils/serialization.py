"""Payload sizing for simulated network transfers.

The simulator charges communication time by *byte size*, so every
object that crosses a channel needs a well-defined size. Real numpy
arrays report their true buffer size; experiments that model the
paper's full-scale models (MobileNet 12 MB, ResNet50 89 MB) wrap their
physical arrays in :class:`SizedPayload` to carry the logical size used
for time/cost accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy import sparse


@dataclass(frozen=True)
class SizedPayload:
    """A value paired with an explicit logical wire size in bytes."""

    value: Any
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"payload size must be >= 0, got {self.nbytes}")


def payload_nbytes(obj: Any) -> int:
    """Best-effort wire size of `obj` in bytes.

    numpy arrays and scipy sparse matrices report their buffer sizes;
    containers sum their elements; everything else falls back to a
    small constant for bookkeeping metadata.
    """
    if isinstance(obj, SizedPayload):
        return obj.nbytes
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if sparse.issparse(obj):
        return int(obj.data.nbytes + obj.indices.nbytes + obj.indptr.nbytes)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, (int, float, bool)) or obj is None:
        return 8
    if isinstance(obj, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set)):
        return sum(payload_nbytes(item) for item in obj)
    # Unknown object: charge a token amount so transfers are never free.
    return 64


def unwrap(obj: Any) -> Any:
    """Return the underlying value of a payload (identity for plain values)."""
    if isinstance(obj, SizedPayload):
        return obj.value
    return obj
