"""Payload sizing for simulated network transfers.

The simulator charges communication time by *byte size*, so every
object that crosses a channel needs a well-defined size. Real numpy
arrays report their true buffer size; experiments that model the
paper's full-scale models (MobileNet 12 MB, ResNet50 89 MB) wrap their
physical arrays in :class:`SizedPayload` to carry the logical size used
for time/cost accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any

import numpy as np
from scipy import sparse


@dataclass(frozen=True)
class SizedPayload:
    """A value paired with an explicit logical wire size in bytes."""

    value: Any
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"payload size must be >= 0, got {self.nbytes}")


@lru_cache(maxsize=4096)
def _str_nbytes(text: str) -> int:
    """UTF-8 size of a string, memoized.

    Storage keys and metadata-dict field names recur on every round of
    a long run (hot keys), so the encode is paid once per distinct
    string instead of once per sizing. Strings are immutable, which is
    what makes this cache safe; container sizes are NOT cached because
    lists/dicts can mutate between transfers.
    """
    return len(text.encode("utf-8"))


def payload_nbytes(obj: Any) -> int:
    """Best-effort wire size of `obj` in bytes.

    numpy arrays and scipy sparse matrices report their buffer sizes;
    containers sum their elements; everything else falls back to a
    small constant for bookkeeping metadata. Exact builtin types take
    an O(1) dispatch-table fast path — this function runs once per
    simulated transfer, recursing over containers, so it is on the
    engine's hot path.
    """
    handler = _FAST_PATH.get(type(obj))
    if handler is not None:
        return handler(obj)
    return _payload_nbytes_general(obj)


def _payload_nbytes_general(obj: Any) -> int:
    """Subclass-tolerant slow path (semantics of the original chain)."""
    if isinstance(obj, SizedPayload):
        return obj.nbytes
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if sparse.issparse(obj):
        return int(obj.data.nbytes + obj.indices.nbytes + obj.indptr.nbytes)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return _str_nbytes(obj)
    if isinstance(obj, (int, float, bool)) or obj is None:
        return 8
    if isinstance(obj, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    if isinstance(obj, (list, tuple, set)):
        return sum(payload_nbytes(item) for item in obj)
    # Unknown object: charge a token amount so transfers are never free.
    return 64


def _dict_nbytes(obj: dict) -> int:
    return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())


def _iterable_nbytes(obj: Any) -> int:
    return sum(payload_nbytes(item) for item in obj)


# Exact-type dispatch for the overwhelmingly common payloads. Subclasses
# (np.float64 under float, IntEnum under int, ...) miss here and fall
# through to the isinstance chain, which yields identical results.
_FAST_PATH: dict[type, Any] = {
    SizedPayload: lambda obj: obj.nbytes,
    np.ndarray: lambda obj: int(obj.nbytes),
    bytes: len,
    bytearray: len,
    str: _str_nbytes,
    int: lambda obj: 8,
    float: lambda obj: 8,
    bool: lambda obj: 8,
    type(None): lambda obj: 8,
    dict: _dict_nbytes,
    list: _iterable_nbytes,
    tuple: _iterable_nbytes,
    set: _iterable_nbytes,
}


def unwrap(obj: Any) -> Any:
    """Return the underlying value of a payload (identity for plain values)."""
    if isinstance(obj, SizedPayload):
        return obj.value
    return obj
