"""Small statistics helpers used by the simulator and experiments."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class RunningMean:
    """Numerically stable running mean/variance (Welford)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return self.variance**0.5


@dataclass
class Timer:
    """Context manager measuring real wall-clock time (for benchmarks only).

    Simulated experiments never consult the host clock; this exists for
    pytest-benchmark harness plumbing and progress reporting.
    """

    elapsed: float = field(default=0.0)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start
