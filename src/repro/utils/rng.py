"""Seeded random-number helpers.

All stochastic behaviour in the library (data generation, minibatch
sampling, initialisation, simulated jitter) goes through
:func:`make_rng` so experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a numpy Generator from a seed, passing Generators through.

    Accepting an existing Generator lets call sites thread one RNG
    through a pipeline without re-seeding, while tests can pass plain
    integers.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split an RNG into `count` independent child generators.

    Used to give each simulated worker its own stream so that the order
    in which workers are stepped by the event loop cannot change the
    statistics they compute.
    """
    seeds = rng.integers(0, 2**31 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
