"""Shared helpers: RNG, serialization sizing, running statistics."""

from repro.utils.rng import make_rng
from repro.utils.serialization import payload_nbytes
from repro.utils.stats import RunningMean, Timer

__all__ = ["make_rng", "payload_nbytes", "RunningMean", "Timer"]
