"""Content-addressed fingerprint hashing shared by sweep and substrate.

Both the sweep's config hashes (``<hash>.json`` artifacts) and the
substrate's statistical fingerprints (``traces/<stat_hash>.json``)
digest a flat dict of primitive values. The digest must be stable
across numeric spellings: ``TrainingConfig(max_epochs=40)`` and
``max_epochs=40.0`` compare equal, so they must hash equal too — but
``json.dumps`` renders ``40`` vs ``40.0``. Integral floats are
therefore hashed as ints (bools are left alone; they are configuration
flags, not numbers).
"""

from __future__ import annotations

import hashlib
import json

HASH_CHARS = 16  # 64 bits of sha256: ample for any practical grid


def canonical_value(value):
    """Collapse numerically equal spellings before hashing."""
    if isinstance(value, bool) or not isinstance(value, float):
        return value
    return int(value) if value.is_integer() else value


def fingerprint_hash(fingerprint: dict) -> str:
    """Stable hex digest of a flat fingerprint dict."""
    canonical = json.dumps(
        {name: canonical_value(value) for name, value in fingerprint.items()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:HASH_CHARS]
