"""Worker-local data shards and minibatch iteration.

A :class:`Shard` is what one executor holds after loading its partition
from S3: a slice of the training matrix, a slice of the validation set
(validation loss is averaged across workers at synchronisation points),
and a deterministic minibatch sampler that reshuffles every epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.partition import partition_indices
from repro.data.synth import TrainValSplit
from repro.errors import ConfigurationError
from repro.utils.rng import make_rng


@dataclass
class Shard:
    """One worker's local training/validation data."""

    rank: int
    X: object  # ndarray or CSR slice
    y: np.ndarray
    X_val: object
    y_val: np.ndarray
    batch_size: int
    rng: np.random.Generator = field(repr=False, default=None)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.rng is None:
            self.rng = make_rng(self.rank)

    @property
    def n_rows(self) -> int:
        return self.X.shape[0]

    @property
    def iterations_per_epoch(self) -> int:
        return max(1, -(-self.n_rows // self.batch_size))  # ceil division

    def epoch_batches(self):
        """Yield (X_batch, y_batch) covering the shard once, shuffled."""
        order = self.rng.permutation(self.n_rows)
        for start in range(0, self.n_rows, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.X[idx], self.y[idx]

    def sample_batch(self):
        """One uniformly sampled minibatch (for asynchronous executors)."""
        idx = self.rng.choice(self.n_rows, size=min(self.batch_size, self.n_rows), replace=False)
        return self.X[idx], self.y[idx]


def make_shards(
    split: TrainValSplit,
    workers: int,
    global_batch: int,
    partition_mode: str = "iid",
    skew: float = 0.8,
    seed: int = 0,
    min_local_batch: int = 1,
) -> list[Shard]:
    """Partition a dataset across `workers` executors.

    `global_batch` is the paper-style global minibatch size; each worker
    processes `global_batch / workers` rows per iteration (at least 1).
    `min_local_batch` floors the per-worker batch: high-dimensional
    workloads whose scaled-down physical batch would collapse to one
    row (YFCC100M, Criteo at W=100) use a floor of ~32 so minibatch
    statistics stay meaningful; this only affects the *statistics*, as
    simulated compute time is charged on logical data volumes.
    """
    if global_batch < 1:
        raise ConfigurationError(f"global_batch must be >= 1, got {global_batch}")
    train_parts = partition_indices(
        split.n_train,
        workers,
        mode=partition_mode,
        labels=split.y_train,
        skew=skew,
        seed=seed,
    )
    val_parts = partition_indices(split.y_val.shape[0], workers, mode="iid", seed=seed + 1)
    # Trim shards to a uniform size: synchronous (BSP) training requires
    # every worker to run the identical number of iterations per epoch,
    # otherwise the per-round rendezvous would deadlock. At most
    # `workers - 1` rows are dropped.
    train_size = min(len(p) for p in train_parts)
    val_size = min(len(p) for p in val_parts)
    train_parts = [p[:train_size] for p in train_parts]
    val_parts = [p[:val_size] for p in val_parts]
    local_batch = max(1, min_local_batch, round(global_batch / workers))
    rngs = [make_rng(seed * 1000 + rank) for rank in range(workers)]
    return [
        Shard(
            rank=rank,
            X=split.X_train[train_parts[rank]],
            y=split.y_train[train_parts[rank]],
            X_val=split.X_val[val_parts[rank]],
            y_val=split.y_val[val_parts[rank]],
            batch_size=local_batch,
            rng=rngs[rank],
        )
        for rank in range(workers)
    ]
