"""Synthetic stand-ins for the paper's datasets.

Each generator produces data with the same *statistical shape* as the
original (dimensionality, sparsity, class balance, degree of
separability) so that optimization algorithms exhibit the paper's
relative behaviour: Higgs-like data is noisy (LR plateaus near 0.6 log
loss), RCV1-like data is nearly separable (SVM hinge loss ~0.05),
cifar10-like data has 10 Gaussian-ish clusters reachable by a small
neural network, YFCC100M/Criteo are imbalanced.

Generated splits are cached per (name, scale, seed): experiments
re-create the same dataset many times while sweeping system knobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy import sparse

from repro.config import stable_hash
from repro.data.datasets import DatasetSpec, get_spec
from repro.utils.rng import make_rng

VALIDATION_FRACTION = 0.1  # paper: 90 % train / 10 % validation

# Version tag mixed into each dataset's RNG stream. Historically the
# stream depended on builtin hash(name), i.e. on PYTHONHASHSEED, so each
# process trained on a *different draw* and knife-edge convergence tests
# passed or failed by luck. The draws are arbitrary by construction;
# these are the pinned draws the workload registry's thresholds are
# validated against. Bumping an entry re-rolls that synthetic dataset —
# re-validate tests/test_workload_convergence.py and
# tests/test_paper_claims.py if you do.
DATA_STREAM_VERSION = {
    "higgs": 2,
    "rcv1": 1,
    "cifar10": 1,
    "yfcc100m": 1,
    "criteo": 1,
}


def _balance_offset(margin: np.ndarray, positive_fraction: float, noise: float) -> float:
    """Offset b such that E[sigmoid((margin - b)/noise)] = positive_fraction.

    A plain quantile is biased once label noise smooths the decision:
    rows far below the cut still flip positive with non-trivial
    probability, so e.g. a 7.5% quantile cut yields ~28% positives.
    The expectation is monotone in b, so bisection is exact.
    """
    noise = max(noise, 1e-6)
    lo = float(margin.min()) - 20.0 * noise
    hi = float(margin.max()) + 20.0 * noise
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        mean_prob = float(np.mean(1.0 / (1.0 + np.exp(-(margin - mid) / noise))))
        if mean_prob > positive_fraction:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class TrainValSplit:
    """Physical train/validation arrays for one dataset."""

    name: str
    X_train: object  # ndarray or scipy CSR
    y_train: np.ndarray
    X_val: object
    y_val: np.ndarray
    spec: DatasetSpec

    @property
    def n_train(self) -> int:
        return self.X_train.shape[0]

    @property
    def n_features(self) -> int:
        return self.X_train.shape[1]


# Latent cluster structure of the dense generators. Real Higgs/YFCC
# feature spaces are clusterable (the paper runs k-means on both); we
# plant N_LATENT_CLUSTERS Gaussian modes whose within-cluster spread
# yields a relative quantization error of ~0.12 when k >= latent k, so
# the paper's k-means thresholds are meaningful stopping points.
N_LATENT_CLUSTERS = 8
WITHIN_CLUSTER_STD = 0.35


def _dense_binary(spec: DatasetSpec, n: int, rng: np.random.Generator) -> tuple:
    """Dense binary classification with tunable label noise.

    Rows are drawn from a mixture of latent Gaussian clusters (total
    variance normalised to ~1 per feature); labels follow a logistic
    model y ~ Bernoulli(sigmoid(margin/noise)), so higher `spec.noise`
    means a higher Bayes error (Higgs-like), lower means nearly
    separable.
    """
    dtype = np.dtype(spec.dtype)
    d = spec.n_features
    spread = np.sqrt(max(0.0, 1.0 - WITHIN_CLUSTER_STD**2))
    centers = rng.standard_normal((N_LATENT_CLUSTERS, d)) * spread
    assignment = rng.integers(0, N_LATENT_CLUSTERS, size=n)
    X_iso = centers[assignment] + rng.standard_normal((n, d)) * WITHIN_CLUSTER_STD
    # The label signal is defined on the isotropic representation, then
    # the observed features are anisotropically rescaled: learning must
    # recover weight mass along the shrunken directions, which is what
    # makes SGD convergence take several epochs (see DatasetSpec).
    w_true = rng.standard_normal(d) / np.sqrt(d)
    margin = X_iso @ w_true
    offset = _balance_offset(margin, spec.positive_fraction, spec.noise)
    if spec.condition > 1.0:
        quarter_log = np.log(spec.condition) / 4.0
        scales = np.exp(np.linspace(-quarter_log, quarter_log, d))
        scales = rng.permutation(scales)
        X = (X_iso * scales).astype(dtype)
    else:
        X = X_iso.astype(dtype)
    if spec.row_normalize:
        norms = np.linalg.norm(X, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        X = (X / norms).astype(dtype)
    logits = (margin - offset) / max(spec.noise, 1e-6)
    prob = 1.0 / (1.0 + np.exp(-logits))
    y = (rng.random(n) < prob).astype(np.int8)
    return X, np.where(y == 1, 1, -1).astype(np.int8)


def _sparse_binary(spec: DatasetSpec, n: int, rng: np.random.Generator) -> tuple:
    """Sparse TF-IDF-like binary data (RCV1 / Criteo families)."""
    d = spec.n_features
    nnz = spec.nnz_per_row
    # Feature popularity follows a Zipf-ish law like text/CTR data.
    popularity = 1.0 / np.arange(1, d + 1)
    popularity /= popularity.sum()
    cols = rng.choice(d, size=(n, nnz), p=popularity)
    vals = np.abs(rng.standard_normal((n, nnz))) * 0.5 + 0.1
    rows = np.repeat(np.arange(n), nnz)
    X = sparse.csr_matrix(
        (vals.ravel(), (rows, cols.ravel())), shape=(n, d), dtype=np.float64
    )
    # Normalise rows like TF-IDF vectors.
    row_norms = np.sqrt(X.multiply(X).sum(axis=1)).A.ravel()
    row_norms[row_norms == 0] = 1.0
    X = sparse.diags(1.0 / row_norms) @ X
    w_true = rng.standard_normal(d)
    margin = np.asarray(X @ w_true).ravel()
    offset = _balance_offset(margin, spec.positive_fraction, spec.noise)
    logits = (margin - offset) / max(spec.noise, 1e-6)
    prob = 1.0 / (1.0 + np.exp(-logits))
    y = (rng.random(n) < prob).astype(np.int8)
    return X.tocsr(), np.where(y == 1, 1, -1).astype(np.int8)


def _image_like(spec: DatasetSpec, n: int, rng: np.random.Generator) -> tuple:
    """10-class image-like data: anisotropic Gaussian blobs + noise.

    The blobs live on a low-dimensional manifold inside the 3072-dim
    pixel space, which makes linear models mediocre but lets a small
    neural network reach low cross-entropy — mirroring why the paper
    needs MobileNet/ResNet rather than LR on Cifar10.
    """
    dtype = np.dtype(spec.dtype)
    d = spec.n_features
    k = spec.n_classes
    latent_dim = 32
    # Class prototypes in latent space, projected up to pixel space.
    prototypes = rng.standard_normal((k, latent_dim)) * 2.2
    projection = rng.standard_normal((latent_dim, d)).astype(dtype) / np.sqrt(latent_dim)
    y = rng.integers(0, k, size=n)
    latent = prototypes[y] + rng.standard_normal((n, latent_dim)) * spec.noise
    X = latent.astype(dtype) @ projection
    X += rng.standard_normal((n, d)).astype(dtype) * 0.25
    # 1% label noise sets a non-zero cross-entropy floor, so reaching
    # the paper's 0.2 threshold requires both fitting and calibration.
    flips = rng.random(n) < 0.01
    y[flips] = rng.integers(0, k, size=int(flips.sum()))
    return X.astype(dtype), y.astype(np.int64)


_FAMILIES = {
    "higgs": _dense_binary,
    "rcv1": _sparse_binary,
    "cifar10": _image_like,
    "yfcc100m": _dense_binary,
    "criteo": _sparse_binary,
}


@lru_cache(maxsize=32)
def generate(name: str, scale: int | None = None, seed: int = 0) -> TrainValSplit:
    """Generate (and cache) the physical train/val split for `name`.

    `scale` divides the paper's instance count; None uses the spec
    default. The split is deterministic in (name, scale, seed).
    """
    spec = get_spec(name)
    # stable_hash, not hash(): dataset *content* must not depend on the
    # process's PYTHONHASHSEED (engine determinism is only as good as
    # the reproducibility of the data feeding it).
    version = DATA_STREAM_VERSION.get(name, 1)
    rng = make_rng(seed + stable_hash(f"{name}#{version}") % 10_000)
    n = spec.physical_instances(scale)
    family = _FAMILIES[spec.name]
    X, y = family(spec, n, rng)

    n_val = max(16, int(n * VALIDATION_FRACTION))
    perm = rng.permutation(n)
    val_idx, train_idx = perm[:n_val], perm[n_val:]
    return TrainValSplit(
        name=name,
        X_train=X[train_idx],
        y_train=y[train_idx],
        X_val=X[val_idx],
        y_val=y[val_idx],
        spec=spec,
    )
