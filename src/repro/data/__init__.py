"""Datasets: Figure-6 logical specs plus synthetic physical generators."""

from repro.data.datasets import DATASETS, DatasetSpec, get_spec
from repro.data.loader import Shard, make_shards
from repro.data.partition import partition_indices
from repro.data.synth import TrainValSplit, generate

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "get_spec",
    "TrainValSplit",
    "generate",
    "partition_indices",
    "Shard",
    "make_shards",
]
