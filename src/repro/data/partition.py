"""Partitioning training data across workers.

The paper partitions data evenly (data parallelism). We additionally
support a label-skewed ("non-iid") partitioner, used to reproduce the
instability of model averaging on non-convex models (Section 4.2:
"the convergence of MA-SGD is unstable").
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import make_rng


def partition_indices(
    n: int,
    workers: int,
    mode: str = "iid",
    labels: np.ndarray | None = None,
    skew: float = 0.8,
    seed: int = 0,
) -> list[np.ndarray]:
    """Split `range(n)` into `workers` disjoint shards.

    mode="iid" shuffles uniformly. mode="label-skew" gives each worker
    a shard in which roughly a `skew` fraction comes from its preferred
    label bucket (labels assigned to workers round-robin); the rest is
    uniform. Shards are always disjoint and cover all rows except at
    most `workers - 1` remainder rows.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if workers > n:
        raise ConfigurationError(f"more workers ({workers}) than rows ({n})")
    rng = make_rng(seed)

    if mode == "iid":
        perm = rng.permutation(n)
        return [np.sort(shard) for shard in np.array_split(perm, workers)]

    if mode == "label-skew":
        if labels is None:
            raise ConfigurationError("label-skew partitioning requires labels")
        if not 0.0 <= skew <= 1.0:
            raise ConfigurationError(f"skew must be in [0, 1], got {skew}")
        classes = np.unique(labels)
        remaining = {c: list(rng.permutation(np.flatnonzero(labels == c))) for c in classes}
        per_worker = n // workers
        shards_rows: list[list[int]] = [[] for _ in range(workers)]
        # Pass 1: fill each worker's skewed quota from its preferred class.
        for rank in range(workers):
            preferred = classes[rank % len(classes)]
            quota = int(per_worker * skew)
            source = remaining[preferred]
            take = min(quota, len(source))
            shards_rows[rank].extend(source[:take])
            del source[:take]
        # Pass 2: top everyone up uniformly from whatever is left.
        leftovers = [idx for rows in remaining.values() for idx in rows]
        leftovers = list(rng.permutation(np.asarray(leftovers, dtype=np.int64)))
        for rank in range(workers):
            need = per_worker - len(shards_rows[rank])
            if need > 0:
                shards_rows[rank].extend(leftovers[:need])
                del leftovers[:need]
        return [np.sort(np.asarray(rows, dtype=np.int64)) for rows in shards_rows]

    raise ConfigurationError(f"unknown partition mode {mode!r}")
