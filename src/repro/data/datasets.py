"""Dataset registry.

Each entry carries two layers of information:

* the paper's *logical* metadata (Figure 6: on-disk size, number of
  instances, number of features) used by the simulator for loading
  time, communication sizing and compute-time accounting; and
* parameters of the *physical* synthetic stand-in we actually train on
  (scaled-down instance count, sparsity, noise level), chosen so that
  the paper's loss thresholds are meaningful stopping points.

The physical data is 1/`default_scale` of the logical instance count;
batch sizes are scaled by the same factor so iteration counts per epoch
match the paper (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

MB = 1024 * 1024


@dataclass(frozen=True)
class DatasetSpec:
    """Logical + generator metadata for one benchmark dataset."""

    name: str
    size_mb: float  # Figure 6 on-disk size
    n_instances: int  # Figure 6 instance count (logical)
    n_features: int
    n_classes: int  # 2 for binary tasks; 10 for cifar10-like
    sparse: bool = False
    nnz_per_row: int = 0  # only for sparse datasets
    default_scale: int = 100  # physical = logical / default_scale
    noise: float = 1.0  # label-noise temperature for the generator
    positive_fraction: float = 0.5  # class balance for binary tasks
    dtype: str = "float64"
    # Normalise rows to unit L2 norm (deep-feature datasets like
    # YFCC100M-HNfc6 behave like direction vectors; without this, raw
    # 4096-dim Gaussian rows make first-order methods diverge at any
    # practical learning rate).
    row_normalize: bool = False
    # Feature-scale spread for dense generators: the per-feature scales
    # span [1/c^(1/4), c^(1/4)], giving the logistic Hessian a condition
    # number of roughly sqrt(c)..c. Real tabular data (Higgs) is
    # ill-conditioned, which is what makes plain SGD need several
    # epochs while ADMM converges in a round or two.
    condition: float = 1.0

    @property
    def size_bytes(self) -> int:
        return int(self.size_mb * MB)

    def physical_instances(self, scale: int | None = None) -> int:
        scale = self.default_scale if scale is None else scale
        return max(64, self.n_instances // scale)

    def partition_bytes(self, workers: int) -> int:
        """Logical bytes one of `workers` loads from S3."""
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        return self.size_bytes // workers


DATASETS: dict[str, DatasetSpec] = {
    # Monte-Carlo particle physics: dense, low-dimensional, noisy labels.
    # noise=1.1 puts the optimal validation log-loss near 0.63 with
    # ~64% accuracy, so the paper's 0.66/0.68 LR thresholds and 0.48
    # squared-hinge threshold are reachable but non-trivial.
    "higgs": DatasetSpec(
        name="higgs",
        size_mb=8 * 1024,
        n_instances=11_000_000,
        n_features=28,
        n_classes=2,
        default_scale=100,
        noise=1.1,
        condition=64.0,
    ),
    # Newswire TF-IDF: high-dimensional sparse, nearly separable.
    "rcv1": DatasetSpec(
        name="rcv1",
        size_mb=1.2 * 1024,
        n_instances=697_000,
        n_features=47_236,
        n_classes=2,
        sparse=True,
        nnz_per_row=75,
        default_scale=20,
        noise=0.25,
    ),
    # Small images, 10 classes; substrate for the MobileNet/ResNet
    # surrogates. Figure 6 lists the feature count as "1K"; physically
    # we generate 32x32x3 = 3072-dim rows.
    "cifar10": DatasetSpec(
        name="cifar10",
        size_mb=220,
        n_instances=60_000,
        n_features=3_072,
        n_classes=10,
        default_scale=20,
        noise=1.8,
        dtype="float32",
    ),
    # YFCC100M-HNfc6 deep features; binary "animal" task, imbalanced
    # (~300 K positives out of the 4 M sample the paper uses).
    "yfcc100m": DatasetSpec(
        name="yfcc100m",
        size_mb=110 * 1024,
        n_instances=4_000_000,
        n_features=4_096,
        n_classes=2,
        default_scale=500,
        noise=1.2,
        positive_fraction=0.075,
        dtype="float32",
        condition=16.0,
        row_normalize=True,
    ),
    # Click-through-rate prediction: extremely sparse and imbalanced.
    "criteo": DatasetSpec(
        name="criteo",
        size_mb=30 * 1024,
        n_instances=52_000_000,
        n_features=1_000_000,
        n_classes=2,
        sparse=True,
        nnz_per_row=39,
        default_scale=2000,
        noise=0.8,
        positive_fraction=0.25,
    ),
}


def get_spec(name: str) -> DatasetSpec:
    try:
        return DATASETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown dataset {name!r}; known: {sorted(DATASETS)}"
        ) from None
