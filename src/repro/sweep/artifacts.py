"""Per-point sweep artifacts: one JSON file per completed run.

Artifact schema (version 3)::

    {
      "schema": 3,
      "experiment": "fig11",
      "label": "faas,W=512",
      "tags": {"series": "lr/higgs", "system": "faas"},
      "config_hash": "<16 hex chars>",
      "config": { ...TrainingConfig init kwargs, defaults included... },
      "result": {
        "converged": bool,
        "final_loss": float,
        "duration_s": float,          # simulated wall-clock
        "cost_total": float,
        "cost_breakdown": {component: dollars},
        "epochs": float,
        "comm_rounds": int,
        "checkpoints": int,
        "final_accuracy": float | null,
        "time_breakdown": {category: seconds},   # Figure-10 style
        "history": [[time_s, epoch, loss, worker], ...],
        "events": {                              # reliability story
          "checkpoints": int, "lifetime_reinvocations": int,
          "crashes": int, "reincarnations": int, "restarts": int,
          "recovery_checkpoints": int, "storage_errors": int,
          "storage_retries": int, "storage_backoff_s": float
        }
      },
      "meta": {
        "wall_seconds": float,        # host wall-clock; NOT deterministic
        "engine_version": "1.2.0",
        "substrate": "exact" | "record" | "replay",  # which backend ran it
        "compute_seconds": float      # host seconds of statistical numpy work
      }
    }

Everything outside ``meta`` is a pure function of the config, so two
artifacts for the same point — serial or across the pool boundary,
exact or replayed from a recorded trace — must be byte-identical after
dropping ``meta`` (the determinism tests assert exactly that).

Schema history: version 1 (PR 2) lacked ``meta.substrate`` and
``meta.compute_seconds``; version 2 (PR 3) lacked ``result.events``
(the fault-plane event summary — counts of *simulated* events, hence
deterministic and part of the result, not the meta). Both still load
(resume reuses them with a warning); everything written now is
version 3.

Writes are atomic (tmp file + ``os.replace``) so an interrupted sweep
never leaves a half-written ``<hash>.json``; a partial/corrupt file is
reported by :func:`scan_artifacts` and simply re-run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro import __version__ as repro_version
from repro.core.config import TrainingConfig
from repro.core.results import LossPoint, RunResult
from repro.simulation.tracing import TimeBreakdown
from repro.sweep.grid import SweepPoint, config_fingerprint, fingerprint_hash

ARTIFACT_SCHEMA_VERSION = 3
#: Older schemas `load_artifact` still accepts (resume warns on reuse).
COMPATIBLE_SCHEMA_VERSIONS = (1, 2, ARTIFACT_SCHEMA_VERSION)


class ArtifactError(ValueError):
    """A sweep artifact is corrupt, partial, or from another schema."""


def artifact_from_result(
    point: SweepPoint,
    result: RunResult,
    wall_seconds: float = 0.0,
    substrate: str = "exact",
    compute_seconds: float = 0.0,
) -> dict:
    """Serialize one completed run as a schema-2 artifact dict."""
    fingerprint = config_fingerprint(result.config)
    return {
        "schema": ARTIFACT_SCHEMA_VERSION,
        "experiment": point.experiment,
        "label": point.label,
        "tags": dict(point.tags),
        "config_hash": fingerprint_hash(fingerprint),
        "config": fingerprint,
        "result": {
            "converged": result.converged,
            "final_loss": result.final_loss,
            "duration_s": result.duration_s,
            "cost_total": result.cost_total,
            "cost_breakdown": dict(result.cost_breakdown),
            "epochs": result.epochs,
            "comm_rounds": result.comm_rounds,
            "checkpoints": result.checkpoints,
            "final_accuracy": result.final_accuracy,
            "time_breakdown": result.breakdown.as_dict(),
            "history": [
                [p.time_s, p.epoch, p.loss, p.worker] for p in result.history
            ],
            "events": dict(result.events),
        },
        "meta": {
            "wall_seconds": round(wall_seconds, 3),
            # Which simulator produced this result. The config hash
            # cannot see code changes, so resume surfaces a warning
            # when it reuses artifacts from another engine version.
            "engine_version": repro_version,
            # Which statistical backend ran the point, and how many
            # host seconds of real numpy work it cost — the sweep's
            # wall-clock ledger (replayed points record ~0 here).
            "substrate": substrate,
            "compute_seconds": round(compute_seconds, 3),
        },
    }


def result_from_artifact(artifact: dict) -> RunResult:
    """Rebuild a :class:`RunResult` view from an artifact.

    Per-worker traces are not persisted, so ``per_worker`` is empty;
    everything the experiment aggregators/report renderers consume is
    reconstructed exactly.
    """
    res = artifact["result"]
    breakdown = TimeBreakdown()
    for category, seconds in res["time_breakdown"].items():
        breakdown.add(category, seconds)
    return RunResult(
        config=TrainingConfig(**artifact["config"]),
        converged=res["converged"],
        final_loss=res["final_loss"],
        duration_s=res["duration_s"],
        cost_total=res["cost_total"],
        cost_breakdown=dict(res["cost_breakdown"]),
        epochs=res["epochs"],
        comm_rounds=res["comm_rounds"],
        history=[
            LossPoint(time_s, epoch, loss, worker)
            for time_s, epoch, loss, worker in res["history"]
        ],
        breakdown=breakdown,
        checkpoints=res["checkpoints"],
        final_accuracy=res["final_accuracy"],
        # v1/v2 artifacts predate the fault plane: no events recorded.
        meta={"events": dict(res.get("events", {}))},
    )


def artifact_path(out_dir: str | os.PathLike, config_hash: str) -> Path:
    return Path(out_dir) / f"{config_hash}.json"


def write_artifact(out_dir: str | os.PathLike, artifact: dict) -> Path:
    """Atomically persist an artifact as ``<config_hash>.json``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = artifact_path(out, artifact["config_hash"])
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(artifact, sort_keys=True, indent=1) + "\n")
    os.replace(tmp, path)
    return path


def validate_artifact(artifact: dict, expected_hash: str | None = None) -> dict:
    """Check schema version and hash integrity; raise ArtifactError."""
    if not isinstance(artifact, dict):
        raise ArtifactError(f"artifact is {type(artifact).__name__}, not an object")
    if artifact.get("schema") not in COMPATIBLE_SCHEMA_VERSIONS:
        raise ArtifactError(
            f"schema {artifact.get('schema')!r} not in {COMPATIBLE_SCHEMA_VERSIONS}"
        )
    shape = {
        "experiment": str, "label": str, "config_hash": str,
        "tags": dict, "config": dict, "result": dict, "meta": dict,
    }
    missing = shape.keys() - artifact.keys()
    if missing:
        raise ArtifactError(f"missing keys: {sorted(missing)}")
    for key, expected_type in shape.items():
        if not isinstance(artifact[key], expected_type):
            raise ArtifactError(
                f"{key!r} is {type(artifact[key]).__name__}, "
                f"not {expected_type.__name__}"
            )
    recomputed = fingerprint_hash(artifact["config"])
    if recomputed != artifact["config_hash"]:
        raise ArtifactError(
            f"config hash mismatch: recorded {artifact['config_hash']}, "
            f"config hashes to {recomputed} (stale or tampered artifact)"
        )
    if expected_hash is not None and artifact["config_hash"] != expected_hash:
        raise ArtifactError(
            f"artifact {artifact['config_hash']} filed under {expected_hash}"
        )
    return artifact


def load_artifact(path: str | os.PathLike, expected_hash: str | None = None) -> dict:
    """Load + validate one artifact file; ArtifactError when unusable."""
    path = Path(path)
    try:
        artifact = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(f"{path.name}: unreadable/partial JSON ({exc})") from exc
    return validate_artifact(artifact, expected_hash=expected_hash)


def scan_artifacts(out_dir: str | os.PathLike) -> tuple[dict[str, dict], list[Path]]:
    """Index a sweep directory: ``(hash -> artifact, corrupt paths)``.

    Only ``<hash>.json`` files are considered (tmp files and foreign
    files are ignored). Corrupt or schema-mismatched files land in the
    second element so the orchestrator can re-run — and overwrite —
    those points.
    """
    out = Path(out_dir)
    completed: dict[str, dict] = {}
    corrupt: list[Path] = []
    if not out.is_dir():
        return completed, corrupt
    for path in sorted(out.glob("*.json")):
        expected = path.stem
        try:
            completed[expected] = load_artifact(path, expected_hash=expected)
        except ArtifactError:
            corrupt.append(path)
    return completed, corrupt
