"""Named sweep experiments the CLI can run.

Each entry binds a grid declaration (``points``), an artifact
aggregator (``aggregate``) and a report renderer (``format_report``)
from one experiment module. ``repro.cli sweep --experiment NAME`` is
then: expand the grid, fan it over the pool, persist one JSON artifact
per point, aggregate the artifacts, render the report.

``smoke`` is a seconds-scale grid (tiny data_scale, 2-epoch caps) used
by the test suite and as a cheap end-to-end probe of the orchestrator
in CI-like settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.experiments import (
    fig8_synchronization,
    fig9_end_to_end,
    fig11_scaling,
    fig12_configurations,
    figR_reliability,
)
from repro.experiments.report import format_table
from repro.sweep.grid import SweepPoint, expand_grid


@dataclass(frozen=True)
class SweepExperiment:
    name: str
    description: str
    points: Callable[..., list[SweepPoint]]  # (max_epochs=None, seed=...) -> grid
    aggregate: Callable[[list[dict]], object]
    format_report: Callable[[object], str]


def _smoke_points(
    max_epochs: float | None = None, seed: int = 20210620
) -> list[SweepPoint]:
    """A 6-point grid that completes in seconds (heavily down-scaled).

    Four fault-free systems points plus two fault-plane points (one
    crash-injected, one with transient storage errors). All six share
    one statistical fingerprint, so a ``--substrate auto`` run records
    exactly one trace — the cheapest end-to-end probe of both the
    two-phase orchestrator and the fault plane's determinism contract.
    """
    base = dict(
        model="lr", dataset="higgs", algorithm="admm", system="lambdaml",
        data_scale=5000, loss_threshold=0.66,
        max_epochs=max_epochs or 2.0, seed=seed,
    )
    points = [
        SweepPoint(
            "smoke",
            f"{kw['channel']},{kw['pattern']},W={kw['workers']}",
            config_kwargs=kw,
            tags={"series": "lr/higgs@1/5000", "system": "faas"},
        )
        for kw in expand_grid(
            base,
            {
                "channel": ("s3", "memcached"),
                "pattern": ("allreduce", "scatterreduce"),
                "workers": (4,),
            },
        )
    ]
    points.append(
        SweepPoint(
            "smoke", "s3,allreduce,W=4,mttf=120s",
            config_kwargs=dict(base, channel="s3", workers=4, mttf_s=120.0),
            tags={"series": "lr/higgs@1/5000", "system": "faas",
                  "faults": "crash"},
        )
    )
    points.append(
        SweepPoint(
            "smoke", "s3,allreduce,W=4,storage_err=2%",
            config_kwargs=dict(
                base, channel="s3", workers=4, storage_error_rate=0.02
            ),
            tags={"series": "lr/higgs@1/5000", "system": "faas",
                  "faults": "storage"},
        )
    )
    return points


def _smoke_format_report(artifacts: list[dict]) -> str:
    rows = [
        [
            a["label"],
            a["result"]["duration_s"],
            a["result"]["cost_total"],
            a["result"]["final_loss"],
            a["result"]["converged"],
        ]
        for a in artifacts
    ]
    return format_table(
        "Smoke sweep — LR/Higgs at 1/5000 scale",
        ["point", "runtime(s)", "cost($)", "loss", "converged"],
        rows,
    )


EXPERIMENTS: dict[str, SweepExperiment] = {
    "fig8": SweepExperiment(
        "fig8",
        "BSP vs S-ASP on LR/Higgs, LR/RCV1, MobileNet/Cifar10",
        fig8_synchronization.sweep_points,
        fig8_synchronization.aggregate,
        fig8_synchronization.format_report,
    ),
    "fig9": SweepExperiment(
        "fig9",
        "end-to-end systems comparison on the Table-4 workloads",
        fig9_end_to_end.sweep_points,
        fig9_end_to_end.aggregate,
        fig9_end_to_end.format_report,
    ),
    "fig11": SweepExperiment(
        "fig11",
        "runtime/cost vs worker count; FaaS grid crosses the paper's "
        "~300-worker ceiling up to 512",
        fig11_scaling.sweep_points,
        fig11_scaling.aggregate,
        fig11_scaling.format_report,
    ),
    "fig12": SweepExperiment(
        "fig12",
        "runtime/cost scatter across instances and learning rates",
        fig12_configurations.sweep_points,
        fig12_configurations.aggregate,
        fig12_configurations.format_report,
    ),
    "figR": SweepExperiment(
        "figR",
        "cost of reliability: runtime/cost overhead vs crash and "
        "storage-error rates, FaaS-with-checkpoints vs IaaS-restart",
        figR_reliability.sweep_points,
        figR_reliability.aggregate,
        figR_reliability.format_report,
    ),
    "smoke": SweepExperiment(
        "smoke",
        "seconds-scale orchestrator + fault-plane probe (down-scaled LR/Higgs)",
        _smoke_points,
        lambda artifacts: artifacts,
        _smoke_format_report,
    ),
}


def get_experiment(name: str) -> SweepExperiment:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown sweep experiment {name!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
