"""Back-compat view of the study registry (see :mod:`repro.sweep.study`).

PR 2..4 kept a hand-maintained 6-entry ``EXPERIMENTS`` dict here; the
Study redesign replaced it with ``@study`` declarations inside each
experiment module plus auto-discovery. This module keeps the old
import surface working:

* ``get_experiment(name)`` — now returns the registered
  :class:`~repro.sweep.study.Study` (same ``name`` / ``description`` /
  ``points`` / ``aggregate`` / ``format_report`` attributes the old
  ``SweepExperiment`` dataclass exposed).
* ``EXPERIMENTS`` — a lazy read-only mapping over the registry, so
  ``sorted(EXPERIMENTS)`` and membership checks behave as before
  without importing every experiment module at module-import time.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.sweep.study import Study, all_studies, get_study

__all__ = ["EXPERIMENTS", "SweepExperiment", "get_experiment"]

# The registered Study class *is* the old experiment record.
SweepExperiment = Study


def get_experiment(name: str) -> Study:
    return get_study(name)


class _RegistryView(Mapping):
    """Dict-like, discovery-on-first-touch view of the study registry."""

    def __getitem__(self, name: str) -> Study:
        return get_study(name)

    def __iter__(self):
        return iter(all_studies())

    def __len__(self) -> int:
        return len(all_studies())


EXPERIMENTS: Mapping[str, Study] = _RegistryView()
