"""Declarative sweep grids and content-addressed configs.

A sweep point is a fully specified training run: the experiment it
belongs to, a human label, the ``TrainingConfig`` constructor kwargs
(primitives only, so points cross the ``multiprocessing`` pickle
boundary unchanged) and free-form string tags the aggregation step
groups by (series, platform, instance...).

Configs are *content addressed*: :func:`config_hash` fingerprints every
init field of the constructed ``TrainingConfig`` — including defaults —
so two grids that spell the same run differently collide on the same
artifact, and a changed default invalidates stale artifacts instead of
silently reusing them.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field, fields

from repro.core.config import TrainingConfig
from repro.errors import ConfigurationError

HASH_CHARS = 16  # 64 bits of sha256: ample for any practical grid


def config_fingerprint(config: TrainingConfig) -> dict:
    """All init fields of a config (defaults included), JSON-ready."""
    return {
        f.name: getattr(config, f.name)
        for f in fields(TrainingConfig)
        if f.init
    }


def _canonical_value(value):
    """Collapse numerically equal spellings before hashing.

    ``TrainingConfig(max_epochs=40)`` and ``max_epochs=40.0`` compare
    equal, so they must hash equal too — but ``json.dumps`` renders
    ``40`` vs ``40.0``. Integral floats are therefore hashed as ints
    (bools are left alone; they are configuration flags, not numbers).
    """
    if isinstance(value, bool) or not isinstance(value, float):
        return value
    return int(value) if value.is_integer() else value


def fingerprint_hash(fingerprint: dict) -> str:
    """Stable hex digest of a config fingerprint dict."""
    canonical = json.dumps(
        {name: _canonical_value(value) for name, value in fingerprint.items()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:HASH_CHARS]


def config_hash(config: TrainingConfig) -> str:
    return fingerprint_hash(config_fingerprint(config))


@dataclass(frozen=True)
class SweepPoint:
    """One run of a sweep grid (picklable, primitives only)."""

    experiment: str
    label: str
    config_kwargs: dict = field(default_factory=dict)
    tags: dict = field(default_factory=dict)

    def config(self) -> TrainingConfig:
        return TrainingConfig(**self.config_kwargs)

    def hash(self) -> str:
        return config_hash(self.config())


def expand_grid(base: dict, axes: dict[str, tuple] | None = None):
    """Yield config-kwargs dicts for the cross product of ``axes``.

    ``base`` holds the fixed kwargs; ``axes`` maps kwarg name to the
    values it sweeps over, expanded in declaration order (last axis
    fastest), mirroring the nested loops the experiment modules used to
    hand-roll.
    """
    axes = axes or {}
    for name in axes:
        if name in base:
            raise ConfigurationError(f"grid axis {name!r} also set in base kwargs")
    names = list(axes)
    for values in itertools.product(*(axes[n] for n in names)):
        yield {**base, **dict(zip(names, values))}


def dedupe_with_hashes(
    points: list[SweepPoint],
) -> tuple[list[SweepPoint], list[str]]:
    """Drop config-hash collisions (first wins); return points + hashes.

    The orchestrator runs on this so each point's ``TrainingConfig`` is
    built and validated exactly once for dedupe *and* resume addressing.
    """
    seen: set[str] = set()
    unique: list[SweepPoint] = []
    hashes: list[str] = []
    for point in points:
        h = point.hash()
        if h not in seen:
            seen.add(h)
            unique.append(point)
            hashes.append(h)
    return unique, hashes


def dedupe_points(points: list[SweepPoint]) -> list[SweepPoint]:
    """Drop points whose config hashes collide (first occurrence wins)."""
    return dedupe_with_hashes(points)[0]
