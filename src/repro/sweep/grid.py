"""Declarative sweep grids and content-addressed configs.

A sweep point is a fully specified training run: the experiment it
belongs to, a human label, the ``TrainingConfig`` constructor kwargs
(primitives only, so points cross the ``multiprocessing`` pickle
boundary unchanged) and free-form string tags the aggregation step
groups by (series, platform, instance...).

Configs are *content addressed*: :func:`config_hash` fingerprints every
init field of the constructed ``TrainingConfig`` — including defaults —
so two grids that spell the same run differently collide on the same
artifact, and a changed default invalidates stale artifacts instead of
silently reusing them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.config import TrainingConfig, config_fingerprint
from repro.errors import ConfigurationError
from repro.utils.hashing import HASH_CHARS, fingerprint_hash

__all__ = [
    "HASH_CHARS",
    "SweepPoint",
    "config_fingerprint",
    "config_hash",
    "dedupe_points",
    "dedupe_with_hashes",
    "expand_grid",
    "fingerprint_hash",
]


def config_hash(config: TrainingConfig) -> str:
    return fingerprint_hash(config_fingerprint(config))


@dataclass(frozen=True)
class SweepPoint:
    """One run of a sweep grid (picklable, primitives only)."""

    experiment: str
    label: str
    config_kwargs: dict = field(default_factory=dict)
    tags: dict = field(default_factory=dict)

    def config(self) -> TrainingConfig:
        return TrainingConfig(**self.config_kwargs)

    def hash(self) -> str:
        return config_hash(self.config())


def expand_grid(base: dict, axes: dict[str, tuple] | None = None):
    """Yield config-kwargs dicts for the cross product of ``axes``.

    ``base`` holds the fixed kwargs; ``axes`` maps kwarg name to the
    values it sweeps over, expanded in declaration order (last axis
    fastest), mirroring the nested loops the experiment modules used to
    hand-roll.
    """
    axes = axes or {}
    for name in axes:
        if name in base:
            raise ConfigurationError(f"grid axis {name!r} also set in base kwargs")
    names = list(axes)
    for values in itertools.product(*(axes[n] for n in names)):
        yield {**base, **dict(zip(names, values))}


def dedupe_with_hashes(
    points: list[SweepPoint],
) -> tuple[list[SweepPoint], list[str], list[TrainingConfig]]:
    """Drop config-hash collisions (first wins); points + hashes + configs.

    The orchestrator runs on this so each point's ``TrainingConfig`` is
    built and validated exactly once for dedupe, resume addressing *and*
    statistical-fingerprint grouping.
    """
    seen: set[str] = set()
    unique: list[SweepPoint] = []
    hashes: list[str] = []
    configs: list[TrainingConfig] = []
    for point in points:
        config = point.config()
        h = config_hash(config)
        if h not in seen:
            seen.add(h)
            unique.append(point)
            hashes.append(h)
            configs.append(config)
    return unique, hashes, configs


def dedupe_points(points: list[SweepPoint]) -> list[SweepPoint]:
    """Drop points whose config hashes collide (first occurrence wins)."""
    return dedupe_with_hashes(points)[0]
