"""The Study protocol: every experiment behind one declarative seam.

A *study* is the unit the CLI, the ``repro.api`` facade and the
benchmark harness all speak: a named experiment that can

* declare its grid — ``points(ctx) -> list[SweepPoint]`` (possibly
  empty, for analytical/micro-probe studies whose result is computed
  rather than trained);
* reduce per-point sweep artifacts back into the experiment's result
  object — ``aggregate(artifacts)``;
* render that result the way the paper reports it —
  ``format_report(result)``.

Experiment modules register by decorating a small declaration class::

    from repro.sweep.study import study

    @study("fig7")
    class Fig7Study:
        \"\"\"Algorithms on LR/SVM/MobileNet (GA-SGD / MA-SGD / ADMM).\"\"\"

        @staticmethod
        def points(ctx):
            return sweep_points(max_epochs=ctx.max_epochs, seed=ctx.seed)

        aggregate = staticmethod(aggregate)
        format_report = staticmethod(format_report)

and the registry auto-discovers them by importing every module under
:mod:`repro.experiments` on first lookup — adding a study never touches
the registry again, and ``repro.cli sweep --experiment <name>`` gains
``--jobs/--resume/--substrate auto`` for free.

Grid expansion is memoized per :class:`StudyContext`: a ``--dry-run``
plan followed by the real run (or ``run_panel()``-style helpers called
in a loop) expands each grid exactly once per process.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from dataclasses import dataclass

from repro.config import DEFAULT_SEED
from repro.errors import ConfigurationError
from repro.sweep.grid import SweepPoint

__all__ = [
    "Study",
    "StudyContext",
    "all_studies",
    "discover",
    "get_study",
    "register",
    "study",
    "study_names",
]


@dataclass(frozen=True)
class StudyContext:
    """What a grid declaration may depend on.

    ``max_epochs`` overrides every point's epoch cap (scaled-down
    sweeps); ``seed`` feeds every RNG draw; ``mega`` opts into the
    mega-scale grid tails (e.g. fig11's W=1024/2048/4096 FaaS points)
    that stay out of default sweeps so CI smoke runs keep their wall
    budget. Frozen and hashable so it doubles as the memoization key
    for grid expansion.
    """

    max_epochs: float | None = None
    seed: int = DEFAULT_SEED
    mega: bool = False


class Study:
    """One registered experiment: grid + aggregator + report renderer.

    ``kind`` distinguishes how the result is produced:

    * ``"grid"`` — the study's substance is a grid of
      :class:`~repro.core.config.TrainingConfig` points run by the
      sweep orchestrator; ``aggregate`` is a cheap pure reduction of
      the persisted artifacts.
    * ``"direct"`` — the grid is empty and ``aggregate`` computes the
      result itself (analytical models, engine micro-probes). The
      orchestrator flags still work — there is just nothing to fan out.
    """

    def __init__(
        self,
        name: str,
        description: str,
        points,
        aggregate,
        format_report,
        kind: str = "grid",
    ) -> None:
        if kind not in ("grid", "direct"):
            raise ConfigurationError(f"unknown study kind {kind!r}")
        self.name = name
        self.description = description
        self.kind = kind
        self._points = points
        self._aggregate = aggregate
        self._format_report = format_report
        self._expansions: dict[StudyContext, list[SweepPoint]] = {}

    # -- protocol ---------------------------------------------------------
    def points(
        self,
        max_epochs: float | None = None,
        seed: int = DEFAULT_SEED,
        ctx: StudyContext | None = None,
        mega: bool = False,
    ) -> list[SweepPoint]:
        """The study's grid, memoized per context.

        Returns a fresh list each call (callers may filter/extend it)
        over shared, frozen :class:`SweepPoint` instances — expansion
        itself runs once per :class:`StudyContext` per process, so a
        ``--dry-run`` plan plus the real run never double-expands a
        large grid.
        """
        if ctx is None:
            ctx = StudyContext(max_epochs=max_epochs, seed=seed, mega=mega)
        if ctx not in self._expansions:
            self._expansions[ctx] = list(self._points(ctx))
        return list(self._expansions[ctx])

    def aggregate(self, artifacts: list[dict]):
        """Reduce per-point artifacts to the experiment's result object."""
        return self._aggregate(artifacts)

    def format_report(self, result) -> str:
        """Render an aggregated result the way the paper reports it."""
        return self._format_report(result)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Study({self.name!r}, kind={self.kind!r})"


_REGISTRY: dict[str, Study] = {}
_DISCOVERED = False


def _no_points(_ctx: StudyContext) -> list[SweepPoint]:
    return []


def register(entry: Study) -> Study:
    """Add one study to the registry (duplicate names are an error)."""
    if entry.name in _REGISTRY:
        raise ConfigurationError(
            f"study {entry.name!r} is already registered "
            f"(by {_REGISTRY[entry.name]!r})"
        )
    _REGISTRY[entry.name] = entry
    return entry


def study(name: str, *, kind: str = "grid", description: str | None = None):
    """Class decorator registering a study declaration.

    The class provides ``points(ctx)`` (optional for ``kind="direct"``
    studies — defaults to an empty grid), ``aggregate(artifacts)`` and
    ``format_report(result)`` as static/plain callables; the
    description defaults to the first line of the class docstring.
    """

    def decorate(cls):
        doc = description or (inspect.getdoc(cls) or "").strip()
        if not doc:
            raise ConfigurationError(
                f"study {name!r} needs a description (docstring or keyword)"
            )
        points = getattr(cls, "points", None)
        if points is None:
            if kind != "direct":
                raise ConfigurationError(
                    f"grid study {name!r} must declare points(ctx)"
                )
            points = _no_points
        register(
            Study(
                name,
                doc.splitlines()[0],
                points=points,
                aggregate=cls.aggregate,
                format_report=cls.format_report,
                kind=kind,
            )
        )
        return cls

    return decorate


def discover() -> None:
    """Import every :mod:`repro.experiments` module once.

    The ``@study`` decorators run at import time, so after this every
    experiment the package ships is registered. Idempotent and cheap on
    repeat calls.
    """
    global _DISCOVERED
    if _DISCOVERED:
        return
    package = importlib.import_module("repro.experiments")
    for info in pkgutil.iter_modules(package.__path__):
        importlib.import_module(f"repro.experiments.{info.name}")
    # Only flag success once every module imported: if one raised, the
    # next call retries (and re-raises the real error) instead of
    # serving a silently partial registry. Modules that did import are
    # cached by sys.modules, so their @study registrations don't rerun.
    _DISCOVERED = True


def get_study(name: str) -> Study:
    discover()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown study {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_studies() -> dict[str, Study]:
    """Name -> study, sorted by name (a copy; the registry is private)."""
    discover()
    return dict(sorted(_REGISTRY.items()))


def study_names() -> list[str]:
    discover()
    return sorted(_REGISTRY)
