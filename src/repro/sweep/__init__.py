"""Process-parallel sweep orchestration with resumable JSON artifacts.

A sweep is a grid of :class:`~repro.core.config.TrainingConfig` points
fanned out over a ``multiprocessing`` pool of deterministic single-run
workers. Every completed point is persisted as one JSON artifact named
by the config's content hash, so an interrupted sweep resumes by
skipping the hashes already on disk (``repro.cli sweep --resume``).

Layout:

* :mod:`repro.sweep.grid` — declarative grid specs, ``SweepPoint``,
  config fingerprinting/hashing.
* :mod:`repro.sweep.artifacts` — the per-point JSON schema, atomic
  writes, validation, and corrupt-artifact detection.
* :mod:`repro.sweep.orchestrator` — the pool fan-out / resume loop,
  including the two-phase record/replay sweep (``substrate="auto"``):
  one exact training per unique statistical fingerprint, replays for
  the rest (see :mod:`repro.substrate`).
* :mod:`repro.sweep.study` — the Study protocol (``points(ctx)`` /
  ``aggregate`` / ``format_report``), the ``@study`` registration
  decorator and auto-discovery over :mod:`repro.experiments`; every
  figure/table/extension is a registered study the CLI and
  :mod:`repro.api` run by name (:mod:`repro.sweep.registry` is the
  back-compat view).
"""

from repro.sweep.artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactError,
    artifact_from_result,
    load_artifact,
    result_from_artifact,
    scan_artifacts,
    write_artifact,
)
from repro.sweep.grid import SweepPoint, config_fingerprint, config_hash, expand_grid
from repro.sweep.orchestrator import (
    SWEEP_SUBSTRATES,
    SweepRun,
    plan_sweep,
    run_point,
    run_sweep,
)
# NOTE: the ``@study`` decorator itself is deliberately NOT re-exported
# here — ``repro.sweep.study`` must keep naming the submodule. Import
# the decorator from ``repro.api`` or ``repro.sweep.study``.
from repro.sweep.study import (
    Study,
    StudyContext,
    all_studies,
    get_study,
    study_names,
)

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactError",
    "SWEEP_SUBSTRATES",
    "Study",
    "StudyContext",
    "SweepPoint",
    "SweepRun",
    "all_studies",
    "get_study",
    "plan_sweep",
    "study_names",
    "artifact_from_result",
    "config_fingerprint",
    "config_hash",
    "expand_grid",
    "load_artifact",
    "result_from_artifact",
    "run_point",
    "run_sweep",
    "scan_artifacts",
    "write_artifact",
]
