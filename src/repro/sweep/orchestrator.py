"""The sweep loop: fan points over a process pool, persist, resume.

Design constraints:

* **Workers are pure.** :func:`run_task` takes one picklable
  :class:`_Task`, builds the ``TrainingConfig`` and runs ``train()``
  inside the child process, and returns a primitives-only artifact
  dict (plus, for recordings, a primitives-only trace dict). No
  simulator state crosses the process boundary, so serial and
  ``--jobs N`` sweeps produce byte-identical artifacts.
* **The parent owns the disk.** Artifacts and traces are written by
  the orchestrator as results stream back (atomic tmp+rename), never
  by pool workers, so a sweep directory sees one writer and an
  interrupt (Ctrl-C, OOM-killed child, dead CI box) leaves only whole
  files.
* **Worker death is a result, not a hang.** Each parallel task runs in
  its own child process with a dedicated result pipe; a worker that is
  OOM-killed or segfaults mid-task closes its pipe without a message,
  and the orchestrator marks that point failed-with-reason (recorded in
  :attr:`SweepRun.failed`) and keeps sweeping. Exceptions *raised* by a
  task still propagate, exactly like the serial path.
* **Resume is hash-addressed at both phases.** ``resume=True`` scans
  the sweep directory once and skips every point whose config hash
  already has a valid artifact; corrupt or partial files are treated
  as not-run and overwritten. Replay sweeps additionally skip the
  phase-0 recording of every statistical fingerprint that already has
  a valid ``traces/<stat_hash>.json``.

Two-phase replay sweeps (``substrate="auto"`` / ``"replay"``):

Most sweep axes (channel, pattern, instance, poll interval, prices,
Lambda sizing) move simulated clocks and dollars but cannot change a
BSP loss trajectory — the statistical and systems axes of the design
space are separable. Phase 0 therefore groups the grid by
``TrainingConfig.stat_fingerprint()`` and runs *one* exact (recording)
training per unique fingerprint; phase 1 replays the recorded trace
for every other point in the group, yielding bit-identical artifacts
at ~zero numpy cost. Timing-coupled configs (ASP, hybrid PS) have no
systems-independent trajectory: ``"auto"`` silently runs them exact,
``"replay"`` refuses them.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import __version__ as repro_version
from repro.core.driver import train
from repro.errors import ConfigurationError
from repro.substrate import (
    ExactSubstrate,
    RecordingSubstrate,
    ReplaySubstrate,
    scan_traces,
    write_trace,
)
from repro.sweep.artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    artifact_from_result,
    scan_artifacts,
    write_artifact,
)
from repro.sweep.grid import SweepPoint, dedupe_with_hashes

SWEEP_SUBSTRATES = ("exact", "replay", "auto")


@dataclass
class SweepRun:
    """Outcome of one orchestrator invocation."""

    artifacts: list[dict] = field(default_factory=list)  # in point order
    ran: int = 0
    skipped: int = 0
    corrupt: list[str] = field(default_factory=list)
    # Points whose worker process died mid-task (OOM kill, segfault...):
    # dicts with index/label/config_hash/reason. Only ever non-empty for
    # jobs > 1 — an inline run dying takes the orchestrator with it.
    failed: list[dict] = field(default_factory=list)
    out_dir: str | None = None
    # Replay-sweep bookkeeping (all zero for substrate="exact").
    substrate: str = "exact"
    stat_groups: int = 0  # unique stat fingerprints among pending points
    recorded: int = 0  # phase-0 exact trainings that captured a trace
    replayed: int = 0  # phase-1 points served from a trace
    exact_runs: int = 0  # plain exact runs (incl. timing-coupled fallbacks)
    traces_dir: str | None = None


@dataclass(frozen=True)
class _Task:
    """One pool job: a sweep point plus the substrate to run it on."""

    index: int  # position in the deduped grid (progress display)
    point: SweepPoint
    mode: str = "exact"  # exact | record | replay
    trace: dict | None = None  # required when mode == "replay"


def run_task(task: _Task) -> tuple[int, dict, dict | None]:
    """Execute one sweep task end to end (pool worker entry point)."""
    t0 = time.perf_counter()
    if task.mode == "record":
        substrate = RecordingSubstrate()
    elif task.mode == "replay":
        substrate = ReplaySubstrate(task.trace)
    else:
        substrate = ExactSubstrate()
    result = train(task.point.config(), substrate=substrate)
    artifact = artifact_from_result(
        task.point,
        result,
        wall_seconds=time.perf_counter() - t0,
        substrate=task.mode,
        compute_seconds=substrate.compute_seconds,
    )
    return task.index, artifact, substrate.trace if task.mode == "record" else None


def run_point(point: SweepPoint) -> dict:
    """Execute one sweep point exactly (kept for library/test callers)."""
    return run_task(_Task(0, point))[1]


def _pool_child(fn, task, conn) -> None:
    """Child-process entry point: run one task, ship result or error.

    The pipe is the worker's whole contract with the parent: an ``ok``
    message carries the result, an ``err`` message carries a raised
    exception, and a pipe that closes with *no* message means the
    process died (OOM killer, segfault) — which the parent turns into a
    failed-with-reason task instead of a hung or aborted run.
    """
    try:
        result = fn(task)
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        try:
            conn.send(("err", exc))
        except Exception:
            # Unpicklable exception: degrade to a type-preserving-ish
            # RuntimeError so the parent still aborts loudly.
            conn.send(("err", RuntimeError(f"{type(exc).__name__}: {exc}")))
        finally:
            conn.close()
        return
    conn.send(("ok", result))
    conn.close()


def _run_resilient_pool(tasks, width: int, on_result, on_dead, fn=None) -> None:
    """Fan tasks over one-process-per-task workers; survive worker death.

    ``multiprocessing.Pool.imap_unordered`` hangs forever when a worker
    is SIGKILLed (the pool keeps waiting for a result that will never
    arrive), so parallel sweeps use dedicated child processes with one
    result pipe each: a pipe reaching EOF without a message *is* the
    death notice, reported as ``on_dead(task, reason)``. Children are
    non-daemonic, so a task may itself host a nested pool (a fuzz
    campaign worker running a pooled sweep does). An ``err`` message
    re-raises the child's exception here, after terminating the
    remaining workers — the same abort the serial path produces.

    ``fn`` must be a module-level callable (pickled by reference for
    the spawn start method); the sweep uses :func:`run_task` (the
    default, resolved at call time so tests can monkeypatch it), the
    fuzz campaign its scenario checker.
    """
    from multiprocessing.connection import wait as connection_wait

    if fn is None:
        fn = run_task
    ctx = _pool_context()
    queue = list(tasks)
    queue.reverse()  # pop() serves tasks in the original order
    live: dict = {}  # receiving pipe end -> (task, process)

    def launch() -> None:
        task = queue.pop()
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_pool_child, args=(fn, task, send_conn))
        proc.start()
        send_conn.close()  # the child holds the only sending end now
        live[recv_conn] = (task, proc)

    while queue and len(live) < width:
        launch()
    error: BaseException | None = None
    while live:
        for conn in connection_wait(list(live)):
            task, proc = live.pop(conn)
            try:
                message = conn.recv()
            except EOFError:
                message = None
            finally:
                conn.close()
            proc.join()
            if message is None:
                on_dead(task, f"worker process died mid-task (exit code {proc.exitcode})")
            elif message[0] == "ok":
                on_result(message[1])
            else:
                error = message[1]
            if error is None and queue:
                launch()
        if error is not None:
            break
    if error is not None:
        for conn, (task, proc) in live.items():
            proc.terminate()
            proc.join()
            conn.close()
        raise error


def _pool_context():
    """Fork when available (cheap, inherits pinned BLAS env), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _resolve_traces_dir(
    out_dir: str | os.PathLike | None, traces_dir: str | os.PathLike | None
):
    if traces_dir is not None:
        return Path(traces_dir)
    if out_dir is not None:
        return Path(out_dir) / "traces"
    return None  # in-memory sweep: traces live only for this invocation


def plan_sweep(
    points: list[SweepPoint],
    out_dir: str | os.PathLike | None = None,
    traces_dir: str | os.PathLike | None = None,
    resume: bool = False,
) -> dict:
    """What a sweep *would* do, without running anything (``--dry-run``).

    Returns grid size, unique statistical fingerprints, how many
    artifacts/traces already exist on disk, and how much exact numpy
    work a replay-mode invocation would actually pay for. ``resume``
    must match the planned invocation: on-disk artifacts and traces
    only count as done when the real run would reuse them too.
    """
    points, hashes, configs = dedupe_with_hashes(list(points))
    completed, corrupt = scan_artifacts(out_dir) if out_dir is not None else ({}, [])
    traces_dir = _resolve_traces_dir(out_dir, traces_dir)
    traces, corrupt_traces = (
        scan_traces(traces_dir) if traces_dir is not None else ({}, [])
    )

    stat_hashes: set[str] = set()
    replayable_hashes: set[str] = set()
    coupled = 0
    pending_stat_hashes: set[str] = set()
    pending_coupled = 0
    pending = 0
    for config, point_hash in zip(configs, hashes):
        stat_hash = config.stat_hash()
        stat_hashes.add(stat_hash)
        if config.timing_coupled:
            coupled += 1
        else:
            replayable_hashes.add(stat_hash)
        if resume and point_hash in completed:
            continue
        pending += 1
        if config.timing_coupled:
            pending_coupled += 1
        else:
            pending_stat_hashes.add(stat_hash)

    usable_traces = traces if resume else {}
    recordings_needed = sum(1 for h in pending_stat_hashes if h not in usable_traces)
    return {
        "points": len(points),
        "unique_stat_fingerprints": len(stat_hashes),
        "timing_coupled_points": coupled,
        "pending_timing_coupled": pending_coupled,
        "artifacts_present": sum(1 for h in hashes if h in completed),
        "artifacts_corrupt": len(corrupt),
        "traces_present": sum(1 for h in replayable_hashes if h in traces),
        "traces_corrupt": len(corrupt_traces),
        "pending_points": pending,
        "exact_trainings_needed": recordings_needed + pending_coupled,
        "replays_needed": pending - pending_coupled - recordings_needed,
        "resume": resume,
        "out_dir": None if out_dir is None else str(out_dir),
        "traces_dir": None if traces_dir is None else str(traces_dir),
    }


def run_sweep(
    points: list[SweepPoint],
    out_dir: str | os.PathLike | None = None,
    jobs: int = 1,
    resume: bool = False,
    progress=None,
    substrate: str = "exact",
    traces_dir: str | os.PathLike | None = None,
) -> SweepRun:
    """Run a grid of sweep points, optionally in parallel and resumable.

    Parameters
    ----------
    points:
        The grid. Duplicate config hashes are collapsed (first wins).
    out_dir:
        Where ``<hash>.json`` artifacts go. ``None`` keeps everything
        in memory (used by the experiment modules' ``run()`` helpers).
    jobs:
        Process-pool width. ``1`` runs inline in this process.
    resume:
        Skip points that already have a valid artifact in ``out_dir``.
    progress:
        Optional callable ``progress(message: str)`` for per-point
        status lines (the CLI passes one; the library default is quiet).
    substrate:
        ``"exact"`` trains every point with real numpy (the default).
        ``"auto"`` runs the two-phase record/replay sweep, falling back
        to exact for timing-coupled (ASP / hybrid-PS) points.
        ``"replay"`` is ``"auto"`` that *refuses* timing-coupled points
        instead of falling back.
    traces_dir:
        Where ``<stat_hash>.json`` traces go (default:
        ``<out_dir>/traces``; in-memory when ``out_dir`` is ``None``).
    """
    if substrate not in SWEEP_SUBSTRATES:
        raise ConfigurationError(
            f"unknown sweep substrate {substrate!r}; known: {SWEEP_SUBSTRATES}"
        )
    if resume and out_dir is None:
        raise ConfigurationError("resume=True requires an artifact directory")
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")

    say = progress or (lambda message: None)
    points, hashes, configs = dedupe_with_hashes(list(points))

    completed: dict[str, dict] = {}
    corrupt: list[Path] = []
    if resume:
        in_grid = set(hashes)
        completed, found_corrupt = scan_artifacts(out_dir)
        for path in found_corrupt:
            # Only corrupt files that shadow a point of *this* grid get
            # re-run (and overwritten); foreign/stale ones are left
            # alone — e.g. leftovers from an older TrainingConfig whose
            # hashes no grid produces anymore.
            if path.stem in in_grid:
                corrupt.append(path)
                say(f"corrupt artifact {path.name}: will re-run that point")
            else:
                say(f"corrupt artifact {path.name} matches no point in this grid; ignored")

    by_hash: dict[str, dict] = {}
    skipped = 0
    pending: list[tuple[int, SweepPoint, object]] = []
    for index, (point, point_hash, config) in enumerate(
        zip(points, hashes, configs)
    ):
        if point_hash in completed:
            artifact = completed[point_hash]
            recorded_version = artifact["meta"].get("engine_version")
            if recorded_version != repro_version:
                # The config hash can't see code changes; at least make
                # cross-version mixing visible (delete the artifact or
                # use a fresh --out to force a clean re-run).
                say(
                    f"warning: reusing {point_hash}.json from engine "
                    f"{recorded_version or 'unknown'} (running {repro_version})"
                )
            if artifact["schema"] != ARTIFACT_SCHEMA_VERSION:
                say(
                    f"warning: reusing {point_hash}.json with artifact schema "
                    f"{artifact['schema']} (current: {ARTIFACT_SCHEMA_VERSION}; "
                    "older schemas lack meta.substrate/compute_seconds "
                    "and/or result.events)"
                )
            # Labels/tags are presentation metadata, deliberately
            # outside the hash. When a grid renames them, refresh the
            # stored copy so aggregate() always sees the current schema.
            current = {
                "experiment": point.experiment,
                "label": point.label,
                "tags": dict(point.tags),
            }
            if any(artifact[key] != value for key, value in current.items()):
                artifact = {**artifact, **current}
                write_artifact(out_dir, artifact)
                say(f"refreshed metadata of {point_hash}.json to match this grid")
            by_hash[point_hash] = artifact
            skipped += 1
            say(f"[{index + 1}/{len(points)}] {point.label}: skipped (artifact exists)")
        else:
            pending.append((index, point, config))

    run = SweepRun(
        skipped=skipped,
        corrupt=[str(p) for p in corrupt],
        out_dir=None if out_dir is None else str(out_dir),
        substrate=substrate,
    )

    def finish(task: _Task, artifact: dict) -> None:
        by_hash[artifact["config_hash"]] = artifact
        if out_dir is not None:
            write_artifact(out_dir, artifact)
        say(
            f"[{task.index + 1}/{len(points)}] {task.point.label}: "
            f"runtime={artifact['result']['duration_s']:.1f}s "
            f"cost=${artifact['result']['cost_total']:.4f} "
            f"converged={artifact['result']['converged']} "
            f"({artifact['meta']['wall_seconds']:.1f}s wall, {task.mode})"
        )

    def fail(task: _Task, reason: str) -> None:
        run.failed.append(
            {
                "index": task.index,
                "label": task.point.label,
                "config_hash": hashes[task.index],
                "reason": reason,
            }
        )
        say(f"[{task.index + 1}/{len(points)}] {task.point.label}: FAILED ({reason})")

    def execute(tasks: list[_Task], on_trace=None) -> None:
        """Fan a batch of tasks over the pool (or inline); stream writes."""
        if not tasks:
            return
        run.ran += len(tasks)
        for task in tasks:
            if task.mode == "record":
                run.recorded += 1
            elif task.mode == "replay":
                run.replayed += 1
            else:
                run.exact_runs += 1
        by_index = {task.index: task for task in tasks}
        width = min(jobs, len(tasks))
        if width == 1:
            for task in tasks:
                index, artifact, trace = run_task(task)
                finish(task, artifact)
                if trace is not None and on_trace is not None:
                    on_trace(trace)
        else:

            def on_result(message: tuple) -> None:
                index, artifact, trace = message
                finish(by_index[index], artifact)
                if trace is not None and on_trace is not None:
                    on_trace(trace)

            _run_resilient_pool(tasks, width, on_result, fail)

    if substrate == "exact":
        execute([_Task(index, point) for index, point, _ in pending])
    else:
        _run_two_phase(
            run, pending, substrate, out_dir, traces_dir, resume, say, execute, fail
        )

    # Failed points (dead workers) have no artifact; everything else is
    # returned in point order, exactly as before.
    run.artifacts = [by_hash[h] for h in hashes if h in by_hash]
    return run


def _run_two_phase(
    run: SweepRun, pending, substrate, out_dir, traces_dir, resume, say, execute, fail
) -> None:
    """Group by stat fingerprint; record once per group, replay the rest."""
    traces_dir = _resolve_traces_dir(out_dir, traces_dir)
    run.traces_dir = None if traces_dir is None else str(traces_dir)
    traces: dict[str, dict] = {}
    if traces_dir is not None and resume:
        # Reusing a previously recorded trace is the same act of trust
        # as reusing a previously written artifact: both are opt-in via
        # resume. A non-resume sweep re-records everything (and
        # overwrites the stale files), so code changes cannot leak old
        # trajectories into fresh artifacts.
        traces, corrupt_traces = scan_traces(traces_dir)
        for path in corrupt_traces:
            say(f"corrupt trace {path.name}: that fingerprint will be re-recorded")
        for stat_hash, trace in traces.items():
            recorded_version = trace["meta"].get("engine_version")
            if recorded_version != repro_version:
                say(
                    f"warning: trace {stat_hash}.json was recorded by engine "
                    f"{recorded_version or 'unknown'} (running {repro_version})"
                )

    exact_tasks: list[_Task] = []
    groups: dict[str, list[_Task]] = {}
    for index, point, config in pending:
        if config.timing_coupled:
            if substrate == "replay":
                raise ConfigurationError(
                    f"point {point.label!r} ({config.protocol}/{config.platform}) "
                    "is timing-coupled and cannot be replayed; run it with "
                    "substrate='auto' (exact fallback) or 'exact'"
                )
            exact_tasks.append(_Task(index, point))
        else:
            groups.setdefault(config.stat_hash(), []).append(_Task(index, point))
    run.stat_groups = len(groups)

    record_tasks: list[_Task] = []
    replay_ready: list[tuple[_Task, str]] = []
    replay_blocked: dict[str, list[_Task]] = {}
    for stat_hash, tasks in groups.items():
        rest = tasks
        if stat_hash not in traces:
            head, *rest = tasks
            record_tasks.append(
                _Task(head.index, head.point, mode="record")
            )
            replay_blocked[stat_hash] = rest
        else:
            replay_ready.extend((task, stat_hash) for task in tasks)

    say(
        f"phase 0: {len(record_tasks)} exact recording(s) for "
        f"{run.stat_groups} unique statistical fingerprint(s) "
        f"({len(traces)} trace(s) already on disk)"
        + (f"; {len(exact_tasks)} timing-coupled point(s) run exact" if exact_tasks else "")
    )

    def on_trace(trace: dict) -> None:
        traces[trace["stat_hash"]] = trace
        if traces_dir is not None:
            write_trace(traces_dir, trace)

    # Timing-coupled fallbacks ride along with the recordings: both are
    # full-cost exact trainings, so one pool pass covers phase 0.
    execute(record_tasks + exact_tasks, on_trace=on_trace)

    replay_tasks = [
        _Task(task.index, task.point, mode="replay", trace=traces[stat_hash])
        for task, stat_hash in replay_ready
    ]
    for stat_hash, tasks in replay_blocked.items():
        if stat_hash not in traces:
            # The phase-0 recording for this fingerprint died (its
            # worker was killed): its replays have no trace to run on.
            for task in tasks:
                fail(
                    task,
                    f"recording for statistical fingerprint {stat_hash[:12]} "
                    "failed; nothing to replay",
                )
            continue
        replay_tasks.extend(
            _Task(task.index, task.point, mode="replay", trace=traces[stat_hash])
            for task in tasks
        )
    replay_tasks.sort(key=lambda task: task.index)
    say(f"phase 1: replaying {len(replay_tasks)} point(s) from recorded traces")
    execute(replay_tasks)
