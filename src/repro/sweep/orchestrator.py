"""The sweep loop: fan points over a process pool, persist, resume.

Design constraints:

* **Workers are pure.** :func:`run_point` takes one picklable
  :class:`SweepPoint`, builds the ``TrainingConfig`` and runs
  ``train()`` inside the child process, and returns a primitives-only
  artifact dict. No simulator state crosses the process boundary, so
  serial and ``--jobs N`` sweeps produce byte-identical artifacts.
* **The parent owns the disk.** Artifacts are written by the
  orchestrator as results stream back (atomic tmp+rename), never by
  pool workers, so a sweep directory sees one writer and an interrupt
  (Ctrl-C, OOM-killed child, dead CI box) leaves only whole files.
* **Resume is hash-addressed.** ``resume=True`` scans the sweep
  directory once and skips every point whose config hash already has a
  valid artifact; corrupt or partial files are treated as not-run and
  overwritten.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import __version__ as repro_version
from repro.core.driver import train
from repro.errors import ConfigurationError
from repro.sweep.artifacts import (
    artifact_from_result,
    scan_artifacts,
    write_artifact,
)
from repro.sweep.grid import SweepPoint, dedupe_with_hashes


@dataclass
class SweepRun:
    """Outcome of one orchestrator invocation."""

    artifacts: list[dict] = field(default_factory=list)  # in point order
    ran: int = 0
    skipped: int = 0
    corrupt: list[str] = field(default_factory=list)
    out_dir: str | None = None


def run_point(point: SweepPoint) -> dict:
    """Execute one sweep point end to end (pool worker entry point)."""
    t0 = time.perf_counter()
    result = train(point.config())
    return artifact_from_result(point, result, wall_seconds=time.perf_counter() - t0)


def _pool_context():
    """Fork when available (cheap, inherits pinned BLAS env), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_sweep(
    points: list[SweepPoint],
    out_dir: str | os.PathLike | None = None,
    jobs: int = 1,
    resume: bool = False,
    progress=None,
) -> SweepRun:
    """Run a grid of sweep points, optionally in parallel and resumable.

    Parameters
    ----------
    points:
        The grid. Duplicate config hashes are collapsed (first wins).
    out_dir:
        Where ``<hash>.json`` artifacts go. ``None`` keeps everything
        in memory (used by the experiment modules' ``run()`` helpers).
    jobs:
        Process-pool width. ``1`` runs inline in this process.
    resume:
        Skip points that already have a valid artifact in ``out_dir``.
    progress:
        Optional callable ``progress(message: str)`` for per-point
        status lines (the CLI passes one; the library default is quiet).
    """
    if resume and out_dir is None:
        raise ConfigurationError("resume=True requires an artifact directory")
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")

    say = progress or (lambda message: None)
    points, hashes = dedupe_with_hashes(list(points))

    completed: dict[str, dict] = {}
    corrupt: list[Path] = []
    if resume:
        in_grid = set(hashes)
        completed, found_corrupt = scan_artifacts(out_dir)
        for path in found_corrupt:
            # Only corrupt files that shadow a point of *this* grid get
            # re-run (and overwritten); foreign/stale ones are left
            # alone — e.g. leftovers from an older TrainingConfig whose
            # hashes no grid produces anymore.
            if path.stem in in_grid:
                corrupt.append(path)
                say(f"corrupt artifact {path.name}: will re-run that point")
            else:
                say(f"corrupt artifact {path.name} matches no point in this grid; ignored")

    by_hash: dict[str, dict] = {}
    skipped = 0
    pending: list[tuple[int, SweepPoint, str]] = []
    for index, (point, point_hash) in enumerate(zip(points, hashes)):
        if point_hash in completed:
            artifact = completed[point_hash]
            recorded = artifact["meta"].get("engine_version")
            if recorded != repro_version:
                # The config hash can't see code changes; at least make
                # cross-version mixing visible (delete the artifact or
                # use a fresh --out to force a clean re-run).
                say(
                    f"warning: reusing {point_hash}.json from engine "
                    f"{recorded or 'unknown'} (running {repro_version})"
                )
            # Labels/tags are presentation metadata, deliberately
            # outside the hash. When a grid renames them, refresh the
            # stored copy so aggregate() always sees the current schema.
            current = {
                "experiment": point.experiment,
                "label": point.label,
                "tags": dict(point.tags),
            }
            if any(artifact[key] != value for key, value in current.items()):
                artifact = {**artifact, **current}
                write_artifact(out_dir, artifact)
                say(f"refreshed metadata of {point_hash}.json to match this grid")
            by_hash[point_hash] = artifact
            skipped += 1
            say(f"[{index + 1}/{len(points)}] {point.label}: skipped (artifact exists)")
        else:
            pending.append((index, point, point_hash))

    def finish(index: int, point: SweepPoint, artifact: dict) -> None:
        by_hash[artifact["config_hash"]] = artifact
        if out_dir is not None:
            write_artifact(out_dir, artifact)
        say(
            f"[{index + 1}/{len(points)}] {point.label}: "
            f"runtime={artifact['result']['duration_s']:.1f}s "
            f"cost=${artifact['result']['cost_total']:.4f} "
            f"converged={artifact['result']['converged']} "
            f"({artifact['meta']['wall_seconds']:.1f}s wall)"
        )

    if pending:
        jobs = min(jobs, len(pending))
        if jobs == 1:
            for index, point, _ in pending:
                finish(index, point, run_point(point))
        else:
            ctx = _pool_context()
            order = {point_hash: (i, p) for i, p, point_hash in pending}
            with ctx.Pool(processes=jobs) as pool:
                for artifact in pool.imap_unordered(
                    run_point, [p for _, p, _ in pending]
                ):
                    index, point = order[artifact["config_hash"]]
                    finish(index, point, artifact)

    return SweepRun(
        artifacts=[by_hash[h] for h in hashes],
        ran=len(pending),
        skipped=skipped,
        corrupt=[str(p) for p in corrupt],
        out_dir=None if out_dir is None else str(out_dir),
    )
