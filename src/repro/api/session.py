"""Session: the facade's durable home for runs, sweeps and comparisons.

A :class:`Session` owns an artifact root, a trace directory and a
substrate policy, and exposes the three verbs scripts need:

* ``run(scenario)`` — one simulated training job, content-addressed
  under ``<root>/runs`` so repeating it costs a file read;
* ``sweep(study)`` — any registered study (or an ad-hoc list of
  scenarios/points) through the parallel, resumable, two-phase
  orchestrator, artifacts under ``<root>/<study>``;
* ``compare(scenarios)`` — a labelled head-to-head over the same run
  cache, rendered as a table.

``resume=True`` is the default: a second identical ``sweep()`` or
``run()`` call against the same root re-runs zero points. Pass
``root=None`` for a throwaway in-memory session (nothing persisted).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.config import DEFAULT_SEED
from repro.core.config import TrainingConfig
from repro.core.results import RunResult
from repro.errors import ConfigurationError
from repro.experiments.report import format_table
from repro.api.scenario import Scenario
from repro.sweep.artifacts import result_from_artifact
from repro.sweep.grid import SweepPoint
from repro.sweep.orchestrator import SweepRun, plan_sweep, run_sweep
from repro.sweep.study import Study, StudyContext, get_study


@dataclass
class StudyOutcome:
    """What ``Session.sweep`` returns: orchestration + aggregation."""

    run: SweepRun  # ran/skipped/substrate counters, artifact list
    result: Any  # the study's aggregate() output
    study: Study | None = None  # None for ad-hoc scenario sweeps

    @property
    def artifacts(self) -> list[dict]:
        return self.run.artifacts

    def report(self) -> str:
        """The study's paper-style report for this outcome."""
        if self.study is not None:
            return self.study.format_report(self.result)
        return _comparison_table("Ad-hoc sweep", self.result)


@dataclass
class Comparison:
    """Labelled head-to-head results from ``Session.compare``."""

    results: dict[str, RunResult] = field(default_factory=dict)

    def __getitem__(self, label: str) -> RunResult:
        return self.results[label]

    def report(self, title: str = "Comparison") -> str:
        return _comparison_table(
            title, [(label, r) for label, r in self.results.items()]
        )


def _comparison_table(title: str, rows: Iterable[tuple[str, RunResult]]) -> str:
    return format_table(
        title,
        ["scenario", "converged", "loss", "time(s)", "cost($)", "epochs"],
        [
            [label, r.converged, r.final_loss, r.duration_s, r.cost_total, r.epochs]
            for label, r in rows
        ],
    )


def _as_scenario(scenario) -> Scenario:
    if isinstance(scenario, Scenario):
        return scenario
    if isinstance(scenario, TrainingConfig):
        from repro.core.config import config_fingerprint

        return Scenario(config_fingerprint(scenario))
    if isinstance(scenario, dict):
        return Scenario(scenario)
    raise ConfigurationError(
        f"cannot interpret {type(scenario).__name__} as a Scenario"
    )


class Session:
    """Artifact root + substrate policy + the run/sweep/compare verbs."""

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        *,
        jobs: int = 1,
        substrate: str = "auto",
        resume: bool = True,
        seed: int = DEFAULT_SEED,
        progress=None,
    ) -> None:
        self.root = None if root is None else Path(root)
        self.jobs = jobs
        self.substrate = substrate
        self.resume = resume and root is not None
        self.seed = seed
        self.progress = progress

    # -- internals --------------------------------------------------------
    def _dir(self, name: str) -> Path | None:
        return None if self.root is None else self.root / name

    def _sweep(
        self,
        points: list[SweepPoint],
        out_name: str,
        jobs: int | None = None,
        substrate: str | None = None,
    ) -> SweepRun:
        return run_sweep(
            points,
            out_dir=self._dir(out_name),
            jobs=jobs or self.jobs,
            resume=self.resume,
            substrate=substrate or self.substrate,
            progress=self.progress,
        )

    # -- verbs ------------------------------------------------------------
    def run(self, scenario, *, substrate: str | None = None) -> RunResult:
        """One simulated training job, cached under ``<root>/runs``."""
        point = _as_scenario(scenario).point(experiment="runs")
        sweep_run = self._sweep([point], "runs", substrate=substrate)
        return result_from_artifact(sweep_run.artifacts[0])

    def sweep(
        self,
        study,
        *,
        max_epochs: float | None = None,
        seed: int | None = None,
        jobs: int | None = None,
        substrate: str | None = None,
    ) -> StudyOutcome:
        """Run a registered study — or an ad-hoc scenario list — end to end.

        ``study`` may be a study name (``"fig11"``), a
        :class:`~repro.sweep.study.Study`, or a list of
        :class:`Scenario` / :class:`SweepPoint`. Artifacts land under
        ``<root>/<study-name>`` (``<root>/adhoc`` for lists); with the
        session's default ``resume=True`` a repeated call re-runs zero
        points.
        """
        if isinstance(study, str):
            study = get_study(study)
        if isinstance(study, Study):
            points = study.points(
                ctx=StudyContext(
                    max_epochs=max_epochs,
                    seed=self.seed if seed is None else seed,
                )
            )
            sweep_run = self._sweep(points, study.name, jobs=jobs, substrate=substrate)
            return StudyOutcome(
                run=sweep_run, result=study.aggregate(sweep_run.artifacts), study=study
            )
        points = [
            p if isinstance(p, SweepPoint) else _as_scenario(p).point("adhoc")
            for p in study
        ]
        sweep_run = self._sweep(points, "adhoc", jobs=jobs, substrate=substrate)
        result = [
            (a["label"], result_from_artifact(a)) for a in sweep_run.artifacts
        ]
        return StudyOutcome(run=sweep_run, result=result, study=None)

    def plan(self, study, *, max_epochs: float | None = None,
             seed: int | None = None) -> dict:
        """The ``--dry-run`` accounting for a study, against this root."""
        if isinstance(study, str):
            study = get_study(study)
        points = study.points(
            ctx=StudyContext(
                max_epochs=max_epochs, seed=self.seed if seed is None else seed
            )
        )
        return plan_sweep(points, out_dir=self._dir(study.name), resume=self.resume)

    def compare(
        self, scenarios, *, substrate: str | None = None
    ) -> Comparison:
        """Run labelled scenarios head to head (through the run cache)."""
        if isinstance(scenarios, dict):
            labelled = [(label, _as_scenario(s)) for label, s in scenarios.items()]
        else:
            labelled = [
                (_as_scenario(s).describe(), _as_scenario(s)) for s in scenarios
            ]
        points = [s.point(experiment="runs") for _, s in labelled]
        sweep_run = self._sweep(points, "runs", substrate=substrate)
        # The orchestrator dedupes identical configs, so pair each label
        # with its artifact by config hash — never positionally (two
        # labels may legitimately name the same config).
        by_hash = {a["config_hash"]: a for a in sweep_run.artifacts}
        return Comparison(
            results={
                label: result_from_artifact(by_hash[point.hash()])
                for (label, _), point in zip(labelled, points)
            }
        )
