"""Scenario: the facade's immutable builder over ``TrainingConfig``.

A scenario is a bag of config kwargs that is cheap to copy, vary and
expand into grids — the unit ``repro.api`` scripts compose::

    from repro.api import Scenario

    base = Scenario.workload("lr", "higgs").vary(workers=50)
    points = base.grid(channel=("s3", "redis"), pattern=("allreduce",
                                                         "scatterreduce"))

Unlike a ``TrainingConfig``, a scenario is not validated until
``.config()`` (or the run) — so partial scenarios can be built up and
specialised freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import TrainingConfig
from repro.experiments.workloads import get_workload
from repro.sweep.grid import SweepPoint, expand_grid


@dataclass(frozen=True)
class Scenario:
    """An immutable, composable description of one training run."""

    kwargs: dict = field(default_factory=dict)
    label: str | None = None
    tags: dict = field(default_factory=dict)

    def __init__(
        self,
        kwargs: dict | None = None,
        label: str | None = None,
        tags: dict | None = None,
        **config_kwargs,
    ) -> None:
        # Accept both Scenario({"model": ...}) and Scenario(model=...).
        merged = dict(kwargs or {})
        merged.update(config_kwargs)
        object.__setattr__(self, "kwargs", merged)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "tags", dict(tags or {}))

    # -- construction -----------------------------------------------------
    @classmethod
    def workload(cls, model: str, dataset: str, **overrides) -> Scenario:
        """Seed a scenario from the tuned Table-4 workload registry.

        Copies the workload's algorithm, worker count, batch shape,
        learning rate, k, loss threshold and epoch budget; ``overrides``
        win over all of them.
        """
        w = get_workload(model, dataset)
        kwargs = dict(
            model=model,
            dataset=dataset,
            algorithm=w.algorithm,
            workers=w.workers,
            batch_size=w.batch_size,
            batch_scope=w.batch_scope,
            lr=w.lr,
            k=w.k,
            min_local_batch=w.min_local_batch,
            loss_threshold=w.threshold,
            max_epochs=w.max_epochs,
        )
        kwargs.update(overrides)
        return cls(kwargs)

    def vary(self, **overrides) -> Scenario:
        """A copy with some config kwargs replaced/added."""
        return Scenario(dict(self.kwargs, **overrides),
                        label=self.label, tags=self.tags)

    def named(self, label: str, **tags) -> Scenario:
        """A copy carrying a display label (and report-grouping tags)."""
        return Scenario(self.kwargs, label=label, tags={**self.tags, **tags})

    def tenant(self, name: str, priority: float = 0.0) -> Scenario:
        """A copy carrying multi-tenant service identity.

        Tenant name and priority travel in ``tags`` — presentation and
        scheduling metadata that stays *outside* the config fingerprint
        (two tenants submitting the same workload share one artifact) —
        so ``Service.submit`` and ``Session.run`` accept the same
        builder instead of a parallel config type.
        """
        return Scenario(
            self.kwargs,
            label=self.label,
            tags={**self.tags, "tenant": name, "priority": str(priority)},
        )

    def grid(self, **axes) -> list[Scenario]:
        """The cross-product of ``axes`` over this scenario.

        Each returned scenario is labelled with its axis values
        (``"channel=s3,workers=10"``) unless it already carries a label.
        """
        scenarios = []
        for kwargs in expand_grid(self.kwargs, {k: tuple(v) for k, v in axes.items()}):
            label = self.label or ",".join(
                f"{name}={kwargs[name]}" for name in axes
            )
            scenarios.append(Scenario(kwargs, label=label, tags=self.tags))
        return scenarios

    # -- realisation ------------------------------------------------------
    def config(self) -> TrainingConfig:
        """Validate and build the concrete ``TrainingConfig``."""
        return TrainingConfig(**self.kwargs)

    def describe(self) -> str:
        return self.label or self.config().describe()

    def point(self, experiment: str = "api") -> SweepPoint:
        """This scenario as an orchestrator sweep point."""
        return SweepPoint(
            experiment,
            self.describe(),
            config_kwargs=dict(self.kwargs),
            tags=dict(self.tags),
        )
