"""ServingSession: the facade for train-then-serve pipelines.

Shaped like :class:`repro.api.Service`: a :class:`ServingSession` owns
a report root and runs the whole pipeline declared by one
:class:`~repro.serving.config.ServingConfig` —

1. train the model (an ordinary content-addressed sweep artifact under
   ``<root>/models``, shared with any other sweep against that root);
2. register it into the serving tier (size → load time, final loss →
   quality tag, training cost → the end-to-end dollar axis);
3. replay the config's seeded traffic against the autoscaled replica
   pool and persist the serving report.

Everything is content-addressed and resume-by-default: the report is
keyed by the hash of the full ServingConfig, so a second ``run()``
against the same root loads the persisted report and re-simulates
nothing. ``repro.cli infer`` is a thin wrapper over this class.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import TrainingConfig
from repro.errors import ConfigurationError
from repro.serving.config import ServingConfig, serving_fingerprint, serving_hash
from repro.serving.metrics import (
    build_serving_report,
    format_serving_report,
    validate_serving_report,
)
from repro.serving.registry import ModelRegistry
from repro.serving.runtime import ServingRuntime
from repro.sweep.grid import SweepPoint, config_hash


@dataclass
class ServingOutcome:
    """What ``ServingSession.run`` returns: report + orchestration counters.

    ``ran_requests`` is how many requests were actually simulated this
    call — zero when the run resumed from a persisted report. It lives
    outside the report document so resumed and fresh outcomes stay
    byte-equal on disk.
    """

    data: dict  # the (persisted) serving report document
    ran_requests: int
    path: Path | None = None  # where the report lives, if rooted

    @property
    def metrics(self) -> dict:
        return self.data["metrics"]

    @property
    def end_to_end_dollars(self) -> float:
        return self.data["end_to_end_dollars"]

    def report(self) -> str:
        """The rendered serving scorecard + end-to-end summary."""
        return format_serving_report(self.data)


class ServingSession:
    """Report root + one declarative train-then-serve pipeline."""

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        *,
        config: ServingConfig,
        jobs: int = 1,
        substrate: str = "auto",
        resume: bool = True,
        progress=None,
    ) -> None:
        if substrate not in ("auto", "exact"):
            raise ConfigurationError(
                f"serving substrate must be 'auto' or 'exact', not {substrate!r}"
            )
        self.root = None if root is None else Path(root)
        self.config = config
        self.jobs = jobs
        self.substrate = substrate
        self.resume = resume and root is not None
        self.progress = progress

    @classmethod
    def from_config(
        cls,
        config: ServingConfig,
        root: str | os.PathLike | None = None,
        **kwargs,
    ) -> ServingSession:
        """The CLI entry point: the whole pipeline from one config."""
        return cls(root, config=config, **kwargs)

    # -- internals ---------------------------------------------------------
    def _report_path(self, pipeline_hash: str) -> Path | None:
        if self.root is None:
            return None
        return self.root / "serving" / f"{pipeline_hash}.json"

    def _train(self) -> dict:
        """The training leg, as a persisted (or in-memory) artifact."""
        training = TrainingConfig(**self.config.train_kwargs())
        point = SweepPoint(
            "serving",
            f"model {training.model}/{training.dataset},W={training.workers}",
            config_kwargs=self.config.train_kwargs(),
            tags={"series": "serving"},
        )
        if self.root is None:
            from repro.core.driver import train
            from repro.sweep.artifacts import artifact_from_result

            return artifact_from_result(point, train(training))
        from repro.sweep.artifacts import scan_artifacts
        from repro.sweep.orchestrator import run_sweep

        run_sweep(
            [point],
            out_dir=self.root / "models",
            jobs=self.jobs,
            resume=self.resume,
            substrate=self.substrate,
            traces_dir=self.root / "traces",
            progress=self.progress,
        )
        artifacts, _ = scan_artifacts(self.root / "models")
        return artifacts[config_hash(training)]

    # -- the verb ----------------------------------------------------------
    def run(self) -> ServingOutcome:
        """Train, register, serve (or load the persisted report)."""
        fingerprint = serving_fingerprint(self.config)
        pipeline_hash = serving_hash(self.config)
        path = self._report_path(pipeline_hash)

        if self.resume and path is not None and path.exists():
            with path.open(encoding="utf-8") as fh:
                report = json.load(fh)
            validate_serving_report(report, expected_hash=pipeline_hash)
            return ServingOutcome(data=report, ran_requests=0, path=path)

        registry = ModelRegistry()
        entry = registry.register_artifact("pipeline", self._train())
        records, pool = ServingRuntime(self.config, entry).run()
        report = build_serving_report(
            pipeline_hash, fingerprint, entry.as_dict(), records, pool
        )
        validate_serving_report(report, expected_hash=pipeline_hash)
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(
                json.dumps(report, sort_keys=True, indent=1) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, path)
        return ServingOutcome(data=report, ran_requests=len(records), path=path)
