"""Service: the facade for multi-tenant workloads, shaped like Session.

A :class:`Service` owns a report root and a substrate policy and exposes
the service verbs::

    from repro.api import Scenario, Service, ServiceConfig

    svc = Service("results", arrivals=ServiceConfig(rate=6.0, tenants=12),
                  scheduler="fair_share")
    svc.submit(Scenario.workload("lr", "rcv1").tenant("acme", priority=1.0),
               arrival_s=30.0)
    outcome = svc.run()
    print(outcome.report())

Like ``Session``, everything is content-addressed and resume-by-default:
the report is keyed by a hash of the *resolved workload* (every request's
arrival instant, tenant and full training config, plus the scheduler and
concurrency limit), so a second ``run()`` against the same root loads
the persisted report and re-runs zero jobs. Isolated baselines are
ordinary sweep artifacts under ``<root>/baselines`` (with replay traces
under ``<root>/traces``), shared with any other sweep against that root.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.config import DEFAULT_SEED
from repro.core.config import TrainingConfig
from repro.errors import ConfigurationError
from repro.api.scenario import Scenario
from repro.service.arrivals import JobRequest, build_requests
from repro.service.config import ServiceConfig, service_fingerprint
from repro.service.metrics import (
    build_report,
    format_service_report,
    validate_report,
)
from repro.service.runtime import BaselineProvider, ServiceRuntime
from repro.service.schedulers import make_scheduler
from repro.utils.hashing import fingerprint_hash


@dataclass
class ServiceOutcome:
    """What ``Service.run`` returns: the report + orchestration counters.

    ``ran_jobs`` is how many jobs were actually simulated this call —
    zero when the run resumed from a persisted report. It lives outside
    the report document so resumed and fresh outcomes stay byte-equal
    on disk.
    """

    data: dict  # the (persisted) service report document
    ran_jobs: int
    path: Path | None = None  # where the report lives, if rooted

    @property
    def metrics(self) -> dict:
        return self.data["metrics"]

    @property
    def tenants(self) -> list[dict]:
        return self.data["tenants"]

    def report(self) -> str:
        """The rendered per-job table + service scorecard."""
        return format_service_report(self.data)


def _workload_fingerprint(
    scheduler: str, max_concurrent: int, requests: list[JobRequest]
) -> dict:
    """The resolved workload, for content addressing.

    Hashing the request list (not the generating ServiceConfig) means a
    trace file edit, a submitted scenario, or a scheduler change each
    re-key the report, while re-generating the identical workload from
    a different spelling resumes cleanly.
    """
    return {
        "scheduler": scheduler,
        "max_concurrent": max_concurrent,
        "requests": [
            {
                "job": r.job,
                "tenant": r.tenant,
                "arrival_s": r.arrival_s,
                "priority": r.priority,
                "config": {k: r.config_kwargs[k] for k in sorted(r.config_kwargs)},
            }
            for r in requests
        ],
    }


class Service:
    """Report root + scheduler + arrivals + the submit/run verbs."""

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        *,
        arrivals: ServiceConfig | None = None,
        scheduler: str | None = None,
        max_concurrent: int | None = None,
        jobs: int = 1,
        substrate: str = "auto",
        resume: bool = True,
        seed: int | None = None,
        progress=None,
    ) -> None:
        if substrate not in ("auto", "exact"):
            raise ConfigurationError(
                f"service substrate must be 'auto' or 'exact', not {substrate!r}"
            )
        self.root = None if root is None else Path(root)
        self.config = arrivals
        # Explicit arguments win; an arrivals config fills the gaps.
        self.scheduler = scheduler or (arrivals.scheduler if arrivals else "fifo")
        self.max_concurrent = (
            max_concurrent
            if max_concurrent is not None
            else (arrivals.max_concurrent if arrivals else 4)
        )
        self.seed = (
            seed
            if seed is not None
            else (arrivals.seed if arrivals else DEFAULT_SEED)
        )
        self.jobs = jobs
        self.substrate = substrate
        self.resume = resume and root is not None
        self.progress = progress
        self._submitted: list[JobRequest] = []

    @classmethod
    def from_config(
        cls,
        config: ServiceConfig,
        root: str | os.PathLike | None = None,
        **kwargs,
    ) -> Service:
        """The CLI entry point: the whole service from one declarative config."""
        return cls(root, arrivals=config, **kwargs)

    # -- workload assembly -------------------------------------------------
    def submit(
        self,
        scenario,
        *,
        arrival_s: float = 0.0,
        job: str | None = None,
    ) -> JobRequest:
        """Queue one scenario as a service job (on top of any arrivals).

        Tenant identity and priority come from ``Scenario.tenant(...)``
        tags; an untagged scenario bills to the ``"default"`` account.
        """
        if not isinstance(scenario, Scenario):
            scenario = Scenario(dict(scenario))
        request = JobRequest(
            job=job or f"s{len(self._submitted):03d}",
            tenant=scenario.tags.get("tenant", "default"),
            arrival_s=float(arrival_s),
            config_kwargs=dict(scenario.kwargs),
            priority=float(scenario.tags.get("priority", 0.0)),
        )
        self._submitted.append(request)
        return request

    def requests(self) -> list[JobRequest]:
        """The resolved workload: generated arrivals + submissions."""
        generated = build_requests(self.config) if self.config is not None else []
        requests = sorted(
            generated + self._submitted, key=lambda r: (r.arrival_s, r.job)
        )
        if not requests:
            raise ConfigurationError(
                "service has no jobs: pass arrivals=ServiceConfig(...) "
                "or submit() at least one scenario"
            )
        jobs = [r.job for r in requests]
        if len(set(jobs)) != len(jobs):
            raise ConfigurationError("service workload has duplicate job ids")
        return requests

    # -- internals ---------------------------------------------------------
    def _report_path(self, workload_hash: str) -> Path | None:
        if self.root is None:
            return None
        return self.root / "service" / f"{workload_hash}.json"

    def _baselines(self, requests: list[JobRequest]) -> BaselineProvider:
        """An isolated-run provider, primed from disk when rooted.

        The distinct submitted configs go through the ordinary sweep
        orchestrator first (parallel, resumable, trace-recording), so
        baselines are shared artifacts; only scheduler-shrunk variants
        are computed lazily inside the service run.
        """
        provider = BaselineProvider(
            policy=self.substrate,
            artifacts_dir=None if self.root is None else self.root / "baselines",
        )
        from repro.sweep.grid import config_hash

        configs = {}
        for request in requests:
            config = TrainingConfig(**request.config_kwargs)
            configs.setdefault(config_hash(config), config)
        if self.root is not None:
            from repro.substrate.traces import scan_traces
            from repro.sweep.artifacts import scan_artifacts
            from repro.sweep.orchestrator import run_sweep

            run_sweep(
                [BaselineProvider.baseline_point(c) for c in configs.values()],
                out_dir=self.root / "baselines",
                jobs=self.jobs,
                resume=self.resume,
                substrate=self.substrate,
                traces_dir=self.root / "traces",
                progress=self.progress,
            )
            artifacts, _ = scan_artifacts(self.root / "baselines")
            provider.prime(artifacts)
            traces, _ = scan_traces(self.root / "traces")
            provider.prime_traces(traces)
        return provider

    # -- the verb ----------------------------------------------------------
    def run(self) -> ServiceOutcome:
        """Simulate the workload (or load the persisted report)."""
        requests = self.requests()
        fingerprint = _workload_fingerprint(
            self.scheduler, self.max_concurrent, requests
        )
        if self.config is not None:
            fingerprint["service"] = service_fingerprint(self.config)
        workload_hash = fingerprint_hash(fingerprint)
        path = self._report_path(workload_hash)

        if self.resume and path is not None and path.exists():
            with path.open(encoding="utf-8") as fh:
                report = json.load(fh)
            validate_report(report, expected_hash=workload_hash)
            return ServiceOutcome(data=report, ran_jobs=0, path=path)

        runtime = ServiceRuntime(
            requests,
            make_scheduler(self.scheduler),
            self.max_concurrent,
            self._baselines(requests),
        )
        records = runtime.run()
        report = build_report(workload_hash, fingerprint, records)
        validate_report(report, expected_hash=workload_hash)
        if path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(
                json.dumps(report, sort_keys=True, indent=1) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, path)
        return ServiceOutcome(data=report, ran_jobs=len(records), path=path)
