"""``repro.api`` — the public, documented way to script the simulator.

Three layers, smallest first:

* **One run.** :func:`run` trains a :class:`Scenario` (or a raw
  ``TrainingConfig``) and returns the :class:`RunResult`::

      from repro.api import Scenario, run

      result = run(Scenario.workload("lr", "higgs", workers=10))
      print(result.summary())

* **A session.** :class:`Session` owns an artifact root and a substrate
  policy; its ``run``/``sweep``/``compare`` are content-addressed and
  resumable — repeating a call against the same root re-runs nothing::

      from repro.api import Scenario, Session

      s = Session("results", jobs=4)           # substrate="auto"
      outcome = s.sweep("fig11")               # any registered study
      print(outcome.report())
      verdict = s.compare({
          "faas": Scenario.workload("lr", "higgs"),
          "iaas": Scenario.workload("lr", "higgs", system="pytorch"),
      })
      print(verdict.report())

* **A service.** :class:`Service` runs a whole multi-tenant workload —
  seeded Poisson or trace-driven arrivals, pluggable schedulers — on one
  shared engine with shared storage capacity, and reports p50/p99
  completion, $/job and contention slowdown per tenant. Shaped exactly
  like ``Session``: content-addressed, resume-by-default::

      from repro.api import Service, ServiceConfig

      svc = Service("results", arrivals=ServiceConfig(rate=6.0, tenants=12),
                    scheduler="fair_share")
      print(svc.run().report())

* **A serving pipeline.** :class:`ServingSession` owns the whole
  train-then-serve pipeline declared by one :class:`ServingConfig` —
  train the model, register it, replay seeded traffic against an
  autoscaled replica pool — and reports latency tails, cold-start
  fraction and end-to-end dollars. Content-addressed and
  resume-by-default like everything else::

      from repro.api import ServingConfig, ServingSession

      pipe = ServingSession("results", config=ServingConfig(
          platform="faas", traffic="bursty", autoscaler="concurrency"))
      print(pipe.run().report())

* **A new study.** Declare ``points(ctx)`` / ``aggregate`` /
  ``format_report`` on a class, decorate it with :func:`study`, and the
  name becomes available to ``Session.sweep`` and ``repro.cli sweep``
  alike (see ``examples/custom_study.py`` — a complete new experiment
  is ~30 lines).

The analytical toolkit the paper's Section-5.3 model uses is re-exported
here too (:class:`AnalyticalModel`, :class:`WorkloadParams`,
:class:`HybridModel`, :class:`SamplingEstimator`) so capacity-planning
scripts need no internal imports.
"""

from repro.analytics.casestudy import HybridModel
from repro.analytics.estimator import SamplingEstimator
from repro.analytics.model import AnalyticalModel, WorkloadParams
from repro.api.scenario import Scenario
from repro.api.service import Service, ServiceOutcome
from repro.api.serving import ServingOutcome, ServingSession
from repro.api.session import Comparison, Session, StudyOutcome
from repro.serving.config import ServingConfig
from repro.service.config import ServiceConfig
from repro.core.config import TrainingConfig
from repro.core.results import RunResult
from repro.experiments.workloads import WORKLOADS, Workload, get_workload
from repro.sweep.grid import SweepPoint, expand_grid
from repro.sweep.study import (
    Study,
    StudyContext,
    all_studies,
    get_study,
    study,
    study_names,
)

__all__ = [
    "AnalyticalModel",
    "Comparison",
    "HybridModel",
    "RunResult",
    "SamplingEstimator",
    "Scenario",
    "Service",
    "ServiceConfig",
    "ServiceOutcome",
    "ServingConfig",
    "ServingOutcome",
    "ServingSession",
    "Session",
    "Study",
    "StudyContext",
    "StudyOutcome",
    "SweepPoint",
    "TrainingConfig",
    "WORKLOADS",
    "Workload",
    "WorkloadParams",
    "all_studies",
    "compare",
    "expand_grid",
    "get_study",
    "get_workload",
    "run",
    "study",
    "study_names",
    "sweep",
]


def run(scenario, *, substrate: str | None = None) -> RunResult:
    """Train one scenario in a throwaway in-memory session."""
    return Session(None).run(scenario, substrate=substrate)


def sweep(study, **kwargs) -> StudyOutcome:
    """Run a study (by name, object, or scenario list) in memory."""
    return Session(None).sweep(study, **kwargs)


def compare(scenarios, *, substrate: str | None = None) -> Comparison:
    """Run labelled scenarios head to head in memory."""
    return Session(None).compare(scenarios, substrate=substrate)
