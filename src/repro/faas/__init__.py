"""Simulated FaaS (AWS-Lambda-like) runtime substrate."""

from repro.faas.checkpoint import Checkpoint, checkpoint_bytes
from repro.faas.limits import LambdaLimits, lambda_speed_factor, lambda_vcpus
from repro.faas.runtime import FunctionLifetime, faas_startup_seconds

__all__ = [
    "LambdaLimits",
    "lambda_vcpus",
    "lambda_speed_factor",
    "FunctionLifetime",
    "faas_startup_seconds",
    "Checkpoint",
    "checkpoint_bytes",
]
