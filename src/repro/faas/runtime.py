"""FaaS start-up model and function-lifetime tracking.

Start-up times come straight from Table 6 of the paper:
t_F(10) = 1.2 s, t_F(50) = 11 s, t_F(100) = 18 s, t_F(200) = 35 s.
Intermediate worker counts are interpolated log-linearly; a single
function starts in about one second (Figure 10 reports 1.3 s).

:class:`FunctionLifetime` is the cooperative timeout monitor from
Figure 5: the executor consults it at every round boundary and, when
the 15-minute wall approaches, checkpoints and "re-invokes" itself
(lifetime reset plus the simulated cost of a cold start and state
reload).
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError, FunctionTimeoutError
from repro.faas.limits import LambdaLimits

# (workers, seconds) anchors from Table 6.
_STARTUP_ANCHORS = [(1, 1.0), (10, 1.2), (50, 11.0), (100, 18.0), (200, 35.0)]

# Cold start + handler init of a single re-invoked worker (Figure 5's
# self-trigger); matches the ~1 s single-function start-up.
REINVOKE_OVERHEAD_S = 1.0


def faas_startup_seconds(workers: int) -> float:
    """Time until all `workers` Lambda functions are up (t_F(w))."""
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    anchors = _STARTUP_ANCHORS
    if workers <= anchors[0][0]:
        return anchors[0][1]
    for (w0, t0), (w1, t1) in zip(anchors, anchors[1:]):
        if w0 <= workers <= w1:
            # Log-linear interpolation between anchors.
            frac = (math.log(workers) - math.log(w0)) / (math.log(w1) - math.log(w0))
            return t0 + frac * (t1 - t0)
    # Extrapolate beyond 200 workers linearly in w (invocation batches).
    w_last, t_last = anchors[-1]
    return t_last * (workers / w_last)


class FunctionLifetime:
    """Tracks one worker's current function instance against the timeout."""

    def __init__(self, limits: LambdaLimits, started_at: float) -> None:
        self.limits = limits
        self.started_at = started_at
        self.incarnations = 1

    def remaining(self, now: float) -> float:
        return self.limits.lifetime_s - (now - self.started_at)

    def needs_checkpoint(self, now: float, next_round_estimate_s: float = 0.0) -> bool:
        """True when the next round may not fit in the remaining lifetime.

        The comparison is inclusive: when the estimate plus the safety
        margin exactly equals the remaining lifetime, the round would
        finish at the instant AWS reclaims the function — the margin
        exists precisely so that knife-edge never runs.
        """
        margin = self.limits.checkpoint_margin_s + next_round_estimate_s
        return self.remaining(now) <= margin

    def ensure_alive(self, now: float) -> None:
        """Raise if the function's lifetime is already spent.

        Inclusive at zero: a function that has consumed exactly its
        lifetime is terminated by the platform, not granted one more
        instant.
        """
        if self.remaining(now) <= 0:
            raise FunctionTimeoutError(
                f"function exceeded its {self.limits.lifetime_s:.0f}s lifetime "
                f"(started at {self.started_at:.1f}s, now {now:.1f}s)"
            )

    def reincarnate(self, now: float) -> None:
        """Account for a self-triggered successor function (Figure 5)."""
        self.started_at = now
        self.incarnations += 1
