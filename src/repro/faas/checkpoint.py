"""Checkpoint contents for the limited-lifetime mechanism (Figure 5).

A checkpoint carries everything a successor function needs to continue
the same partition: the model/algorithm parameters, the training
position (epoch + round), and the most recent local loss. Its wire
size is the logical model size plus a small metadata envelope.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

CHECKPOINT_METADATA_BYTES = 512


@dataclass
class Checkpoint:
    """Snapshot of one worker's training position."""

    rank: int
    epoch_float: float
    round_index: int
    params: np.ndarray
    last_local_loss: float

    def key(self) -> str:
        return self.key_for(self.rank)

    @staticmethod
    def key_for(rank: int) -> str:
        """Storage key of worker `rank`'s checkpoint (latest wins)."""
        return f"ckpt/worker_{rank:05d}"


def checkpoint_bytes(logical_param_bytes: int) -> int:
    """Simulated wire size of a checkpoint."""
    return logical_param_bytes + CHECKPOINT_METADATA_BYTES
