"""AWS Lambda resource limits (as of the paper, 2020/2021).

A function gets at most 3 GB of memory, vCPU share proportional to
memory (1.8 vCPU at 3 GB — the paper's Table 2 annotations), and must
finish within 15 minutes. These constraints drive most of LambdaML's
design: checkpointing (lifetime), batch-size caps (memory), and the
serialization bottleneck of the hybrid architecture (vCPU share).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

MAX_MEMORY_GB = 3.0
MAX_LIFETIME_S = 15 * 60.0
VCPU_PER_GB = 0.6  # 3 GB -> 1.8 vCPU, 1 GB -> 0.6 vCPU
REFERENCE_VCPUS = 1.8  # compute profiles are calibrated at 3 GB


@dataclass(frozen=True)
class LambdaLimits:
    """Per-function resource envelope."""

    memory_gb: float = 3.0
    lifetime_s: float = MAX_LIFETIME_S
    # Checkpoint when remaining lifetime falls below this margin.
    checkpoint_margin_s: float = 30.0

    def __post_init__(self) -> None:
        if not 0 < self.memory_gb <= MAX_MEMORY_GB:
            raise ConfigurationError(
                f"Lambda memory must be in (0, {MAX_MEMORY_GB}] GB, got {self.memory_gb}"
            )
        if not 0 < self.lifetime_s <= MAX_LIFETIME_S:
            raise ConfigurationError(
                f"Lambda lifetime must be in (0, {MAX_LIFETIME_S}] s, got {self.lifetime_s}"
            )

    @property
    def memory_bytes(self) -> int:
        return int(self.memory_gb * 1024**3)


def lambda_vcpus(memory_gb: float) -> float:
    """vCPU share allotted to a function of the given memory size."""
    if memory_gb <= 0:
        raise ConfigurationError(f"memory must be positive, got {memory_gb}")
    return memory_gb * VCPU_PER_GB


def lambda_speed_factor(memory_gb: float) -> float:
    """Training throughput relative to the 3 GB reference function."""
    return lambda_vcpus(memory_gb) / REFERENCE_VCPUS
