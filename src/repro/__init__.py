"""repro: a reproduction of "Towards Demystifying Serverless Machine
Learning Training" (Jiang et al., SIGMOD 2021).

The package implements LambdaML — FaaS-based distributed ML training
over simulated AWS infrastructure — together with the IaaS baselines
(distributed PyTorch, Angel, the Cirrus-style hybrid parameter server)
and the paper's analytical cost/performance model.

Quickstart (the public facade lives in :mod:`repro.api`)::

    from repro.api import Scenario, run

    result = run(Scenario(
        model="lr", dataset="higgs", algorithm="admm",
        system="lambdaml", workers=10, loss_threshold=0.66,
    ))
    print(result.summary())

``from repro import TrainingConfig, train`` remains available for
low-level use.
"""

from repro.core.config import TrainingConfig
from repro.core.driver import train
from repro.core.results import RunResult

__version__ = "1.5.0"

__all__ = ["TrainingConfig", "train", "RunResult", "__version__"]
