"""Serving-platform cost/throughput profiles (the FaaS vs GPU cost axis).

The serving tier prices three ways of hosting inference replicas:

* ``faas`` — Lambda-style functions. Billed per GB-second *of use*
  (idle warm containers are free), so the effective hourly rate below
  is the ceiling at 100 % utilization.
* ``iaas`` — always-on CPU VMs (c5.xlarge by default), billed per
  instance-hour whether or not requests arrive.
* ``gpu_iaas`` — always-on GPU VMs (g4dn.xlarge / NVIDIA T4 by
  default). The throughput multiplier comes from the published
  CPU-serverless-vs-GPU cost-performance ratios (Barrak et al.) and
  matches the training-side calibration in :mod:`repro.models.zoo`:
  T4 ≈ 27× and M60 ≈ 20× a Lambda-class reference worker for the CNN
  workloads, with no speed-up for models without GPU kernels.

The profiles are frozen and catalog-driven so every serving experiment
bills identically; :func:`inference_speedup` is the single place the
platform axis touches per-request service time.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models.zoo import ComputeProfile
from repro.pricing.catalog import DEFAULT_CATALOG, PriceCatalog

# Single-request speed of one always-on CPU VM core relative to the
# Lambda reference worker (3 GB ≈ 1.8 shared vCPU): a dedicated c5
# core is modestly faster per request.
IAAS_CPU_MULTIPLIER = 1.2

# Cold provisioning latency for always-on platforms: EC2 launch +
# image boot. GPU instances take longer (driver + runtime init).
IAAS_BOOT_S = 40.0
GPU_IAAS_BOOT_S = 60.0


@dataclass(frozen=True)
class PlatformProfile:
    """One way of hosting inference replicas, priced."""

    name: str
    kind: str  # "faas" | "iaas"
    instance: str | None = None  # EC2 instance type (IaaS platforms)
    gpu: bool = False
    cpu_multiplier: float = 1.0  # per-request speed vs the Lambda ref worker
    boot_s: float = 0.0  # provisioning latency of one replica (VM boot)

    def __post_init__(self) -> None:
        if self.kind not in ("faas", "iaas"):
            raise ConfigurationError(
                f"platform kind must be 'faas' or 'iaas', got {self.kind!r}"
            )
        if self.kind == "iaas" and not self.instance:
            raise ConfigurationError(f"IaaS platform {self.name!r} needs an instance type")

    def hourly_dollars(
        self, catalog: PriceCatalog = DEFAULT_CATALOG, memory_gb: float = 3.0
    ) -> float:
        """$/replica-hour: the VM rate, or Lambda's 100 %-utilization ceiling."""
        if self.kind == "faas":
            return memory_gb * 3600.0 * catalog.lambda_per_gb_second
        return catalog.ec2_price(self.instance)


def inference_speedup(profile: PlatformProfile, compute: ComputeProfile) -> float:
    """Per-request service-time divisor for a model on a platform.

    FaaS replicas are the reference worker (1.0). GPU platforms get the
    model's calibrated GPU ratio (T4 for g4 instances, M60 for g3);
    models without GPU kernels (``gpu_speedup_* == 1``) fall back to
    the platform's CPU multiplier — a GPU box still has CPU cores.
    """
    if profile.kind == "faas":
        return 1.0
    if profile.gpu:
        instance = profile.instance or ""
        gpu = (
            compute.gpu_speedup_t4
            if instance.startswith("g4")
            else compute.gpu_speedup_m60
        )
        return max(gpu, profile.cpu_multiplier)
    return profile.cpu_multiplier


SERVING_PLATFORMS: dict[str, PlatformProfile] = {
    "faas": PlatformProfile(name="faas", kind="faas"),
    "iaas": PlatformProfile(
        name="iaas",
        kind="iaas",
        instance="c5.xlarge",
        cpu_multiplier=IAAS_CPU_MULTIPLIER,
        boot_s=IAAS_BOOT_S,
    ),
    "gpu_iaas": PlatformProfile(
        name="gpu_iaas",
        kind="iaas",
        instance="g4dn.xlarge",
        gpu=True,
        cpu_multiplier=IAAS_CPU_MULTIPLIER,
        boot_s=GPU_IAAS_BOOT_S,
    ),
}


def get_platform(
    name: str,
    instance: str | None = None,
    gpu_instance: str | None = None,
) -> PlatformProfile:
    """Resolve a platform name, optionally overriding the instance type."""
    try:
        profile = SERVING_PLATFORMS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown serving platform {name!r}; known: {sorted(SERVING_PLATFORMS)}"
        ) from None
    override = gpu_instance if profile.gpu else instance
    if profile.kind == "iaas" and override and override != profile.instance:
        profile = dataclasses.replace(profile, instance=override)
    return profile
