"""Per-run dollar accounting.

A :class:`CostMeter` accumulates charges from every simulated resource
involved in a training job (Lambda GB-seconds, EC2 instance-seconds,
ElastiCache node-seconds, S3/DynamoDB requests). Experiments read the
total and the per-component breakdown to build the cost axes of
Figures 11/12 and the cost columns of Tables 1 and 5.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.pricing.catalog import (
    DYNAMODB_READ_UNIT_BYTES,
    DYNAMODB_WRITE_UNIT_BYTES,
    DEFAULT_CATALOG,
    PriceCatalog,
)


class CostMeter:
    """Accumulates dollars per component for one simulated run."""

    def __init__(self, catalog: PriceCatalog = DEFAULT_CATALOG) -> None:
        self.catalog = catalog
        self.dollars: dict[str, float] = defaultdict(float)
        self.counters: dict[str, int] = defaultdict(int)

    # -- generic ----------------------------------------------------------
    def add(self, component: str, dollars: float) -> None:
        if dollars < 0:
            raise ValueError(f"negative charge {dollars} for {component}")
        self.dollars[component] += dollars

    def _add_repeated(self, component: str, dollars: float, count: int) -> None:
        """Charge `dollars` exactly `count` times in one call.

        Keeps the accumulator bit-identical to `count` separate
        :meth:`add` calls (repeated float addition is not the same as
        one fused ``count * dollars`` add) while doing the price lookup
        and dict access once — this is the batched poll-billing path,
        where `count` can be thousands per satisfied wait.
        """
        if dollars < 0:
            raise ValueError(f"negative charge {dollars} for {component}")
        total = self.dollars[component]
        for _ in range(count):
            total += dollars
        self.dollars[component] = total

    @property
    def total(self) -> float:
        return sum(self.dollars.values())

    def breakdown(self) -> dict[str, float]:
        return dict(self.dollars)

    # -- compute ----------------------------------------------------------
    def bill_lambda(self, memory_gb: float, seconds: float, invocations: int = 0) -> None:
        self.add("lambda", memory_gb * seconds * self.catalog.lambda_per_gb_second)
        if invocations:
            self.add("lambda", invocations * self.catalog.lambda_per_request)
            self.counters["lambda_invocations"] += invocations

    def bill_vm(self, instance: str, seconds: float, count: int = 1) -> None:
        hourly = self.catalog.ec2_price(instance)
        self.add("ec2", hourly * (seconds / 3600.0) * count)

    def bill_elasticache(self, node: str, seconds: float) -> None:
        hourly = self.catalog.elasticache_price(node)
        self.add("elasticache", hourly * (seconds / 3600.0))

    # -- storage requests ---------------------------------------------------
    def bill_s3_request(self, op: str, count: int = 1) -> None:
        if op in ("put", "list", "delete"):
            self._add_repeated("s3", self.catalog.s3_per_put, count)
        else:
            self._add_repeated("s3", self.catalog.s3_per_get, count)
        self.counters[f"s3_{op}"] += count

    def bill_dynamodb_request(self, op: str, nbytes: int, count: int = 1) -> None:
        if op in ("put", "delete"):
            units = max(1, math.ceil(nbytes / DYNAMODB_WRITE_UNIT_BYTES))
            self._add_repeated("dynamodb", units * self.catalog.dynamodb_per_write_unit, count)
        else:
            units = max(1, math.ceil(nbytes / DYNAMODB_READ_UNIT_BYTES))
            self._add_repeated("dynamodb", units * self.catalog.dynamodb_per_read_unit, count)
        self.counters[f"dynamodb_{op}"] += count
