"""2021-era AWS price points used by the cost model.

Values are on-demand us-east-1 prices contemporaneous with the paper
(the paper itself quotes cache.t3.small at $0.034/h, which anchors the
catalog). Prices are inputs to the reproduction, not measurements; the
catalog is immutable so every experiment bills identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.errors import ConfigurationError

# Lambda: charged per GB-second of configured memory, plus per request.
LAMBDA_PER_GB_SECOND = 0.0000166667
LAMBDA_PER_REQUEST = 0.0000002

# EC2 on-demand hourly prices.
_EC2_HOURLY = {
    "t2.medium": 0.0464,
    "t2.xlarge": 0.1856,
    "t2.2xlarge": 0.3712,
    "c5.large": 0.085,
    "c5.xlarge": 0.17,
    "c5.2xlarge": 0.34,
    "c5.4xlarge": 0.68,
    "c5.9xlarge": 1.53,
    "m5a.12xlarge": 2.064,
    "g3s.xlarge": 0.75,
    "g3.4xlarge": 1.14,
    "g4dn.xlarge": 0.526,
    "g4dn.2xlarge": 0.752,
}

# ElastiCache node hourly prices (same for Redis and Memcached engines).
_ELASTICACHE_HOURLY = {
    "cache.t3.small": 0.034,
    "cache.t3.medium": 0.068,
    "cache.m5.large": 0.156,
}

# S3 request pricing (per single request).
S3_PER_PUT = 0.005 / 1000.0  # also applies to LIST and DELETE-class calls
S3_PER_GET = 0.0004 / 1000.0

# DynamoDB on-demand request units.
DYNAMODB_PER_WRITE_UNIT = 1.25 / 1_000_000.0  # 1 KB per write unit
DYNAMODB_PER_READ_UNIT = 0.25 / 1_000_000.0  # 4 KB per read unit
DYNAMODB_WRITE_UNIT_BYTES = 1024
DYNAMODB_READ_UNIT_BYTES = 4096


@dataclass(frozen=True)
class PriceCatalog:
    """Immutable bundle of unit prices used by :class:`CostMeter`."""

    lambda_per_gb_second: float = LAMBDA_PER_GB_SECOND
    lambda_per_request: float = LAMBDA_PER_REQUEST
    ec2_hourly: Mapping[str, float] = field(
        default_factory=lambda: MappingProxyType(dict(_EC2_HOURLY))
    )
    elasticache_hourly: Mapping[str, float] = field(
        default_factory=lambda: MappingProxyType(dict(_ELASTICACHE_HOURLY))
    )
    s3_per_put: float = S3_PER_PUT
    s3_per_get: float = S3_PER_GET
    dynamodb_per_write_unit: float = DYNAMODB_PER_WRITE_UNIT
    dynamodb_per_read_unit: float = DYNAMODB_PER_READ_UNIT

    def ec2_price(self, instance: str) -> float:
        try:
            return self.ec2_hourly[instance]
        except KeyError:
            raise ConfigurationError(
                f"unknown EC2 instance type {instance!r}; known: {sorted(self.ec2_hourly)}"
            ) from None

    def elasticache_price(self, node: str) -> float:
        try:
            return self.elasticache_hourly[node]
        except KeyError:
            raise ConfigurationError(
                f"unknown ElastiCache node {node!r}; known: {sorted(self.elasticache_hourly)}"
            ) from None


DEFAULT_CATALOG = PriceCatalog()
