"""AWS-style pricing: a 2021 price catalog and per-run cost meters."""

from repro.pricing.catalog import PriceCatalog, DEFAULT_CATALOG
from repro.pricing.meter import CostMeter

__all__ = ["PriceCatalog", "DEFAULT_CATALOG", "CostMeter"]
