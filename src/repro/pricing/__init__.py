"""AWS-style pricing: a 2021 price catalog, cost meters, platform profiles."""

from repro.pricing.catalog import PriceCatalog, DEFAULT_CATALOG
from repro.pricing.meter import CostMeter
from repro.pricing.platforms import (
    SERVING_PLATFORMS,
    PlatformProfile,
    get_platform,
    inference_speedup,
)

__all__ = [
    "CostMeter",
    "DEFAULT_CATALOG",
    "PlatformProfile",
    "PriceCatalog",
    "SERVING_PLATFORMS",
    "get_platform",
    "inference_speedup",
]
