"""Opt-in run profiling: cProfile plus the engine's event-count stats.

``repro.cli train --profile [DIR]`` and ``repro.cli sweep --profile``
wrap the run in :func:`profile_call`, which captures

* a cProfile of the whole call — both the binary dump (``*.pstats``,
  for ``snakeviz``/``pstats`` exploration) and a human-readable top-40
  by cumulative time (``*_profile.txt``);
* every engine's :class:`~repro.simulation.engine.EngineStats`
  (dispatched events per callsite, batches, peak heap), collected via
  :func:`repro.simulation.engine.capture_stats` so no layer between
  the CLI and the engines needs profiling plumbing
  (``*_engine_stats.json``).

The engine stats answer "*which simulation seam* scheduled the work"
(cheap enough to leave on), the cProfile answers "*which Python
frames* burned the host CPU"; regressions usually show in one before
the other.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
from pathlib import Path
from typing import Any, Callable

from repro.simulation.engine import EngineStats, capture_stats

__all__ = ["profile_call"]

_TOP_FRAMES = 40


def _combined(collected: list[EngineStats]) -> dict:
    """Fold per-engine summaries into one (multi-engine sweeps/service)."""
    by_callsite: dict[str, int] = {}
    for stats in collected:
        for name, count in stats.by_callsite.items():
            by_callsite[name] = by_callsite.get(name, 0) + count
    events = sum(s.events for s in collected)
    batches = sum(s.batches for s in collected)
    ranked = sorted(by_callsite.items(), key=lambda kv: (-kv[1], kv[0]))
    return {
        "engines": len(collected),
        "events": events,
        "batches": batches,
        "events_per_batch": round(events / batches, 3) if batches else 0.0,
        "peak_heap": max((s.peak_heap for s in collected), default=0),
        "top_callsites": ranked[:10],
    }


def profile_call(
    fn: Callable[[], Any], out_dir: str | Path, label: str
) -> tuple[Any, list[Path]]:
    """Run ``fn()`` under cProfile with engine stats capture.

    Writes ``<label>_profile.pstats``, ``<label>_profile.txt`` and
    ``<label>_engine_stats.json`` into ``out_dir`` (created if needed)
    and returns ``(fn's result, written paths)``. Artifacts are written
    even if ``fn`` raises — a run that dies mid-simulation is exactly
    the one worth profiling.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    profiler = cProfile.Profile()
    collected: list[EngineStats] = []
    try:
        with capture_stats(collected):
            profiler.enable()
            try:
                result = fn()
            finally:
                profiler.disable()
    finally:
        paths = _dump(profiler, collected, out, label)
    return result, paths


def _dump(
    profiler: cProfile.Profile,
    collected: list[EngineStats],
    out: Path,
    label: str,
) -> list[Path]:
    binary = out / f"{label}_profile.pstats"
    profiler.dump_stats(binary)

    text = io.StringIO()
    stats = pstats.Stats(profiler, stream=text)
    stats.sort_stats("cumulative").print_stats(_TOP_FRAMES)
    table = out / f"{label}_profile.txt"
    table.write_text(text.getvalue())

    engine_stats = out / f"{label}_engine_stats.json"
    engine_stats.write_text(
        json.dumps(
            {
                "per_engine": [s.summary() for s in collected],
                "combined": _combined(collected),
            },
            indent=1,
        )
        + "\n"
    )
    return [binary, table, engine_stats]
