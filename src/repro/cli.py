"""Command-line interface.

Usage (installed as a module)::

    python -m repro.cli train --model lr --dataset higgs --algorithm admm \
        --system lambdaml --workers 10 --loss-threshold 0.66
    python -m repro.cli workloads
    python -m repro.cli estimate --model lr --dataset higgs \
        --algorithm ma_sgd --lr 0.05 --threshold 0.66
    python -m repro.cli sweep --list
    python -m repro.cli sweep --experiment fig11 --jobs 4 --resume
    python -m repro.cli serve --arrivals poisson --rate 6 --tenants 12 \
        --scheduler fair_share --seed 0
    python -m repro.cli infer --platform faas --traffic bursty \
        --autoscaler concurrency --requests 400

`train` prints a RunResult summary plus breakdowns — its flags are
derived mechanically from the ``TrainingConfig`` dataclass fields, so
the CLI can never drift from the config; `workloads` lists the tuned
Table-4 workloads; `estimate` runs the sampling-based
epochs-to-convergence estimator; `sweep` runs any registered study
(``--list`` prints the catalog) over a process pool, writing one
resumable JSON artifact per point; `serve` runs a multi-tenant training
service workload and `infer` a train-then-serve inference pipeline —
their flags are derived from ``ServiceConfig`` / ``ServingConfig`` the
same way train's are from ``TrainingConfig``.
"""

from __future__ import annotations

import os

# Pin BLAS to one thread *before* numpy loads (same rationale as
# tests/conftest.py): multithreaded reductions reorder float sums,
# which would make sweep artifacts differ between hosts — and between
# serial and pooled runs of the same grid.
BLAS_THREAD_VARS = ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS")
for _var in BLAS_THREAD_VARS:
    os.environ.setdefault(_var, "1")

import argparse
import dataclasses
import json
import sys

from repro.analytics.estimator import SamplingEstimator
from repro.core.config import TrainingConfig
from repro.core.driver import train
from repro.experiments.workloads import WORKLOADS

# Scalar parsers for derived flags. `from __future__ import annotations`
# makes dataclass field types strings ("float | None"); the first union
# alternative names the parser (argparse only calls it on user input, so
# an Optional field's None default survives untouched).
_FLAG_TYPES = {"int": int, "float": float, "str": str, "bool": bool}


def _field_type(f: dataclasses.Field) -> type:
    return _FLAG_TYPES[str(f.type).split("|")[0].strip()]


def _config_fields(cls: type = TrainingConfig) -> list[dataclasses.Field]:
    return [f for f in dataclasses.fields(cls) if f.init]


def add_config_flags(
    parser: argparse.ArgumentParser, cls: type = TrainingConfig
) -> None:
    """Derive one ``--flag`` per init field of a ``_cli``-annotated config.

    Name, type and default come from the dataclass; help text and
    choices from the field's metadata (see ``_cli`` in
    repro.core.config). Config and CLI therefore cannot drift: a new
    config field IS a new flag — ``train`` derives from
    ``TrainingConfig``, ``serve`` from ``ServiceConfig`` — and the
    parity tests in tests/test_cli.py pin both bijections.
    """
    for f in _config_fields(cls):
        flag = "--" + f.name.replace("_", "-")
        if _field_type(f) is bool:
            parser.add_argument(
                flag, action=argparse.BooleanOptionalAction,
                default=f.default, help=f.metadata.get("help"),
            )
            continue
        kwargs: dict = {"type": _field_type(f), "help": f.metadata.get("help")}
        if "choices" in f.metadata:
            kwargs["choices"] = list(f.metadata["choices"])
        if f.default is dataclasses.MISSING:
            kwargs["required"] = True
        else:
            kwargs["default"] = f.default
        parser.add_argument(flag, **kwargs)


def config_from_args(args: argparse.Namespace, cls: type = TrainingConfig):
    """Build the config from the derived flags (one kwarg per field)."""
    return cls(**{f.name: getattr(args, f.name) for f in _config_fields(cls)})


def _add_train_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "train",
        help="run one simulated training job (flags mirror TrainingConfig)",
    )
    add_config_flags(p)
    # Orchestration flag, not part of the workload's identity (the
    # flag<->TrainingConfig parity test excludes it by name).
    p.add_argument("--profile", metavar="DIR", nargs="?", const="profile",
                   default=None,
                   help="dump a cProfile (.pstats + top-40 text table) and "
                   "the engine's event-count stats into DIR "
                   "(default: ./profile)")


def _run_train(args: argparse.Namespace) -> int:
    config = config_from_args(args)
    if args.profile:
        from repro.profiling import profile_call

        result, paths = profile_call(lambda: train(config), args.profile, "train")
        for path in paths:
            print(f"profile: {path}", file=sys.stderr)
    else:
        result = train(config)
    print(result.summary())
    print("\ntime breakdown (s):")
    for phase, seconds in sorted(result.breakdown.as_dict().items()):
        print(f"  {phase:<12} {seconds:10.2f}")
    print("\ncost breakdown ($):")
    for component, dollars in sorted(result.cost_breakdown.items()):
        print(f"  {component:<12} {dollars:10.4f}")
    if config.faults_enabled:
        print("\nreliability events:")
        for name, value in sorted(result.events.items()):
            print(f"  {name:<24} {value}")
    return 0 if (result.converged or config.loss_threshold is None) else 1


def _run_workloads(_args: argparse.Namespace) -> int:
    print(f"{'workload':<22} {'algorithm':<8} {'W':>4} {'batch':>9} "
          f"{'lr':>6} {'threshold':>9} {'paper':>7}")
    for key, w in sorted(WORKLOADS.items()):
        print(
            f"{key:<22} {w.algorithm:<8} {w.workers:>4} {w.batch_size:>9} "
            f"{w.lr:>6} {w.threshold:>9} {w.paper_threshold:>7}"
        )
    return 0


def _add_estimate_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "estimate", help="sampling-based epochs-to-convergence estimate"
    )
    p.add_argument("--model", required=True)
    p.add_argument("--dataset", required=True)
    p.add_argument("--algorithm", default="ma_sgd")
    p.add_argument("--lr", type=float, required=True)
    p.add_argument("--threshold", type=float, required=True)
    p.add_argument("--sample-fraction", type=float, default=0.1)
    p.add_argument("--batch-size", type=int, default=100)
    p.add_argument("--seed", type=int, default=20210620)


def _run_estimate(args: argparse.Namespace) -> int:
    estimator = SamplingEstimator(sample_fraction=args.sample_fraction, seed=args.seed)
    estimate = estimator.estimate(
        args.model, args.dataset, args.algorithm,
        lr=args.lr, threshold=args.threshold, batch_size=args.batch_size,
    )
    state = "converged" if estimate.converged else "did NOT converge"
    print(f"{state}: ~{estimate.epochs:.1f} epochs to loss {args.threshold}")
    for epoch, loss in estimate.trajectory[:12]:
        print(f"  epoch {epoch:6.1f}: loss {loss:.4f}")
    return 0 if estimate.converged else 1


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text}")
    return value


def _add_sweep_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "sweep",
        help="run a registered study's grid over a process pool with "
        "resumable per-point JSON artifacts",
    )
    # No choices= here: that would import every experiment module just
    # to build the parser for unrelated commands. An unknown name is
    # rejected by get_study() with the full known-names list.
    p.add_argument("--experiment", metavar="STUDY",
                   help="registered study to run (see --list)")
    p.add_argument("--list", action="store_true",
                   help="print every registered study (kind, grid size, "
                   "unique statistical fingerprints) and exit")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (1 = run inline)")
    p.add_argument("--out", default=None,
                   help="artifact directory (default: sweeps/<experiment>)")
    p.add_argument("--resume", action="store_true",
                   help="skip points whose artifact already exists in --out")
    p.add_argument("--substrate", default="exact",
                   choices=["exact", "replay", "auto"],
                   help="statistical backend: 'exact' trains every point with "
                   "real numpy; 'auto' records one trace per unique statistical "
                   "fingerprint and replays it across the systems grid "
                   "(bit-identical artifacts, exact fallback for timing-coupled "
                   "ASP/hybrid points); 'replay' is auto that refuses "
                   "timing-coupled points")
    p.add_argument("--traces", default=None,
                   help="convergence trace directory (default: <out>/traces)")
    p.add_argument("--dry-run", action="store_true",
                   help="print grid size, unique statistical fingerprints and "
                   "existing artifact/trace counts, then exit without running")
    p.add_argument("--max-epochs", type=_positive_float, default=None,
                   help="override every point's epoch cap (scaled-down sweeps)")
    p.add_argument("--seed", type=int, default=20210620)
    p.add_argument("--mega", action="store_true",
                   help="include the mega-scale grid tails (fig11: FaaS "
                   "W=1024/2048/4096) — opt-in so default sweeps and CI "
                   "smoke runs keep their wall budget")
    p.add_argument("--no-report", action="store_true",
                   help="skip the aggregated report (summary line only)")
    p.add_argument("--profile", action="store_true",
                   help="run the sweep under cProfile and dump it plus the "
                   "engines' event-count stats into <out>/profile "
                   "(forces --jobs 1: profiling is per-process)")


def _dry_run_sweep(args: argparse.Namespace, experiment, points, out_dir) -> int:
    from repro.sweep.orchestrator import plan_sweep

    # The plan mirrors the run flags exactly: without --resume, on-disk
    # artifacts/traces are reported but NOT counted as done, because the
    # real run would re-run everything too.
    plan = plan_sweep(
        points, out_dir=out_dir, traces_dir=args.traces, resume=args.resume
    )
    print(f"sweep {experiment.name} (dry run; nothing was executed)")
    print(f"  grid points (deduped):        {plan['points']}")
    print(f"  unique stat fingerprints:     {plan['unique_stat_fingerprints']}"
          + (f" ({plan['timing_coupled_points']} timing-coupled point(s): "
             "exact-only)" if plan['timing_coupled_points'] else ""))
    print(f"  artifacts in {plan['out_dir']}: {plan['artifacts_present']}"
          + (f" (+{plan['artifacts_corrupt']} corrupt)"
             if plan['artifacts_corrupt'] else ""))
    print(f"  traces in {plan['traces_dir']}: {plan['traces_present']}"
          + (f" (+{plan['traces_corrupt']} corrupt)"
             if plan['traces_corrupt'] else ""))
    if not args.resume and (plan["artifacts_present"] or plan["traces_present"]):
        print("  note: existing artifacts/traces are reused only with --resume; "
              "without it this invocation re-runs every point")
    if args.substrate == "exact":
        print(f"  substrate=exact would train:  {plan['pending_points']} point(s)")
    elif args.substrate == "replay" and plan["pending_timing_coupled"]:
        print(f"  substrate=replay would FAIL: "
              f"{plan['pending_timing_coupled']} pending timing-coupled "
              "point(s) cannot be replayed (use --substrate auto or exact)")
    else:
        print(f"  substrate={args.substrate} would train: "
              f"{plan['exact_trainings_needed']} exact point(s) and replay "
              f"{plan['replays_needed']}")
    return 0


def _list_studies(args: argparse.Namespace) -> int:
    """``sweep --list``: the catalog, with the ``--dry-run`` accounting."""
    from repro.sweep.orchestrator import plan_sweep
    from repro.sweep.study import all_studies

    studies = all_studies()
    width = max(len(name) for name in studies)
    print(f"{'study':<{width}} {'kind':<6} {'points':>6} {'stat-fp':>7}  description")
    for name, entry in studies.items():
        points = entry.points(
            max_epochs=args.max_epochs, seed=args.seed, mega=args.mega
        )
        plan = plan_sweep(points)
        print(
            f"{name:<{width}} {entry.kind:<6} {plan['points']:>6} "
            f"{plan['unique_stat_fingerprints']:>7}  {entry.description}"
        )
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    from repro.sweep.orchestrator import run_sweep
    from repro.sweep.study import get_study

    if args.list:
        return _list_studies(args)
    if args.experiment is None:
        print("error: sweep needs --experiment NAME (or --list)", file=sys.stderr)
        return 2

    # setdefault above respects a pre-set host env — but multithreaded
    # BLAS reorders float sums, so artifacts would not be comparable
    # across hosts (or against a pinned run). Say so rather than guess.
    unpinned = [var for var in BLAS_THREAD_VARS if os.environ.get(var) != "1"]
    if unpinned:
        print(
            f"warning: {', '.join(unpinned)} pre-set to a value other than 1; "
            "multithreaded BLAS may make artifacts differ from "
            "single-threaded hosts (unset, or export =1, for bit-stable sweeps)",
            file=sys.stderr,
        )

    experiment = get_study(args.experiment)
    points = experiment.points(
        max_epochs=args.max_epochs, seed=args.seed, mega=args.mega
    )
    out_dir = args.out or os.path.join("sweeps", experiment.name)
    if args.dry_run:
        return _dry_run_sweep(args, experiment, points, out_dir)
    jobs = args.jobs
    if args.profile and jobs != 1:
        print("note: --profile forces --jobs 1 (cProfile and engine stats "
              "are per-process)", file=sys.stderr)
        jobs = 1

    def execute():
        return run_sweep(
            points,
            out_dir=out_dir,
            jobs=jobs,
            resume=args.resume,
            substrate=args.substrate,
            traces_dir=args.traces,
            progress=lambda message: print(message, file=sys.stderr, flush=True),
        )

    if args.profile:
        from repro.profiling import profile_call

        run, paths = profile_call(
            execute, os.path.join(out_dir, "profile"), "sweep"
        )
        for path in paths:
            print(f"profile: {path}", file=sys.stderr)
    else:
        run = execute()
    if not args.no_report:
        print(experiment.format_report(experiment.aggregate(run.artifacts)))
        print()
    detail = ""
    if run.substrate != "exact":
        detail = (
            f" [{run.substrate}: {run.stat_groups} unique stat fingerprint(s), "
            f"{run.recorded} recorded, {run.replayed} replayed, "
            f"{run.exact_runs} exact]"
        )
    print(
        f"sweep {experiment.name}: {run.ran} point(s) run, "
        f"{run.skipped} skipped via resume, "
        f"{len(run.corrupt)} corrupt artifact(s) re-run; "
        f"artifacts in {run.out_dir}" + detail
    )
    if run.failed:
        print(f"{len(run.failed)} point(s) FAILED:", file=sys.stderr)
        for failure in run.failed:
            print(
                f"  {failure['label']} ({failure['config_hash']}): "
                f"{failure['reason']}",
                file=sys.stderr,
            )
        print(
            "re-run with --resume to retry only the failed point(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def _add_fuzz_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "fuzz",
        help="run a seeded property-based fuzz campaign over the "
        "TrainingConfig x FaultPlan space, shrinking failures into the "
        "regression corpus",
    )
    p.add_argument("--budget", type=int, default=50,
                   help="number of scenarios to check (default: 50)")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed; 'seed:index' alone reproduces any "
                   "scenario (default: 0)")
    p.add_argument("--workers", type=int, default=1,
                   help="fuzz worker processes; a dying worker is recorded "
                   "as a process_survives finding, not a hang (default: 1)")
    p.add_argument("--corpus", default=None, metavar="DIR",
                   help="where to save shrunk counterexamples (default: the "
                   "in-tree tests/data/fuzz_corpus replayed by tier-1)")
    p.add_argument("--no-shrink", action="store_true",
                   help="record raw counterexamples without minimising them")
    p.add_argument("--show-scenario", default=None, metavar="SEED:INDEX",
                   help="print the config kwargs of one scenario id and exit")


def _run_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import DEFAULT_CORPUS_DIR, ScenarioSpace, run_campaign

    if args.show_scenario is not None:
        scenario = ScenarioSpace.from_id(args.show_scenario)
        print(json.dumps(scenario.config_kwargs, indent=2, sort_keys=True))
        return 0
    if args.budget < 1:
        print("error: --budget must be >= 1", file=sys.stderr)
        return 2
    result = run_campaign(
        budget=args.budget,
        seed=args.seed,
        workers=args.workers,
        corpus_dir=args.corpus or DEFAULT_CORPUS_DIR,
        shrink_failures=not args.no_shrink,
        progress=lambda message: print(message, file=sys.stderr, flush=True),
    )
    print(result.summary())
    if result.findings:
        print(f"{len(result.findings)} counterexample(s):", file=sys.stderr)
        for finding in result.findings:
            print(f"  {finding.describe()}", file=sys.stderr)
            if finding.corpus_path:
                print(f"    saved: {finding.corpus_path}", file=sys.stderr)
        return 1
    return 0


def _add_serve_parser(subparsers) -> None:
    from repro.service.config import ServiceConfig

    p = subparsers.add_parser(
        "serve",
        help="run a multi-tenant training service workload "
        "(flags mirror ServiceConfig)",
    )
    add_config_flags(p, cls=ServiceConfig)
    # Orchestration flags (not part of the workload's identity).
    p.add_argument("--out", default=None,
                   help="service root: report under <out>/service, isolated "
                   "baselines under <out>/baselines (default: in-memory)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the isolated-baseline sweep")
    p.add_argument("--resume", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="load the persisted report for an identical workload "
                   "instead of re-running it (needs --out)")
    p.add_argument("--substrate", default="auto", choices=["auto", "exact"],
                   help="baseline policy: 'auto' replays recorded statistics "
                   "for eligible jobs; 'exact' trains every job with real numpy")
    p.add_argument("--json", action="store_true",
                   help="print the raw report document instead of the table")


def _run_serve(args: argparse.Namespace) -> int:
    from repro.api.service import Service
    from repro.service.config import ServiceConfig

    config = config_from_args(args, cls=ServiceConfig)
    service = Service.from_config(
        config,
        root=args.out,
        jobs=args.jobs,
        substrate=args.substrate,
        resume=args.resume,
        progress=lambda message: print(message, file=sys.stderr, flush=True),
    )
    outcome = service.run()
    if args.json:
        print(json.dumps(outcome.data, sort_keys=True, indent=1))
    else:
        print(outcome.report())
    status = (
        "report resumed, 0 job(s) re-run"
        if outcome.ran_jobs == 0
        else f"{outcome.ran_jobs} job(s) simulated"
    )
    where = f"; report at {outcome.path}" if outcome.path is not None else ""
    print(f"service {outcome.data['service_hash']}: {status}{where}")
    return 0


def _add_infer_parser(subparsers) -> None:
    from repro.serving.config import ServingConfig

    p = subparsers.add_parser(
        "infer",
        help="run a train-then-serve inference pipeline "
        "(flags mirror ServingConfig)",
    )
    add_config_flags(p, cls=ServingConfig)
    # Orchestration flags (not part of the pipeline's identity).
    p.add_argument("--out", default=None,
                   help="pipeline root: serving report under <out>/serving, "
                   "the trained model under <out>/models (default: in-memory)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the training leg")
    p.add_argument("--resume", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="load the persisted report for an identical pipeline "
                   "instead of re-simulating it (needs --out)")
    p.add_argument("--substrate", default="auto", choices=["auto", "exact"],
                   help="training-leg policy: 'auto' replays recorded "
                   "statistics when eligible; 'exact' always trains with "
                   "real numpy")
    p.add_argument("--json", action="store_true",
                   help="print the raw serving report instead of the table")


def _run_infer(args: argparse.Namespace) -> int:
    from repro.api.serving import ServingSession
    from repro.serving.config import ServingConfig

    config = config_from_args(args, cls=ServingConfig)
    session = ServingSession.from_config(
        config,
        root=args.out,
        jobs=args.jobs,
        substrate=args.substrate,
        resume=args.resume,
        progress=lambda message: print(message, file=sys.stderr, flush=True),
    )
    outcome = session.run()
    if args.json:
        print(json.dumps(outcome.data, sort_keys=True, indent=1))
    else:
        print(outcome.report())
    status = (
        "report resumed, 0 request(s) re-simulated"
        if outcome.ran_requests == 0
        else f"{outcome.ran_requests} request(s) simulated"
    )
    where = f"; report at {outcome.path}" if outcome.path is not None else ""
    print(f"serving {outcome.data['serving_hash']}: {status}{where}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LambdaML reproduction: simulated FaaS/IaaS ML training",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_train_parser(subparsers)
    subparsers.add_parser("workloads", help="list tuned Table-4 workloads")
    _add_estimate_parser(subparsers)
    _add_sweep_parser(subparsers)
    _add_serve_parser(subparsers)
    _add_infer_parser(subparsers)
    _add_fuzz_parser(subparsers)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "train": _run_train,
        "workloads": _run_workloads,
        "estimate": _run_estimate,
        "sweep": _run_sweep,
        "serve": _run_serve,
        "infer": _run_infer,
        "fuzz": _run_fuzz,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
