"""The paper's analytical runtime/cost model (Section 5.3).

    FaaS(w) = t_F(w) + load + R_F f_F(w) [ (3w-2)(m/w / B_ch + L_ch) + C_F / w ]
    IaaS(w) = t_I(w) + load + R_I f_I(w) [ (2w-2)(m/w / B_n  + L_n ) + C_I / w ]

The (3w-2) vs (2w-2) asymmetry is structural: FaaS must bounce every
aggregate off a storage service with no compute capacity, costing one
extra leg per worker. Loading reads each worker's partition from S3 in
parallel (Figure 10 measures ~9 s for 8 GB across 10 workers, i.e. the
per-worker share at S3 bandwidth).

Cost is obtained by multiplying runtime by the per-second price of the
resources held: w Lambda functions (GB-seconds) for FaaS, w VMs for
IaaS, plus a parameter-server VM for the hybrid architecture
(Section 5.3.1's Q1 what-ifs plug a 10 Gbps FaaS-IaaS link into the
same expressions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analytics.constants import TABLE6, AnalyticalConstants
from repro.pricing.catalog import DEFAULT_CATALOG, PriceCatalog

MB = 1024 * 1024

ScalingFn = Callable[[int], float]


def _no_scaling(workers: int) -> float:
    return 1.0


@dataclass(frozen=True)
class WorkloadParams:
    """Inputs of the analytical model for one workload."""

    dataset_bytes: float  # s
    model_bytes: float  # m
    epochs_faas: float  # R_F (epochs to converge, 1 worker)
    epochs_iaas: float  # R_I
    compute_faas_s: float  # C_F: single-worker seconds per epoch
    compute_iaas_s: float  # C_I
    rounds_per_epoch: float = 1.0  # communication rounds per epoch
    scaling_faas: ScalingFn = _no_scaling  # f_F(w)
    scaling_iaas: ScalingFn = _no_scaling  # f_I(w)
    # Channel selection for the FaaS side: "s3" or "elasticache".
    channel: str = "s3"
    # Network selection for the IaaS side: "t2" or "c5".
    network: str = "t2"


@dataclass(frozen=True)
class AnalyticalModel:
    """Evaluate FaaS(w) / IaaS(w) and their dollar costs."""

    params: WorkloadParams
    constants: AnalyticalConstants = TABLE6
    catalog: PriceCatalog = field(default_factory=lambda: DEFAULT_CATALOG)

    # -- building blocks ----------------------------------------------------
    def load_seconds(self, workers: int) -> float:
        return self.params.dataset_bytes / (workers * self.constants.bandwidth_s3)

    def _channel(self) -> tuple[float, float]:
        if self.params.channel == "s3":
            return self.constants.bandwidth_s3, self.constants.latency_s3
        if self.params.channel == "elasticache":
            return self.constants.bandwidth_ec_t3, self.constants.latency_ec_t3
        raise ValueError(f"unknown channel {self.params.channel!r}")

    def _network(self) -> tuple[float, float]:
        if self.params.network == "t2":
            return self.constants.bandwidth_net_t2, self.constants.latency_net_t2
        if self.params.network == "c5":
            return self.constants.bandwidth_net_c5, self.constants.latency_net_c5
        raise ValueError(f"unknown network {self.params.network!r}")

    def faas_comm_seconds(self, workers: int) -> float:
        bandwidth, latency = self._channel()
        m = self.params.model_bytes
        per_round = (3 * workers - 2) * ((m / workers) / bandwidth + latency)
        return self.params.rounds_per_epoch * per_round

    def iaas_comm_seconds(self, workers: int) -> float:
        bandwidth, latency = self._network()
        m = self.params.model_bytes
        per_round = (2 * workers - 2) * ((m / workers) / bandwidth + latency)
        return self.params.rounds_per_epoch * per_round

    # -- runtimes -----------------------------------------------------------
    def faas_seconds(self, workers: int) -> float:
        p = self.params
        epochs = p.epochs_faas * p.scaling_faas(workers)
        per_epoch = self.faas_comm_seconds(workers) + p.compute_faas_s / workers
        return self.constants.startup_faas(workers) + self.load_seconds(workers) + epochs * per_epoch

    def iaas_seconds(self, workers: int) -> float:
        p = self.params
        epochs = p.epochs_iaas * p.scaling_iaas(workers)
        per_epoch = self.iaas_comm_seconds(workers) + p.compute_iaas_s / workers
        return self.constants.startup_iaas(workers) + self.load_seconds(workers) + epochs * per_epoch

    # -- costs --------------------------------------------------------------
    def faas_cost(self, workers: int, lambda_memory_gb: float = 3.0) -> float:
        seconds = self.faas_seconds(workers)
        return workers * lambda_memory_gb * seconds * self.catalog.lambda_per_gb_second

    def iaas_cost(self, workers: int, instance: str = "t2.medium") -> float:
        seconds = self.iaas_seconds(workers)
        return workers * self.catalog.ec2_price(instance) * seconds / 3600.0


def faas_time(params: WorkloadParams, workers: int) -> float:
    """Convenience wrapper: FaaS(w) under the default constants."""
    return AnalyticalModel(params).faas_seconds(workers)


def iaas_time(params: WorkloadParams, workers: int) -> float:
    """Convenience wrapper: IaaS(w) under the default constants."""
    return AnalyticalModel(params).iaas_seconds(workers)
