"""Section 5.3.1 case studies: future-infrastructure what-ifs.

Q1 — What if Lambda↔VM communication reached 10 Gbps (and FaaS offered
GPUs at IaaS-like prices)? We re-evaluate the hybrid architecture's
round trip with the bandwidth term replaced, as the paper does in its
analytical model, producing Figure 14's runtime/cost points.

Q2 — What if the data is already hot in a VM (m5a.12xlarge)? Loading
then happens over the VM's egress instead of S3. IaaS peers pull at
near line rate; Lambda functions are bottlenecked by the per-function
FaaS link and the RPC serving path, which is why the paper finds IaaS
"significantly outperforms" FaaS on hot data (Figure 15).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analytics.constants import TABLE6, AnalyticalConstants
from repro.analytics.model import MB, AnalyticalModel, WorkloadParams
from repro.pricing.catalog import DEFAULT_CATALOG, PriceCatalog

# Effective FaaS<->VM bandwidth today (per function) and in the Q1 what-if.
FAAS_VM_BANDWIDTH_TODAY = 70 * MB
FAAS_VM_BANDWIDTH_10G = 1250 * MB

# Q2: hot data served from an m5a.12xlarge. IaaS peers saturate the
# 10 Gbps egress; Lambda readers are bound by the VM's RPC serving
# path (serialization per request), well below line rate.
HOT_VM_EGRESS_IAAS = 1250 * MB
HOT_VM_EGRESS_FAAS = 150 * MB

# Q1 GPU what-if: hypothetical FaaS GPU priced like g3s.xlarge.
GPU_FAAS_HOURLY = 0.75


@dataclass(frozen=True)
class HybridModel:
    """Analytical runtime/cost of the hybrid (PS-on-VM) architecture."""

    params: WorkloadParams
    ps_instance: str = "c5.4xlarge"
    faas_vm_bandwidth: float = FAAS_VM_BANDWIDTH_TODAY
    # Lambda-side serialization rate (gRPC at 1.8 vCPU); the hybrid's
    # bottleneck today (Section 4.3).
    serdes_bandwidth: float = 100 * MB
    constants: AnalyticalConstants = TABLE6
    catalog: PriceCatalog = DEFAULT_CATALOG

    def comm_seconds(self, workers: int) -> float:
        """Per-epoch PS round trips: push m, update, pull m."""
        m = self.params.model_bytes
        per_transfer = m / self.faas_vm_bandwidth + m / self.serdes_bandwidth
        # 2 transfers (push + pull); PS-side update folded into serdes.
        return self.params.rounds_per_epoch * 2.0 * per_transfer

    def seconds(self, workers: int) -> float:
        p = self.params
        epochs = p.epochs_faas * p.scaling_faas(workers)
        per_epoch = self.comm_seconds(workers) + p.compute_faas_s / workers
        startup = self.constants.startup_iaas(1)  # one PS VM gates the job
        load = p.dataset_bytes / (workers * self.constants.bandwidth_s3)
        return startup + load + epochs * per_epoch

    def cost(self, workers: int, lambda_memory_gb: float = 3.0) -> float:
        seconds = self.seconds(workers)
        lam = workers * lambda_memory_gb * seconds * self.catalog.lambda_per_gb_second
        ps = self.catalog.ec2_price(self.ps_instance) * seconds / 3600.0
        return lam + ps


def q1_fast_hybrid(params: WorkloadParams, workers: int) -> dict[str, tuple[float, float]]:
    """Figure 14 points: (runtime, cost) per system with 10 Gbps links."""
    base = AnalyticalModel(params)
    hybrid_now = HybridModel(params)
    hybrid_10g = HybridModel(
        params,
        faas_vm_bandwidth=FAAS_VM_BANDWIDTH_10G,
        serdes_bandwidth=FAAS_VM_BANDWIDTH_10G,
    )
    return {
        "faas": (base.faas_seconds(workers), base.faas_cost(workers)),
        "iaas": (base.iaas_seconds(workers), base.iaas_cost(workers)),
        "hybrid": (hybrid_now.seconds(workers), hybrid_now.cost(workers)),
        "hybrid-10g": (hybrid_10g.seconds(workers), hybrid_10g.cost(workers)),
    }


def q1_gpu_faas_cost(runtime_s: float, workers: int) -> float:
    """Cost of the hypothetical GPU-FaaS at g3s.xlarge-like pricing."""
    return workers * GPU_FAAS_HOURLY * runtime_s / 3600.0


def q2_hot_data(
    params: WorkloadParams, workers: int
) -> dict[str, tuple[float, float]]:
    """Figure 15 points: loading comes from a hot VM instead of S3."""
    s = params.dataset_bytes
    # Replace the S3 load with VM-egress loads per platform.
    no_load = replace(params, dataset_bytes=0.0)
    base = AnalyticalModel(no_load)
    hybrid = HybridModel(no_load)

    iaas_load = s / min(workers * TABLE6.bandwidth_net_t2, HOT_VM_EGRESS_IAAS)
    faas_load = s / min(workers * FAAS_VM_BANDWIDTH_TODAY, HOT_VM_EGRESS_FAAS)

    iaas_s = base.iaas_seconds(workers) + iaas_load
    faas_s = base.faas_seconds(workers) + faas_load
    hybrid_s = hybrid.seconds(workers) + faas_load
    catalog = DEFAULT_CATALOG
    return {
        "iaas": (iaas_s, workers * catalog.ec2_price("t2.medium") * iaas_s / 3600.0),
        "faas": (faas_s, workers * 3.0 * faas_s * catalog.lambda_per_gb_second),
        "hybrid": (
            hybrid_s,
            workers * 3.0 * hybrid_s * catalog.lambda_per_gb_second
            + catalog.ec2_price("c5.4xlarge") * hybrid_s / 3600.0,
        ),
    }
