"""Analytical model of FaaS vs IaaS training (paper Section 5.3)."""

from repro.analytics.constants import TABLE6, AnalyticalConstants
from repro.analytics.estimator import SamplingEstimator
from repro.analytics.model import (
    AnalyticalModel,
    WorkloadParams,
    faas_time,
    iaas_time,
)

__all__ = [
    "TABLE6",
    "AnalyticalConstants",
    "AnalyticalModel",
    "WorkloadParams",
    "faas_time",
    "iaas_time",
    "SamplingEstimator",
]
