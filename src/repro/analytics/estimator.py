"""Sampling-based epochs-to-convergence estimator (after Kaoudi et al. [54]).

The analytical model needs R (epochs to the loss threshold) as input.
Following the paper's validation protocol (Figure 13b), we estimate R
by training on a small sample (default 10 %) of the data on a single
worker, recording the loss trajectory, and reading off the first epoch
that crosses the threshold — fractional via linear interpolation.

ADMM is estimated in *rounds* and converted to epochs via its
scans-per-round, matching how the executors count epochs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.loader import Shard
from repro.data.synth import generate
from repro.errors import ConfigurationError
from repro.models.zoo import build_model
from repro.optim.base import make_algorithm
from repro.utils.rng import make_rng


@dataclass
class EpochEstimate:
    """Estimated epochs to threshold plus the observed trajectory."""

    epochs: float
    converged: bool
    trajectory: list[tuple[float, float]]  # (epoch, loss)


class SamplingEstimator:
    """Estimate epochs-to-threshold from a data sample."""

    def __init__(self, sample_fraction: float = 0.1, seed: int = 0) -> None:
        if not 0 < sample_fraction <= 1:
            raise ConfigurationError(
                f"sample_fraction must be in (0, 1], got {sample_fraction}"
            )
        self.sample_fraction = sample_fraction
        self.seed = seed

    def estimate(
        self,
        model_name: str,
        dataset: str,
        algorithm: str,
        lr: float,
        threshold: float,
        batch_size: int = 1000,
        k: int = 10,
        max_epochs: float = 60.0,
        data_scale: int | None = None,
    ) -> EpochEstimate:
        split = generate(dataset, scale=data_scale, seed=self.seed)
        rng = make_rng(self.seed + 1)
        n = split.n_train
        take = max(32, int(n * self.sample_fraction))
        idx = rng.choice(n, size=take, replace=False)

        model, _info = build_model(model_name, dataset, k=k)
        shard = Shard(
            rank=0,
            X=split.X_train[idx],
            y=split.y_train[idx],
            X_val=split.X_val,
            y_val=split.y_val,
            # The caller passes the training run's physical minibatch;
            # on the sample, fewer iterations per epoch fall out
            # naturally from the smaller row count.
            batch_size=max(1, min(batch_size, take)),
            rng=make_rng(self.seed + 2),
        )
        algo = make_algorithm(algorithm, model, shard, lr=lr, seed=self.seed)

        trajectory: list[tuple[float, float]] = [(0.0, algo.local_loss())]
        epochs = 0.0
        while epochs < max_epochs:
            payload = algo.round_payload()
            # Single worker: the merged statistic is its own payload.
            algo.apply(np.asarray(payload, dtype=np.float64))
            epochs += algo.epochs_per_round
            trajectory.append((epochs, algo.local_loss()))
            if trajectory[-1][1] <= threshold:
                break
        epochs_needed = _first_crossing(trajectory, threshold)
        return EpochEstimate(
            epochs=epochs_needed if epochs_needed is not None else max_epochs,
            converged=epochs_needed is not None,
            trajectory=trajectory,
        )


def _first_crossing(
    trajectory: list[tuple[float, float]], threshold: float
) -> float | None:
    """Fractional epoch at which the trajectory first crosses threshold."""
    for (e0, l0), (e1, l1) in zip(trajectory, trajectory[1:]):
        if l1 <= threshold:
            if l0 <= threshold:
                return e0
            if l0 == l1:
                return e1
            frac = (l0 - threshold) / (l0 - l1)
            return e0 + frac * (e1 - e0)
    if trajectory and trajectory[0][1] <= threshold:
        return 0.0
    return None
