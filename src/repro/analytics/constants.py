"""Table 6: measured constants for the analytical model.

These are the paper's own measurements on AWS (mean ± spread); we keep
the means as ground truth for both the analytical model and — via the
substrate modules — the discrete-event simulator, so the two views stay
mutually consistent (which is exactly what Figure 13a validates).
"""

from __future__ import annotations

from dataclasses import dataclass, field

MB = 1024 * 1024


@dataclass(frozen=True)
class AnalyticalConstants:
    """Bandwidths (bytes/s), latencies (s) and start-up anchors."""

    # Start-up time anchors t_F(w) / t_I(w): {workers: seconds}.
    t_faas: dict[int, float] = field(
        default_factory=lambda: {10: 1.2, 50: 11.0, 100: 18.0, 200: 35.0}
    )
    t_iaas: dict[int, float] = field(
        default_factory=lambda: {10: 132.0, 50: 160.0, 100: 292.0, 200: 606.0}
    )

    bandwidth_s3: float = 65 * MB
    bandwidth_ebs: float = 1950 * MB  # gp2
    bandwidth_net_t2: float = 120 * MB  # t2.medium <-> t2.medium
    bandwidth_net_c5: float = 225 * MB  # c5.large <-> c5.large
    bandwidth_ec_t3: float = 630 * MB  # cache.t3.medium
    bandwidth_ec_m5: float = 1260 * MB  # cache.m5.large

    latency_s3: float = 8e-2
    latency_ebs: float = 3e-5
    latency_net_t2: float = 5e-4
    latency_net_c5: float = 1.5e-4
    latency_ec_t3: float = 1e-2

    def startup_faas(self, workers: int) -> float:
        return _interp_anchors(self.t_faas, workers, floor=1.0)

    def startup_iaas(self, workers: int) -> float:
        return _interp_anchors(self.t_iaas, workers, floor=120.0)


def _interp_anchors(anchors: dict[int, float], workers: int, floor: float) -> float:
    """Log-linear interpolation between measured worker counts."""
    import math

    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    points = sorted(anchors.items())
    if workers <= points[0][0]:
        if workers == points[0][0]:
            return points[0][1]
        # Interpolate between the single-worker floor and the first anchor.
        w1, t1 = points[0]
        frac = (math.log(workers) - 0.0) / (math.log(w1) - 0.0) if w1 > 1 else 1.0
        return floor + frac * (t1 - floor)
    for (w0, t0), (w1, t1) in zip(points, points[1:]):
        if w0 <= workers <= w1:
            frac = (math.log(workers) - math.log(w0)) / (math.log(w1) - math.log(w0))
            return t0 + frac * (t1 - t0)
    w_last, t_last = points[-1]
    return t_last * (workers / w_last)


TABLE6 = AnalyticalConstants()
