"""Deterministic fault injection: crashes, cold starts, storage errors.

The fault plane has three pieces, each owned by one module:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, the seeded schedule.
  Every fault is a pure function of ``(config.seed, rank, index)``;
  nothing draws randomness at simulation time, so fault runs stay
  content-addressed and bit-reproducible.
* :mod:`repro.faults.retry` — :class:`RetryPolicy`, the exponential
  backoff the storage layer applies to transient errors.
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the engine-
  side machinery that kills worker processes mid-generator and
  respawns recovering incarnations (FaaS) or restarts the job from
  scratch (IaaS).
"""

from __future__ import annotations

from repro.faults.injector import FaultInjector, WorkerResume
from repro.faults.plan import FaultPlan, StorageFaultPolicy, unit_draw
from repro.faults.retry import BACKOFF_FACTOR, MAX_BACKOFF_S, RetryPolicy

__all__ = [
    "BACKOFF_FACTOR",
    "FaultInjector",
    "FaultPlan",
    "MAX_BACKOFF_S",
    "RetryPolicy",
    "StorageFaultPolicy",
    "WorkerResume",
    "unit_draw",
]
