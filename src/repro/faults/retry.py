"""Retry policy for transient storage errors: capped exponential backoff.

The policy is timing metadata, not behaviour: the store's
``schedule_op`` asks the :class:`~repro.faults.plan.FaultPlan` how many
consecutive attempts fail, then uses :meth:`RetryPolicy.backoff_s` to
lay the failed attempts and their backoff gaps onto simulated time and
bills every attempt. Exhausting the budget raises
:class:`~repro.errors.TransientStorageError` — a worker that cannot
reach storage is dead, which on FaaS is exactly a crash.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Growth factor of the exponential backoff (attempt i waits
#: base * FACTOR**i, capped), matching the AWS SDK default.
BACKOFF_FACTOR = 2.0

#: Upper bound on a single backoff gap; keeps pathological error rates
#: from stretching one operation across minutes of simulated time.
MAX_BACKOFF_S = 5.0


@dataclass(frozen=True)
class RetryPolicy:
    """How a client retries a transiently failing storage operation."""

    limit: int = 5  # retries after the first attempt
    base_s: float = 0.1  # backoff before the first retry

    def __post_init__(self) -> None:
        if self.limit < 0:
            raise ConfigurationError(f"retry limit must be >= 0, got {self.limit}")
        if self.base_s < 0:
            raise ConfigurationError(f"retry base must be >= 0, got {self.base_s}")

    def backoff_s(self, attempt: int) -> float:
        """Backoff after failed attempt `attempt` (0-based)."""
        return min(self.base_s * (BACKOFF_FACTOR**attempt), MAX_BACKOFF_S)

    def total_backoff_s(self, failures: int) -> float:
        return sum(self.backoff_s(i) for i in range(failures))
