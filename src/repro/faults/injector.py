"""The fault injector: kills simulated workers and respawns successors.

One :class:`FaultInjector` is installed per run (by the driver, only
when the config's fault axes are non-trivial). It spawns *daemon*
monitor processes on the engine — one per FaaS worker, one global one
for an IaaS cluster — that sleep until the plan's next crash instant
and then terminate the victim mid-generator with ``engine.kill``.

Recovery follows the platform's real contract:

* **FaaS (LambdaML)** — each worker checkpoints to S3 at every round
  boundary (the Figure-5 machinery, now driven per-round instead of
  only near the 15-minute wall). The successor incarnation pays a
  cold start (with the plan's deterministic jitter), re-loads its data
  partition and the checkpoint, restores the substrate's statistical
  snapshot, and resumes the BSP loop from the checkpointed round.
  Because the substrate snapshot carries *all* statistical state (RNG
  streams included), the re-executed rounds reproduce the dead
  incarnation's floats bit for bit — a faulted run's loss trajectory
  is identical to the fault-free one; only clocks and dollars move.
* **IaaS (distributed PyTorch)** — there is no checkpoint: a worker
  crash kills the job and the cluster restarts training from scratch
  (the restart-from-scratch baseline of the cost-of-reliability
  comparison). The injector kills every worker, resets the collective
  groups and the statistical state, clears the loss history, and
  respawns the whole cohort.

Loss records a dead incarnation made after its last durable checkpoint
are rolled back before the successor starts, so every evaluation lands
in ``RunResult.history`` exactly once with exactly the fault-free
values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import FaultInjectionError
from repro.faas.runtime import REINVOKE_OVERHEAD_S
from repro.faults.plan import FaultPlan
from repro.simulation.commands import Sleep

if TYPE_CHECKING:  # pragma: no cover - core imports faults at runtime
    from repro.core.bsp_loop import RoundState


@dataclass(frozen=True)
class WorkerResume:
    """Everything a respawned FaaS incarnation needs to continue."""

    incarnation: int  # 1-based; the initial invocation is 1
    cold_start_s: float  # successor start-up latency (plan-jittered)
    round_state: "RoundState | None"  # None: no durable checkpoint yet
    snapshot: Any  # substrate statistical state to restore


@dataclass
class _Recovery:
    """Latest durable checkpoint of one rank (simulation bookkeeping)."""

    round_state: "RoundState"
    snapshot: Any
    records: int  # this rank's ctx.history entries at checkpoint time


class FaultInjector:
    """Drives the crash/recovery half of a :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.crashes = 0  # workers killed
        self.respawns = 0  # FaaS successor incarnations spawned
        self.restarts = 0  # IaaS whole-job restarts
        self.recovery_checkpoints = 0  # per-round checkpoints persisted
        self._recovery: dict[int, _Recovery] = {}
        self._generation = 1  # IaaS whole-job attempt number
        self._initial: dict[int, Any] = {}
        self._ctx = None
        self._executor: Callable | None = None
        self._origin = 0.0  # engine instant the job started at
        self._name_prefix = ""  # worker-name prefix (service tenants)

    # ------------------------------------------------------------------
    # Wiring (driver side)
    # ------------------------------------------------------------------
    @property
    def crashes_enabled(self) -> bool:
        return self.plan.crashes_enabled

    def install(self, ctx, executor: Callable, name_prefix: str = "") -> None:
        """Snapshot initial statistical state and spawn the monitors."""
        self._ctx = ctx
        self._executor = executor
        self._name_prefix = name_prefix
        # The plan's crash instants are job-relative; on a shared
        # service engine the job may start at t > 0, so monitors offset
        # them by the install instant. Zero for classic isolated runs.
        self._origin = ctx.engine.now
        if not self.crashes_enabled:
            return
        config = ctx.config
        if config.protocol != "bsp" or config.platform not in ("faas", "iaas"):
            raise FaultInjectionError(
                "crash injection is defined for BSP FaaS/IaaS runs; "
                f"got {config.protocol}/{config.platform}"
            )
        for rank in range(config.workers):
            self._initial[rank] = ctx.substrate.snapshot_rank(rank)
        if config.platform == "faas":
            for rank in range(config.workers):
                ctx.engine.spawn(
                    self._faas_monitor(rank),
                    f"{name_prefix}fault-monitor-{rank}",
                    daemon=True,
                )
        else:
            ctx.engine.spawn(
                self._iaas_monitor(), f"{name_prefix}fault-monitor", daemon=True
            )

    # ------------------------------------------------------------------
    # Executor-side hooks (FaaS recovery checkpoints)
    # ------------------------------------------------------------------
    def should_checkpoint(self, rank: int, rounds: int) -> bool:
        """Persist a recovery checkpoint at this round boundary?

        Only boundaries on the config's ``checkpoint_interval`` grid
        qualify (1 = every round, the MLLess-style default; wider
        intervals trade checkpoint I/O for re-executed rounds after a
        crash). True at most once per boundary: a successor resuming
        *at* its checkpointed round skips re-writing the checkpoint it
        just restored from.
        """
        if not self.crashes_enabled:
            return False
        if rounds % self._ctx.config.checkpoint_interval != 0:
            return False
        recovery = self._recovery.get(rank)
        return recovery is None or recovery.round_state.rounds != rounds

    def save_recovery(self, rank: int, state: "RoundState", snapshot: Any) -> None:
        """Note that `rank`'s checkpoint for `state` is now durable."""
        ctx = self._ctx
        self._recovery[rank] = _Recovery(
            round_state=state,
            snapshot=snapshot,
            records=ctx.record_counts.get(rank, 0),
        )
        self.recovery_checkpoints += 1
        self._advance_gc_floor()

    def _advance_gc_floor(self) -> None:
        """Collect round files no successor can ever re-execute.

        A FaaS checkpoint at round r means that rank's successor resumes
        *at* r and re-executes rounds >= r; rounds strictly below the
        minimum checkpointed round across *all* ranks are therefore dead.
        Until every rank has at least one durable checkpoint the floor
        cannot move (an uncheckpointed rank would restart from round 0).
        """
        ctx = self._ctx
        if ctx.config.platform != "faas":
            return
        if len(self._recovery) < ctx.config.workers:
            return
        floor = min(r.round_state.rounds for r in self._recovery.values())
        stores = [ctx.data_store]
        if ctx.channel is not None:
            stores.append(ctx.channel.store)
        for store in stores:
            if store.retention is not None and floor > store.retention.floor:
                store.retention.advance(store, floor)

    # ------------------------------------------------------------------
    # Monitors (engine daemon processes)
    # ------------------------------------------------------------------
    def _faas_monitor(self, rank: int):
        """Kill worker `rank` at each crash instant; respawn a successor."""
        ctx = self._ctx
        engine = ctx.engine
        for crash_at in self.plan.crash_times(rank):
            delay = self._origin + crash_at - engine.now
            if delay > 0:
                yield Sleep(delay, "idle")
            proc = ctx.worker_procs[rank]
            if not proc.alive:
                return  # the worker outlived its hazard
            engine.kill(proc)
            self.crashes += 1
            self._respawn(rank)

    def _iaas_monitor(self):
        """Any worker crash restarts the whole cluster from scratch."""
        ctx = self._ctx
        engine = ctx.engine
        workers = ctx.config.workers
        streams = [self.plan.crash_times(rank) for rank in range(workers)]
        upcoming = [next(stream) for stream in streams]
        while True:
            rank = min(range(workers), key=lambda r: upcoming[r])
            crash_at = upcoming[rank]
            upcoming[rank] = next(streams[rank])
            delay = self._origin + crash_at - engine.now
            if delay > 0:
                yield Sleep(delay, "idle")
            procs = [ctx.worker_procs[r] for r in range(workers)]
            if not any(p.alive for p in procs):
                return  # job already finished
            for proc in procs:
                engine.kill(proc)
            self.crashes += 1
            self.restarts += 1
            # Restart from scratch: fresh collective rendezvous, fresh
            # statistical state, empty loss log — the new attempt will
            # re-produce every record with fault-free values.
            ctx.mpi.reset()
            ctx.history.clear()
            ctx.record_counts.clear()
            self._generation += 1
            generation = self._generation
            for r in range(workers):
                ctx.substrate.restore_rank(r, self._initial[r])
                successor = engine.spawn(
                    self._executor(ctx, r),
                    name=f"{self._name_prefix}worker-{r}#{generation}",
                )
                ctx.worker_procs[r] = successor
                ctx.all_worker_procs.append(successor)

    # ------------------------------------------------------------------
    # FaaS respawn (shared by the crash monitor and executor-side recovery)
    # ------------------------------------------------------------------
    def _respawn(self, rank: int) -> None:
        """Spawn `rank`'s successor incarnation from its last checkpoint.

        The dead incarnation must already be finished (killed by the
        monitor, or ended by its own recovery hand-off); loss records it
        made past the last durable checkpoint are rolled back here and
        re-recorded — with bit-identical values — by the successor.
        """
        ctx = self._ctx
        recovery = self._recovery.get(rank)
        self._truncate_history(rank, recovery.records if recovery else 0)
        incarnation = ctx.next_invocation(rank)
        resume = WorkerResume(
            incarnation=incarnation,
            cold_start_s=self.plan.cold_start_s(
                rank, incarnation, REINVOKE_OVERHEAD_S
            ),
            round_state=recovery.round_state if recovery else None,
            snapshot=recovery.snapshot if recovery else self._initial[rank],
        )
        successor = ctx.engine.spawn(
            self._executor(ctx, rank, resume),
            name=f"{self._name_prefix}worker-{rank}#{incarnation}",
        )
        self.respawns += 1
        ctx.worker_procs[rank] = successor
        ctx.all_worker_procs.append(successor)

    def recover_from_storage_exhaustion(self, rank: int) -> None:
        """Executor-side recovery: retries exhausted mid-run killed `rank`.

        A LambdaML worker whose storage op fails past the retry budget
        dies exactly like a crashed one — the difference is that the
        worker generator sees the error itself (thrown in by the
        engine) and hands off here before returning, instead of being
        killed by a monitor. Only meaningful on FaaS runs with crash
        recovery active (per-round checkpoints are being written).
        """
        if self._ctx is None or self._ctx.config.platform != "faas":
            raise FaultInjectionError(
                "storage-exhaustion recovery requires an installed FaaS injector"
            )
        self._respawn(rank)

    # ------------------------------------------------------------------
    def _truncate_history(self, rank: int, keep: int) -> None:
        ctx = self._ctx
        if ctx.record_counts.get(rank, 0) <= keep:
            return
        kept = []
        seen = 0
        for point in ctx.history:
            if point.worker == rank:
                seen += 1
                if seen > keep:
                    continue
            kept.append(point)
        ctx.history[:] = kept
        ctx.record_counts[rank] = keep

    def events(self) -> dict:
        """Structured summary for ``RunResult.meta`` / sweep artifacts."""
        return {
            "crashes": self.crashes,
            "reincarnations": self.respawns,
            "restarts": self.restarts,
            "recovery_checkpoints": self.recovery_checkpoints,
        }
