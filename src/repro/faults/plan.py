"""Deterministic fault schedules: every fault is a pure function of the seed.

A :class:`FaultPlan` turns the fault axes of a :class:`~repro.core.
config.TrainingConfig` (crash rate / MTTF, transient storage error
rate, cold-start jitter) into concrete simulated events *without any
runtime randomness*: crash instants, cold-start multipliers and per-
operation storage-error decisions are all derived by hashing
``(seed, rank, stream, index)`` with SHA-256. Two runs of the same
config therefore inject byte-identical fault schedules — in the same
process, across pool workers, and across exact/record/replay
substrates — which is what keeps sweep artifacts content-addressed
and the golden fault-invariance tests meaningful.

The draws are *not* taken from ``numpy.random`` at simulation time;
there is no RNG object to carry, share, or accidentally advance. A
draw is ``u = sha256(f"{seed}:{stream}:{index}") / 2**64``:

* crash times — per-rank exponential inter-arrivals with mean
  ``mttf_s`` (inverse-CDF of the drawn uniform), yielding an infinite
  increasing stream of absolute simulated instants;
* cold starts — the respawned incarnation's start-up latency is
  ``REINVOKE_OVERHEAD_S * (1 + cold_start_jitter * u)``;
* storage errors — operation ``index`` on store ``label`` fails while
  ``u(attempt) < storage_error_rate`` for consecutive attempt draws,
  bounded by the retry policy.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.errors import ConfigurationError
from repro.faults.retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - core imports faults at runtime
    from repro.core.config import TrainingConfig

_U64 = float(2**64)


def unit_draw(seed: int, stream: str, index: int) -> float:
    """Deterministic uniform in [0, 1): ``sha256(seed:stream:index)``."""
    digest = hashlib.sha256(f"{seed}:{stream}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / _U64


@dataclass(frozen=True)
class FaultPlan:
    """Seeded fault schedule for one training run (pure, picklable)."""

    seed: int
    mttf_s: float | None = None  # mean time between crashes per worker
    storage_error_rate: float = 0.0
    cold_start_jitter: float = 0.0
    retry: RetryPolicy = RetryPolicy()

    def __post_init__(self) -> None:
        if self.mttf_s is not None and self.mttf_s <= 0:
            raise ConfigurationError(f"mttf_s must be > 0, got {self.mttf_s}")
        if not 0.0 <= self.storage_error_rate < 1.0:
            raise ConfigurationError(
                f"storage_error_rate must be in [0, 1), got {self.storage_error_rate}"
            )
        if self.cold_start_jitter < 0:
            raise ConfigurationError(
                f"cold_start_jitter must be >= 0, got {self.cold_start_jitter}"
            )

    @classmethod
    def from_config(cls, config: "TrainingConfig") -> "FaultPlan":
        """The plan a config's fault axes denote (pure, no context needed).

        The single sampling hook every consumer shares: the job context
        builds its runtime plan through this, and the scenario fuzzer
        derives crash/error schedules for sampled configs from the very
        same mapping — so a scenario's fault plan can never drift from
        what ``train()`` would actually inject.
        """
        return cls(
            seed=config.seed,
            mttf_s=config.fault_mttf_s,
            storage_error_rate=config.storage_error_rate,
            cold_start_jitter=config.cold_start_jitter,
            retry=RetryPolicy(
                limit=config.storage_retry_limit,
                base_s=config.storage_retry_base_s,
            ),
        )

    # -- crash schedule ---------------------------------------------------
    @property
    def crashes_enabled(self) -> bool:
        return self.mttf_s is not None

    @property
    def storage_faults_enabled(self) -> bool:
        return self.storage_error_rate > 0.0

    @property
    def active(self) -> bool:
        return self.crashes_enabled or self.storage_faults_enabled

    def crash_times(self, rank: int) -> Iterator[float]:
        """Infinite increasing stream of absolute crash instants for `rank`.

        Exponential inter-arrivals with mean ``mttf_s`` (the memoryless
        hazard a Lambda worker actually faces); the stream is a pure
        function of ``(seed, rank)`` so restarts never reshuffle it.
        """
        if self.mttf_s is None:
            return
        t = 0.0
        index = 0
        while True:
            u = unit_draw(self.seed, f"crash/{rank}", index)
            # Inverse CDF; 1-u keeps the draw strictly positive.
            t += -self.mttf_s * math.log(1.0 - u)
            index += 1
            yield t

    def cold_start_s(self, rank: int, incarnation: int, base_s: float) -> float:
        """Start-up latency of incarnation `incarnation` of worker `rank`."""
        if self.cold_start_jitter == 0.0:
            return base_s
        u = unit_draw(self.seed, f"cold/{rank}", incarnation)
        return base_s * (1.0 + self.cold_start_jitter * u)

    # -- storage errors ---------------------------------------------------
    def storage_failures(self, label: str, op_index: int) -> int:
        """Consecutive failed attempts for operation `op_index` on `label`.

        Attempt ``a`` fails while the ``(seed, storage/label/op_index,
        a)`` draw lands below the error rate; capped at one draw past
        the retry limit (the caller raises on exhaustion), so a plan
        never loops unboundedly however high the rate.
        """
        if self.storage_error_rate == 0.0:
            return 0
        failures = 0
        while failures <= self.retry.limit:
            u = unit_draw(self.seed, f"storage/{label}/{op_index}", failures)
            if u >= self.storage_error_rate:
                break
            failures += 1
        return failures


@dataclass(frozen=True)
class StorageFaultPolicy:
    """Binds a plan's storage-error stream to one store instance.

    The `label` names the store's role in the run ("data", "channel")
    so two stores never share an error stream even though they share
    the plan. Attached to :class:`~repro.storage.base.ObjectStore`
    instances by the job context; ``None`` (the default) keeps the
    store on the fault-free fast path, bit-identical to older engines.
    """

    plan: FaultPlan
    label: str

    @property
    def retry(self) -> RetryPolicy:
        return self.plan.retry

    def failures(self, op_index: int) -> int:
        return self.plan.storage_failures(self.label, op_index)
