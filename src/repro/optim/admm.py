"""Distributed consensus ADMM (Boyd et al.), paper Section 3.2.1.

Each worker holds a local model x_i and dual u_i; the global consensus
z is the mean of (x_i + u_i). One communication round consists of

1. approximately solving the local subproblem
       min_x f_i(x) + (rho/2) ||x - z + u_i||^2
   with `scans` epochs of SGD (the paper scans the data ten times per
   round);
2. exchanging x_i + u_i (mean-reduced to obtain the new z);
3. the dual update u_i += x_i - z.

ADMM only applies to convex objectives — the executors enforce this
via ModelInfo.convex, mirroring the paper's note that it cannot train
neural networks.
"""

from __future__ import annotations

import numpy as np

from repro.data.loader import Shard
from repro.errors import ConfigurationError
from repro.models.base import SupervisedModel
from repro.optim.base import DistributedAlgorithm
from repro.optim.local import sgd_epoch
from repro.utils.rng import make_rng


class ADMM(DistributedAlgorithm):
    reduce = "mean"

    def __init__(
        self,
        model: SupervisedModel,
        shard: Shard,
        lr: float,
        seed: int = 0,
        rho: float = 0.05,
        scans: int = 10,
    ) -> None:
        super().__init__(shard)
        if rho <= 0:
            raise ConfigurationError(f"rho must be > 0, got {rho}")
        if scans < 1:
            raise ConfigurationError(f"scans must be >= 1, got {scans}")
        self.model = model
        self.lr = lr
        self.rho = rho
        self.scans = scans
        self._x = model.init_params(make_rng(seed))
        self._z = self._x.copy()
        self._u = np.zeros_like(self._x)

    @property
    def epochs_per_round(self) -> float:
        return float(self.scans)

    def round_work(self) -> tuple[float, float]:
        instances = float(self.shard.n_rows * self.scans)
        iterations = float(self.shard.iterations_per_epoch * self.scans)
        return (instances, iterations)

    def round_payload(self) -> np.ndarray:
        # Warm-start the subproblem from the consensus point.
        self._x = self._z.copy()

        def prox_grad(x: np.ndarray) -> np.ndarray:
            return self.rho * (x - self._z + self._u)

        for _ in range(self.scans):
            self._x = sgd_epoch(self.model, self._x, self.shard, self.lr, extra_grad=prox_grad)
        return self._x + self._u

    def apply(self, merged: np.ndarray) -> None:
        self._z = np.asarray(merged, dtype=self._x.dtype).copy()
        self._u = self._u + self._x - self._z

    def local_loss(self) -> float:
        # Statistical efficiency is tracked on the consensus model z
        # (the BSP loop evaluates right after applying the merged
        # round, so this is the freshly updated consensus).
        return self.model.loss(self._z, self.shard.X_val, self.shard.y_val)

    @property
    def params(self) -> np.ndarray:
        return self._z

    @params.setter
    def params(self, value: np.ndarray) -> None:
        self._z = np.asarray(value, dtype=self._z.dtype).copy()
