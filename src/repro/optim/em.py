"""Distributed k-means via expectation maximisation.

One round = one epoch (full local pass): workers assign their rows to
the nearest centroid, emit per-cluster sums/counts plus the local
squared-distance total, SUM-reduce across workers, and recompute
centroids identically everywhere. The training loss comes for free
from the merged statistics — no separate evaluation pass, matching how
k-means reports "observed loss" in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.data.loader import Shard
from repro.models.kmeans import KMeansModel
from repro.optim.base import DistributedAlgorithm


class KMeansEM(DistributedAlgorithm):
    reduce = "sum"

    def __init__(
        self,
        model: KMeansModel,
        shard: Shard,
        seed: int = 0,
        init_centroids: np.ndarray | None = None,
    ) -> None:
        super().__init__(shard)
        self.model = model
        # EM requires every worker to start from *identical* centroids,
        # otherwise the merged sufficient statistics mix incompatible
        # assignments and the loss is no longer monotone. The driver
        # samples one global initialisation and broadcasts it (as
        # LambdaML's starter does); sampling from the local shard is
        # only a fallback for single-worker use.
        if init_centroids is not None:
            self._centroids = np.array(init_centroids, dtype=np.float64, copy=True)
        else:
            self._centroids = model.init_centroids(shard.X, rng=seed)
        self._last_loss = float("inf")

    @property
    def epochs_per_round(self) -> float:
        return 1.0

    def round_work(self) -> tuple[float, float]:
        return (float(self.shard.n_rows), 1.0)

    def eval_work(self) -> tuple[float, float]:
        return (0.0, 0.0)  # loss is a by-product of the merged stats

    def round_payload(self) -> np.ndarray:
        stats = self.model.local_stats(self._centroids, self.shard.X)
        return self.model.stats_to_vector(stats)

    def apply(self, merged: np.ndarray) -> None:
        stats = self.model.vector_to_stats(merged)
        self._last_loss = self.model.loss_from_stats(stats)
        self._centroids = self.model.update(self._centroids, stats)

    def local_loss(self) -> float:
        return self._last_loss

    @property
    def params(self) -> np.ndarray:
        return self.model.flatten(self._centroids)

    @params.setter
    def params(self, value: np.ndarray) -> None:
        self._centroids = self.model.unflatten(np.asarray(value, dtype=np.float64).copy())
