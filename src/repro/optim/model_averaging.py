"""MA-SGD: distributed SGD with model averaging (local SGD).

Each worker runs independent minibatch SGD for `sync_epochs` full local
epochs, then ships its *model* instead of per-batch gradients; the
merged (averaged) model restarts everyone. This cuts communication
from once-per-iteration to once-per-epoch(s) — the property that makes
it shine on FaaS for convex workloads — at the cost of consensus drift,
which is what destabilises it on non-convex models (paper §4.2).
"""

from __future__ import annotations

import numpy as np

from repro.data.loader import Shard
from repro.errors import ConfigurationError
from repro.models.base import SupervisedModel
from repro.optim.base import DistributedAlgorithm
from repro.optim.local import sgd_epoch
from repro.utils.rng import make_rng


class ModelAveragingSGD(DistributedAlgorithm):
    reduce = "mean"

    def __init__(
        self,
        model: SupervisedModel,
        shard: Shard,
        lr: float,
        seed: int = 0,
        sync_epochs: int = 1,
    ) -> None:
        super().__init__(shard)
        if sync_epochs < 1:
            raise ConfigurationError(f"sync_epochs must be >= 1, got {sync_epochs}")
        self.model = model
        self.lr = lr
        self.sync_epochs = sync_epochs
        self._params = model.init_params(make_rng(seed))

    @property
    def epochs_per_round(self) -> float:
        return float(self.sync_epochs)

    def round_work(self) -> tuple[float, float]:
        instances = float(self.shard.n_rows * self.sync_epochs)
        iterations = float(self.shard.iterations_per_epoch * self.sync_epochs)
        return (instances, iterations)

    def round_payload(self) -> np.ndarray:
        for _ in range(self.sync_epochs):
            self._params = sgd_epoch(self.model, self._params, self.shard, self.lr)
        return self._params

    def apply(self, merged: np.ndarray) -> None:
        self._params = np.asarray(merged, dtype=self._params.dtype).copy()

    def local_loss(self) -> float:
        return self.model.loss(self._params, self.shard.X_val, self.shard.y_val)

    @property
    def params(self) -> np.ndarray:
        return self._params

    @params.setter
    def params(self, value: np.ndarray) -> None:
        self._params = np.asarray(value, dtype=self._params.dtype).copy()
