"""GA-SGD: distributed SGD with gradient averaging.

Workers compute minibatch gradients in lockstep and synchronise *every
iteration*; the merged (averaged) gradient updates every local model
identically, so all workers hold the same parameters. Communication-
heavy but statistically identical to large-batch single-node SGD —
exactly the behaviour the paper stresses when showing GA-SGD loses to
MA-SGD/ADMM on FaaS for convex models but is the only stable choice
for deep models.
"""

from __future__ import annotations

import numpy as np

from repro.data.loader import Shard
from repro.models.base import SupervisedModel
from repro.optim.base import DistributedAlgorithm
from repro.utils.rng import make_rng


class GradientAveragingSGD(DistributedAlgorithm):
    reduce = "mean"

    def __init__(self, model: SupervisedModel, shard: Shard, lr: float, seed: int = 0):
        super().__init__(shard)
        self.model = model
        self.lr = lr
        self._params = model.init_params(make_rng(seed))
        # The batch cursor is explicit state (permutation + offset), not
        # a live generator: snapshots deep-copy the algorithm for crash
        # checkpoints and record/replay, and generators don't copy. The
        # RNG call sequence is identical to iterating
        # ``shard.epoch_batches()`` — one permutation per epoch, drawn
        # when the epoch's first batch is taken.
        self._order: np.ndarray | None = None
        self._cursor = 0

    @property
    def epochs_per_round(self) -> float:
        return 1.0 / self.shard.iterations_per_epoch

    def round_work(self) -> tuple[float, float]:
        return (float(self.shard.batch_size), 1.0)

    def _next_batch(self):
        shard = self.shard
        if self._order is None or self._cursor >= shard.n_rows:
            self._order = shard.rng.permutation(shard.n_rows)
            self._cursor = 0
        idx = self._order[self._cursor : self._cursor + shard.batch_size]
        self._cursor += shard.batch_size
        return shard.X[idx], shard.y[idx]

    def round_payload(self) -> np.ndarray:
        X_batch, y_batch = self._next_batch()
        return self.model.gradient(self._params, X_batch, y_batch)

    def apply(self, merged: np.ndarray) -> None:
        self._params = self._params - (self.lr * merged).astype(self._params.dtype, copy=False)

    def local_loss(self) -> float:
        return self.model.loss(self._params, self.shard.X_val, self.shard.y_val)

    @property
    def params(self) -> np.ndarray:
        return self._params

    @params.setter
    def params(self, value: np.ndarray) -> None:
        self._params = np.asarray(value, dtype=self._params.dtype).copy()
