"""Distributed optimization algorithms (paper Section 3.2.1).

Each algorithm is a per-worker state machine with a uniform "round"
API: produce a statistic vector to aggregate (gradient, local model,
ADMM consensus term, k-means sufficient statistics), then apply the
merged result. Executors — FaaS, IaaS or hybrid — drive the rounds and
charge simulated compute time using :meth:`round_work`.
"""

from repro.optim.admm import ADMM
from repro.optim.base import DistributedAlgorithm, make_algorithm
from repro.optim.em import KMeansEM
from repro.optim.gradient_averaging import GradientAveragingSGD
from repro.optim.local import sgd_epoch
from repro.optim.model_averaging import ModelAveragingSGD
from repro.optim.schedules import constant_lr, inv_sqrt_decay

__all__ = [
    "DistributedAlgorithm",
    "make_algorithm",
    "GradientAveragingSGD",
    "ModelAveragingSGD",
    "ADMM",
    "KMeansEM",
    "sgd_epoch",
    "constant_lr",
    "inv_sqrt_decay",
]
