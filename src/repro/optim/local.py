"""Single-worker minibatch SGD primitives shared by the algorithms."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.loader import Shard
from repro.models.base import SupervisedModel


def sgd_epoch(
    model: SupervisedModel,
    params: np.ndarray,
    shard: Shard,
    lr: float,
    extra_grad: Callable[[np.ndarray], np.ndarray] | None = None,
) -> np.ndarray:
    """One shuffled pass of minibatch SGD over the shard.

    `extra_grad` adds a term to every gradient — ADMM uses it for the
    proximal penalty rho * (x - z + u). Returns new parameters (the
    input array is not mutated).
    """
    params = params.copy()
    for X_batch, y_batch in shard.epoch_batches():
        grad = model.gradient(params, X_batch, y_batch)
        if extra_grad is not None:
            grad = grad + extra_grad(params)
        params -= (lr * grad).astype(params.dtype, copy=False)
    return params


def sgd_steps(
    model: SupervisedModel,
    params: np.ndarray,
    shard: Shard,
    lr: float,
    steps: int,
) -> np.ndarray:
    """`steps` sampled minibatch updates (asynchronous executors)."""
    params = params.copy()
    for _ in range(steps):
        X_batch, y_batch = shard.sample_batch()
        grad = model.gradient(params, X_batch, y_batch)
        params -= (lr * grad).astype(params.dtype, copy=False)
    return params
