"""Learning-rate schedules.

The synchronous experiments use constant learning rates tuned per
workload; the asynchronous protocol follows the paper (and [104]) in
decaying the rate as 1/sqrt(T) over epochs to tame staleness noise.
"""

from __future__ import annotations

import math
from typing import Callable

Schedule = Callable[[int], float]


def constant_lr(lr: float) -> Schedule:
    """lr(epoch) = lr."""
    if lr <= 0:
        raise ValueError(f"learning rate must be > 0, got {lr}")

    def schedule(epoch: int) -> float:
        return lr

    return schedule


def inv_sqrt_decay(lr: float) -> Schedule:
    """lr(epoch) = lr / sqrt(epoch + 1), used for S-ASP."""
    if lr <= 0:
        raise ValueError(f"learning rate must be > 0, got {lr}")

    def schedule(epoch: int) -> float:
        return lr / math.sqrt(epoch + 1.0)

    return schedule
