"""Round-based API shared by all distributed optimization algorithms.

Executors drive training as a sequence of *communication rounds*. Per
round, each worker:

1. calls :meth:`round_payload` — real numpy computation producing the
   statistic to aggregate (gradient / local model / consensus term /
   k-means sufficient statistics);
2. lets the communication layer reduce payloads across workers
   (element-wise mean or sum, per :attr:`reduce`);
3. calls :meth:`apply` with the merged vector.

:meth:`round_work` reports how many instances/iterations the round
processed so executors can charge simulated compute time, and
:attr:`epochs_per_round` converts rounds to data epochs (ADMM scans the
data ten times per round; GA-SGD syncs many times per epoch).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.data.loader import Shard
from repro.errors import ConfigurationError


class DistributedAlgorithm(abc.ABC):
    """Per-worker algorithm state machine."""

    #: How payloads are combined across workers: "mean" or "sum".
    reduce: str = "mean"

    def __init__(self, shard: Shard) -> None:
        self.shard = shard

    # -- structure ----------------------------------------------------------
    @property
    @abc.abstractmethod
    def epochs_per_round(self) -> float:
        """Data epochs consumed by one communication round."""

    @abc.abstractmethod
    def round_work(self) -> tuple[float, float]:
        """(instances, iterations) of training work in one round."""

    def eval_work(self) -> tuple[float, float]:
        """(instances, iterations) of one validation-loss evaluation."""
        return (float(self.shard.y_val.shape[0]), 1.0)

    # -- computation ----------------------------------------------------------
    @abc.abstractmethod
    def round_payload(self) -> np.ndarray:
        """Run the round's local computation; return the statistic vector."""

    @abc.abstractmethod
    def apply(self, merged: np.ndarray) -> None:
        """Install the aggregated statistic into local state."""

    @abc.abstractmethod
    def local_loss(self) -> float:
        """Loss of the current local state (validation for supervised)."""

    @property
    @abc.abstractmethod
    def params(self) -> np.ndarray:
        """Current parameters as a flat vector (checkpointing / tests)."""

    @params.setter
    def params(self, value: np.ndarray) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


def make_algorithm(
    name: str,
    model,
    shard: Shard,
    lr: float,
    seed: int = 0,
    admm_rho: float = 0.05,
    admm_scans: int = 10,
    ma_sync_epochs: int = 1,
    kmeans_init=None,
) -> DistributedAlgorithm:
    """Factory resolving the paper's algorithm names."""
    from repro.optim.admm import ADMM
    from repro.optim.em import KMeansEM
    from repro.optim.gradient_averaging import GradientAveragingSGD
    from repro.optim.model_averaging import ModelAveragingSGD

    name = name.lower().replace("-", "_")
    if name in ("ga_sgd", "ga", "sgd"):
        return GradientAveragingSGD(model, shard, lr=lr, seed=seed)
    if name in ("ma_sgd", "ma"):
        return ModelAveragingSGD(model, shard, lr=lr, seed=seed, sync_epochs=ma_sync_epochs)
    if name == "admm":
        return ADMM(model, shard, lr=lr, seed=seed, rho=admm_rho, scans=admm_scans)
    if name in ("em", "kmeans"):
        return KMeansEM(model, shard, seed=seed, init_centroids=kmeans_init)
    raise ConfigurationError(
        f"unknown algorithm {name!r}; expected ga_sgd|ma_sgd|admm|em"
    )
