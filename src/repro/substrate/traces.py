"""Convergence trace artifacts: one JSON file per statistical fingerprint.

Trace schema (version 1)::

    {
      "schema": 1,
      "stat_hash": "<16 hex chars>",           # fingerprint_hash(stat_fingerprint)
      "stat_fingerprint": { ...convergence-relevant config fields... },
      "reduce": "mean" | "sum",
      "ranks": [                               # one entry per worker rank
        {
          "epochs_per_round": float,
          "round_work": [instances, iterations],
          "eval_work": [instances, iterations],
          "losses": [float, ...],              # local loss per evaluation,
                                               # in call order (init first)
          "rounds": int,                       # total communication rounds
          "epochs": float,                     # final epoch_float
          "final_loss": float                  # final *global* loss seen
        }, ...
      ],
      "final_accuracy": float | null,
      "meta": {                                # non-deterministic bookkeeping
        "engine_version": "...",
        "recorded_config_hash": "<hash of the config that recorded it>",
        "compute_seconds": float               # host seconds of numpy work
      }
    }

Everything outside ``meta`` is a pure function of the statistical
fingerprint: any config sharing the fingerprint must record the same
trace bit for bit (the substrate tests assert exactly that), which is
why one trace can be replayed across a whole systems grid.

Writes are atomic (tmp file + ``os.replace``), mirroring the sweep
artifact store: an interrupted phase-0 recording never leaves a
half-written ``traces/<stat_hash>.json``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import SubstrateError
from repro.utils.hashing import fingerprint_hash

TRACE_SCHEMA_VERSION = 1

_RANK_KEYS = {
    "epochs_per_round", "round_work", "eval_work",
    "losses", "rounds", "epochs", "final_loss",
}


class TraceError(SubstrateError):
    """A convergence trace is corrupt, partial, or from another schema."""


def trace_path(traces_dir: str | os.PathLike, stat_hash: str) -> Path:
    return Path(traces_dir) / f"{stat_hash}.json"


def write_trace(traces_dir: str | os.PathLike, trace: dict) -> Path:
    """Atomically persist a trace as ``<stat_hash>.json``."""
    out = Path(traces_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = trace_path(out, trace["stat_hash"])
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(trace, sort_keys=True, indent=1) + "\n")
    os.replace(tmp, path)
    return path


def validate_trace(trace: dict, expected_hash: str | None = None) -> dict:
    """Check schema, shape, and hash integrity; raise TraceError."""
    if not isinstance(trace, dict):
        raise TraceError(f"trace is {type(trace).__name__}, not an object")
    if trace.get("schema") != TRACE_SCHEMA_VERSION:
        raise TraceError(f"schema {trace.get('schema')!r} != {TRACE_SCHEMA_VERSION}")
    shape = {
        "stat_hash": str, "stat_fingerprint": dict, "reduce": str,
        "ranks": list, "meta": dict,
    }
    missing = shape.keys() - trace.keys()
    if missing:
        raise TraceError(f"missing keys: {sorted(missing)}")
    for key, expected_type in shape.items():
        if not isinstance(trace[key], expected_type):
            raise TraceError(
                f"{key!r} is {type(trace[key]).__name__}, not {expected_type.__name__}"
            )
    if not trace["ranks"]:
        raise TraceError("trace has no per-rank records")
    for rank, record in enumerate(trace["ranks"]):
        if not isinstance(record, dict) or not _RANK_KEYS <= record.keys():
            raise TraceError(f"rank {rank} record is missing keys")
    recomputed = fingerprint_hash(trace["stat_fingerprint"])
    if recomputed != trace["stat_hash"]:
        raise TraceError(
            f"stat hash mismatch: recorded {trace['stat_hash']}, fingerprint "
            f"hashes to {recomputed} (stale or tampered trace)"
        )
    if expected_hash is not None and trace["stat_hash"] != expected_hash:
        raise TraceError(f"trace {trace['stat_hash']} filed under {expected_hash}")
    return trace


def load_trace(path: str | os.PathLike, expected_hash: str | None = None) -> dict:
    """Load + validate one trace file; TraceError when unusable."""
    path = Path(path)
    try:
        trace = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise TraceError(f"{path.name}: unreadable/partial JSON ({exc})") from exc
    return validate_trace(trace, expected_hash=expected_hash)


def scan_traces(traces_dir: str | os.PathLike) -> tuple[dict[str, dict], list[Path]]:
    """Index a trace directory: ``(stat_hash -> trace, corrupt paths)``."""
    out = Path(traces_dir)
    completed: dict[str, dict] = {}
    corrupt: list[Path] = []
    if not out.is_dir():
        return completed, corrupt
    for path in sorted(out.glob("*.json")):
        expected = path.stem
        try:
            completed[expected] = load_trace(path, expected_hash=expected)
        except TraceError:
            corrupt.append(path)
    return completed, corrupt
