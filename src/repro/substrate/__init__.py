"""Pluggable statistical substrate: exact, recording, and replay modes.

Separates *what the workers compute* (datasets, shards, algorithms,
losses) from *what the simulation times and bills* (commands, clocks,
dollars). See :mod:`repro.substrate.base` for the contract and
:mod:`repro.substrate.traces` for the trace artifact schema.
"""

from __future__ import annotations

from repro.errors import SubstrateError
from repro.substrate.base import SUBSTRATE_MODES, Substrate
from repro.substrate.exact import ExactSubstrate
from repro.substrate.record import RecordingSubstrate
from repro.substrate.replay import ReplaySubstrate
from repro.substrate.traces import (
    TRACE_SCHEMA_VERSION,
    TraceError,
    load_trace,
    scan_traces,
    trace_path,
    validate_trace,
    write_trace,
)

__all__ = [
    "SUBSTRATE_MODES",
    "Substrate",
    "ExactSubstrate",
    "RecordingSubstrate",
    "ReplaySubstrate",
    "TRACE_SCHEMA_VERSION",
    "TraceError",
    "load_trace",
    "make_substrate",
    "scan_traces",
    "trace_path",
    "validate_trace",
    "write_trace",
]


def make_substrate(spec=None) -> Substrate:
    """Resolve a substrate spec: None/name/instance -> fresh instance.

    ``None`` and ``"exact"`` give the default numpy path; ``"record"``
    a recording run; ``"replay"`` needs a trace, so it is only valid as
    an already-constructed :class:`ReplaySubstrate` instance (the sweep
    orchestrator builds those from ``traces/<stat_hash>.json``).
    """
    if spec is None:
        return ExactSubstrate()
    if isinstance(spec, Substrate):
        return spec
    if spec == "exact":
        return ExactSubstrate()
    if spec == "record":
        return RecordingSubstrate()
    if spec == "replay":
        raise SubstrateError(
            "substrate 'replay' needs a recorded trace: pass "
            "ReplaySubstrate(trace) (or use the sweep orchestrator, which "
            "records and replays traces for you)"
        )
    raise SubstrateError(
        f"unknown substrate {spec!r}; expected one of {SUBSTRATE_MODES} "
        "or a Substrate instance"
    )
