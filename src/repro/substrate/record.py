"""The recording substrate: exact training that also captures a trace.

Runs the identical numpy path as :class:`ExactSubstrate` (pure
observation — the resulting ``RunResult`` is bit-identical) while
capturing, per rank, every local-loss evaluation in call order plus the
static round structure (``epochs_per_round``, ``round_work``,
``eval_work``, ``reduce``). :meth:`finalize` assembles the
``traces/<stat_hash>.json`` payload that
:class:`~repro.substrate.replay.ReplaySubstrate` re-emits.
"""

from __future__ import annotations

from repro.core.config import config_fingerprint
from repro.errors import SubstrateError
from repro.substrate.base import TimedView
from repro.substrate.exact import ExactSubstrate
from repro.substrate.traces import TRACE_SCHEMA_VERSION
from repro.utils.hashing import fingerprint_hash


class _RecordingView(TimedView):
    """Timed view that also appends each local loss to the rank record."""

    __slots__ = ("_losses",)

    def __init__(self, algo, substrate, losses: list) -> None:
        super().__init__(algo, substrate)
        object.__setattr__(self, "_losses", losses)

    def local_loss(self) -> float:
        loss = super().local_loss()
        self._losses.append(float(loss))
        return loss


class RecordingSubstrate(ExactSubstrate):
    """Exact substrate + convergence capture; see the module docstring."""

    name = "record"

    def __init__(self) -> None:
        super().__init__()
        self.trace: dict | None = None
        self._loss_log: list[list[float]] = []

    def _build(self, ctx) -> None:
        if ctx.config.timing_coupled:
            raise SubstrateError(
                f"{ctx.config.protocol}/{ctx.config.platform} trajectories are "
                "timing-coupled (no barrier between updates): there is no "
                "systems-independent convergence to record — run exact"
            )
        super()._build(ctx)
        self._loss_log = [[] for _ in self.algorithms]
        self._views = [
            _RecordingView(algo, self, losses)
            for algo, losses in zip(self.algorithms, self._loss_log)
        ]

    # -- fault recovery -------------------------------------------------
    def snapshot_rank(self, rank: int):
        """Algorithm state plus how many losses were recorded so far."""
        return (super().snapshot_rank(rank), len(self._loss_log[rank]))

    def restore_rank(self, rank: int, state) -> None:
        """Rewind the loss log with the algorithm: a crash-recovered run
        re-evaluates the dropped entries with identical values, so the
        assembled trace is indistinguishable from a fault-free
        recording."""
        algo_state, recorded = state
        super().restore_rank(rank, algo_state)
        losses = self._loss_log[rank]
        del losses[recorded:]
        self._views[rank] = _RecordingView(self.algorithms[rank], self, losses)

    def finalize(self, ctx, result, outcomes) -> None:
        # Deferred: repro/__init__ -> core -> context -> substrate would
        # otherwise be circular at import time.
        from repro import __version__ as repro_version

        config = ctx.config
        by_rank = {outcome.rank: outcome for outcome in outcomes}
        if sorted(by_rank) != list(range(config.workers)):
            raise SubstrateError(
                f"cannot record a trace from an incomplete run: got outcomes "
                f"for ranks {sorted(by_rank)} of {config.workers} workers"
            )
        ranks = []
        for rank, algo in enumerate(self.algorithms):
            outcome = by_rank[rank]
            instances, iterations = algo.round_work()
            eval_instances, eval_iterations = algo.eval_work()
            ranks.append(
                {
                    "epochs_per_round": float(algo.epochs_per_round),
                    "round_work": [float(instances), float(iterations)],
                    "eval_work": [float(eval_instances), float(eval_iterations)],
                    "losses": self._loss_log[rank],
                    "rounds": int(outcome.rounds),
                    "epochs": float(outcome.epochs),
                    "final_loss": float(outcome.final_loss),
                }
            )
        self.trace = {
            "schema": TRACE_SCHEMA_VERSION,
            "stat_hash": config.stat_hash(),
            "stat_fingerprint": config.stat_fingerprint(),
            "reduce": self.algorithms[0].reduce,
            "ranks": ranks,
            "final_accuracy": result.final_accuracy,
            "meta": {
                "engine_version": repro_version,
                "recorded_config_hash": fingerprint_hash(config_fingerprint(config)),
                "compute_seconds": round(self.compute_seconds, 3),
            },
        }
