"""The replay substrate: re-emit a recorded convergence, zero numpy work.

Given a trace whose statistical fingerprint matches the config being
run, each rank's view answers the executor's statistical questions from
the recording: ``round_work``/``eval_work``/``epochs_per_round`` give
the simulation the same compute charges, ``local_loss`` plays back the
recorded evaluations in order, ``round_payload`` hands out a tiny
surrogate vector (the wire carries *logical* byte counts, so payload
contents never touch timing or billing), and ``apply`` is a no-op.

Because every statistical decision the BSP loop makes — payload sizes,
per-epoch losses, the loss-allreduce values, the stop round — replays
identically, the executors yield the identical command stream and the
engine reproduces the exact run's duration, cost, history and
breakdown bit for bit. No dataset is synthesized and no model is
instantiated: a replayed point costs milliseconds instead of the ~40 s
an LR/Higgs training takes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReplayDivergenceError, SubstrateError
from repro.substrate.base import Substrate
from repro.substrate.traces import validate_trace


class _ReplayView:
    """Per-rank statistical view answering from one trace rank record."""

    __slots__ = ("reduce", "_record", "_payload", "_params", "_cursor", "_rank")

    def __init__(self, record: dict, reduce: str, workers: int, rank: int) -> None:
        self.reduce = reduce
        self._record = record
        self._rank = rank
        self._cursor = 0
        # ScatterReduce splits the physical payload into `workers`
        # chunks; a `workers`-long surrogate keeps every chunk non-empty
        # while staying O(w) instead of O(model size).
        self._payload = np.zeros(workers, dtype=np.float64)
        self._params = np.zeros(1, dtype=np.float64)

    @property
    def epochs_per_round(self) -> float:
        return self._record["epochs_per_round"]

    def round_work(self) -> tuple[float, float]:
        instances, iterations = self._record["round_work"]
        return (instances, iterations)

    def eval_work(self) -> tuple[float, float]:
        instances, iterations = self._record["eval_work"]
        return (instances, iterations)

    def round_payload(self) -> np.ndarray:
        return self._payload

    def apply(self, merged) -> None:
        pass

    def local_loss(self) -> float:
        losses = self._record["losses"]
        if self._cursor >= len(losses):
            raise ReplayDivergenceError(
                f"rank {self._rank} asked for evaluation #{self._cursor + 1} but "
                f"the trace recorded only {len(losses)}: the replayed config does "
                "not share the recorded statistical trajectory"
            )
        loss = losses[self._cursor]
        self._cursor += 1
        return loss

    @property
    def params(self) -> np.ndarray:
        # Checkpoints copy this; contents are irrelevant (the simulated
        # wire carries logical byte counts).
        return self._params

    @params.setter
    def params(self, value) -> None:
        pass


class ReplaySubstrate(Substrate):
    """Serve a recorded trace; see the module docstring."""

    name = "replay"

    def __init__(self, trace: dict) -> None:
        super().__init__()
        self.trace = validate_trace(trace)

    def _build(self, ctx) -> None:
        config = ctx.config
        if config.timing_coupled:
            raise SubstrateError(
                f"{config.protocol}/{config.platform} trajectories are "
                "timing-coupled: replaying one under different systems axes "
                "would fabricate a convergence that never happened — run exact"
            )
        expected = config.stat_hash()
        if self.trace["stat_hash"] != expected:
            raise SubstrateError(
                f"trace {self.trace['stat_hash']} does not match this config's "
                f"statistical fingerprint {expected}: refusing to replay a "
                "different convergence"
            )
        if len(self.trace["ranks"]) != config.workers:
            raise SubstrateError(
                f"trace holds {len(self.trace['ranks'])} ranks but the config "
                f"runs {config.workers} workers"
            )
        self.shards = []
        self.algorithms = []
        reduce = self.trace["reduce"]
        self._views = [
            _ReplayView(record, reduce, config.workers, rank)
            for rank, record in enumerate(self.trace["ranks"])
        ]

    def stats(self, rank: int):
        return self._views[rank]

    # -- fault recovery -------------------------------------------------
    def snapshot_rank(self, rank: int):
        """A replayed rank's whole mutable state is its loss cursor."""
        return self._views[rank]._cursor

    def restore_rank(self, rank: int, state) -> None:
        self._views[rank]._cursor = state

    def final_accuracy(self, ctx) -> float | None:
        return self.trace.get("final_accuracy")
