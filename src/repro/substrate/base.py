"""The substrate contract: what the workers compute, behind one seam.

A :class:`Substrate` owns everything *statistical* about a training
run — datasets, shards, per-rank algorithm state, losses — while the
job context and executors own everything the simulation times and
bills. Executors reach the statistical side exclusively through
``ctx.stats(rank)``, which returns a per-rank view exposing the
:class:`~repro.optim.base.DistributedAlgorithm` surface:

``reduce``, ``epochs_per_round``, ``round_work()``, ``eval_work()``,
``round_payload()``, ``apply()``, ``local_loss()``, ``params``.

Three implementations:

* :class:`~repro.substrate.exact.ExactSubstrate` — today's real numpy
  path, unchanged (the default).
* :class:`~repro.substrate.record.RecordingSubstrate` — exact, plus it
  captures per-rank losses and round structure into a trace artifact.
* :class:`~repro.substrate.replay.ReplaySubstrate` — re-emits a
  recorded trace with zero numpy work; the executors yield the
  identical command stream, so duration/cost/history/breakdown are
  bit-identical to the exact run.

Substrate instances are single-use: one ``train()`` call attaches one
substrate to one job context.
"""

from __future__ import annotations

import abc
import time

from repro.errors import SubstrateError

SUBSTRATE_MODES = ("exact", "record", "replay")


class Substrate(abc.ABC):
    """Per-run statistical backend; see the module docstring."""

    name: str = "abstract"

    def __init__(self) -> None:
        #: Host seconds spent doing statistical (numpy) work: substrate
        #: build + every round_payload/apply/local_loss call. Sweeps
        #: persist this per point (``meta.compute_seconds``) so the
        #: wall-clock ledger shows where time actually goes.
        self.compute_seconds = 0.0
        self._attached = False

    # ------------------------------------------------------------------
    def attach(self, ctx) -> None:
        """Bind to a job context; build shards/algorithms or load state.

        Implementations must set ``self.shards`` and ``self.algorithms``
        (empty lists when nothing physical is built) before returning.
        """
        if self._attached:
            raise SubstrateError(
                f"{type(self).__name__} is single-use: already attached to a run"
            )
        self._attached = True
        self._build(ctx)

    @abc.abstractmethod
    def _build(self, ctx) -> None:
        """Populate per-run state (called once, from :meth:`attach`)."""

    @abc.abstractmethod
    def stats(self, rank: int):
        """The per-rank statistical view executors drive."""

    def final_accuracy(self, ctx) -> float | None:
        """Validation accuracy of the final model, when defined."""
        return None

    def finalize(self, ctx, result, outcomes) -> None:
        """Post-run hook (recording assembles its trace here)."""

    # -- fault recovery -------------------------------------------------
    def snapshot_rank(self, rank: int):
        """Opaque statistical state of `rank` for crash recovery.

        The returned object must stay valid across any number of
        :meth:`restore_rank` calls (restores install a *copy*), and a
        restored rank must reproduce the exact statistical stream —
        payload floats, losses, RNG draws — that followed the snapshot
        the first time. The fault injector snapshots at every FaaS
        round boundary and once per rank at IaaS job start.
        """
        raise SubstrateError(
            f"{type(self).__name__} does not support fault recovery snapshots"
        )

    def restore_rank(self, rank: int, state) -> None:
        """Reset `rank`'s statistical state to a prior snapshot."""
        raise SubstrateError(
            f"{type(self).__name__} does not support fault recovery snapshots"
        )


class TimedView:
    """Pass-through per-rank view that meters the numpy-heavy calls.

    Forwards the full algorithm surface (including ``model``/``shard``
    for the asynchronous executor) and adds the elapsed host time of
    ``round_payload``/``apply``/``local_loss`` to the owning
    substrate's ``compute_seconds``. Pure observation: values, dtypes
    and call order are untouched, so a metered run is bit-identical to
    the raw algorithm.
    """

    __slots__ = ("_algo", "_substrate")

    def __init__(self, algo, substrate: Substrate) -> None:
        object.__setattr__(self, "_algo", algo)
        object.__setattr__(self, "_substrate", substrate)

    def round_payload(self):
        t0 = time.perf_counter()
        out = self._algo.round_payload()
        self._substrate.compute_seconds += time.perf_counter() - t0
        return out

    def apply(self, merged) -> None:
        t0 = time.perf_counter()
        self._algo.apply(merged)
        self._substrate.compute_seconds += time.perf_counter() - t0

    def local_loss(self) -> float:
        t0 = time.perf_counter()
        loss = self._algo.local_loss()
        self._substrate.compute_seconds += time.perf_counter() - t0
        return loss

    @property
    def params(self):
        return self._algo.params

    @params.setter
    def params(self, value) -> None:
        self._algo.params = value

    def __getattr__(self, name):
        # reduce / epochs_per_round / round_work / eval_work / model /
        # shard / algorithm-specific extras: plain forwarding.
        return getattr(self._algo, name)

    def __setattr__(self, name, value) -> None:
        if name == "params":
            TimedView.params.fset(self, value)
            return
        raise AttributeError(f"substrate views are read-only (tried to set {name!r})")
