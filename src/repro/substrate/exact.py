"""The exact substrate: real numpy training, exactly as before the seam.

Owns what used to live inline in ``JobContext.__init__``: synthesize
the dataset split, shard it across workers, and instantiate one
:class:`~repro.optim.base.DistributedAlgorithm` per rank (plus the
k-means global-initialisation broadcast). Per-rank views are
:class:`~repro.substrate.base.TimedView` wrappers, so the run also
learns how many host seconds the statistical work cost.
"""

from __future__ import annotations

import copy
import time

from repro.data.loader import make_shards
from repro.data.synth import generate
from repro.optim.base import make_algorithm
from repro.substrate.base import Substrate, TimedView


class ExactSubstrate(Substrate):
    """Default substrate: every statistic computed with real numpy."""

    name = "exact"

    def _build(self, ctx) -> None:
        config = ctx.config
        t0 = time.perf_counter()
        split = generate(config.dataset, scale=ctx.scale, seed=config.seed)
        self.shards = make_shards(
            split,
            config.workers,
            global_batch=config.physical_batch(ctx.scale),
            partition_mode=config.partition_mode,
            seed=config.seed,
            min_local_batch=config.min_local_batch,
        )
        # k-means needs one globally sampled initialisation broadcast
        # to every worker (the starter's job in LambdaML).
        kmeans_init = None
        if ctx.info.kind == "kmeans":
            probe_model = ctx.info.factory()
            kmeans_init = probe_model.init_centroids(split.X_train, rng=config.seed)
        self.algorithms = [
            make_algorithm(
                config.algorithm,
                ctx.info.factory(),
                shard,
                lr=config.lr,
                seed=config.seed,  # same init on every worker
                admm_rho=config.admm_rho,
                admm_scans=config.admm_scans,
                ma_sync_epochs=config.ma_sync_epochs,
                kmeans_init=kmeans_init,
            )
            for shard in self.shards
        ]
        self.compute_seconds += time.perf_counter() - t0
        self._views = [TimedView(algo, self) for algo in self.algorithms]

    def stats(self, rank: int):
        return self._views[rank]

    # -- fault recovery -------------------------------------------------
    def _copy_algorithm(self, algo):
        """Deep copy of an algorithm's mutable state, sharing the data.

        The shard's feature/label arrays are immutable for the whole
        run, so the memo pins them (copying a full Higgs shard per
        round-boundary snapshot would dominate fault runs); everything
        else — parameters, ADMM duals, k-means centroids, and crucially
        the shard's minibatch RNG — is copied, which is exactly what a
        resumed incarnation needs to replay the identical statistical
        stream.
        """
        shard = algo.shard
        memo = {
            id(arr): arr
            for arr in (shard.X, shard.y, shard.X_val, shard.y_val)
        }
        return copy.deepcopy(algo, memo)

    def snapshot_rank(self, rank: int):
        t0 = time.perf_counter()
        state = self._copy_algorithm(self.algorithms[rank])
        self.compute_seconds += time.perf_counter() - t0
        return state

    def restore_rank(self, rank: int, state) -> None:
        t0 = time.perf_counter()
        algo = self._copy_algorithm(state)  # the snapshot stays reusable
        self.algorithms[rank] = algo
        self._views[rank] = TimedView(algo, self)
        self.compute_seconds += time.perf_counter() - t0

    def final_accuracy(self, ctx) -> float | None:
        """Validation accuracy of worker 0's final model, when defined."""
        algo = self.algorithms[0]
        model = getattr(algo, "model", None)
        if model is None or not hasattr(model, "accuracy"):
            return None
        shard = self.shards[0]
        t0 = time.perf_counter()
        try:
            return float(model.accuracy(algo.params, shard.X_val, shard.y_val))
        except (TypeError, ValueError):  # pragma: no cover - defensive
            return None
        finally:
            self.compute_seconds += time.perf_counter() - t0
