"""VM cluster start-up model.

Table 6 measures t_I(w) — the time to start a w-node EC2 cluster with
StarCluster, mount shared volumes, configure SSH, and dispatch the
training job: 132 s at 10 nodes, 160 s at 50, 292 s at 100, 606 s at
200. A single VM (the hybrid architecture's parameter server) comes up
in about 120 s (Figure 10 shows 123 s of start-up for HybridPS, which
skips job dispatch).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.iaas.vm import InstanceSpec, get_instance

_STARTUP_ANCHORS = [(1, 120.0), (10, 132.0), (50, 160.0), (100, 292.0), (200, 606.0)]


def iaas_startup_seconds(workers: int) -> float:
    """t_I(w): time until a w-VM training cluster is ready."""
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    anchors = _STARTUP_ANCHORS
    if workers <= anchors[0][0]:
        return anchors[0][1]
    for (w0, t0), (w1, t1) in zip(anchors, anchors[1:]):
        if w0 <= workers <= w1:
            frac = (math.log(workers) - math.log(w0)) / (math.log(w1) - math.log(w0))
            return t0 + frac * (t1 - t0)
    # Beyond 200 nodes: dispatch grows roughly linearly with w.
    w_last, t_last = anchors[-1]
    return t_last * (workers / w_last)


@dataclass
class VMCluster:
    """A homogeneous training cluster."""

    instance: InstanceSpec
    workers: int
    startup_s: float = field(init=False)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        self.startup_s = iaas_startup_seconds(self.workers)

    @classmethod
    def build(cls, instance_name: str, workers: int) -> "VMCluster":
        return cls(instance=get_instance(instance_name), workers=workers)

    def ring_allreduce_seconds(self, nbytes: int) -> float:
        """(2w-2) * (m/w / B_n + L_n): the paper's IaaS communication term."""
        w = self.workers
        if w == 1:
            return 0.0
        per_hop = (nbytes / w) / self.instance.network_bps + self.instance.network_latency_s
        return (2 * w - 2) * per_hop
