"""VM-based parameter server — the hybrid (Cirrus-style) architecture.

Lambda workers push gradients to, and pull models from, a parameter
server running on an EC2 VM over an RPC framework (gRPC or Thrift).
Section 4.3 finds this architecture bounded not by network line rate
but by (de)serialization on the Lambda side (CPU share ∝ memory), the
RPC server's effective ingress, and lock contention during model
updates. :class:`PSTimingModel` encodes those effects with constants
calibrated against Table 2 (75 MB transfers across λ-memory × instance
× worker-count combinations); :class:`ParameterServer` plugs them into
the discrete-event engine as a storage-like service whose `put` applies
a gradient update and whose `get` returns the current model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.faas.limits import REFERENCE_VCPUS, lambda_vcpus
from repro.iaas.cluster import iaas_startup_seconds
from repro.iaas.vm import InstanceSpec, get_instance
from repro.pricing.meter import CostMeter
from repro.simulation.resources import ServiceQueue
from repro.storage.base import ObjectStore, StorageProfile
from repro.utils.serialization import SizedPayload, unwrap

MB = 1024 * 1024

# Lambda-side (de)serialization throughput at the 3 GB / 1.8 vCPU
# reference, per RPC framework. Scales with sqrt(vCPU share): Table 2
# shows 1 GB functions are ~1.3x slower, not 3x.
LAMBDA_SERDES_RATE = {"grpc": 100 * MB, "thrift": 4 * MB}

# Effective FaaS->VM bandwidth per function ("up to 70 MBps" [57, 95]).
FAAS_VM_BANDWIDTH = 70 * MB

# PS-side deserialization throughput by instance family and framework.
PS_DESER_RATE = {
    "grpc": {"t2": 100 * MB, "c5": 2500 * MB, "default": 400 * MB},
    "thrift": {"t2": 30 * MB, "c5": 700 * MB, "default": 100 * MB},
}

# How many concurrent pushes the RPC server sustains before queueing.
PS_INGRESS_SLOTS = {"grpc": {"t2": 3, "c5": 4, "default": 4}, "thrift": {"default": 1}}

# Model-update throughput under the parameter lock (Table 2 right
# columns: gRPC's reflection-heavy update path is slower than Thrift's).
PS_UPDATE_RATE = {
    "grpc": {"t2": 26 * MB, "c5": 33 * MB, "default": 30 * MB},
    "thrift": {"t2": 150 * MB, "c5": 190 * MB, "default": 170 * MB},
}


def _family(instance: InstanceSpec) -> str:
    return instance.name.split(".")[0]


def _rate(table: dict, rpc: str, instance: InstanceSpec) -> float:
    by_family = table[rpc]
    return by_family.get(_family(instance), by_family["default"])


@dataclass(frozen=True)
class PSTimingModel:
    """Closed-form timing of one hybrid-architecture round trip."""

    instance: InstanceSpec
    rpc: str = "grpc"
    lambda_memory_gb: float = 3.0
    bandwidth_override_bps: float | None = None  # Figure 14's 10 Gbps what-if

    def __post_init__(self) -> None:
        if self.rpc not in ("grpc", "thrift"):
            raise ConfigurationError(f"rpc must be grpc|thrift, got {self.rpc!r}")

    @property
    def per_function_bandwidth(self) -> float:
        if self.bandwidth_override_bps is not None:
            return self.bandwidth_override_bps
        return FAAS_VM_BANDWIDTH

    def lambda_serdes_s(self, nbytes: int) -> float:
        vcpu_scale = math.sqrt(lambda_vcpus(self.lambda_memory_gb) / REFERENCE_VCPUS)
        return nbytes / (LAMBDA_SERDES_RATE[self.rpc] * vcpu_scale)

    def transfer_s(self, nbytes: int) -> float:
        return nbytes / self.per_function_bandwidth

    def ps_deser_s(self, nbytes: int) -> float:
        return nbytes / _rate(PS_DESER_RATE, self.rpc, self.instance)

    def update_s(self, nbytes: int) -> float:
        return nbytes / _rate(PS_UPDATE_RATE, self.rpc, self.instance)

    @property
    def ingress_slots(self) -> int:
        return _rate(PS_INGRESS_SLOTS, self.rpc, self.instance)

    # -- closed-form aggregates used by the Table 2 micro-benchmark ---------
    def data_transmission_s(self, nbytes: int, concurrent_workers: int) -> float:
        """Time until the last of k concurrent pushes has been received."""
        waves = math.ceil(concurrent_workers / self.ingress_slots)
        return (
            self.lambda_serdes_s(nbytes)
            + waves * self.transfer_s(nbytes)
            + self.ps_deser_s(nbytes)
        )

    def model_update_s(self, nbytes: int, concurrent_workers: int) -> float:
        """Time to apply k updates under the parameter lock."""
        return concurrent_workers * self.update_s(nbytes)


class ParameterServer(ObjectStore):
    """Engine-pluggable PS: put(grad) applies an update, get() pulls.

    Timing: a push pays Lambda-side serialization (uncontended), then
    transfer + PS deserialization on the ingress queue, then the update
    under a single-slot lock queue. A pull pays PS-side serialization +
    transfer on the egress queue, then Lambda-side deserialization.
    """

    MODEL_KEY = "model"

    def __init__(
        self,
        timing: PSTimingModel,
        init_params: np.ndarray,
        logical_param_bytes: int,
        lr: float = 0.0,
        update_mode: str = "gradient",
        meter: CostMeter | None = None,
        available_from: float | None = None,
    ) -> None:
        if update_mode not in ("gradient", "kv"):
            raise ConfigurationError(f"update_mode must be gradient|kv, got {update_mode!r}")
        profile = StorageProfile(
            name=f"ps[{timing.instance.name}/{timing.rpc}]",
            latency_s=1e-3,
            bandwidth_bps=timing.per_function_bandwidth,
            concurrency=timing.ingress_slots,
            startup_s=iaas_startup_seconds(1) if available_from is None else available_from,
        )
        super().__init__(profile, meter=meter, available_from=profile.startup_s)
        self.timing = timing
        self.lr = lr
        self.update_mode = update_mode
        self.logical_param_bytes = logical_param_bytes
        self.params = np.asarray(init_params, dtype=np.float64).copy()
        self.push_count = 0
        self._ingress = ServiceQueue(timing.ingress_slots)
        self._egress = ServiceQueue(max(2, timing.ingress_slots))
        self._lock = ServiceQueue(1)

    # -- timing ----------------------------------------------------------------
    def schedule_op(self, op: str, nbytes: int, arrival: float) -> tuple[float, float]:
        arrival = max(arrival, self.available_at)
        if op == "put":
            ser_done = arrival + self.timing.lambda_serdes_s(nbytes)
            ingress_duration = self.timing.transfer_s(nbytes) + self.timing.ps_deser_s(nbytes)
            _, received = self._ingress.schedule(ser_done, ingress_duration)
            _, updated = self._lock.schedule(received, self.timing.update_s(nbytes))
            return arrival, updated
        if op == "get":
            egress_duration = self.timing.ps_deser_s(nbytes) + self.timing.transfer_s(nbytes)
            _, sent = self._egress.schedule(arrival, egress_duration)
            return arrival, sent + self.timing.lambda_serdes_s(nbytes)
        # Metadata ops (list/delete) are cheap RPCs.
        return arrival, arrival + self.profile.latency_s

    # -- data ----------------------------------------------------------------
    def _do_put(self, key: str, value) -> None:
        if self.update_mode == "kv" or not key.startswith("grad/"):
            super()._do_put(key, value)
            return
        gradient = np.asarray(unwrap(value), dtype=np.float64)
        if gradient.shape != self.params.shape:
            super()._do_put(key, value)
            return
        self.params -= self.lr * gradient
        self.push_count += 1

    def _do_get(self, key: str):
        if key == self.MODEL_KEY and self.update_mode == "gradient":
            return SizedPayload(self.params.copy(), self.logical_param_bytes)
        return super()._do_get(key)

    def _exists(self, key: str) -> bool:
        if key == self.MODEL_KEY and self.update_mode == "gradient":
            return True
        return super()._exists(key)


def make_parameter_server(
    instance_name: str,
    init_params: np.ndarray,
    logical_param_bytes: int,
    lr: float,
    rpc: str = "grpc",
    lambda_memory_gb: float = 3.0,
    bandwidth_override_bps: float | None = None,
    meter: CostMeter | None = None,
) -> ParameterServer:
    """Convenience constructor resolving the instance by name."""
    timing = PSTimingModel(
        instance=get_instance(instance_name),
        rpc=rpc,
        lambda_memory_gb=lambda_memory_gb,
        bandwidth_override_bps=bandwidth_override_bps,
    )
    return ParameterServer(
        timing,
        init_params=init_params,
        logical_param_bytes=logical_param_bytes,
        lr=lr,
        meter=meter,
    )
