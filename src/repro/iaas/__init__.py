"""Simulated IaaS (EC2-like) substrate: VMs, clusters, MPI, and the
VM-based parameter server of the hybrid (Cirrus-style) architecture."""

from repro.iaas.cluster import VMCluster, iaas_startup_seconds
from repro.iaas.mpi import MPICommunicator
from repro.iaas.ps import ParameterServer, PSTimingModel
from repro.iaas.vm import INSTANCES, InstanceSpec, get_instance

__all__ = [
    "InstanceSpec",
    "INSTANCES",
    "get_instance",
    "VMCluster",
    "iaas_startup_seconds",
    "MPICommunicator",
    "ParameterServer",
    "PSTimingModel",
]
