"""EC2 instance catalog.

Network bandwidth/latency for the t2/c5 families come from Table 6
(t2.medium↔t2.medium 120 MB/s at 0.5 ms; c5↔c5 225 MB/s at 0.15 ms for
c5.large, line-rate 10 Gbps for the larger c5 sizes).

`relative_speed` is training throughput relative to the reference
worker (one 3 GB Lambda ≈ 1.8 vCPU ≈ one t2.medium running PyTorch on
all cores); it multiplies into the per-instance compute profiles of
`repro.models.zoo`. GPU speed-ups live in the model profiles, not
here, because only the neural workloads use GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

MB = 1024 * 1024


@dataclass(frozen=True)
class InstanceSpec:
    """One EC2 instance type."""

    name: str
    vcpus: int
    memory_gb: float
    relative_speed: float  # training throughput vs the reference worker
    network_bps: float  # VM-to-VM bandwidth
    network_latency_s: float
    gpu: str | None = None  # "m60" | "t4" | None


INSTANCES: dict[str, InstanceSpec] = {
    spec.name: spec
    for spec in [
        InstanceSpec("t2.medium", 2, 4.0, 1.0, 120 * MB, 5e-4),
        InstanceSpec("t2.xlarge", 4, 16.0, 1.9, 160 * MB, 5e-4),
        InstanceSpec("t2.2xlarge", 8, 32.0, 3.2, 250 * MB, 5e-4),
        InstanceSpec("c5.large", 2, 4.0, 1.3, 225 * MB, 1.5e-4),
        InstanceSpec("c5.xlarge", 4, 8.0, 2.4, 600 * MB, 1.5e-4),
        InstanceSpec("c5.2xlarge", 8, 16.0, 4.5, 1250 * MB, 1.5e-4),
        InstanceSpec("c5.4xlarge", 16, 32.0, 8.0, 1250 * MB, 1.5e-4),
        InstanceSpec("c5.9xlarge", 36, 72.0, 15.0, 1250 * MB, 1.5e-4),
        InstanceSpec("m5a.12xlarge", 48, 192.0, 18.0, 1250 * MB, 1.5e-4),
        InstanceSpec("g3s.xlarge", 4, 30.5, 2.2, 1250 * MB, 1.5e-4, gpu="m60"),
        InstanceSpec("g3.4xlarge", 16, 122.0, 6.0, 1250 * MB, 1.5e-4, gpu="m60"),
        InstanceSpec("g4dn.xlarge", 4, 16.0, 2.4, 1250 * MB, 1.5e-4, gpu="t4"),
        InstanceSpec("g4dn.2xlarge", 8, 32.0, 4.4, 1250 * MB, 1.5e-4, gpu="t4"),
    ]
}


def get_instance(name: str) -> InstanceSpec:
    try:
        return INSTANCES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown instance type {name!r}; known: {sorted(INSTANCES)}"
        ) from None
