"""MPI-style collectives for IaaS executors.

Distributed PyTorch communicates through Gloo's ring AllReduce over
VM-to-VM links; we model one collective as a rendezvous of all workers
(the engine's :class:`Collective` command) whose duration follows the
paper's analytical term (2w-2)(m/w / B_n + L_n), using the logical
payload size.
"""

from __future__ import annotations

import numpy as np

from repro.comm.aggregator import reduce_vectors
from repro.iaas.cluster import VMCluster
from repro.simulation.commands import Collective, CollectiveGroup
from repro.utils.serialization import SizedPayload, unwrap


class MPICommunicator:
    """Per-cluster communicator handing out collective commands."""

    def __init__(self, cluster: VMCluster) -> None:
        self.cluster = cluster
        self._groups: dict[str, CollectiveGroup] = {}

    def _group(self, reduce: str) -> CollectiveGroup:
        if reduce not in self._groups:
            self._groups[reduce] = CollectiveGroup(
                name=f"allreduce-{reduce}",
                size=self.cluster.workers,
                reduce_fn=self._make_reduce_fn(reduce),
                time_fn=lambda nbytes, size: self.cluster.ring_allreduce_seconds(nbytes),
            )
        return self._groups[reduce]

    @staticmethod
    def _make_reduce_fn(reduce: str):
        def fn(payloads: list) -> np.ndarray:
            vectors = [np.asarray(unwrap(p)) for p in payloads]
            return reduce_vectors(vectors, reduce)

        return fn

    def allreduce(self, vector: np.ndarray, logical_nbytes: int, reduce: str = "mean"):
        """Command for `yield`: AllReduce this worker's contribution."""
        return Collective(
            group=self._group(reduce),
            value=SizedPayload(vector, logical_nbytes),
            category="comm",
        )

    def reset(self) -> None:
        """Forget all rendezvous state (fault-injected job restart).

        Killed workers may be parked inside a half-full collective
        round; dropping the groups gives the restarted cohort fresh
        ``pending``/``round_counter`` maps so stale contributions can
        never fold into a new rendezvous.
        """
        self._groups.clear()

    def barrier(self):
        """Command for `yield`: synchronisation barrier (latency only)."""
        if "barrier" not in self._groups:
            self._groups["barrier"] = CollectiveGroup(
                name="barrier",
                size=self.cluster.workers,
                reduce_fn=lambda values: None,
                time_fn=lambda nbytes, size: 2
                * self.cluster.instance.network_latency_s
                * max(1, size - 1),
            )
        return Collective(group=self._groups["barrier"], value=None, category="comm")
