"""Global defaults shared across the library.

The values here are deliberately small and boring: anything with
scientific meaning (bandwidths, prices, model sizes) lives next to the
subsystem that owns it (`analytics.constants`, `pricing.catalog`,
`models.zoo`). This module only pins down reproducibility knobs and
scaling factors used when shrinking the paper's datasets to
laptop-scale physical arrays.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass


def stable_hash(text: str) -> int:
    """Process-independent string hash for seed derivation.

    Builtin `hash()` is randomized per process (PYTHONHASHSEED), which
    silently made every derived seed — and thus generated data and any
    knife-edge convergence result — unreproducible across runs. CRC32
    is stable across processes, platforms and Python versions.
    """
    return zlib.crc32(text.encode("utf-8"))

# Seed used by every experiment unless the caller overrides it. All
# randomness in the library flows through `utils.rng.make_rng`, so a
# single seed makes full runs bit-reproducible.
DEFAULT_SEED = 20210620  # SIGMOD'21 opening day.

# Physical down-scaling factor applied to the paper's datasets: we keep
# 1/SCALE of the instances *and* divide batch sizes by SCALE so that the
# number of iterations per epoch is unchanged (see DESIGN.md section 2).
DEFAULT_DATA_SCALE = 100

# Simulated-polling granularity for the synchronous protocol's wait
# loops (seconds). The paper polls the storage service for merged
# files; we charge this much extra latency per wake-up.
DEFAULT_POLL_INTERVAL_S = 0.05


@dataclass(frozen=True)
class ReproducibilityConfig:
    """Bundle of determinism knobs threaded through experiments."""

    seed: int = DEFAULT_SEED
    data_scale: int = DEFAULT_DATA_SCALE

    def child_seed(self, stream: str) -> int:
        """Derive a per-stream seed so subsystems do not share RNG state."""
        return (self.seed * 1_000_003 + stable_hash(stream)) % (2**31 - 1)
