"""Figure 8: Synchronous vs Asynchronous protocols.

GA-SGD trains LR on Higgs (W=10), LR on RCV1 (W=5) and MobileNet on
Cifar10 (W=10) under BSP and under the S-ASP asynchronous protocol
(global model in S3, 1/sqrt(T) learning-rate decay).

Expected shape: the asynchronous runs progress faster per iteration
(2 storage operations per round instead of ~3w) but converge unstably —
stale read-modify-write cycles overwrite each other's progress — so BSP
reaches the threshold reliably while ASP oscillates above it.

The BSP/ASP pairs are a declarative grid (:func:`sweep_points`) run by
the sweep orchestrator; :func:`aggregate` rebuilds the comparisons —
including the loss-vs-time curves — from per-point JSON artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import RunResult
from repro.experiments.report import format_series, format_table
from repro.experiments.workloads import get_workload
from repro.sweep.artifacts import result_from_artifact
from repro.sweep.grid import SweepPoint, expand_grid
from repro.sweep.orchestrator import run_sweep
from repro.sweep.study import study

CASES = [
    # (model, dataset, workers)
    ("lr", "higgs", 10),
    ("lr", "rcv1", 5),
    ("mobilenet", "cifar10", 10),
]


@dataclass
class SyncComparison:
    label: str
    bsp: RunResult
    asp: RunResult


def sweep_points(
    cases=CASES, max_epochs: float | None = None, seed: int = 20210620
) -> list[SweepPoint]:
    """One BSP and one S-ASP point per (model, dataset, W) case."""
    points = []
    for model, dataset, workers in cases:
        workload = get_workload(model, dataset)
        label = f"{model}/{dataset},W={workers}"
        base = dict(
            model=model,
            dataset=dataset,
            algorithm="ga_sgd",
            system="lambdaml",
            workers=workers,
            channel="s3",
            batch_size=workload.batch_size,
            batch_scope=workload.batch_scope,
            lr=workload.lr,
            loss_threshold=workload.threshold,
            max_epochs=max_epochs or min(workload.max_epochs, 20),
            # Mild straggling amplifies staleness, as on real Lambda.
            straggler_jitter=0.3,
            seed=seed,
        )
        points += [
            SweepPoint(
                "fig8", f"{label} {kw['protocol']}",
                config_kwargs=kw,
                tags={"case": label, "protocol": kw["protocol"]},
            )
            for kw in expand_grid(base, {"protocol": ("bsp", "asp")})
        ]
    return points


def aggregate(artifacts: list[dict]) -> list[SyncComparison]:
    """Pair BSP/ASP artifacts back into per-case comparisons.

    Cases missing one side of the pair (an interrupted sweep directory)
    are skipped — like the other aggregators, any artifact subset is
    renderable, just incompletely.
    """
    paired: dict[str, dict[str, RunResult]] = {}
    for artifact in artifacts:
        tags = artifact["tags"]
        paired.setdefault(tags["case"], {})[tags["protocol"]] = result_from_artifact(
            artifact
        )
    return [
        SyncComparison(label=case, bsp=results["bsp"], asp=results["asp"])
        for case, results in paired.items()
        if "bsp" in results and "asp" in results
    ]


def run_case(
    model: str,
    dataset: str,
    workers: int,
    max_epochs: float | None = None,
    seed: int = 20210620,
) -> SyncComparison:
    points = sweep_points(
        cases=[(model, dataset, workers)], max_epochs=max_epochs, seed=seed
    )
    return aggregate(run_sweep(points).artifacts)[0]


def run(max_epochs: float | None = None, cases=CASES, seed: int = 20210620):
    points = sweep_points(cases=cases, max_epochs=max_epochs, seed=seed)
    return aggregate(run_sweep(points).artifacts)


def format_report(comparisons: list[SyncComparison]) -> str:
    rows = []
    series = {}
    for comp in comparisons:
        for name, result in (("BSP", comp.bsp), ("S-ASP", comp.asp)):
            rows.append(
                [
                    comp.label,
                    name,
                    result.converged,
                    result.final_loss,
                    result.duration_s,
                    result.epochs,
                ]
            )
            series[f"{comp.label} {name}"] = result.loss_curve()
    table = format_table(
        "Figure 8 — synchronization protocols (GA-SGD)",
        ["workload", "protocol", "converged", "loss", "time(s)", "epochs"],
        rows,
    )
    return table + "\n\n" + format_series("Loss vs time", series)


@study("fig8")
class Fig8Study:
    """BSP vs S-ASP on LR/Higgs, LR/RCV1, MobileNet/Cifar10"""

    @staticmethod
    def points(ctx):
        return sweep_points(max_epochs=ctx.max_epochs, seed=ctx.seed)

    aggregate = staticmethod(aggregate)
    format_report = staticmethod(format_report)
