"""Figure 8: Synchronous vs Asynchronous protocols.

GA-SGD trains LR on Higgs (W=10), LR on RCV1 (W=5) and MobileNet on
Cifar10 (W=10) under BSP and under the S-ASP asynchronous protocol
(global model in S3, 1/sqrt(T) learning-rate decay).

Expected shape: the asynchronous runs progress faster per iteration
(2 storage operations per round instead of ~3w) but converge unstably —
stale read-modify-write cycles overwrite each other's progress — so BSP
reaches the threshold reliably while ASP oscillates above it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import TrainingConfig
from repro.core.driver import train
from repro.core.results import RunResult
from repro.experiments.report import format_series, format_table
from repro.experiments.workloads import get_workload

CASES = [
    # (model, dataset, workers)
    ("lr", "higgs", 10),
    ("lr", "rcv1", 5),
    ("mobilenet", "cifar10", 10),
]


@dataclass
class SyncComparison:
    label: str
    bsp: RunResult
    asp: RunResult


def run_case(
    model: str,
    dataset: str,
    workers: int,
    max_epochs: float | None = None,
    seed: int = 20210620,
) -> SyncComparison:
    workload = get_workload(model, dataset)

    def config(protocol: str) -> TrainingConfig:
        return TrainingConfig(
            model=model,
            dataset=dataset,
            algorithm="ga_sgd",
            system="lambdaml",
            workers=workers,
            channel="s3",
            protocol=protocol,
            batch_size=workload.batch_size,
            batch_scope=workload.batch_scope,
            lr=workload.lr,
            loss_threshold=workload.threshold,
            max_epochs=max_epochs or min(workload.max_epochs, 20),
            # Mild straggling amplifies staleness, as on real Lambda.
            straggler_jitter=0.3,
            seed=seed,
        )

    return SyncComparison(
        label=f"{model}/{dataset},W={workers}",
        bsp=train(config("bsp")),
        asp=train(config("asp")),
    )


def run(max_epochs: float | None = None, cases=CASES, seed: int = 20210620):
    return [run_case(m, d, w, max_epochs=max_epochs, seed=seed) for m, d, w in cases]


def format_report(comparisons: list[SyncComparison]) -> str:
    rows = []
    series = {}
    for comp in comparisons:
        for name, result in (("BSP", comp.bsp), ("S-ASP", comp.asp)):
            rows.append(
                [
                    comp.label,
                    name,
                    result.converged,
                    result.final_loss,
                    result.duration_s,
                    result.epochs,
                ]
            )
            series[f"{comp.label} {name}"] = result.loss_curve()
    table = format_table(
        "Figure 8 — synchronization protocols (GA-SGD)",
        ["workload", "protocol", "converged", "loss", "time(s)", "epochs"],
        rows,
    )
    return table + "\n\n" + format_series("Loss vs time", series)
