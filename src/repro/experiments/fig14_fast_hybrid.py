"""Figure 14 (Q1): what if FaaS-IaaS communication reached 10 Gbps?

Evaluated analytically, as in the paper: we plug the 10 Gbps link into
the hybrid model's communication term for LR/YFCC100M and
MobileNet/Cifar10 and compare runtime/cost against today's hybrid,
pure FaaS, IaaS, and IaaS-GPU.

Expected shape: for LR/YFCC, even the 10 Gbps hybrid loses to pure
FaaS (which skips the PS VM's start-up and runs ADMM); for MobileNet it
lands ~10% faster than CPU IaaS but still behind the GPU; with a
hypothetical GPU-FaaS at g3s.xlarge pricing it would become ~18%
cheaper than GPU IaaS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.casestudy import (
    HybridModel,
    q1_fast_hybrid,
    q1_gpu_faas_cost,
)
from repro.analytics.model import AnalyticalModel, WorkloadParams
from repro.data.datasets import get_spec
from repro.experiments.report import format_table
from repro.models.zoo import get_model_info
from repro.pricing.catalog import DEFAULT_CATALOG
from repro.sweep.study import study


def _workload_params(model: str, dataset: str, epochs: float, rounds_per_epoch: float,
                     gpu: bool = False) -> WorkloadParams:
    spec = get_spec(dataset)
    info = get_model_info(model, dataset)
    compute = spec.n_instances * info.compute.per_instance_s
    compute_iaas = compute / (info.compute.gpu_speedup_m60 if gpu else 1.0)
    return WorkloadParams(
        dataset_bytes=spec.size_bytes,
        model_bytes=info.param_bytes,
        epochs_faas=epochs,
        epochs_iaas=epochs,
        compute_faas_s=compute,
        compute_iaas_s=compute_iaas,
        rounds_per_epoch=rounds_per_epoch,
        channel="elasticache" if model in ("mobilenet", "resnet50") else "s3",
        network="c5",
    )


@dataclass
class CaseStudyRow:
    workload: str
    system: str
    runtime_s: float
    cost: float


def run(workers_lr: int = 100, workers_mn: int = 10) -> list[CaseStudyRow]:
    rows: list[CaseStudyRow] = []

    # LR on YFCC100M: ADMM on FaaS (one exchange per ten epochs).
    lr_params = _workload_params("lr", "yfcc100m", epochs=20.0, rounds_per_epoch=0.1)
    for system, (runtime, cost) in q1_fast_hybrid(lr_params, workers_lr).items():
        rows.append(CaseStudyRow("lr/yfcc100m", system, runtime, cost))

    # MobileNet on Cifar10: GA-SGD syncs every batch (~47 rounds/epoch).
    mn_params = _workload_params("mobilenet", "cifar10", epochs=30.0, rounds_per_epoch=47.0)
    for system, (runtime, cost) in q1_fast_hybrid(mn_params, workers_mn).items():
        rows.append(CaseStudyRow("mobilenet/cifar10", system, runtime, cost))

    # IaaS on GPU for MobileNet, and the hypothetical GPU-FaaS pricing.
    mn_gpu = _workload_params("mobilenet", "cifar10", epochs=30.0, rounds_per_epoch=47.0, gpu=True)
    gpu_model = AnalyticalModel(mn_gpu)
    gpu_runtime = gpu_model.iaas_seconds(workers_mn)
    gpu_cost = workers_mn * DEFAULT_CATALOG.ec2_price("g3s.xlarge") * gpu_runtime / 3600.0
    rows.append(CaseStudyRow("mobilenet/cifar10", "iaas-gpu", gpu_runtime, gpu_cost))

    hybrid_10g = HybridModel(
        mn_params, faas_vm_bandwidth=1250 * 1024 * 1024, serdes_bandwidth=1250 * 1024 * 1024
    )
    runtime_10g = hybrid_10g.seconds(workers_mn)
    rows.append(
        CaseStudyRow(
            "mobilenet/cifar10", "gpu-faas (hypothetical)",
            runtime_10g / get_model_info("mobilenet", "cifar10").compute.gpu_speedup_m60,
            q1_gpu_faas_cost(
                runtime_10g / get_model_info("mobilenet", "cifar10").compute.gpu_speedup_m60,
                workers_mn,
            ),
        )
    )
    return rows


def format_report(rows: list[CaseStudyRow]) -> str:
    return format_table(
        "Figure 14 — Q1: 10 Gbps FaaS<->IaaS what-if (analytical)",
        ["workload", "system", "runtime(s)", "cost($)"],
        [[r.workload, r.system, r.runtime_s, r.cost] for r in rows],
    )


@study("fig14", kind="direct")
class Fig14Study:
    """Q1 what-if: a 10 Gbps FaaS<->IaaS link, evaluated analytically"""

    aggregate = staticmethod(lambda artifacts: run())
    format_report = staticmethod(format_report)
