"""Figure R: the cost of reliability — overhead vs crash rate.

This experiment is not in the paper; it extends its FaaS-vs-IaaS
argument to the axis the follow-ups (MLLess, SMLT) showed is
first-order: what does surviving failures *cost*? Two recovery
disciplines run over the same crash-rate grid on the Table-4 LR/Higgs
workload:

* **FaaS + per-round checkpoints (LambdaML)** — every round boundary
  writes a checkpoint to S3; a crashed function's successor pays a
  cold start, a data/ checkpoint reload, and re-executes at most one
  round. Overhead grows smoothly with the crash rate.
* **IaaS restart-from-scratch (distributed PyTorch)** — no
  checkpoints: any worker crash restarts the whole job. Cheap at rate
  zero, catastrophic as the MTTF approaches the job duration.

A third series sweeps the transient storage-error rate (FaaS only):
failed puts/gets retry under exponential backoff, billed per attempt.

A fourth series holds the FaaS crash rate fixed and sweeps
``checkpoint_interval``: checkpointing every N-th round boundary pays
less overhead per round but re-executes up to N rounds per crash — the
classic checkpoint-frequency trade-off, measured in the same
overhead-vs-baseline units as the other curves.

Every point shares one statistical fingerprint — crash and retry axes
are systems axes — so a ``--substrate auto`` sweep records *one* exact
trace and replays the entire grid in milliseconds per point. Each
artifact's ``result.events`` carries the reliability story (crashes,
reincarnations/restarts, checkpoints, retries).

``aggregate()`` reduces artifacts to per-series curves of runtime/cost
overhead relative to that series' fault-free baseline point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.report import format_table
from repro.experiments.workloads import get_workload
from repro.sweep.grid import SweepPoint, expand_grid
from repro.sweep.orchestrator import run_sweep
from repro.sweep.study import study

# Crashes per worker per simulated hour. An LR/Higgs job at W=10 runs
# a few simulated minutes, so the top FaaS rates put several crashes
# inside one run. The IaaS grid stops earlier by design: with no
# checkpoints, an attempt only succeeds if *no* worker crashes for the
# whole job — survival decays as exp(-D*w/mttf), so rates that are
# routine for checkpointed FaaS push an IaaS job into hundreds of
# simulated restarts. That asymmetry IS the figure.
FAAS_CRASH_RATES = (0.0, 2.0, 4.0, 8.0, 16.0, 30.0, 60.0)
IAAS_CRASH_RATES = (0.0, 1.0, 2.0, 4.0, 8.0)
# Per-operation transient failure probabilities for the retry series.
STORAGE_ERROR_RATES = (0.0, 0.002, 0.01, 0.05)
# Checkpoint cadences swept at INTERVAL_CRASH_RATE crashes/worker/hour.
# Interval 1 is omitted from the grid: it is byte-for-byte the
# faas-crash point at that rate (checkpoint_interval defaults to 1),
# and duplicate hashes collapse into the first series anyway.
CHECKPOINT_INTERVALS = (2, 4, 8)
INTERVAL_CRASH_RATE = 8.0
WORKERS = 10
# Fixed statistical budget for every point: the epochs the Table-4
# threshold run actually uses. No early stop — identical work per
# point keeps the overhead comparison like for like, and bounds the
# job length so IaaS restart-from-scratch survives the top crash rate
# (survival decays as exp(-D*w/mttf); at the 60-epoch workload
# ceiling the rate-8 point would need ~e^7 attempts).
EPOCH_BUDGET = 10


@dataclass
class ReliabilityPoint:
    series: str
    crash_rate: float
    storage_error_rate: float
    checkpoint_interval: int
    runtime_s: float
    cost: float
    overhead_s: float  # vs the series' zero-fault baseline
    overhead_cost: float
    events: dict


@dataclass
class ReliabilityCurve:
    series: str  # faas-crash | iaas-crash | faas-storage
    points: list[ReliabilityPoint] = field(default_factory=list)


def sweep_points(
    max_epochs: float | None = None,
    seed: int = 20210620,
    crash_rates=FAAS_CRASH_RATES,
    iaas_crash_rates=IAAS_CRASH_RATES,
    storage_error_rates=STORAGE_ERROR_RATES,
    checkpoint_intervals=CHECKPOINT_INTERVALS,
    workers: int = WORKERS,
) -> list[SweepPoint]:
    """Declarative grid for the cost-of-reliability curves."""
    workload = get_workload("lr", "higgs")
    # admm_scans=2 gives the job a real round structure (5 exchange
    # rounds over EPOCH_BUDGET instead of 1) — without it a crash
    # always re-executes the whole job and the checkpoint-cadence
    # series would be vacuous.
    base = dict(
        model="lr", dataset="higgs", algorithm="admm", admm_scans=2,
        workers=workers, batch_size=workload.batch_size, lr=workload.lr,
        max_epochs=max_epochs or EPOCH_BUDGET, seed=seed,
    )
    points = [
        SweepPoint(
            "figR", f"faas,crash_rate={kw['crash_rate']:g}/h",
            config_kwargs=kw,
            tags={"series": "faas-crash", "system": "faas"},
        )
        for kw in expand_grid(
            dict(base, system="lambdaml", channel="s3"),
            {"crash_rate": crash_rates},
        )
    ]
    points += [
        SweepPoint(
            "figR", f"iaas,crash_rate={kw['crash_rate']:g}/h",
            config_kwargs=kw,
            tags={"series": "iaas-crash", "system": "iaas"},
        )
        for kw in expand_grid(
            dict(base, system="pytorch"), {"crash_rate": iaas_crash_rates}
        )
    ]
    points += [
        SweepPoint(
            "figR", f"faas,storage_error_rate={kw['storage_error_rate']:g}",
            config_kwargs=kw,
            tags={"series": "faas-storage", "system": "faas"},
        )
        for kw in expand_grid(
            dict(base, system="lambdaml", channel="s3"),
            {"storage_error_rate": storage_error_rates},
        )
        if kw["storage_error_rate"] > 0  # rate 0 already in faas-crash
    ]
    points += [
        SweepPoint(
            "figR",
            f"faas,checkpoint_interval={kw['checkpoint_interval']},"
            f"crash_rate={INTERVAL_CRASH_RATE:g}/h",
            config_kwargs=kw,
            tags={"series": "faas-interval", "system": "faas"},
        )
        for kw in expand_grid(
            dict(
                base, system="lambdaml", channel="s3",
                crash_rate=INTERVAL_CRASH_RATE,
            ),
            {"checkpoint_interval": checkpoint_intervals},
        )
    ]
    return points


def aggregate(artifacts: list[dict]) -> list[ReliabilityCurve]:
    """Rebuild the reliability curves from per-point sweep artifacts."""
    curves: dict[str, ReliabilityCurve] = {}
    for artifact in artifacts:
        series = artifact["tags"]["series"]
        curve = curves.setdefault(series, ReliabilityCurve(series=series))
        config = artifact["config"]
        res = artifact["result"]
        curve.points.append(
            ReliabilityPoint(
                series=series,
                crash_rate=config["crash_rate"],
                storage_error_rate=config["storage_error_rate"],
                checkpoint_interval=config.get("checkpoint_interval", 1),
                runtime_s=res["duration_s"],
                cost=res["cost_total"],
                overhead_s=0.0,
                overhead_cost=0.0,
                events=dict(res.get("events", {})),
            )
        )
    # Overheads are relative to the series' fault-free point; the
    # storage series borrows the faas-crash baseline (same config at
    # zero rates).
    baselines: dict[str, ReliabilityPoint] = {}
    for curve in curves.values():
        for point in curve.points:
            if point.crash_rate == 0 and point.storage_error_rate == 0:
                baselines[curve.series] = point
    faas_base = baselines.get("faas-crash")
    if faas_base is not None:
        # Both borrowed series share the faas-crash zero-fault config.
        baselines.setdefault("faas-storage", faas_base)
        baselines.setdefault("faas-interval", faas_base)
    for curve in curves.values():
        base = baselines.get(curve.series)
        if base is None:
            continue
        for point in curve.points:
            point.overhead_s = point.runtime_s - base.runtime_s
            point.overhead_cost = point.cost - base.cost
    return list(curves.values())


def run_reliability(
    max_epochs: float | None = None, seed: int = 20210620, substrate: str = "auto"
) -> list[ReliabilityCurve]:
    """Library entry point: run the grid, aggregate the curves."""
    points = sweep_points(max_epochs=max_epochs, seed=seed)
    return aggregate(run_sweep(points, substrate=substrate).artifacts)


def format_report(curves: list[ReliabilityCurve]) -> str:
    blocks = []
    for curve in curves:
        rows = [
            [
                (
                    f"{p.storage_error_rate:g}"
                    if curve.series == "faas-storage"
                    else f"every {p.checkpoint_interval} @ {p.crash_rate:g}/h"
                    if curve.series == "faas-interval"
                    else f"{p.crash_rate:g}/h"
                ),
                p.runtime_s,
                p.cost,
                p.overhead_s,
                p.overhead_cost,
                p.events.get("crashes", 0),
                p.events.get("restarts", 0) or p.events.get("reincarnations", 0),
                p.events.get("storage_retries", 0),
            ]
            for p in curve.points
        ]
        blocks.append(
            format_table(
                f"Figure R — cost of reliability, {curve.series}",
                ["fault rate", "runtime(s)", "cost($)", "overhead(s)",
                 "overhead($)", "crashes", "recoveries", "retries"],
                rows,
            )
        )
    return "\n\n".join(blocks)


@study("figR")
class FigRStudy:
    """cost of reliability: runtime/cost overhead vs crash and storage-error rates, FaaS-with-checkpoints vs IaaS-restart"""

    @staticmethod
    def points(ctx):
        return sweep_points(max_epochs=ctx.max_epochs, seed=ctx.seed)

    aggregate = staticmethod(aggregate)
    format_report = staticmethod(format_report)
