"""Table 1: communication channels — S3 vs Memcached vs DynamoDB vs VM-PS.

For each workload we run the identical training job over each channel
and report the *slowdown* and *relative cost* with respect to S3
(values > 1 mean S3 is faster / cheaper). DynamoDB rows come out N/A
whenever the model exceeds its 400 KB item limit, reproducing the
paper's "DynamoDB cannot handle a large model such as MobileNet".

The qualitative expectations: Memcached and the VM parameter server pay
startup (minutes) that dominates short jobs, making S3 cheaper and
faster end-to-end; on long jobs (MobileNet) Memcached's low latency
wins; DynamoDB tracks S3 closely for tiny models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import TrainingConfig
from repro.core.driver import train
from repro.core.results import RunResult
from repro.errors import ItemTooLargeError, StorageError
from repro.experiments.report import format_table, ratio
from repro.experiments.workloads import get_workload

CHANNELS = ("s3", "memcached", "dynamodb")


@dataclass
class ChannelRow:
    """One Table-1 row: a workload across channels, relative to S3."""

    workload: str
    workers: int
    s3_time: float
    s3_cost: float
    slowdown: dict[str, float | None]
    rel_cost: dict[str, float | None]


def run_workload(
    model: str,
    dataset: str,
    workers: int,
    k: int = 10,
    max_epochs: float | None = None,
    include_hybrid: bool = True,
    seed: int = 20210620,
) -> ChannelRow:
    workload = get_workload(model, dataset)
    results: dict[str, RunResult | None] = {}

    def make_config(**overrides) -> TrainingConfig:
        return TrainingConfig(
            model=model,
            dataset=dataset,
            algorithm=overrides.pop("algorithm", workload.algorithm),
            system=overrides.pop("system", "lambdaml"),
            workers=workers,
            batch_size=workload.batch_size,
            batch_scope=workload.batch_scope,
            lr=workload.lr,
            k=k if model == "kmeans" else workload.k,
            loss_threshold=workload.threshold,
            max_epochs=max_epochs or workload.max_epochs,
            seed=seed,
            **overrides,
        )

    for channel in CHANNELS:
        try:
            results[channel] = train(make_config(channel=channel))
        except (ItemTooLargeError, StorageError):
            results[channel] = None  # N/A in the paper's table
    if include_hybrid and workload.algorithm != "em":
        # The VM-PS column trains with Cirrus-style GA-SGD pushes.
        results["vm-ps"] = train(make_config(system="hybridps", algorithm="ga_sgd"))
    else:
        results["vm-ps"] = None

    s3 = results["s3"]
    slowdown = {}
    rel_cost = {}
    for name, result in results.items():
        if name == "s3":
            continue
        slowdown[name] = ratio(result.duration_s if result else None, s3.duration_s)
        rel_cost[name] = ratio(result.cost_total if result else None, s3.cost_total)
    return ChannelRow(
        workload=f"{model}/{dataset}" + (f",k={k}" if model == "kmeans" else ""),
        workers=workers,
        s3_time=s3.duration_s,
        s3_cost=s3.cost_total,
        slowdown=slowdown,
        rel_cost=rel_cost,
    )


def run(scaled: bool = True, seed: int = 20210620) -> list[ChannelRow]:
    """All Table-1 rows (scaled=True shrinks worker counts for CI)."""
    w_small, w_large = (10, 50)
    rows = [
        run_workload("lr", "higgs", w_small, seed=seed),
        run_workload("lr", "higgs", w_large, seed=seed),
        run_workload("kmeans", "higgs", w_large, k=10, seed=seed),
        run_workload("kmeans", "higgs", w_large, k=1000, max_epochs=10, seed=seed),
        run_workload(
            "mobilenet", "cifar10", 10, max_epochs=6 if scaled else None, seed=seed
        ),
    ]
    if not scaled:
        rows.append(run_workload("mobilenet", "cifar10", 50, seed=seed))
    return rows


def format_report(rows: list[ChannelRow]) -> str:
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row.workload,
                row.workers,
                row.rel_cost.get("memcached"),
                row.slowdown.get("memcached"),
                row.rel_cost.get("dynamodb"),
                row.slowdown.get("dynamodb"),
                row.rel_cost.get("vm-ps"),
                row.slowdown.get("vm-ps"),
            ]
        )
    return format_table(
        "Table 1 — channel cost/slowdown relative to S3 (>1 means S3 wins)",
        [
            "workload",
            "W",
            "memcached cost",
            "memcached slow",
            "dynamodb cost",
            "dynamodb slow",
            "vm-ps cost",
            "vm-ps slow",
        ],
        table_rows,
    )
