"""Table 1: communication channels — S3 vs Memcached vs DynamoDB vs VM-PS.

For each workload we run the identical training job over each channel
and report the *slowdown* and *relative cost* with respect to S3
(values > 1 mean S3 is faster / cheaper). DynamoDB cells come out N/A
whenever the model exceeds its 400 KB item limit, reproducing the
paper's "DynamoDB cannot handle a large model such as MobileNet".

The qualitative expectations: Memcached and the VM parameter server pay
startup (minutes) that dominates short jobs, making S3 cheaper and
faster end-to-end; on long jobs (MobileNet) Memcached's low latency
wins; DynamoDB tracks S3 closely for tiny models.

Each table row is a declarative grid (:func:`workload_points`, one
point per feasible channel) run by the sweep orchestrator; infeasible
DynamoDB cells are excluded at grid-declaration time (the same
``stored_item_bytes`` arithmetic the simulated store enforces) and
:func:`aggregate` renders them as N/A.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table, ratio
from repro.experiments.workloads import get_workload
from repro.models.zoo import get_model_info
from repro.storage.services import DYNAMODB_MAX_ITEM_BYTES, DynamoDBStore
from repro.sweep.artifacts import result_from_artifact
from repro.sweep.grid import SweepPoint
from repro.sweep.orchestrator import run_sweep
from repro.sweep.study import study

CHANNELS = ("s3", "memcached", "dynamodb")


@dataclass
class ChannelRow:
    """One Table-1 row: a workload across channels, relative to S3."""

    workload: str
    workers: int
    s3_time: float
    s3_cost: float
    slowdown: dict[str, float | None]
    rel_cost: dict[str, float | None]


def dynamodb_feasible(model: str, dataset: str, k: int = 10) -> bool:
    """Can the model/gradient item fit DynamoDB's 400 KB limit?

    Mirrors :meth:`DynamoDBStore.stored_item_bytes` exactly, so a grid
    excludes precisely the points the simulated store would reject with
    ``ItemTooLargeError`` mid-run.
    """
    info = get_model_info(model, dataset, k=k)
    store = DynamoDBStore()
    return store.stored_item_bytes(info.param_bytes) <= DYNAMODB_MAX_ITEM_BYTES


def workload_points(
    model: str,
    dataset: str,
    workers: int,
    k: int = 10,
    max_epochs: float | None = None,
    include_hybrid: bool = True,
    seed: int = 20210620,
) -> list[SweepPoint]:
    """One point per feasible channel (plus VM-PS) for one table row."""
    workload = get_workload(model, dataset)
    row = f"{model}/{dataset}" + (f",k={k}" if model == "kmeans" else "") + f",W={workers}"

    def make_point(channel_label: str, **overrides) -> SweepPoint:
        kwargs = dict(
            model=model,
            dataset=dataset,
            algorithm=overrides.pop("algorithm", workload.algorithm),
            system=overrides.pop("system", "lambdaml"),
            workers=workers,
            batch_size=workload.batch_size,
            batch_scope=workload.batch_scope,
            lr=workload.lr,
            k=k if model == "kmeans" else workload.k,
            loss_threshold=workload.threshold,
            max_epochs=max_epochs or workload.max_epochs,
            seed=seed,
            **overrides,
        )
        return SweepPoint(
            "table1", f"{row} {channel_label}",
            config_kwargs=kwargs,
            tags={"row": row, "channel": channel_label, "workers": str(workers)},
        )

    points = []
    for channel in CHANNELS:
        if channel == "dynamodb" and not dynamodb_feasible(model, dataset, k=k):
            continue  # N/A in the paper's table
        points.append(make_point(channel, channel=channel))
    if include_hybrid and workload.algorithm != "em":
        # The VM-PS column trains with Cirrus-style GA-SGD pushes.
        points.append(make_point("vm-ps", system="hybridps", algorithm="ga_sgd"))
    return points


# The default rows (scaled: MobileNet capped at 6 epochs, no W=50 row).
def sweep_points(
    max_epochs: float | None = None, seed: int = 20210620, scaled: bool = True
) -> list[SweepPoint]:
    w_small, w_large = (10, 50)
    points = []
    points += workload_points("lr", "higgs", w_small, max_epochs=max_epochs, seed=seed)
    points += workload_points("lr", "higgs", w_large, max_epochs=max_epochs, seed=seed)
    points += workload_points(
        "kmeans", "higgs", w_large, k=10, max_epochs=max_epochs, seed=seed
    )
    points += workload_points(
        "kmeans", "higgs", w_large, k=1000, max_epochs=max_epochs or 10, seed=seed
    )
    points += workload_points(
        "mobilenet", "cifar10", 10,
        max_epochs=max_epochs or (6 if scaled else None), seed=seed,
    )
    if not scaled:
        points += workload_points(
            "mobilenet", "cifar10", 50, max_epochs=max_epochs, seed=seed
        )
    return points


def aggregate(artifacts: list[dict]) -> list[ChannelRow]:
    """Rebuild the table rows from sweep artifacts (row order preserved)."""
    grouped: dict[str, dict[str, dict]] = {}
    for artifact in artifacts:
        tags = artifact["tags"]
        grouped.setdefault(tags["row"], {})[tags["channel"]] = artifact
    rows = []
    for row_label, by_channel in grouped.items():
        if "s3" not in by_channel:
            continue  # interrupted sweep: the baseline cell is missing
        s3 = result_from_artifact(by_channel["s3"])
        names = [c for c in CHANNELS if c != "s3"] + ["vm-ps"]
        slowdown: dict[str, float | None] = {}
        rel_cost: dict[str, float | None] = {}
        for name in names:
            artifact = by_channel.get(name)
            result = result_from_artifact(artifact) if artifact else None
            slowdown[name] = ratio(result.duration_s if result else None, s3.duration_s)
            rel_cost[name] = ratio(result.cost_total if result else None, s3.cost_total)
        workload_label, _, workers_label = row_label.rpartition(",W=")
        rows.append(
            ChannelRow(
                workload=workload_label,
                workers=int(workers_label),
                s3_time=s3.duration_s,
                s3_cost=s3.cost_total,
                slowdown=slowdown,
                rel_cost=rel_cost,
            )
        )
    return rows


def run_workload(
    model: str,
    dataset: str,
    workers: int,
    k: int = 10,
    max_epochs: float | None = None,
    include_hybrid: bool = True,
    seed: int = 20210620,
) -> ChannelRow:
    """One table row (legacy shim over the orchestrator)."""
    points = workload_points(
        model, dataset, workers, k=k, max_epochs=max_epochs,
        include_hybrid=include_hybrid, seed=seed,
    )
    return aggregate(run_sweep(points).artifacts)[0]


def run(scaled: bool = True, seed: int = 20210620) -> list[ChannelRow]:
    """All Table-1 rows (scaled=True shrinks the MobileNet budget for CI)."""
    points = sweep_points(seed=seed, scaled=scaled)
    return aggregate(run_sweep(points).artifacts)


def format_report(rows: list[ChannelRow]) -> str:
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row.workload,
                row.workers,
                row.rel_cost.get("memcached"),
                row.slowdown.get("memcached"),
                row.rel_cost.get("dynamodb"),
                row.slowdown.get("dynamodb"),
                row.rel_cost.get("vm-ps"),
                row.slowdown.get("vm-ps"),
            ]
        )
    return format_table(
        "Table 1 — channel cost/slowdown relative to S3 (>1 means S3 wins)",
        [
            "workload",
            "W",
            "memcached cost",
            "memcached slow",
            "dynamodb cost",
            "dynamodb slow",
            "vm-ps cost",
            "vm-ps slow",
        ],
        table_rows,
    )


@study("table1")
class Table1Study:
    """channel comparison (S3 / Memcached / DynamoDB / VM-PS) slowdown + relative cost"""

    @staticmethod
    def points(ctx):
        return sweep_points(max_epochs=ctx.max_epochs, seed=ctx.seed)

    aggregate = staticmethod(aggregate)
    format_report = staticmethod(format_report)
