"""figV — the train-then-serve pipeline panel.

The source paper stops once the model converges; figV asks what happens
next: the trained model is registered into the serving tier and hit
with seeded request traffic, and the experiment reports the **end-to-end
dollar cost of owning the model** — training cost plus the cost of
serving one million requests — across the axes no prior serverless-ML
paper combines: hosting platform (FaaS functions vs always-on CPU vs
GPU VMs) × traffic shape (Poisson / diurnal / bursty) × autoscaling
policy (fixed / concurrency-target / queue-depth).

The grid points are the training runs (a MobileNet/Cifar10 surrogate
and an LR/Higgs contrast, both scaled down) — ordinary content-
addressed sweep artifacts, so ``--jobs/--resume`` and serial-vs-pooled
byte-identity come from the orchestrator. ``aggregate`` then replays
the deterministic serving simulation over those artifacts: the whole
panel is a pure function of the artifacts and re-runs identically on
every invocation.
"""

from __future__ import annotations

from repro.sweep.grid import SweepPoint
from repro.sweep.study import study

#: Serving panel knobs (shared by the study and the benchmark).
SERVE_REQUESTS = 400
SERVE_RATE_RPS = 20.0
SERVE_MAX_REPLICAS = 16
#: Always-on fleet sizes: CPU VMs need headroom for bursts; one GPU VM
#: serves ~27x faster, so a pair is already over-provisioned.
SERVE_MIN_REPLICAS = {"faas": 1, "iaas": 4, "gpu_iaas": 2}

PANEL_PLATFORMS = ("faas", "iaas", "gpu_iaas")
PANEL_TRAFFIC = ("poisson", "diurnal", "bursty")
PANEL_AUTOSCALERS = ("fixed", "concurrency", "queue_depth")


def class_kwargs(max_epochs: float | None = None, seed: int = 20210620) -> dict:
    """The two trained-model classes feeding the registry.

    Both legs are ``ServingConfig.train_kwargs()`` so the study and the
    ``repro.cli infer`` facade train byte-identical models.
    """
    from repro.serving import ServingConfig

    return {
        # The serving headliner: a 12 MB CNN whose cold model pull and
        # forward-pass cost make the platform axes bite.
        "nn": ServingConfig(
            train_epochs=max_epochs or 1.0, seed=seed
        ).train_kwargs(),
        # The contrast: a 224 B linear model — negligible load time,
        # serving cost dominated by per-request overhead.
        "small": ServingConfig(
            model="lr", dataset="higgs", data_scale=2000,
            train_epochs=max_epochs or 1.0, seed=seed,
        ).train_kwargs(),
    }


def sweep_points(
    max_epochs: float | None = None, seed: int = 20210620
) -> list[SweepPoint]:
    return [
        SweepPoint(
            "figV",
            f"model={label} {kw['model']}/{kw['dataset']},W={kw['workers']}",
            config_kwargs=kw,
            tags={"series": "serving", "class": label},
        )
        for label, kw in sorted(class_kwargs(max_epochs, seed).items())
    ]


def serve_pipeline(artifacts: list[dict]) -> dict:
    """The platform x traffic x autoscaler panel over trained artifacts."""
    from repro.serving import (
        ModelRegistry,
        ServingConfig,
        ServingRuntime,
        serving_metrics,
    )

    registry = ModelRegistry()
    for artifact in sorted(artifacts, key=lambda a: a["tags"]["class"]):
        registry.register_artifact(artifact["tags"]["class"], artifact)
    nn = registry.get("nn")
    small = registry.get("small")
    seed = int(next(iter(artifacts))["config"]["seed"])

    def cell(entry, model_label, platform, traffic, autoscaler) -> dict:
        config = ServingConfig(
            model=entry.model,
            dataset=entry.dataset,
            platform=platform,
            traffic=traffic,
            autoscaler=autoscaler,
            requests=SERVE_REQUESTS,
            rate_rps=SERVE_RATE_RPS,
            min_replicas=SERVE_MIN_REPLICAS[platform],
            max_replicas=SERVE_MAX_REPLICAS,
            seed=seed,
        )
        records, pool = ServingRuntime(config, entry).run()
        metrics = serving_metrics(records, pool)
        return {
            "model": model_label,
            "platform": platform,
            "traffic": traffic,
            "autoscaler": autoscaler,
            **metrics,
            "end_to_end_dollars": entry.training_cost
            + metrics["cost_per_1m_requests"],
        }

    panel = [
        cell(nn, "nn", platform, traffic, autoscaler)
        for platform in PANEL_PLATFORMS
        for traffic in PANEL_TRAFFIC
        for autoscaler in PANEL_AUTOSCALERS
    ]
    # One contrast cell: the tiny model on the FaaS sweet spot shows
    # the platform axes collapsing when the model is 224 bytes.
    panel.append(cell(small, "small", "faas", "poisson", "concurrency"))
    return {
        "requests": SERVE_REQUESTS,
        "rate_rps": SERVE_RATE_RPS,
        "seed": seed,
        "models": [entry.as_dict() for entry in registry.entries()],
        "panel": panel,
    }


def format_report(result: dict) -> str:
    from repro.experiments.report import format_table

    models = format_table(
        "figV — model registry (training leg)",
        ["model", "workload", "size (MB)", "load (s)", "quality",
         "train $", "train (s)"],
        [
            [m["name"], f"{m['model']}/{m['dataset']}",
             m["param_bytes"] / (1024 * 1024), m["load_seconds"],
             m["quality"], m["training_cost"], m["training_s"]]
            for m in result["models"]
        ],
    )
    panel = format_table(
        f"figV — serving panel ({result['requests']} requests @ "
        f"{result['rate_rps']:g} r/s; end-to-end = train $ + serve $/1M req)",
        ["model", "platform", "traffic", "autoscaler", "p50 (ms)",
         "p99.9 (ms)", "cold %", "util", "$/1M req", "end-to-end $"],
        [
            [c["model"], c["platform"], c["traffic"], c["autoscaler"],
             c["p50_latency_s"] * 1e3, c["p999_latency_s"] * 1e3,
             c["cold_start_fraction"] * 100.0, c["utilization"],
             c["cost_per_1m_requests"], c["end_to_end_dollars"]]
            for c in result["panel"]
        ],
    )
    lines = [models, "", panel]
    bursty_faas = [
        c for c in result["panel"]
        if c["model"] == "nn" and c["platform"] == "faas"
        and c["traffic"] == "bursty" and c["autoscaler"] == "concurrency"
    ]
    bursty_iaas = [
        c for c in result["panel"]
        if c["model"] == "nn" and c["platform"] == "iaas"
        and c["traffic"] == "bursty" and c["autoscaler"] == "fixed"
    ]
    if bursty_faas and bursty_iaas:
        f, i = bursty_faas[0], bursty_iaas[0]
        lines.append(
            "bursty tail: FaaS p99.9 "
            f"{f['p999_latency_s'] * 1e3:.3g} ms (cold starts) vs always-on "
            f"IaaS {i['p999_latency_s'] * 1e3:.3g} ms; "
            f"end-to-end ${f['end_to_end_dollars']:.4g} vs "
            f"${i['end_to_end_dollars']:.4g} — the cost axis flips with "
            "utilization, the latency axis with cold starts"
        )
    return "\n".join(lines)


@study("figV")
class ServingPipelineStudy:
    """serving extension: train-then-serve pipeline over platform x traffic x autoscaler"""

    @staticmethod
    def points(ctx):
        return sweep_points(max_epochs=ctx.max_epochs, seed=ctx.seed)

    aggregate = staticmethod(serve_pipeline)
    format_report = staticmethod(format_report)
