"""Table 5: end-to-end ML pipelines (preprocess + grid search).

Pipeline: (1) normalise features with one 10-worker job; (2) grid
search the learning rate over [0.01, 0.1] step 0.01, one training job
per candidate (each with 10 workers and 10 epochs). FaaS triggers one
serverless job per hyper-parameter with S3 as the medium; IaaS runs the
candidates sequentially on a reserved 10-VM cluster (paying start-up
once but holding the VMs for the whole sweep).

Expected shape (paper's Table 5): FaaS is faster but costlier for
LR/Higgs; IaaS is both faster and much cheaper for MobileNet.

The per-candidate training jobs are a declarative grid
(:func:`sweep_points`: workload x platform x learning rate) run by the
sweep orchestrator; :func:`aggregate` replays the pipeline arithmetic
(pre-processing pass, cluster start-up amortisation, billing) over the
artifacts in grid order, so the sums are bit-identical to the old
sequential loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.datasets import get_spec
from repro.experiments.report import format_table
from repro.experiments.workloads import get_workload
from repro.iaas.cluster import iaas_startup_seconds
from repro.pricing.catalog import DEFAULT_CATALOG
from repro.sweep.artifacts import result_from_artifact
from repro.sweep.grid import SweepPoint
from repro.sweep.orchestrator import run_sweep
from repro.sweep.study import study

WORKERS = 10
GRID = [round(0.01 * i, 2) for i in range(1, 11)]
CASES = (("lr", "higgs"), ("mobilenet", "cifar10"))


@dataclass
class PipelineRow:
    workload: str
    platform: str
    runtime_s: float
    accuracy: float | None
    cost: float


def _preprocess_seconds(dataset_bytes: float, workers: int) -> float:
    """Normalisation pass: read from S3, scale, write back."""
    bandwidth = 65 * 1024 * 1024
    per_worker = dataset_bytes / workers
    return 2 * per_worker / bandwidth  # read + write


def case_points(
    model: str,
    dataset: str,
    epochs_per_job: float = 10.0,
    grid=GRID,
    seed: int = 20210620,
) -> list[SweepPoint]:
    """The grid-search jobs of one pipeline case (both platforms)."""
    workload = get_workload(model, dataset)
    deep = model in ("mobilenet", "resnet50")
    algorithm = "ga_sgd" if deep else workload.algorithm
    instance = "g3s.xlarge" if deep else "t2.medium"
    points = []
    for platform in ("faas", "iaas"):
        for lr in grid:
            extra = (
                dict(system="lambdaml")
                if platform == "faas"
                else dict(system="pytorch", instance=instance)
            )
            points.append(
                SweepPoint(
                    "table5",
                    f"{model}/{dataset} {platform},lr={lr:g}",
                    config_kwargs=dict(
                        model=model, dataset=dataset, algorithm=algorithm,
                        workers=WORKERS, channel="s3",
                        batch_size=workload.batch_size,
                        batch_scope=workload.batch_scope, lr=lr,
                        loss_threshold=None, max_epochs=epochs_per_job,
                        seed=seed, **extra,
                    ),
                    tags={"case": f"{model}/{dataset}", "platform": platform},
                )
            )
    return points


def sweep_points(
    max_epochs: float | None = None, seed: int = 20210620
) -> list[SweepPoint]:
    """Both pipeline cases; ``max_epochs`` overrides epochs-per-job."""
    points = []
    for model, dataset in CASES:
        points += case_points(
            model, dataset, epochs_per_job=max_epochs or 10.0, seed=seed
        )
    return points


def aggregate(artifacts: list[dict]) -> list[PipelineRow]:
    """Replay the pipeline arithmetic over the per-job artifacts.

    Jobs are consumed in artifact (grid) order per (case, platform), so
    the float accumulations match the old sequential loop exactly.
    """
    grouped: dict[tuple[str, str], list[dict]] = {}
    for artifact in artifacts:
        key = (artifact["tags"]["case"], artifact["tags"]["platform"])
        grouped.setdefault(key, []).append(artifact)

    rows = []
    for (case, platform), jobs in grouped.items():
        model, dataset = case.split("/")
        deep = model in ("mobilenet", "resnet50")
        spec = get_spec(dataset)
        prep = _preprocess_seconds(spec.size_bytes, WORKERS)
        total_cost = 0.0
        accuracies = []
        if platform == "faas":
            # Jobs run as parallel serverless sweeps; wall time is the
            # slowest job, cost is the sum.
            durations = []
            for artifact in jobs:
                result = result_from_artifact(artifact)
                durations.append(result.duration_s)
                total_cost += result.cost_total
                accuracies.append(result.final_accuracy)
            runtime = prep + max(durations)
            total_cost += WORKERS * 3.0 * prep * DEFAULT_CATALOG.lambda_per_gb_second
        else:
            # One reserved cluster; start-up paid once, jobs sequential.
            startup = iaas_startup_seconds(WORKERS)
            instance = "g3s.xlarge" if deep else "t2.medium"
            job_seconds = 0.0
            for artifact in jobs:
                result = result_from_artifact(artifact)
                job_seconds += result.duration_s - result.startup_s
                accuracies.append(result.final_accuracy)
            runtime = prep + startup + job_seconds
            total_cost = (
                WORKERS * DEFAULT_CATALOG.ec2_price(instance) * runtime / 3600.0
            )
        best = max((a for a in accuracies if a is not None), default=None)
        rows.append(
            PipelineRow(
                workload=case,
                platform=platform,
                runtime_s=runtime,
                accuracy=best,
                cost=total_cost,
            )
        )
    return rows


def run_case(
    model: str,
    dataset: str,
    epochs_per_job: float = 10.0,
    grid=GRID,
    seed: int = 20210620,
) -> list[PipelineRow]:
    """One pipeline case, both platforms (legacy shim)."""
    points = case_points(
        model, dataset, epochs_per_job=epochs_per_job, grid=grid, seed=seed
    )
    return aggregate(run_sweep(points).artifacts)


def run(epochs_per_job: float = 10.0, grid=GRID, seed: int = 20210620):
    rows = []
    for model, dataset in CASES:
        rows += run_case(
            model, dataset, epochs_per_job=epochs_per_job, grid=grid, seed=seed
        )
    return rows


def format_report(rows: list[PipelineRow]) -> str:
    return format_table(
        "Table 5 — ML pipeline (normalise + lr grid search)",
        ["workload", "platform", "runtime(s)", "best val acc", "cost($)"],
        [[r.workload, r.platform, r.runtime_s, r.accuracy, r.cost] for r in rows],
    )


@study("table5")
class Table5Study:
    """end-to-end ML pipelines (normalise + lr grid search) on FaaS vs a reserved cluster"""

    @staticmethod
    def points(ctx):
        return sweep_points(max_epochs=ctx.max_epochs, seed=ctx.seed)

    aggregate = staticmethod(aggregate)
    format_report = staticmethod(format_report)
