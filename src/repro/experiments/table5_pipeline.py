"""Table 5: end-to-end ML pipelines (preprocess + grid search).

Pipeline: (1) normalise features with one 10-worker job; (2) grid
search the learning rate over [0.01, 0.1] step 0.01, one training job
per candidate (each with 10 workers and 10 epochs). FaaS triggers one
serverless job per hyper-parameter with S3 as the medium; IaaS runs the
candidates sequentially on a reserved 10-VM cluster (paying start-up
once but holding the VMs for the whole sweep).

Expected shape (paper's Table 5): FaaS is faster but costlier for
LR/Higgs; IaaS is both faster and much cheaper for MobileNet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import TrainingConfig
from repro.core.driver import train
from repro.experiments.report import format_table
from repro.experiments.workloads import get_workload
from repro.iaas.cluster import iaas_startup_seconds
from repro.pricing.catalog import DEFAULT_CATALOG

WORKERS = 10
GRID = [round(0.01 * i, 2) for i in range(1, 11)]


@dataclass
class PipelineRow:
    workload: str
    platform: str
    runtime_s: float
    accuracy: float | None
    cost: float


def _preprocess_seconds(dataset_bytes: float, workers: int) -> float:
    """Normalisation pass: read from S3, scale, write back."""
    bandwidth = 65 * 1024 * 1024
    per_worker = dataset_bytes / workers
    return 2 * per_worker / bandwidth  # read + write


def run_case(
    model: str,
    dataset: str,
    epochs_per_job: float = 10.0,
    grid=GRID,
    seed: int = 20210620,
) -> list[PipelineRow]:
    workload = get_workload(model, dataset)
    deep = model in ("mobilenet", "resnet50")
    algorithm = "ga_sgd" if deep else workload.algorithm

    def config(system: str, lr: float, **kw) -> TrainingConfig:
        return TrainingConfig(
            model=model, dataset=dataset, algorithm=algorithm, system=system,
            workers=WORKERS, channel="s3", batch_size=workload.batch_size,
            batch_scope=workload.batch_scope, lr=lr, loss_threshold=None,
            max_epochs=epochs_per_job, seed=seed, **kw,
        )

    rows = []
    from repro.data.datasets import get_spec

    spec = get_spec(dataset)
    prep = _preprocess_seconds(spec.size_bytes, WORKERS)

    for platform in ("faas", "iaas"):
        total_cost = 0.0
        accuracies = []
        if platform == "faas":
            # Jobs run as parallel serverless sweeps; wall time is the
            # slowest job, cost is the sum.
            durations = []
            for lr in grid:
                result = train(config("lambdaml", lr))
                durations.append(result.duration_s)
                total_cost += result.cost_total
                accuracies.append(result.final_accuracy)
            runtime = prep + max(durations)
            total_cost += WORKERS * 3.0 * prep * DEFAULT_CATALOG.lambda_per_gb_second
        else:
            # One reserved cluster; start-up paid once, jobs sequential.
            startup = iaas_startup_seconds(WORKERS)
            instance = "g3s.xlarge" if deep else "t2.medium"
            job_seconds = 0.0
            for lr in grid:
                result = train(config("pytorch", lr, instance=instance))
                job_seconds += result.duration_s - result.startup_s
                accuracies.append(result.final_accuracy)
            runtime = prep + startup + job_seconds
            total_cost = (
                WORKERS * DEFAULT_CATALOG.ec2_price(instance) * runtime / 3600.0
            )
        best = max((a for a in accuracies if a is not None), default=None)
        rows.append(
            PipelineRow(
                workload=f"{model}/{dataset}",
                platform=platform,
                runtime_s=runtime,
                accuracy=best,
                cost=total_cost,
            )
        )
    return rows


def run(epochs_per_job: float = 10.0, grid=GRID, seed: int = 20210620):
    rows = []
    rows += run_case("lr", "higgs", epochs_per_job=epochs_per_job, grid=grid, seed=seed)
    rows += run_case(
        "mobilenet", "cifar10", epochs_per_job=epochs_per_job, grid=grid, seed=seed
    )
    return rows


def format_report(rows: list[PipelineRow]) -> str:
    return format_table(
        "Table 5 — ML pipeline (normalise + lr grid search)",
        ["workload", "platform", "runtime(s)", "best val acc", "cost($)"],
        [[r.workload, r.platform, r.runtime_s, r.accuracy, r.cost] for r in rows],
    )
