"""Figure 11: runtime vs cost as the worker count varies.

Two representative profiles:

* LR on Higgs — a communication-efficient workload. Adding workers
  speeds both FaaS and IaaS up to a plateau (FaaS flattens around 100
  workers); FaaS reaches lower runtimes but at comparable dollar cost.
* MobileNet on Cifar10 — communication-heavy. The FaaS curve flattens
  early; an IaaS GPU configuration dominates in both time and cost.

The grids are declarative (:func:`lr_higgs_points`,
:func:`mobilenet_points`) and run through the sweep orchestrator; the
default FaaS grid extends to 200/300/512 workers — past the paper's
~300-worker ceiling — to chart where the runtime plateau turns into a
cost cliff (the regime the SMLT / MLLess follow-ups target).
``aggregate()`` rebuilds the profiles from per-point JSON artifacts, so
reports can be rendered from a sweep directory without re-running
anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.report import format_table
from repro.experiments.workloads import get_workload
from repro.sweep.grid import SweepPoint, expand_grid
from repro.sweep.orchestrator import run_sweep
from repro.sweep.study import study

# Default grids. FaaS deliberately crosses the paper's ceiling: Fig. 11
# stops near 300 workers, our engine sweeps to 512 and beyond.
FAAS_WORKERS = (10, 30, 50, 100, 200, 300, 512)
# The mega-scale tail (sweep --mega / StudyContext.mega): past the
# cost cliff into the regime SMLT/MLLess study, where per-round
# simulation cost dominates exploration. Opt-in, not default: the
# tail costs minutes of host wall, and the default grid is what the
# CI sweep smoke and the committed BENCH_sweep points budget for.
MEGA_FAAS_WORKERS = (1024, 2048, 4096)
IAAS_WORKERS = (1, 2, 5, 10, 20, 30)
IAAS_INSTANCES = ("t2.medium", "c5.4xlarge")
MOBILENET_FAAS_WORKERS = (5, 10, 20)
MOBILENET_GPU_WORKERS = (1, 2, 5, 10)


@dataclass
class ScalingPoint:
    system: str
    instance: str | None
    workers: int
    runtime_s: float
    cost: float
    converged: bool


@dataclass
class ScalingProfile:
    workload: str
    points: list[ScalingPoint] = field(default_factory=list)


def lr_higgs_points(
    faas_workers=FAAS_WORKERS,
    iaas_workers=IAAS_WORKERS,
    iaas_instances=IAAS_INSTANCES,
    max_epochs: float | None = None,
    seed: int = 20210620,
    mega: bool = False,
) -> list[SweepPoint]:
    """Declarative grid for the LR/Higgs profile.

    ``mega=True`` extends the FaaS series with the
    :data:`MEGA_FAAS_WORKERS` tail (W=1024/2048/4096) — same workload,
    same tags, just more of the curve.
    """
    if mega:
        faas_workers = tuple(faas_workers) + tuple(
            w for w in MEGA_FAAS_WORKERS if w not in faas_workers
        )
    workload = get_workload("lr", "higgs")
    base = dict(
        model="lr", dataset="higgs", algorithm="admm",
        batch_size=workload.batch_size, lr=workload.lr,
        loss_threshold=workload.threshold,
        max_epochs=max_epochs or workload.max_epochs, seed=seed,
    )
    points = [
        SweepPoint(
            "fig11", f"lr/higgs faas,W={kw['workers']}",
            config_kwargs=kw,
            tags={"series": "lr/higgs", "system": "faas"},
        )
        for kw in expand_grid(
            dict(base, system="lambdaml", channel="s3"), {"workers": faas_workers}
        )
    ]
    points += [
        SweepPoint(
            "fig11", f"lr/higgs iaas,{kw['instance']},W={kw['workers']}",
            config_kwargs=kw,
            tags={"series": "lr/higgs", "system": "iaas", "instance": kw["instance"]},
        )
        for kw in expand_grid(
            dict(base, system="pytorch"),
            {"instance": iaas_instances, "workers": iaas_workers},
        )
    ]
    return points


def mobilenet_points(
    faas_workers=MOBILENET_FAAS_WORKERS,
    gpu_workers=MOBILENET_GPU_WORKERS,
    max_epochs: float | None = None,
    seed: int = 20210620,
) -> list[SweepPoint]:
    """Declarative grid for the MobileNet/Cifar10 profile."""
    workload = get_workload("mobilenet", "cifar10")
    base = dict(
        model="mobilenet", dataset="cifar10", algorithm="ga_sgd",
        batch_size=workload.batch_size, batch_scope=workload.batch_scope,
        lr=workload.lr, loss_threshold=workload.threshold,
        max_epochs=max_epochs or workload.max_epochs, seed=seed,
    )
    points = [
        SweepPoint(
            "fig11", f"mobilenet faas,W={kw['workers']}",
            config_kwargs=kw,
            tags={"series": "mobilenet/cifar10", "system": "faas"},
        )
        for kw in expand_grid(
            dict(base, system="lambdaml", channel="memcached"),
            {"workers": faas_workers},
        )
    ]
    points += [
        SweepPoint(
            "fig11", f"mobilenet iaas-gpu,W={kw['workers']}",
            config_kwargs=kw,
            tags={
                "series": "mobilenet/cifar10",
                "system": "iaas-gpu",
                "instance": "g3s.xlarge",
            },
        )
        for kw in expand_grid(
            dict(base, system="pytorch", instance="g3s.xlarge"),
            {"workers": gpu_workers},
        )
    ]
    return points


def sweep_points(
    max_epochs: float | None = None, seed: int = 20210620, mega: bool = False
) -> list[SweepPoint]:
    """The full Figure-11 sweep grid (what ``repro.cli sweep`` runs).

    LR/Higgs uses the workload's 40-epoch benchmark cap; MobileNet runs
    the 6-epoch benchmark scale (its plateau shows within 6 epochs and
    the full 60 would dominate the sweep's wall-clock). ``mega`` adds
    the W=1024/2048/4096 FaaS tail (``sweep --mega``).
    """
    return lr_higgs_points(
        max_epochs=max_epochs or 40, seed=seed, mega=mega
    ) + mobilenet_points(max_epochs=max_epochs or 6, seed=seed)


def aggregate(artifacts: list[dict]) -> list[ScalingProfile]:
    """Rebuild scaling profiles from per-point sweep artifacts."""
    profiles: dict[str, ScalingProfile] = {}
    for artifact in artifacts:
        tags = artifact["tags"]
        series = tags["series"]
        profile = profiles.setdefault(series, ScalingProfile(workload=series))
        res = artifact["result"]
        profile.points.append(
            ScalingPoint(
                system=tags["system"],
                instance=tags.get("instance"),
                workers=artifact["config"]["workers"],
                runtime_s=res["duration_s"],
                cost=res["cost_total"],
                converged=res["converged"],
            )
        )
    return list(profiles.values())


def run_lr_higgs(
    faas_workers=(10, 30, 50, 100),
    iaas_workers=(1, 2, 5, 10, 20, 30),
    max_epochs: float | None = None,
    seed: int = 20210620,
) -> ScalingProfile:
    points = lr_higgs_points(
        faas_workers=faas_workers, iaas_workers=iaas_workers,
        max_epochs=max_epochs, seed=seed,
    )
    return aggregate(run_sweep(points).artifacts)[0]


def run_mobilenet(
    faas_workers=MOBILENET_FAAS_WORKERS,
    gpu_workers=MOBILENET_GPU_WORKERS,
    max_epochs: float | None = None,
    seed: int = 20210620,
) -> ScalingProfile:
    points = mobilenet_points(
        faas_workers=faas_workers, gpu_workers=gpu_workers,
        max_epochs=max_epochs, seed=seed,
    )
    return aggregate(run_sweep(points).artifacts)[0]


def format_report(profiles: list[ScalingProfile]) -> str:
    blocks = []
    for profile in profiles:
        rows = [
            [p.system, p.instance, p.workers, p.runtime_s, p.cost, p.converged]
            for p in profile.points
        ]
        blocks.append(
            format_table(
                f"Figure 11 — runtime vs cost, {profile.workload}",
                ["system", "instance", "workers", "runtime(s)", "cost($)", "converged"],
                rows,
            )
        )
    return "\n\n".join(blocks)


@study("fig11")
class Fig11Study:
    """runtime/cost vs worker count; FaaS grid crosses the paper's ~300-worker ceiling up to 512 (4096 with --mega)"""

    @staticmethod
    def points(ctx):
        return sweep_points(max_epochs=ctx.max_epochs, seed=ctx.seed, mega=ctx.mega)

    aggregate = staticmethod(aggregate)
    format_report = staticmethod(format_report)
