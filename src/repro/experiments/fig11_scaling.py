"""Figure 11: runtime vs cost as the worker count varies.

Two representative profiles:

* LR on Higgs — a communication-efficient workload. Adding workers
  speeds both FaaS and IaaS up to a plateau (FaaS flattens around 100
  workers); FaaS reaches lower runtimes but at comparable dollar cost.
* MobileNet on Cifar10 — communication-heavy. The FaaS curve flattens
  early; an IaaS GPU configuration dominates in both time and cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import TrainingConfig
from repro.core.driver import train
from repro.experiments.report import format_table
from repro.experiments.workloads import get_workload


@dataclass
class ScalingPoint:
    system: str
    instance: str | None
    workers: int
    runtime_s: float
    cost: float
    converged: bool


@dataclass
class ScalingProfile:
    workload: str
    points: list[ScalingPoint] = field(default_factory=list)


def run_lr_higgs(
    faas_workers=(10, 30, 50, 100),
    iaas_workers=(1, 2, 5, 10, 20, 30),
    max_epochs: float | None = None,
    seed: int = 20210620,
) -> ScalingProfile:
    workload = get_workload("lr", "higgs")
    cap = max_epochs or workload.max_epochs
    profile = ScalingProfile(workload="lr/higgs")

    def base(**kw):
        return TrainingConfig(
            model="lr", dataset="higgs", batch_size=workload.batch_size,
            lr=workload.lr, loss_threshold=workload.threshold,
            max_epochs=cap, seed=seed, **kw,
        )

    for w in faas_workers:
        r = train(base(system="lambdaml", algorithm="admm", channel="s3", workers=w))
        profile.points.append(
            ScalingPoint("faas", None, w, r.duration_s, r.cost_total, r.converged)
        )
    for instance in ("t2.medium", "c5.4xlarge"):
        for w in iaas_workers:
            r = train(base(system="pytorch", algorithm="admm", instance=instance, workers=w))
            profile.points.append(
                ScalingPoint("iaas", instance, w, r.duration_s, r.cost_total, r.converged)
            )
    return profile


def run_mobilenet(
    faas_workers=(5, 10, 20),
    gpu_workers=(1, 2, 5, 10),
    max_epochs: float | None = None,
    seed: int = 20210620,
) -> ScalingProfile:
    workload = get_workload("mobilenet", "cifar10")
    cap = max_epochs or workload.max_epochs
    profile = ScalingProfile(workload="mobilenet/cifar10")

    def base(**kw):
        return TrainingConfig(
            model="mobilenet", dataset="cifar10", algorithm="ga_sgd",
            batch_size=workload.batch_size, batch_scope=workload.batch_scope,
            lr=workload.lr, loss_threshold=workload.threshold,
            max_epochs=cap, seed=seed, **kw,
        )

    for w in faas_workers:
        r = train(base(system="lambdaml", channel="memcached", workers=w))
        profile.points.append(
            ScalingPoint("faas", None, w, r.duration_s, r.cost_total, r.converged)
        )
    for w in gpu_workers:
        r = train(base(system="pytorch", instance="g3s.xlarge", workers=w))
        profile.points.append(
            ScalingPoint("iaas-gpu", "g3s.xlarge", w, r.duration_s, r.cost_total, r.converged)
        )
    return profile


def format_report(profiles: list[ScalingProfile]) -> str:
    blocks = []
    for profile in profiles:
        rows = [
            [p.system, p.instance, p.workers, p.runtime_s, p.cost, p.converged]
            for p in profile.points
        ]
        blocks.append(
            format_table(
                f"Figure 11 — runtime vs cost, {profile.workload}",
                ["system", "instance", "workers", "runtime(s)", "cost($)", "converged"],
                rows,
            )
        )
    return "\n\n".join(blocks)
