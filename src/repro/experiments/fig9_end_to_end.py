"""Figure 9: end-to-end comparison of systems on the Table-4 workloads.

Competitors per workload (§5.1): LambdaML (pure FaaS, best algorithm),
distributed PyTorch running both SGD and ADMM (IaaS), Angel (IaaS
parameter server on Hadoop), HybridPS (Cirrus-style), and PyTorch on
GPU instances for the deep models.

Expected shape (§5.2): on communication-efficient convex workloads
LambdaML converges first thanks to ~1 s start-up and ADMM; Angel is
slowest (start-up + HDFS + compute); HybridPS beats plain PyTorch for
small models; for MobileNet/ResNet the hybrid is serdes-bound, PyTorch
beats LambdaML, and PyTorch-GPU wins outright.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import TrainingConfig
from repro.core.driver import train
from repro.core.results import RunResult
from repro.experiments.report import format_series, format_table
from repro.experiments.workloads import Workload, get_workload


@dataclass
class EndToEndPanel:
    """One Figure-9 subplot: every system on one workload."""

    workload: str
    results: dict[str, RunResult] = field(default_factory=dict)


def _system_configs(workload: Workload, workers: int, max_epochs: float, seed: int):
    """Yield (label, TrainingConfig) pairs for one panel."""
    deep = workload.model in ("mobilenet", "resnet50")
    base = dict(
        model=workload.model,
        dataset=workload.dataset,
        workers=workers,
        batch_size=workload.batch_size,
        batch_scope=workload.batch_scope,
        lr=workload.lr,
        k=workload.k,
        loss_threshold=workload.threshold,
        max_epochs=max_epochs,
        seed=seed,
    )
    best_algo = workload.algorithm
    if workload.algorithm == "em":
        sgd_algo = "em"  # k-means trains with EM on every platform
    else:
        sgd_algo = "ga_sgd" if deep else "ma_sgd"

    yield "lambdaml", TrainingConfig(
        system="lambdaml", algorithm=best_algo, channel="s3", **base
    )
    yield "pytorch-sgd", TrainingConfig(
        system="pytorch", algorithm=sgd_algo, instance="t2.medium", **base
    )
    if not deep and workload.algorithm == "admm":
        yield "pytorch-admm", TrainingConfig(
            system="pytorch", algorithm="admm", instance="t2.medium", **base
        )
    if workload.algorithm != "em":
        yield "hybridps", TrainingConfig(system="hybridps", algorithm="ga_sgd", **base)
    yield "angel", TrainingConfig(
        system="angel", algorithm=sgd_algo, instance="t2.medium", **base
    )
    if deep:
        yield "pytorch-gpu", TrainingConfig(
            system="pytorch", algorithm="ga_sgd", instance="g3s.xlarge", **base
        )


def run_panel(
    model: str,
    dataset: str,
    workers: int | None = None,
    max_epochs: float | None = None,
    seed: int = 20210620,
) -> EndToEndPanel:
    workload = get_workload(model, dataset)
    w = workers if workers is not None else workload.workers
    cap = max_epochs if max_epochs is not None else workload.max_epochs
    panel = EndToEndPanel(workload=f"{model}/{dataset},W={w}")
    for label, config in _system_configs(workload, w, cap, seed):
        panel.results[label] = train(config)
    return panel


# The paper's twelve panels (Figure 9 a-l).
ALL_PANELS = [
    ("lr", "higgs"),
    ("svm", "higgs"),
    ("kmeans", "higgs"),
    ("lr", "rcv1"),
    ("svm", "rcv1"),
    ("kmeans", "rcv1"),
    ("lr", "yfcc100m"),
    ("svm", "yfcc100m"),
    ("kmeans", "yfcc100m"),
    ("lr", "criteo"),
    ("mobilenet", "cifar10"),
    ("resnet50", "cifar10"),
]


def run(
    panels=ALL_PANELS,
    workers_cap: int | None = None,
    max_epochs: float | None = None,
    seed: int = 20210620,
) -> list[EndToEndPanel]:
    out = []
    for model, dataset in panels:
        workload = get_workload(model, dataset)
        w = workload.workers if workers_cap is None else min(workload.workers, workers_cap)
        out.append(run_panel(model, dataset, workers=w, max_epochs=max_epochs, seed=seed))
    return out


def format_report(panels: list[EndToEndPanel]) -> str:
    blocks = []
    for panel in panels:
        rows = [
            [name, r.converged, r.final_loss, r.duration_s, r.cost_total, r.epochs]
            for name, r in panel.results.items()
        ]
        blocks.append(
            format_table(
                f"Figure 9 — {panel.workload}",
                ["system", "converged", "loss", "time(s)", "cost($)", "epochs"],
                rows,
            )
        )
        blocks.append(
            format_series(
                f"Loss vs time — {panel.workload}",
                {name: r.loss_curve() for name, r in panel.results.items()},
            )
        )
    return "\n\n".join(blocks)
