"""Figure 9: end-to-end comparison of systems on the Table-4 workloads.

Competitors per workload (§5.1): LambdaML (pure FaaS, best algorithm),
distributed PyTorch running both SGD and ADMM (IaaS), Angel (IaaS
parameter server on Hadoop), HybridPS (Cirrus-style), and PyTorch on
GPU instances for the deep models.

Expected shape (§5.2): on communication-efficient convex workloads
LambdaML converges first thanks to ~1 s start-up and ADMM; Angel is
slowest (start-up + HDFS + compute); HybridPS beats plain PyTorch for
small models; for MobileNet/ResNet the hybrid is serdes-bound, PyTorch
beats LambdaML, and PyTorch-GPU wins outright.

Every panel is a grid declaration (:func:`sweep_points`, one point per
system) executed by the sweep orchestrator; :func:`aggregate` rebuilds
the panels — loss curves included — from per-point JSON artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.results import RunResult
from repro.experiments.report import format_series, format_table
from repro.experiments.workloads import Workload, get_workload
from repro.sweep.artifacts import result_from_artifact
from repro.sweep.grid import SweepPoint
from repro.sweep.orchestrator import run_sweep
from repro.sweep.study import study


@dataclass
class EndToEndPanel:
    """One Figure-9 subplot: every system on one workload."""

    workload: str
    results: dict[str, RunResult] = field(default_factory=dict)


def _system_kwargs(workload: Workload, workers: int, max_epochs: float, seed: int):
    """Yield (label, TrainingConfig kwargs) pairs for one panel."""
    deep = workload.model in ("mobilenet", "resnet50")
    base = dict(
        model=workload.model,
        dataset=workload.dataset,
        workers=workers,
        batch_size=workload.batch_size,
        batch_scope=workload.batch_scope,
        lr=workload.lr,
        k=workload.k,
        loss_threshold=workload.threshold,
        max_epochs=max_epochs,
        seed=seed,
    )
    best_algo = workload.algorithm
    if workload.algorithm == "em":
        sgd_algo = "em"  # k-means trains with EM on every platform
    else:
        sgd_algo = "ga_sgd" if deep else "ma_sgd"

    yield "lambdaml", dict(base, system="lambdaml", algorithm=best_algo, channel="s3")
    yield "pytorch-sgd", dict(
        base, system="pytorch", algorithm=sgd_algo, instance="t2.medium"
    )
    if not deep and workload.algorithm == "admm":
        yield "pytorch-admm", dict(
            base, system="pytorch", algorithm="admm", instance="t2.medium"
        )
    if workload.algorithm != "em":
        yield "hybridps", dict(base, system="hybridps", algorithm="ga_sgd")
    yield "angel", dict(base, system="angel", algorithm=sgd_algo, instance="t2.medium")
    if deep:
        yield "pytorch-gpu", dict(
            base, system="pytorch", algorithm="ga_sgd", instance="g3s.xlarge"
        )


# The paper's twelve panels (Figure 9 a-l).
ALL_PANELS = [
    ("lr", "higgs"),
    ("svm", "higgs"),
    ("kmeans", "higgs"),
    ("lr", "rcv1"),
    ("svm", "rcv1"),
    ("kmeans", "rcv1"),
    ("lr", "yfcc100m"),
    ("svm", "yfcc100m"),
    ("kmeans", "yfcc100m"),
    ("lr", "criteo"),
    ("mobilenet", "cifar10"),
    ("resnet50", "cifar10"),
]


def panel_points(
    model: str,
    dataset: str,
    workers: int,
    max_epochs: float | None = None,
    seed: int = 20210620,
) -> list[SweepPoint]:
    """One point per system for a single panel, at exactly ``workers``."""
    workload = get_workload(model, dataset)
    cap = max_epochs if max_epochs is not None else workload.max_epochs
    panel_label = f"{model}/{dataset},W={workers}"
    return [
        SweepPoint(
            "fig9", f"{panel_label} {label}",
            config_kwargs=kwargs,
            tags={"panel": panel_label, "system": label},
        )
        for label, kwargs in _system_kwargs(workload, workers, cap, seed)
    ]


def sweep_points(
    panels=ALL_PANELS,
    workers_cap: int | None = None,
    max_epochs: float | None = None,
    seed: int = 20210620,
) -> list[SweepPoint]:
    """One point per (panel, system) cell of Figure 9."""
    points = []
    for model, dataset in panels:
        workload = get_workload(model, dataset)
        w = workload.workers if workers_cap is None else min(workload.workers, workers_cap)
        points += panel_points(model, dataset, w, max_epochs=max_epochs, seed=seed)
    return points


def aggregate(artifacts: list[dict]) -> list[EndToEndPanel]:
    """Rebuild the per-workload panels from sweep artifacts."""
    panels: dict[str, EndToEndPanel] = {}
    for artifact in artifacts:
        tags = artifact["tags"]
        panel = panels.setdefault(tags["panel"], EndToEndPanel(workload=tags["panel"]))
        panel.results[tags["system"]] = result_from_artifact(artifact)
    return list(panels.values())


def run_panel(
    model: str,
    dataset: str,
    workers: int | None = None,
    max_epochs: float | None = None,
    seed: int = 20210620,
) -> EndToEndPanel:
    workload = get_workload(model, dataset)
    w = workers if workers is not None else workload.workers
    points = panel_points(model, dataset, w, max_epochs=max_epochs, seed=seed)
    return aggregate(run_sweep(points).artifacts)[0]


def run(
    panels=ALL_PANELS,
    workers_cap: int | None = None,
    max_epochs: float | None = None,
    seed: int = 20210620,
) -> list[EndToEndPanel]:
    points = sweep_points(
        panels=panels, workers_cap=workers_cap, max_epochs=max_epochs, seed=seed
    )
    return aggregate(run_sweep(points).artifacts)


def format_report(panels: list[EndToEndPanel]) -> str:
    blocks = []
    for panel in panels:
        rows = [
            [name, r.converged, r.final_loss, r.duration_s, r.cost_total, r.epochs]
            for name, r in panel.results.items()
        ]
        blocks.append(
            format_table(
                f"Figure 9 — {panel.workload}",
                ["system", "converged", "loss", "time(s)", "cost($)", "epochs"],
                rows,
            )
        )
        blocks.append(
            format_series(
                f"Loss vs time — {panel.workload}",
                {name: r.loss_curve() for name, r in panel.results.items()},
            )
        )
    return "\n\n".join(blocks)


@study("fig9")
class Fig9Study:
    """end-to-end systems comparison on the Table-4 workloads"""

    @staticmethod
    def points(ctx):
        return sweep_points(max_epochs=ctx.max_epochs, seed=ctx.seed)

    aggregate = staticmethod(aggregate)
    format_report = staticmethod(format_report)
