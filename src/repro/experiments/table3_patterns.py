"""Table 3: AllReduce vs ScatterReduce over the storage channel.

Measures the simulated time of a *single* aggregation exchange (the
paper reports per-round communication time) for three model sizes:
LR on Higgs (224 B), MobileNet (12 MB) and ResNet50 (89 MB), using S3.

Expected shape: for tiny and medium models the two patterns tie (or
ScatterReduce loses slightly to its extra partitioning requests); for
ResNet50 the single leader of AllReduce becomes the bottleneck and
ScatterReduce is about twice as fast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.patterns import allreduce, scatter_reduce
from repro.models.zoo import get_model_info
from repro.simulation.engine import Engine
from repro.storage.services import make_channel
from repro.sweep.study import study

CASES = [
    # (label, model, dataset, workers)
    ("LR,Higgs,W=50", "lr", "higgs", 50),
    ("MobileNet,Cifar10,W=10", "mobilenet", "cifar10", 10),
    ("ResNet,Cifar10,W=10", "resnet50", "cifar10", 10),
]


@dataclass
class PatternRow:
    label: str
    model_bytes: int
    allreduce_s: float
    scatter_reduce_s: float


def measure_exchange(pattern_name: str, workers: int, logical_nbytes: int) -> float:
    """Simulated wall time for one exchange across `workers` workers."""
    engine = Engine()
    channel = make_channel("s3")
    vector = np.zeros(max(8, min(logical_nbytes // 8, 4096)))
    pattern = allreduce if pattern_name == "allreduce" else scatter_reduce

    def worker(rank: int):
        merged = yield from pattern(
            channel.store,
            rank,
            workers,
            "bench",
            vector,
            logical_nbytes=logical_nbytes,
            reduce="mean",
        )
        return merged

    for rank in range(workers):
        engine.spawn(worker(rank), name=f"w{rank}")
    engine.run()
    return engine.now


def run() -> list[PatternRow]:
    rows = []
    for label, model, dataset, workers in CASES:
        info = get_model_info(model, dataset)
        rows.append(
            PatternRow(
                label=label,
                model_bytes=info.param_bytes,
                allreduce_s=measure_exchange("allreduce", workers, info.param_bytes),
                scatter_reduce_s=measure_exchange("scatterreduce", workers, info.param_bytes),
            )
        )
    return rows


def format_report(rows: list[PatternRow]) -> str:
    from repro.experiments.report import format_table

    return format_table(
        "Table 3 — communication patterns over S3 (one exchange)",
        ["workload", "model size (B)", "AllReduce (s)", "ScatterReduce (s)"],
        [[r.label, r.model_bytes, r.allreduce_s, r.scatter_reduce_s] for r in rows],
    )


@study("table3", kind="direct")
class Table3Study:
    """AllReduce vs ScatterReduce single-exchange timing over S3 (engine micro-probe)"""

    aggregate = staticmethod(lambda artifacts: run())
    format_report = staticmethod(format_report)
