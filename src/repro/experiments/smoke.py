"""The ``smoke`` study: a seconds-scale orchestrator + fault-plane probe.

Four fault-free systems points plus two fault-plane points (one
crash-injected, one with transient storage errors) on a heavily
down-scaled LR/Higgs workload. All six share one statistical
fingerprint, so a ``--substrate auto`` run records exactly one trace —
the cheapest end-to-end probe of both the two-phase orchestrator and
the fault plane's determinism contract. The test suite and CI's
sweep-smoke job run this grid.
"""

from __future__ import annotations

from repro.experiments.report import format_table
from repro.sweep.grid import SweepPoint, expand_grid
from repro.sweep.study import study


def sweep_points(
    max_epochs: float | None = None, seed: int = 20210620
) -> list[SweepPoint]:
    """A 6-point grid that completes in seconds (heavily down-scaled)."""
    base = dict(
        model="lr", dataset="higgs", algorithm="admm", system="lambdaml",
        data_scale=5000, loss_threshold=0.66,
        max_epochs=max_epochs or 2.0, seed=seed,
    )
    points = [
        SweepPoint(
            "smoke",
            f"{kw['channel']},{kw['pattern']},W={kw['workers']}",
            config_kwargs=kw,
            tags={"series": "lr/higgs@1/5000", "system": "faas"},
        )
        for kw in expand_grid(
            base,
            {
                "channel": ("s3", "memcached"),
                "pattern": ("allreduce", "scatterreduce"),
                "workers": (4,),
            },
        )
    ]
    points.append(
        SweepPoint(
            "smoke", "s3,allreduce,W=4,mttf=120s",
            config_kwargs=dict(base, channel="s3", workers=4, mttf_s=120.0),
            tags={"series": "lr/higgs@1/5000", "system": "faas",
                  "faults": "crash"},
        )
    )
    points.append(
        SweepPoint(
            "smoke", "s3,allreduce,W=4,storage_err=2%",
            config_kwargs=dict(
                base, channel="s3", workers=4, storage_error_rate=0.02
            ),
            tags={"series": "lr/higgs@1/5000", "system": "faas",
                  "faults": "storage"},
        )
    )
    return points


def format_report(artifacts: list[dict]) -> str:
    rows = [
        [
            a["label"],
            a["result"]["duration_s"],
            a["result"]["cost_total"],
            a["result"]["final_loss"],
            a["result"]["converged"],
        ]
        for a in artifacts
    ]
    return format_table(
        "Smoke sweep — LR/Higgs at 1/5000 scale",
        ["point", "runtime(s)", "cost($)", "loss", "converged"],
        rows,
    )


@study("smoke")
class SmokeStudy:
    """seconds-scale orchestrator + fault-plane probe (down-scaled LR/Higgs)"""

    @staticmethod
    def points(ctx):
        return sweep_points(max_epochs=ctx.max_epochs, seed=ctx.seed)

    aggregate = staticmethod(lambda artifacts: artifacts)
    format_report = staticmethod(format_report)
