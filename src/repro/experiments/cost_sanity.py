"""Section 5.1.1 "COST" sanity check (after McSherry et al.).

Before trusting any scaled-up numbers, verify that the distributed
configurations actually beat a competent single-machine baseline: train
LR / SVM / KMeans on Higgs and MobileNet on Cifar10 with one worker and
with ten workers, on both FaaS and IaaS, and report the speed-ups.

The paper reports ~9-10x for the convex models on Higgs (10 workers)
and ~5-7x for MobileNet, i.e. scaling is real but sublinear.

Each case is three grid points (single-machine baseline, FaaS fleet,
IaaS cluster) run by the sweep orchestrator; :func:`aggregate` derives
the speed-up rows from the artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table
from repro.experiments.workloads import get_workload
from repro.sweep.grid import SweepPoint
from repro.sweep.orchestrator import run_sweep
from repro.sweep.study import study

CASES = [
    ("lr", "higgs"),
    ("svm", "higgs"),
    ("kmeans", "higgs"),
    ("mobilenet", "cifar10"),
]


@dataclass
class SanityRow:
    workload: str
    single_s: float
    faas_s: float
    iaas_s: float
    faas_speedup: float
    iaas_speedup: float


def case_points(
    model: str, dataset: str, workers: int = 10, max_epochs: float | None = None,
    seed: int = 20210620,
) -> list[SweepPoint]:
    """Baseline + FaaS + IaaS points for one workload."""
    workload = get_workload(model, dataset)
    cap = max_epochs or workload.max_epochs
    case = f"{model}/{dataset}"

    def make_point(role: str, system: str, w: int) -> SweepPoint:
        return SweepPoint(
            "cost_sanity", f"{case} {role}",
            config_kwargs=dict(
                model=model,
                dataset=dataset,
                algorithm=workload.algorithm,
                system=system,
                workers=w,
                channel="s3",
                batch_size=workload.batch_size,
                batch_scope=workload.batch_scope,
                lr=workload.lr,
                k=workload.k,
                loss_threshold=workload.threshold,
                max_epochs=cap,
                seed=seed,
            ),
            tags={"case": case, "role": role},
        )

    return [
        make_point("single", "pytorch", 1),
        make_point("faas", "lambdaml", workers),
        make_point("iaas", "pytorch", workers),
    ]


def sweep_points(
    max_epochs: float | None = None, seed: int = 20210620
) -> list[SweepPoint]:
    points = []
    for model, dataset in CASES:
        points += case_points(model, dataset, max_epochs=max_epochs, seed=seed)
    return points


def aggregate(artifacts: list[dict]) -> list[SanityRow]:
    """Derive the speed-up rows from artifacts (case order preserved)."""
    grouped: dict[str, dict[str, dict]] = {}
    for artifact in artifacts:
        tags = artifact["tags"]
        grouped.setdefault(tags["case"], {})[tags["role"]] = artifact
    rows = []
    for case, by_role in grouped.items():
        if {"single", "faas", "iaas"} - by_role.keys():
            continue  # interrupted sweep directory
        single_s = by_role["single"]["result"]["duration_s"]
        faas_s = by_role["faas"]["result"]["duration_s"]
        iaas_s = by_role["iaas"]["result"]["duration_s"]
        rows.append(
            SanityRow(
                workload=case,
                single_s=single_s,
                faas_s=faas_s,
                iaas_s=iaas_s,
                faas_speedup=single_s / faas_s,
                iaas_speedup=single_s / iaas_s,
            )
        )
    return rows


def run_case(
    model: str, dataset: str, workers: int = 10, max_epochs: float | None = None,
    seed: int = 20210620,
) -> SanityRow:
    """One workload's sanity row (legacy shim)."""
    points = case_points(
        model, dataset, workers=workers, max_epochs=max_epochs, seed=seed
    )
    return aggregate(run_sweep(points).artifacts)[0]


def run(cases=CASES, max_epochs: float | None = None, seed: int = 20210620):
    return [run_case(m, d, max_epochs=max_epochs, seed=seed) for m, d in cases]


def format_report(rows: list[SanityRow]) -> str:
    return format_table(
        "COST sanity check — 10 workers vs 1 machine",
        ["workload", "1-machine(s)", "FaaS(s)", "IaaS(s)", "FaaS speedup", "IaaS speedup"],
        [
            [r.workload, r.single_s, r.faas_s, r.iaas_s, r.faas_speedup, r.iaas_speedup]
            for r in rows
        ],
    )


@study("cost_sanity")
class CostSanityStudy:
    """COST sanity check: distributed FaaS/IaaS speed-ups over a single machine"""

    @staticmethod
    def points(ctx):
        return sweep_points(max_epochs=ctx.max_epochs, seed=ctx.seed)

    aggregate = staticmethod(aggregate)
    format_report = staticmethod(format_report)
