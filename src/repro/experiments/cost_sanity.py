"""Section 5.1.1 "COST" sanity check (after McSherry et al.).

Before trusting any scaled-up numbers, verify that the distributed
configurations actually beat a competent single-machine baseline: train
LR / SVM / KMeans on Higgs and MobileNet on Cifar10 with one worker and
with ten workers, on both FaaS and IaaS, and report the speed-ups.

The paper reports ~9-10x for the convex models on Higgs (10 workers)
and ~5-7x for MobileNet, i.e. scaling is real but sublinear.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import TrainingConfig
from repro.core.driver import train
from repro.experiments.report import format_table
from repro.experiments.workloads import get_workload

CASES = [
    ("lr", "higgs"),
    ("svm", "higgs"),
    ("kmeans", "higgs"),
    ("mobilenet", "cifar10"),
]


@dataclass
class SanityRow:
    workload: str
    single_s: float
    faas_s: float
    iaas_s: float
    faas_speedup: float
    iaas_speedup: float


def run_case(
    model: str, dataset: str, workers: int = 10, max_epochs: float | None = None,
    seed: int = 20210620,
) -> SanityRow:
    workload = get_workload(model, dataset)
    cap = max_epochs or workload.max_epochs

    def config(system: str, w: int) -> TrainingConfig:
        return TrainingConfig(
            model=model,
            dataset=dataset,
            algorithm=workload.algorithm,
            system=system,
            workers=w,
            channel="s3",
            batch_size=workload.batch_size,
            batch_scope=workload.batch_scope,
            lr=workload.lr,
            k=workload.k,
            loss_threshold=workload.threshold,
            max_epochs=cap,
            seed=seed,
        )

    single = train(config("pytorch", 1))
    faas = train(config("lambdaml", workers))
    iaas = train(config("pytorch", workers))
    return SanityRow(
        workload=f"{model}/{dataset}",
        single_s=single.duration_s,
        faas_s=faas.duration_s,
        iaas_s=iaas.duration_s,
        faas_speedup=single.duration_s / faas.duration_s,
        iaas_speedup=single.duration_s / iaas.duration_s,
    )


def run(cases=CASES, max_epochs: float | None = None, seed: int = 20210620):
    return [run_case(m, d, max_epochs=max_epochs, seed=seed) for m, d in cases]


def format_report(rows: list[SanityRow]) -> str:
    return format_table(
        "COST sanity check — 10 workers vs 1 machine",
        ["workload", "1-machine(s)", "FaaS(s)", "IaaS(s)", "FaaS speedup", "IaaS speedup"],
        [
            [r.workload, r.single_s, r.faas_s, r.iaas_s, r.faas_speedup, r.iaas_speedup]
            for r in rows
        ],
    )
