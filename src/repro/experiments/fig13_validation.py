"""Figure 13: validation of the analytical model.

(a) Fix the number of epochs (1..100) for LR on Higgs with 10 workers
    and compare the analytical prediction against the simulated actual
    runtime, for both LambdaML (FaaS) and distributed PyTorch (IaaS).

(b) Use the 10%-sampling estimator to predict epochs-to-threshold for
    LR/SVM on Higgs under both SGD and ADMM, then feed the estimates
    through the analytical model and compare against the simulated
    end-to-end runtime.

The *simulated* halves of both panels are a declarative grid
(:func:`sweep_points`) run by the sweep orchestrator; the analytical
predictions and the sampling estimator are recomputed by
:func:`aggregate` from the artifacts (they are deterministic functions
of each point's config, so the artifacts stay pure simulation results).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analytics.estimator import SamplingEstimator
from repro.analytics.model import AnalyticalModel, WorkloadParams
from repro.data.datasets import get_spec
from repro.experiments.report import format_table
from repro.experiments.workloads import get_workload
from repro.models.zoo import get_model_info
from repro.sweep.grid import SweepPoint
from repro.sweep.orchestrator import run_sweep
from repro.sweep.study import study

EPOCH_GRID = (1, 5, 10, 25, 50, 100)
ESTIMATOR_CASES = (("lr", "higgs"), ("svm", "higgs"))
ESTIMATOR_ALGORITHMS = ("ma_sgd", "admm")
WORKERS = 10


def _params_for(model: str, dataset: str, algorithm: str, workers: int) -> WorkloadParams:
    """Assemble analytical-model inputs from the zoo profiles."""
    spec = get_spec(dataset)
    info = get_model_info(model, dataset)
    # C: single-worker seconds per epoch on the reference worker.
    compute = spec.n_instances * info.compute.per_instance_s
    rounds = 1.0
    if algorithm == "admm":
        rounds = 1.0 / 10.0  # one exchange per ten scans
    return WorkloadParams(
        dataset_bytes=spec.size_bytes,
        model_bytes=info.param_bytes,
        epochs_faas=1.0,
        epochs_iaas=1.0,
        compute_faas_s=compute,
        compute_iaas_s=compute,
        rounds_per_epoch=rounds,
        channel="s3",
        network="t2",
    )


@dataclass
class ValidationPoint:
    epochs: float
    faas_actual_s: float
    faas_predicted_s: float
    iaas_actual_s: float
    iaas_predicted_s: float


@dataclass
class EstimatorPoint:
    workload: str
    algorithm: str
    estimated_epochs: float
    actual_epochs: float
    predicted_runtime_s: float
    actual_runtime_s: float


@dataclass
class Fig13Result:
    """Both panels: fixed-epoch validation + estimator validation."""

    fixed: list[ValidationPoint] = field(default_factory=list)
    estimator: list[EstimatorPoint] = field(default_factory=list)


def fixed_epoch_points(
    epoch_grid=EPOCH_GRID,
    workers: int = WORKERS,
    seed: int = 20210620,
) -> list[SweepPoint]:
    """Figure 13a grid: (epochs x platform) fixed-epoch runs."""
    workload = get_workload("lr", "higgs")
    points = []
    for epochs in epoch_grid:
        for platform, kwargs in (
            ("faas", dict(system="lambdaml", channel="s3")),
            ("iaas", dict(system="pytorch", instance="t2.medium")),
        ):
            points.append(
                SweepPoint(
                    "fig13",
                    f"13a {platform},{epochs:g}ep",
                    config_kwargs=dict(
                        model="lr", dataset="higgs", algorithm="ma_sgd",
                        workers=workers, batch_size=workload.batch_size,
                        lr=workload.lr, loss_threshold=None,
                        max_epochs=float(epochs), seed=seed, **kwargs,
                    ),
                    tags={"part": "13a", "platform": platform},
                )
            )
    return points


def estimator_points(
    cases=ESTIMATOR_CASES,
    algorithms=ESTIMATOR_ALGORITHMS,
    workers: int = WORKERS,
    max_epochs: float | None = None,
    seed: int = 20210620,
) -> list[SweepPoint]:
    """Figure 13b grid: the end-to-end actuals the estimates are judged against."""
    points = []
    for model_name, dataset in cases:
        workload = get_workload(model_name, dataset)
        cap = workload.max_epochs if max_epochs is None else min(
            workload.max_epochs, max_epochs
        )
        for algorithm in algorithms:
            points.append(
                SweepPoint(
                    "fig13",
                    f"13b {model_name}/{dataset} {algorithm}",
                    config_kwargs=dict(
                        model=model_name, dataset=dataset, algorithm=algorithm,
                        system="lambdaml", workers=workers, channel="s3",
                        batch_size=workload.batch_size, lr=workload.lr,
                        loss_threshold=workload.threshold,
                        max_epochs=cap, seed=seed,
                    ),
                    tags={"part": "13b", "workload": f"{model_name}/{dataset}"},
                )
            )
    return points


def sweep_points(
    max_epochs: float | None = None, seed: int = 20210620
) -> list[SweepPoint]:
    """The full Figure-13 grid (both panels' simulated actuals).

    ``max_epochs`` down-scales panel (a) by dropping grid values above
    the cap (keeping at least one point at the cap itself) and caps the
    panel (b) workload budgets.
    """
    grid = EPOCH_GRID
    if max_epochs is not None:
        grid = tuple(e for e in EPOCH_GRID if e <= max_epochs) or (max_epochs,)
    return fixed_epoch_points(epoch_grid=grid, seed=seed) + estimator_points(
        max_epochs=max_epochs, seed=seed
    )


def aggregate(artifacts: list[dict]) -> Fig13Result:
    """Rebuild both panels, recomputing predictions next to the actuals."""
    result = Fig13Result()

    # Panel (a): pair faas/iaas actuals per epoch count, in point order.
    pairs: dict[float, dict[str, dict]] = {}
    for artifact in artifacts:
        if artifact["tags"]["part"] != "13a":
            continue
        epochs = artifact["config"]["max_epochs"]
        pairs.setdefault(epochs, {})[artifact["tags"]["platform"]] = artifact
    params = _params_for("lr", "higgs", "ma_sgd", WORKERS)
    for epochs, sides in pairs.items():
        if "faas" not in sides or "iaas" not in sides:
            continue  # interrupted sweep directory: render what exists
        workers = sides["faas"]["config"]["workers"]
        scaled = WorkloadParams(
            **{**params.__dict__, "epochs_faas": float(epochs), "epochs_iaas": float(epochs)}
        )
        scaled_model = AnalyticalModel(scaled)
        result.fixed.append(
            ValidationPoint(
                epochs=float(epochs),
                faas_actual_s=sides["faas"]["result"]["duration_s"],
                faas_predicted_s=scaled_model.faas_seconds(workers),
                iaas_actual_s=sides["iaas"]["result"]["duration_s"],
                iaas_predicted_s=scaled_model.iaas_seconds(workers),
            )
        )

    # Panel (b): one estimator pass per actual run. The estimator is
    # seeded from the point's config, so this is deterministic — but it
    # *is* real numpy work (the 10% sample actually trains).
    for artifact in artifacts:
        if artifact["tags"]["part"] != "13b":
            continue
        config = artifact["config"]
        model_name, dataset = config["model"], config["dataset"]
        workload = get_workload(model_name, dataset)
        estimator = SamplingEstimator(sample_fraction=0.1, seed=config["seed"])
        estimate = estimator.estimate(
            model_name, dataset, config["algorithm"],
            lr=workload.lr, threshold=workload.threshold,
            batch_size=max(32, workload.batch_size // 100),
            max_epochs=config["max_epochs"],
        )
        params = _params_for(model_name, dataset, config["algorithm"], config["workers"])
        scaled = WorkloadParams(
            **{
                **params.__dict__,
                "epochs_faas": estimate.epochs,
                "epochs_iaas": estimate.epochs,
            }
        )
        predicted = AnalyticalModel(scaled).faas_seconds(config["workers"])
        result.estimator.append(
            EstimatorPoint(
                workload=f"{model_name}/{dataset}",
                algorithm=config["algorithm"],
                estimated_epochs=estimate.epochs,
                actual_epochs=artifact["result"]["epochs"],
                predicted_runtime_s=predicted,
                actual_runtime_s=artifact["result"]["duration_s"],
            )
        )
    return result


def run_fixed_epochs(
    epoch_grid=EPOCH_GRID,
    workers: int = WORKERS,
    seed: int = 20210620,
) -> list[ValidationPoint]:
    """Figure 13a: predicted vs actual runtime (legacy shim)."""
    points = fixed_epoch_points(epoch_grid=epoch_grid, workers=workers, seed=seed)
    return aggregate(run_sweep(points).artifacts).fixed


def run_estimator(
    cases=ESTIMATOR_CASES,
    algorithms=ESTIMATOR_ALGORITHMS,
    workers: int = WORKERS,
    seed: int = 20210620,
) -> list[EstimatorPoint]:
    """Figure 13b: sampling estimator + analytical model (legacy shim)."""
    points = estimator_points(
        cases=cases, algorithms=algorithms, workers=workers, seed=seed
    )
    return aggregate(run_sweep(points).artifacts).estimator


def format_report(points: list[ValidationPoint], est: list[EstimatorPoint]) -> str:
    a = format_table(
        "Figure 13a — analytical model vs simulated runtime (LR, Higgs, W=10)",
        ["epochs", "FaaS actual", "FaaS predicted", "IaaS actual", "IaaS predicted"],
        [
            [p.epochs, p.faas_actual_s, p.faas_predicted_s, p.iaas_actual_s, p.iaas_predicted_s]
            for p in points
        ],
    )
    b = format_table(
        "Figure 13b — sampling estimator + analytical model",
        ["workload", "algorithm", "est epochs", "actual epochs", "predicted(s)", "actual(s)"],
        [
            [p.workload, p.algorithm, p.estimated_epochs, p.actual_epochs,
             p.predicted_runtime_s, p.actual_runtime_s]
            for p in est
        ],
    )
    return a + "\n\n" + b


@study("fig13")
class Fig13Study:
    """analytical-model validation: fixed-epoch runtimes + sampling-estimator predictions"""

    @staticmethod
    def points(ctx):
        return sweep_points(max_epochs=ctx.max_epochs, seed=ctx.seed)

    aggregate = staticmethod(aggregate)

    @staticmethod
    def format_report(result: Fig13Result) -> str:
        return format_report(result.fixed, result.estimator)
