"""Figure 13: validation of the analytical model.

(a) Fix the number of epochs (1..100) for LR on Higgs with 10 workers
    and compare the analytical prediction against the simulated actual
    runtime, for both LambdaML (FaaS) and distributed PyTorch (IaaS).

(b) Use the 10%-sampling estimator to predict epochs-to-threshold for
    LR/SVM on Higgs/YFCC100M under both SGD and ADMM, then feed the
    estimates through the analytical model and compare against the
    simulated end-to-end runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.estimator import SamplingEstimator
from repro.analytics.model import AnalyticalModel, WorkloadParams
from repro.core.config import TrainingConfig
from repro.core.driver import train
from repro.data.datasets import get_spec
from repro.experiments.report import format_table
from repro.experiments.workloads import get_workload
from repro.models.zoo import get_model_info


def _params_for(model: str, dataset: str, algorithm: str, workers: int) -> WorkloadParams:
    """Assemble analytical-model inputs from the zoo profiles."""
    spec = get_spec(dataset)
    info = get_model_info(model, dataset)
    # C: single-worker seconds per epoch on the reference worker.
    compute = spec.n_instances * info.compute.per_instance_s
    rounds = 1.0
    if algorithm == "admm":
        rounds = 1.0 / 10.0  # one exchange per ten scans
    return WorkloadParams(
        dataset_bytes=spec.size_bytes,
        model_bytes=info.param_bytes,
        epochs_faas=1.0,
        epochs_iaas=1.0,
        compute_faas_s=compute,
        compute_iaas_s=compute,
        rounds_per_epoch=rounds,
        channel="s3",
        network="t2",
    )


@dataclass
class ValidationPoint:
    epochs: float
    faas_actual_s: float
    faas_predicted_s: float
    iaas_actual_s: float
    iaas_predicted_s: float


def run_fixed_epochs(
    epoch_grid=(1, 5, 10, 25, 50, 100),
    workers: int = 10,
    seed: int = 20210620,
) -> list[ValidationPoint]:
    """Figure 13a: predicted vs actual runtime at fixed epoch counts."""
    workload = get_workload("lr", "higgs")
    params = _params_for("lr", "higgs", "ma_sgd", workers)
    model = AnalyticalModel(params)
    points = []
    for epochs in epoch_grid:
        faas = train(
            TrainingConfig(
                model="lr", dataset="higgs", algorithm="ma_sgd", system="lambdaml",
                workers=workers, channel="s3", batch_size=workload.batch_size,
                lr=workload.lr, loss_threshold=None, max_epochs=float(epochs), seed=seed,
            )
        )
        iaas = train(
            TrainingConfig(
                model="lr", dataset="higgs", algorithm="ma_sgd", system="pytorch",
                workers=workers, instance="t2.medium", batch_size=workload.batch_size,
                lr=workload.lr, loss_threshold=None, max_epochs=float(epochs), seed=seed,
            )
        )
        scaled = WorkloadParams(
            **{**params.__dict__, "epochs_faas": float(epochs), "epochs_iaas": float(epochs)}
        )
        scaled_model = AnalyticalModel(scaled)
        points.append(
            ValidationPoint(
                epochs=float(epochs),
                faas_actual_s=faas.duration_s,
                faas_predicted_s=scaled_model.faas_seconds(workers),
                iaas_actual_s=iaas.duration_s,
                iaas_predicted_s=scaled_model.iaas_seconds(workers),
            )
        )
    return points


@dataclass
class EstimatorPoint:
    workload: str
    algorithm: str
    estimated_epochs: float
    actual_epochs: float
    predicted_runtime_s: float
    actual_runtime_s: float


def run_estimator(
    cases=(("lr", "higgs"), ("svm", "higgs")),
    algorithms=("ma_sgd", "admm"),
    workers: int = 10,
    seed: int = 20210620,
) -> list[EstimatorPoint]:
    """Figure 13b: sampling estimator + analytical model vs simulation."""
    estimator = SamplingEstimator(sample_fraction=0.1, seed=seed)
    points = []
    for model_name, dataset in cases:
        workload = get_workload(model_name, dataset)
        for algorithm in algorithms:
            estimate = estimator.estimate(
                model_name, dataset, algorithm,
                lr=workload.lr, threshold=workload.threshold,
                batch_size=max(32, workload.batch_size // 100),
                max_epochs=workload.max_epochs,
            )
            actual = train(
                TrainingConfig(
                    model=model_name, dataset=dataset, algorithm=algorithm,
                    system="lambdaml", workers=workers, channel="s3",
                    batch_size=workload.batch_size, lr=workload.lr,
                    loss_threshold=workload.threshold,
                    max_epochs=workload.max_epochs, seed=seed,
                )
            )
            params = _params_for(model_name, dataset, algorithm, workers)
            scaled = WorkloadParams(
                **{
                    **params.__dict__,
                    "epochs_faas": estimate.epochs,
                    "epochs_iaas": estimate.epochs,
                }
            )
            predicted = AnalyticalModel(scaled).faas_seconds(workers)
            points.append(
                EstimatorPoint(
                    workload=f"{model_name}/{dataset}",
                    algorithm=algorithm,
                    estimated_epochs=estimate.epochs,
                    actual_epochs=actual.epochs,
                    predicted_runtime_s=predicted,
                    actual_runtime_s=actual.duration_s,
                )
            )
    return points


def format_report(points: list[ValidationPoint], est: list[EstimatorPoint]) -> str:
    a = format_table(
        "Figure 13a — analytical model vs simulated runtime (LR, Higgs, W=10)",
        ["epochs", "FaaS actual", "FaaS predicted", "IaaS actual", "IaaS predicted"],
        [
            [p.epochs, p.faas_actual_s, p.faas_predicted_s, p.iaas_actual_s, p.iaas_predicted_s]
            for p in points
        ],
    )
    b = format_table(
        "Figure 13b — sampling estimator + analytical model",
        ["workload", "algorithm", "est epochs", "actual epochs", "predicted(s)", "actual(s)"],
        [
            [p.workload, p.algorithm, p.estimated_epochs, p.actual_epochs,
             p.predicted_runtime_s, p.actual_runtime_s]
            for p in est
        ],
    )
    return a + "\n\n" + b
