"""Figure 6: the dataset tables (logical specs + physical stand-ins)."""

from __future__ import annotations

from repro.data.datasets import DATASETS
from repro.data.synth import generate
from repro.experiments.report import format_table
from repro.sweep.study import study

MICRO = ("cifar10", "rcv1", "higgs")
END_TO_END = ("cifar10", "yfcc100m", "criteo")


def run(include_physical: bool = True, scale: int | None = None, seed: int = 0):
    rows = []
    for name, spec in DATASETS.items():
        physical_n = None
        if include_physical:
            split = generate(name, scale=scale, seed=seed)
            physical_n = split.n_train + split.y_val.shape[0]
        rows.append(
            [
                name,
                f"{spec.size_mb:.0f} MB",
                spec.n_instances,
                spec.n_features,
                spec.sparse,
                physical_n,
            ]
        )
    return rows


def format_report(rows) -> str:
    return format_table(
        "Figure 6 — datasets (logical spec / physical stand-in)",
        ["dataset", "size", "#instances", "#features", "sparse", "physical rows"],
        rows,
    )


@study("datasets", kind="direct")
class DatasetsStudy:
    """Figure 6 dataset table: logical specs next to the physical stand-ins"""

    aggregate = staticmethod(lambda artifacts: run())
    format_report = staticmethod(format_report)
