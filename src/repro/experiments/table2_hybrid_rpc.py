"""Table 2: Lambda <-> VM parameter-server communication micro-benchmark.

75 MB transfers between Lambda functions (1 GB / 3 GB memory) and a PS
on t2.2xlarge / c5.4xlarge over gRPC and Thrift, with 1 and 10
concurrent workers. Reports data-transmission time and model-update
time, straight from :class:`PSTimingModel` — the same model the hybrid
executor uses, so the micro-benchmark and the end-to-end runs are
consistent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table
from repro.iaas.ps import PSTimingModel
from repro.iaas.vm import get_instance
from repro.sweep.study import study

MB = 1024 * 1024
PAYLOAD_BYTES = 75 * MB

CONFIGS = [
    # (n_lambdas, lambda_memory_gb, ps_instance)
    (1, 3.0, "t2.2xlarge"),
    (1, 1.0, "t2.2xlarge"),
    (1, 3.0, "c5.4xlarge"),
    (1, 1.0, "c5.4xlarge"),
    (10, 3.0, "t2.2xlarge"),
    (10, 1.0, "t2.2xlarge"),
    (10, 3.0, "c5.4xlarge"),
    (10, 1.0, "c5.4xlarge"),
]


@dataclass
class RPCRow:
    """One Table-2 row."""

    n_lambdas: int
    lambda_memory_gb: float
    ps_instance: str
    grpc_transfer_s: float
    thrift_transfer_s: float
    grpc_update_s: float
    thrift_update_s: float


def run(payload_bytes: int = PAYLOAD_BYTES) -> list[RPCRow]:
    rows = []
    for n, mem, instance in CONFIGS:
        timings = {}
        for rpc in ("grpc", "thrift"):
            model = PSTimingModel(
                instance=get_instance(instance), rpc=rpc, lambda_memory_gb=mem
            )
            timings[rpc] = (
                model.data_transmission_s(payload_bytes, n),
                model.model_update_s(payload_bytes, n),
            )
        rows.append(
            RPCRow(
                n_lambdas=n,
                lambda_memory_gb=mem,
                ps_instance=instance,
                grpc_transfer_s=timings["grpc"][0],
                thrift_transfer_s=timings["thrift"][0],
                grpc_update_s=timings["grpc"][1],
                thrift_update_s=timings["thrift"][1],
            )
        )
    return rows


def format_report(rows: list[RPCRow]) -> str:
    return format_table(
        "Table 2 — Lambda<->PS communication, 75 MB (gRPC / Thrift)",
        ["lambdas", "mem(GB)", "EC2", "xfer gRPC(s)", "xfer Thrift(s)", "upd gRPC(s)", "upd Thrift(s)"],
        [
            [
                r.n_lambdas,
                r.lambda_memory_gb,
                r.ps_instance,
                r.grpc_transfer_s,
                r.thrift_transfer_s,
                r.grpc_update_s,
                r.thrift_update_s,
            ]
            for r in rows
        ],
    )


@study("table2", kind="direct")
class Table2Study:
    """Lambda<->VM parameter-server RPC micro-benchmark (gRPC vs Thrift, 75 MB)"""

    aggregate = staticmethod(lambda artifacts: run())
    format_report = staticmethod(format_report)
