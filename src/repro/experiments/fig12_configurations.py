"""Figure 12: runtime/cost scatter across configurations.

For LR/SVM/KMeans on YFCC100M and MobileNet on Cifar10, sweep instance
types (IaaS), GPU families (MobileNet) and learning rates, plotting
every configuration as a (cost, runtime) point.

Expected shape: for LR/SVM some FaaS configuration beats every IaaS
configuration on runtime but not decisively on cost; for KMeans the
cost-optimal point is IaaS while FaaS is runtime-optimal; for MobileNet
a T4 GPU configuration dominates FaaS on both axes (~8x faster, ~9.5x
cheaper than the best FaaS in the paper; the M60 is ~15% slower and
~30% costlier than the T4).

The per-workload configuration grid is declarative
(:func:`workload_points`) and runs on the sweep orchestrator;
:func:`aggregate` rebuilds the scatters from per-point JSON artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.report import format_table
from repro.experiments.workloads import get_workload
from repro.sweep.grid import SweepPoint
from repro.sweep.orchestrator import run_sweep
from repro.sweep.study import study


@dataclass
class ConfigPoint:
    platform: str  # "faas" | "iaas"
    label: str
    runtime_s: float
    cost: float
    converged: bool


@dataclass
class Scatter:
    workload: str
    points: list[ConfigPoint] = field(default_factory=list)

    def best(self, platform: str, key: str = "runtime_s") -> ConfigPoint | None:
        candidates = [p for p in self.points if p.platform == platform and p.converged]
        if not candidates:
            candidates = [p for p in self.points if p.platform == platform]
        if not candidates:
            return None
        return min(candidates, key=lambda p: getattr(p, key))


def workload_points(
    model: str,
    dataset: str,
    workers: int,
    lr_grid: tuple[float, ...] | None = None,
    iaas_instances: tuple[str, ...] = ("t2.medium", "c5.xlarge"),
    gpu_instances: tuple[str, ...] = (),
    max_epochs: float | None = None,
    seed: int = 20210620,
) -> list[SweepPoint]:
    """The configuration grid of one Figure-12 scatter."""
    workload = get_workload(model, dataset)
    cap = max_epochs or workload.max_epochs
    lrs = lr_grid or (workload.lr / 2, workload.lr, workload.lr * 2)
    series = f"{model}/{dataset}"

    def base(lr: float, **kw) -> dict:
        return dict(
            model=model, dataset=dataset, workers=kw.pop("workers", workers),
            batch_size=workload.batch_size, batch_scope=workload.batch_scope,
            min_local_batch=workload.min_local_batch,
            lr=lr, k=workload.k, loss_threshold=workload.threshold,
            max_epochs=cap, seed=seed, **kw,
        )

    deep = model in ("mobilenet", "resnet50")
    algorithm = "ga_sgd" if deep else workload.algorithm
    # The paper tunes the worker count per configuration ("there are
    # more red points than orange points because we need to tune
    # different instance types for IaaS" — and worker counts for both):
    # FaaS's elasticity is exactly that it can deploy more workers.
    faas_worker_grid = [workers] if deep else [workers, 2 * workers, 3 * workers]
    points = []
    for lr in lrs:
        for w in faas_worker_grid:
            label = f"faas,W={w},lr={lr:g}"
            points.append(
                SweepPoint(
                    "fig12", f"{series} {label}",
                    config_kwargs=base(
                        lr, system="lambdaml", algorithm=algorithm,
                        channel="s3", workers=w,
                    ),
                    tags={"workload": series, "platform": "faas", "config": label},
                )
            )
        for instance in iaas_instances + gpu_instances:
            label = f"{instance},lr={lr:g}"
            points.append(
                SweepPoint(
                    "fig12", f"{series} {label}",
                    config_kwargs=base(
                        lr, system="pytorch", algorithm=algorithm, instance=instance
                    ),
                    tags={"workload": series, "platform": "iaas", "config": label},
                )
            )
    return points


def sweep_points(
    workers_cap: int = 20,
    max_epochs: float | None = None,
    seed: int = 20210620,
) -> list[SweepPoint]:
    """The full Figure-12 grid: three YFCC workloads plus MobileNet."""
    points = []
    for model in ("lr", "svm", "kmeans"):
        workload = get_workload(model, "yfcc100m")
        points += workload_points(
            model, "yfcc100m",
            workers=min(workload.workers, workers_cap) if workers_cap else workload.workers,
            max_epochs=max_epochs, seed=seed,
        )
    points += workload_points(
        "mobilenet", "cifar10", workers=10,
        gpu_instances=("g3s.xlarge", "g4dn.xlarge"),
        max_epochs=max_epochs, seed=seed,
    )
    return points


def aggregate(artifacts: list[dict]) -> list[Scatter]:
    """Rebuild the per-workload scatters from sweep artifacts."""
    scatters: dict[str, Scatter] = {}
    for artifact in artifacts:
        tags = artifact["tags"]
        scatter = scatters.setdefault(tags["workload"], Scatter(workload=tags["workload"]))
        res = artifact["result"]
        scatter.points.append(
            ConfigPoint(
                platform=tags["platform"],
                label=tags["config"],
                runtime_s=res["duration_s"],
                cost=res["cost_total"],
                converged=res["converged"],
            )
        )
    return list(scatters.values())


def run_workload(
    model: str,
    dataset: str,
    workers: int,
    lr_grid: tuple[float, ...] | None = None,
    iaas_instances: tuple[str, ...] = ("t2.medium", "c5.xlarge"),
    gpu_instances: tuple[str, ...] = (),
    max_epochs: float | None = None,
    seed: int = 20210620,
) -> Scatter:
    points = workload_points(
        model, dataset, workers, lr_grid=lr_grid, iaas_instances=iaas_instances,
        gpu_instances=gpu_instances, max_epochs=max_epochs, seed=seed,
    )
    return aggregate(run_sweep(points).artifacts)[0]


def run(
    workers_cap: int = 20,
    max_epochs: float | None = None,
    seed: int = 20210620,
) -> list[Scatter]:
    points = sweep_points(workers_cap=workers_cap, max_epochs=max_epochs, seed=seed)
    return aggregate(run_sweep(points).artifacts)


def format_report(scatters: list[Scatter]) -> str:
    blocks = []
    for scatter in scatters:
        rows = [
            [p.platform, p.label, p.runtime_s, p.cost, p.converged]
            for p in scatter.points
        ]
        blocks.append(
            format_table(
                f"Figure 12 — configurations, {scatter.workload}",
                ["platform", "config", "runtime(s)", "cost($)", "converged"],
                rows,
            )
        )
    return "\n\n".join(blocks)


@study("fig12")
class Fig12Study:
    """runtime/cost scatter across instances and learning rates"""

    @staticmethod
    def points(ctx):
        return sweep_points(max_epochs=ctx.max_epochs, seed=ctx.seed)

    aggregate = staticmethod(aggregate)
    format_report = staticmethod(format_report)
