"""Q3 extension: multi-tenant / peaky training workloads.

The paper leaves multi-tenancy to future work but sketches the
hypothesis: with many independent training jobs arriving in bursts,
FaaS's on-demand start-up should beat both a reserved cluster (pays for
idle valleys) and on-demand VMs (pays start-up latency per job).

We evaluate that hypothesis analytically: a day-long horizon receives
bursts of identical jobs (the LR/Higgs workload); we compare

* **faas** — every job starts its own Lambda fleet on arrival;
* **iaas-reserved** — a cluster sized for the peak is held all day;
* **iaas-ondemand** — a cluster boots per job and is released after.

Metrics: mean job latency (queueing + start-up + run) and total cost.

Two registered studies share this module: ``multitenancy_analytical``
keeps the closed-form comparison above, and ``multitenancy`` *simulates*
the burst on the multi-tenant service runtime (shared engine, shared
storage capacity, FIFO admission) swept over the admission limit — the
queueing-vs-contention trade-off the closed form cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.model import AnalyticalModel, WorkloadParams
from repro.data.datasets import get_spec
from repro.models.zoo import get_model_info
from repro.pricing.catalog import DEFAULT_CATALOG
from repro.sweep.study import study

HORIZON_S = 24 * 3600.0


def default_params() -> WorkloadParams:
    """The registry study's workload: LR/Higgs ADMM, ~20 epochs/job."""
    spec = get_spec("higgs")
    info = get_model_info("lr", "higgs")
    compute = spec.n_instances * info.compute.per_instance_s
    return WorkloadParams(
        dataset_bytes=spec.size_bytes,
        model_bytes=info.param_bytes,
        epochs_faas=20.0,
        epochs_iaas=20.0,
        compute_faas_s=compute,
        compute_iaas_s=compute,
        rounds_per_epoch=0.1,  # ADMM: one exchange per ten scans
    )


@dataclass(frozen=True)
class ArrivalPattern:
    """Deterministic bursts: `burst_jobs` jobs arrive together every
    `burst_interval_s`, e.g. nightly retraining of per-tenant models."""

    burst_jobs: int = 8
    burst_interval_s: float = 4 * 3600.0

    def arrivals(self) -> list[float]:
        times = []
        t = 0.0
        while t < HORIZON_S:
            times.extend([t] * self.burst_jobs)
            t += self.burst_interval_s
        return times


@dataclass
class TenancyOutcome:
    platform: str
    mean_latency_s: float
    total_cost: float
    jobs: int


def run(
    params: WorkloadParams,
    workers: int = 10,
    pattern: ArrivalPattern = ArrivalPattern(),
    lambda_memory_gb: float = 3.0,
    instance: str = "t2.medium",
) -> list[TenancyOutcome]:
    model = AnalyticalModel(params)
    arrivals = pattern.arrivals()
    n_jobs = len(arrivals)

    faas_latency = model.faas_seconds(workers)
    faas_cost_per_job = model.faas_cost(workers, lambda_memory_gb)
    outcomes = [
        TenancyOutcome("faas", faas_latency, n_jobs * faas_cost_per_job, n_jobs)
    ]

    # Reserved cluster: no start-up per job (paid once, before the
    # horizon), but one job at a time — bursts queue.
    run_seconds = model.iaas_seconds(workers) - model.constants.startup_iaas(workers)
    hourly = DEFAULT_CATALOG.ec2_price(instance)
    free_at = 0.0
    total_latency = 0.0
    for arrival in arrivals:
        start = max(arrival, free_at)
        finish = start + run_seconds
        total_latency += finish - arrival
        free_at = finish
    reserved_cost = workers * hourly * max(HORIZON_S, free_at) / 3600.0
    outcomes.append(
        TenancyOutcome("iaas-reserved", total_latency / n_jobs, reserved_cost, n_jobs)
    )

    # On-demand VMs: each job boots its own cluster; jobs run in
    # parallel but every one eats t_I(w) of latency and billed time.
    ondemand_latency = model.iaas_seconds(workers)
    ondemand_cost = n_jobs * workers * hourly * ondemand_latency / 3600.0
    outcomes.append(
        TenancyOutcome("iaas-ondemand", ondemand_latency, ondemand_cost, n_jobs)
    )
    return outcomes


def format_report(outcomes: list[TenancyOutcome]) -> str:
    from repro.experiments.report import format_table

    return format_table(
        "Q3 extension — multi-tenant peaky workload (analytical)",
        ["platform", "mean latency (s)", "total cost ($)", "jobs"],
        [[o.platform, o.mean_latency_s, o.total_cost, o.jobs] for o in outcomes],
    )


@study("multitenancy_analytical", kind="direct")
class MultitenancyAnalyticalStudy:
    """Q3 extension (closed form): peaky multi-tenant arrivals on FaaS vs reserved/on-demand IaaS"""

    aggregate = staticmethod(lambda artifacts: run(default_params()))
    format_report = staticmethod(format_report)


# -- the simulated counterpart -------------------------------------------
#
# The closed-form study above prices the burst hypothesis; this grid
# study *simulates* it on the multi-tenant service runtime: one burst of
# identical jobs on a shared engine with shared storage capacity, swept
# over the admission limit. Registering it as a grid study means
# ``--jobs/--resume/--substrate auto`` apply to the isolated baseline,
# and the burst simulation itself rides in ``aggregate``.

BURST_JOBS = 8
BURST_ACCOUNTS = 3
BURST_LIMITS = (2, 4, 8)


def burst_config_kwargs(
    max_epochs: float | None = None, seed: int = 20210620
) -> dict:
    """The burst job class: communication-bound LR/RCV1 over one shared
    redis node (prestarted — the service keeps a warm pool), where a
    neighbour's traffic is actually visible in your transfer times."""
    return dict(
        model="lr", dataset="rcv1", workers=4, data_scale=2000,
        max_epochs=max_epochs or 2.0, channel="redis",
        channel_prestarted=True, seed=seed,
    )


def simulate_bursts(artifacts: list[dict]) -> list[dict]:
    """One burst of identical jobs per admission limit, via the service."""
    from repro.service import (
        BaselineProvider,
        JobRequest,
        ServiceRuntime,
        make_scheduler,
        service_metrics,
    )

    provider = BaselineProvider()
    provider.prime({a["config_hash"]: a for a in artifacts})
    kwargs = dict(artifacts[0]["config"])
    rows = []
    for limit in BURST_LIMITS:
        requests = [
            JobRequest(
                job=f"j{i:03d}",
                tenant=f"acct{i % BURST_ACCOUNTS}",
                arrival_s=0.0,
                config_kwargs=dict(kwargs),
            )
            for i in range(BURST_JOBS)
        ]
        records = ServiceRuntime(
            requests, make_scheduler("fifo"), limit, provider
        ).run()
        rows.append({"max_concurrent": limit, **service_metrics(records)})
    return rows


def format_burst_report(rows: list[dict]) -> str:
    from repro.experiments.report import format_table

    return format_table(
        f"Multi-tenancy (simulated) — burst of {BURST_JOBS} jobs, "
        "queueing vs contention",
        ["max_concurrent", "p50 completion (s)", "p99 completion (s)",
         "mean slowdown", "$/job", "makespan (s)"],
        [
            [r["max_concurrent"], r["p50_completion_s"], r["p99_completion_s"],
             r["mean_slowdown"], r["cost_per_job"], r["makespan_s"]]
            for r in rows
        ],
    )


@study("multitenancy")
class MultitenancyStudy:
    """Q3 extension (simulated): a burst of tenants on one shared engine, swept over the admission limit"""

    @staticmethod
    def points(ctx):
        from repro.sweep.grid import SweepPoint

        kwargs = burst_config_kwargs(max_epochs=ctx.max_epochs, seed=ctx.seed)
        return [
            SweepPoint(
                "multitenancy",
                "lr/rcv1,W=4,redis (burst job class)",
                config_kwargs=kwargs,
                tags={"series": "burst", "role": "isolated-baseline"},
            )
        ]

    aggregate = staticmethod(simulate_bursts)
    format_report = staticmethod(format_burst_report)
