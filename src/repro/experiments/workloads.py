"""Tuned workload definitions (the reproduction's Table 4).

The paper tunes the learning rate per workload in [0.001, 1] and stops
at fixed loss thresholds. Our synthetic datasets preserve each
dataset's character but not its absolute loss scale everywhere, so each
workload records both the paper's threshold and the threshold used
here, with the mapping documented in EXPERIMENTS.md.

Batch sizes follow the paper: B=100K for the Higgs micro-benchmarks
(§4.1), B=10K for the Higgs end-to-end runs, B=2K on RCV1, B=800 on
YFCC100M, and per-worker 128/32 for MobileNet/ResNet50 (bounded by
Lambda's 3 GB memory).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Workload:
    """One (model, dataset) training task with tuned hyper-parameters."""

    model: str
    dataset: str
    algorithm: str  # the paper's best algorithm for this workload
    workers: int  # Table 4 worker count
    batch_size: int
    batch_scope: str = "global"
    lr: float = 0.05
    k: int = 10
    min_local_batch: int = 1  # physical batch floor (see data.loader)
    threshold: float = 0.0  # our loss threshold
    paper_threshold: float = 0.0  # what the paper stops at
    max_epochs: float = 60.0

    @property
    def key(self) -> str:
        return f"{self.model}/{self.dataset}"


WORKLOADS: dict[str, Workload] = {
    w.key: w
    for w in [
        # Table 4 row: LR/SVM/KMeans on Higgs, W=10, B=10K.
        Workload(
            "lr", "higgs", "admm", workers=10, batch_size=10_000,
            lr=0.05, threshold=0.66, paper_threshold=0.66, max_epochs=60,
        ),
        # The conditioned generator's squared-hinge consensus plateaus
        # near 0.42; 0.44 plays the role of the paper's 0.48.
        Workload(
            "svm", "higgs", "admm", workers=10, batch_size=10_000,
            lr=0.05, threshold=0.47, paper_threshold=0.48, max_epochs=60,
        ),
        # The conditioned generator plateaus near 0.19 relative
        # quantization error with k=10 over 8 latent clusters.
        Workload(
            "kmeans", "higgs", "em", workers=10, batch_size=10_000, k=10,
            threshold=0.20, paper_threshold=0.15, max_epochs=40,
        ),
        # LR/SVM on RCV1, W=5, B=2K; KMeans on RCV1, W=50, k=3.
        Workload(
            "lr", "rcv1", "admm", workers=5, batch_size=2_000,
            lr=2.0, threshold=0.68, paper_threshold=0.68, max_epochs=40,
        ),
        Workload(
            "svm", "rcv1", "admm", workers=5, batch_size=2_000,
            lr=3.0, threshold=0.48, paper_threshold=0.05, max_epochs=40,
        ),
        Workload(
            "kmeans", "rcv1", "em", workers=50, batch_size=2_000, k=3,
            threshold=0.58, paper_threshold=0.01, max_epochs=30,
        ),
        # LR/SVM/KMeans on YFCC100M, W=100, B=800. The paper's "50"
        # threshold is an unnormalised sum; ours are mean-loss scale.
        Workload(
            "lr", "yfcc100m", "admm", workers=100, batch_size=800,
            lr=2.0, min_local_batch=32, threshold=0.45, paper_threshold=50.0, max_epochs=40,
        ),
        Workload(
            "svm", "yfcc100m", "admm", workers=100, batch_size=800,
            lr=1.0, min_local_batch=32, threshold=0.42, paper_threshold=50.0, max_epochs=40,
        ),
        Workload(
            "kmeans", "yfcc100m", "em", workers=100, batch_size=800, k=10,
            threshold=0.25, paper_threshold=50.0, max_epochs=40,
        ),
        # LR on Criteo (high-dimensional sparse; 52M instances make the
        # practical global batch 1M, i.e. ~52 iterations per epoch).
        Workload(
            "lr", "criteo", "admm", workers=100, batch_size=1_000_000,
            lr=5.0, min_local_batch=32, threshold=0.62, paper_threshold=0.46, max_epochs=40,
        ),
        # MobileNet / ResNet50 on Cifar10: GA-SGD only (non-convex),
        # per-worker batches bounded by Lambda memory.
        Workload(
            "mobilenet", "cifar10", "ga_sgd", workers=10, batch_size=128,
            batch_scope="per_worker", lr=0.05, threshold=0.2,
            paper_threshold=0.2, max_epochs=60,
        ),
        Workload(
            "resnet50", "cifar10", "ga_sgd", workers=10, batch_size=32,
            batch_scope="per_worker", lr=0.05, threshold=0.4,
            paper_threshold=0.4, max_epochs=60,
        ),
    ]
}


def get_workload(model: str, dataset: str) -> Workload:
    key = f"{model}/{dataset}"
    try:
        return WORKLOADS[key]
    except KeyError:
        raise ConfigurationError(
            f"no tuned workload {key!r}; known: {sorted(WORKLOADS)}"
        ) from None


def scaled(workload: Workload, **overrides) -> Workload:
    """Copy a workload with overrides (worker count, thresholds...)."""
    return replace(workload, **overrides)
