"""Plain-text report rendering shared by the experiment modules.

Each experiment returns rows of python primitives; these helpers render
them as aligned tables that mirror the paper's tables/figure captions,
so `pytest benchmarks/ --benchmark-only` output doubles as the
reproduction record in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    floatfmt: str = "{:.3g}",
) -> str:
    """Render an aligned monospace table with a title line."""
    rendered_rows = [[_render(cell, floatfmt) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(title: str, series: dict[str, list[tuple[float, float]]]) -> str:
    """Render named (x, y) series compactly (loss-vs-time curves)."""
    lines = [title, "-" * len(title)]
    for name, points in series.items():
        if not points:
            lines.append(f"{name}: (empty)")
            continue
        head = " ".join(f"({x:.3g},{y:.3g})" for x, y in points[:6])
        tail = "" if len(points) <= 6 else f" ... ({points[-1][0]:.3g},{points[-1][1]:.3g})"
        lines.append(f"{name} [{len(points)} pts]: {head}{tail}")
    return "\n".join(lines)


def _render(cell: Any, floatfmt: str) -> str:
    if cell is None:
        return "N/A"
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return floatfmt.format(cell)
    return str(cell)


def ratio(numerator: float | None, denominator: float | None) -> float | None:
    """Safe ratio used for the slowdown/cost columns of Table 1."""
    if numerator is None or denominator in (None, 0):
        return None
    return numerator / denominator
