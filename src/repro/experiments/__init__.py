"""Experiment modules: one per table/figure of the paper.

Each module exposes a `run(...)` function returning plain data
structures (lists of rows / series) plus a `format_report(...)` helper
that renders the same rows the paper reports. The benchmark harness in
`benchmarks/` calls these with scaled-down settings; the functions also
accept the full-scale parameters for longer runs.
"""

from repro.experiments.workloads import WORKLOADS, Workload, get_workload

__all__ = ["WORKLOADS", "Workload", "get_workload"]
