"""Experiment modules: one per table/figure of the paper (plus extensions).

Every module registers a :class:`~repro.sweep.study.Study` via the
``@study`` decorator: a named grid declaration (``points(ctx)``), an
artifact aggregator and a report renderer. The registry auto-discovers
them by importing this package's modules, so ``repro.cli sweep
--experiment <name>`` (and ``repro.api``'s ``Session.sweep``) covers
the whole catalog with ``--jobs/--resume/--substrate auto``.

Each module also keeps its legacy ``run(...)`` helper — now a thin shim
routing through the sweep orchestrator, verified bit-identical to the
old hand-rolled loops — returning plain data structures, with a
``format_report(...)`` renderer mirroring the paper's tables. The
benchmark harness in ``benchmarks/`` calls these with scaled-down
settings; the functions also accept the full-scale parameters.
"""

from repro.experiments.workloads import WORKLOADS, Workload, get_workload

__all__ = ["WORKLOADS", "Workload", "get_workload"]
