"""Figure 10: runtime breakdown (LR on Higgs, W=10, 10 epochs).

For each system we run exactly ten epochs (no early stopping) and
report the per-phase simulated time of the slowest worker: start-up,
data loading, computation, communication, the total, and the total
excluding start-up.

Paper's measured values for reference (seconds):
  PyTorch   132 / 9 / 80 / 0.9 -> 221 (89 w/o startup)
  Angel     457 / 35 / 125 / 1.1 -> 618 (161)
  HybridPS  123 / 9 / 80 / 1.0 -> 213 (90)
  LambdaML    1 / 9 / 80 / 2   ->  92 (91)

The four systems form a declarative grid (:func:`sweep_points`) run by
the sweep orchestrator; :func:`aggregate` rebuilds the breakdown rows
from per-point JSON artifacts (the time breakdown is persisted in
full). Note the HybridPS point is timing-coupled, so ``--substrate
auto`` runs it exact and the other three through record/replay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import RunResult
from repro.experiments.report import format_table
from repro.sweep.artifacts import result_from_artifact
from repro.sweep.grid import SweepPoint
from repro.sweep.orchestrator import run_sweep
from repro.sweep.study import study

SYSTEMS = ("pytorch", "angel", "hybridps", "lambdaml")
DEFAULT_EPOCHS = 10.0


@dataclass
class BreakdownRow:
    system: str
    startup_s: float
    load_s: float
    compute_s: float
    comm_s: float
    total_s: float
    total_without_startup_s: float


def sweep_points(
    max_epochs: float | None = None,
    workers: int = 10,
    seed: int = 20210620,
) -> list[SweepPoint]:
    """One fixed-epoch point per system (no early stopping)."""
    epochs = max_epochs or DEFAULT_EPOCHS
    return [
        SweepPoint(
            "fig10",
            f"{system},W={workers},{epochs:g}ep",
            config_kwargs=dict(
                model="lr",
                dataset="higgs",
                # The breakdown fixes epoch count, so MA-SGD (one exchange
                # per epoch) matches the paper's per-epoch communication.
                algorithm="ma_sgd" if system != "hybridps" else "ga_sgd",
                system=system,
                workers=workers,
                channel="s3",
                batch_size=10_000,
                lr=0.05,
                loss_threshold=None,  # run the full epoch budget
                max_epochs=epochs,
                seed=seed,
            ),
            tags={"system": system},
        )
        for system in SYSTEMS
    ]


def aggregate(artifacts: list[dict]) -> list[BreakdownRow]:
    """Rebuild the breakdown rows from sweep artifacts (point order)."""
    return [
        _to_row(artifact["tags"]["system"], result_from_artifact(artifact))
        for artifact in artifacts
    ]


def run(
    epochs: float = DEFAULT_EPOCHS,
    workers: int = 10,
    seed: int = 20210620,
) -> list[BreakdownRow]:
    """Legacy helper: run the grid, return the rows (system order)."""
    points = sweep_points(max_epochs=epochs, workers=workers, seed=seed)
    return aggregate(run_sweep(points).artifacts)


def _to_row(system: str, result: RunResult) -> BreakdownRow:
    b = result.breakdown
    return BreakdownRow(
        system=system,
        startup_s=b.get("startup"),
        load_s=b.get("load"),
        # Pure operation time, as the paper reports it; peer-waiting and
        # polling overhead shows up only in the total.
        comm_s=b.get("comm"),
        compute_s=b.get("compute"),
        total_s=result.duration_s,
        total_without_startup_s=result.duration_without_startup_s,
    )


def format_report(rows: list[BreakdownRow]) -> str:
    return format_table(
        "Figure 10 — time breakdown (LR, Higgs, W=10, 10 epochs)",
        ["system", "startup", "load", "compute", "comm", "total", "total w/o startup"],
        [
            [r.system, r.startup_s, r.load_s, r.compute_s, r.comm_s, r.total_s,
             r.total_without_startup_s]
            for r in rows
        ],
    )


@study("fig10")
class Fig10Study:
    """per-phase runtime breakdown (startup/load/compute/comm) across all four systems"""

    @staticmethod
    def points(ctx):
        return sweep_points(max_epochs=ctx.max_epochs, seed=ctx.seed)

    aggregate = staticmethod(aggregate)
    format_report = staticmethod(format_report)
