"""Figure 10: runtime breakdown (LR on Higgs, W=10, 10 epochs).

For each system we run exactly ten epochs (no early stopping) and
report the per-phase simulated time of the slowest worker: start-up,
data loading, computation, communication, the total, and the total
excluding start-up.

Paper's measured values for reference (seconds):
  PyTorch   132 / 9 / 80 / 0.9 -> 221 (89 w/o startup)
  Angel     457 / 35 / 125 / 1.1 -> 618 (161)
  HybridPS  123 / 9 / 80 / 1.0 -> 213 (90)
  LambdaML    1 / 9 / 80 / 2   ->  92 (91)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import TrainingConfig
from repro.core.driver import train
from repro.core.results import RunResult
from repro.experiments.report import format_table

SYSTEMS = ("pytorch", "angel", "hybridps", "lambdaml")


@dataclass
class BreakdownRow:
    system: str
    startup_s: float
    load_s: float
    compute_s: float
    comm_s: float
    total_s: float
    total_without_startup_s: float


def run(
    epochs: float = 10.0,
    workers: int = 10,
    seed: int = 20210620,
) -> list[BreakdownRow]:
    rows = []
    for system in SYSTEMS:
        config = TrainingConfig(
            model="lr",
            dataset="higgs",
            # The breakdown fixes epoch count, so MA-SGD (one exchange
            # per epoch) matches the paper's per-epoch communication.
            algorithm="ma_sgd" if system != "hybridps" else "ga_sgd",
            system=system,
            workers=workers,
            channel="s3",
            batch_size=10_000,
            lr=0.05,
            loss_threshold=None,  # run the full ten epochs
            max_epochs=epochs,
            seed=seed,
        )
        result = train(config)
        rows.append(_to_row(system, result))
    return rows


def _to_row(system: str, result: RunResult) -> BreakdownRow:
    b = result.breakdown
    return BreakdownRow(
        system=system,
        startup_s=b.get("startup"),
        load_s=b.get("load"),
        # Pure operation time, as the paper reports it; peer-waiting and
        # polling overhead shows up only in the total.
        comm_s=b.get("comm"),
        compute_s=b.get("compute"),
        total_s=result.duration_s,
        total_without_startup_s=result.duration_without_startup_s,
    )


def format_report(rows: list[BreakdownRow]) -> str:
    return format_table(
        "Figure 10 — time breakdown (LR, Higgs, W=10, 10 epochs)",
        ["system", "startup", "load", "compute", "comm", "total", "total w/o startup"],
        [
            [r.system, r.startup_s, r.load_s, r.compute_s, r.comm_s, r.total_s,
             r.total_without_startup_s]
            for r in rows
        ],
    )
