"""Figure 7: comparison of distributed optimization algorithms.

For LR/SVM on Higgs and MobileNet on Cifar10 we train with GA-SGD,
MA-SGD and ADMM (where valid) on LambdaML over ElastiCache-Memcached,
at a small and a large worker count, reporting

* loss vs wall-clock time,
* loss vs number of communication rounds, and
* the speed-up of the large-worker configuration over the small one —
  the paper's headline being that ADMM scales (~16x), MA-SGD scales
  modestly (~3.5x) and GA-SGD anti-scales (~0.08x) on convex models,
  while only GA-SGD converges stably on the neural model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import TrainingConfig
from repro.core.driver import train
from repro.core.results import RunResult
from repro.experiments.report import format_series, format_table
from repro.experiments.workloads import get_workload


@dataclass
class AlgorithmComparison:
    """Results of one workload across algorithms and worker counts."""

    workload: str
    results: dict[tuple[str, int], RunResult]  # (algorithm, workers) -> result

    def speedup(self, algorithm: str, small: int, large: int) -> float | None:
        base = self.results.get((algorithm, small))
        scaled_run = self.results.get((algorithm, large))
        if base is None or scaled_run is None or scaled_run.duration_s == 0:
            return None
        return base.duration_s / scaled_run.duration_s


def _algorithms_for(model: str) -> list[str]:
    if model in ("mobilenet", "resnet50"):
        # ADMM cannot optimise non-convex objectives (paper §4.2).
        return ["ga_sgd", "ma_sgd"]
    return ["admm", "ma_sgd", "ga_sgd"]


def run(
    model: str = "lr",
    dataset: str = "higgs",
    worker_counts: tuple[int, int] = (10, 300),
    channel: str = "memcached",
    max_epochs: float | None = None,
    ga_max_epochs: float | None = None,
    seed: int = 20210620,
) -> AlgorithmComparison:
    """Train one workload with every applicable algorithm."""
    workload = get_workload(model, dataset)
    results: dict[tuple[str, int], RunResult] = {}
    for algorithm in _algorithms_for(model):
        for workers in worker_counts:
            epochs_cap = max_epochs or workload.max_epochs
            if algorithm == "ga_sgd" and ga_max_epochs is not None:
                # GA-SGD at large scale is dominated by per-batch
                # communication; capping epochs keeps runs bounded
                # without changing the (non-)convergence story.
                epochs_cap = ga_max_epochs
            config = TrainingConfig(
                model=model,
                dataset=dataset,
                algorithm=algorithm,
                system="lambdaml",
                workers=workers,
                channel=channel,
                # §4 protocol: Memcached is launched before the Lambdas.
                channel_prestarted=True,
                batch_size=workload.batch_size,
                batch_scope=workload.batch_scope,
                lr=workload.lr,
                k=workload.k,
                loss_threshold=workload.threshold,
                max_epochs=epochs_cap,
                partition_mode="label-skew" if model in ("mobilenet", "resnet50") else "iid",
                seed=seed,
            )
            results[(algorithm, workers)] = train(config)
    return AlgorithmComparison(workload=workload.key, results=results)


def format_report(comparison: AlgorithmComparison, worker_counts=(10, 300)) -> str:
    small, large = worker_counts
    rows = []
    for (algorithm, workers), result in sorted(comparison.results.items()):
        rows.append(
            [
                algorithm,
                workers,
                result.converged,
                result.final_loss,
                result.duration_s,
                result.comm_rounds,
                result.epochs,
            ]
        )
    table = format_table(
        f"Figure 7 — algorithms on {comparison.workload}",
        ["algorithm", "workers", "converged", "loss", "time(s)", "comms", "epochs"],
        rows,
    )
    speedups = []
    algorithms = sorted({a for a, _ in comparison.results})
    for algorithm in algorithms:
        s = comparison.speedup(algorithm, small, large)
        speedups.append([algorithm, s])
    table2 = format_table(
        f"Speed-up of {large} vs {small} workers",
        ["algorithm", "speedup"],
        speedups,
    )
    curves = {
        f"{a}@{w}": r.loss_curve() for (a, w), r in sorted(comparison.results.items())
    }
    return "\n\n".join([table, table2, format_series("Loss vs time", curves)])
