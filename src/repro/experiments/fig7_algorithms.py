"""Figure 7: comparison of distributed optimization algorithms.

For LR/SVM on Higgs and MobileNet on Cifar10 we train with GA-SGD,
MA-SGD and ADMM (where valid) on LambdaML over ElastiCache-Memcached,
at a small and a large worker count, reporting

* loss vs wall-clock time,
* loss vs number of communication rounds, and
* the speed-up of the large-worker configuration over the small one —
  the paper's headline being that ADMM scales (~16x), MA-SGD scales
  modestly (~3.5x) and GA-SGD anti-scales (~0.08x) on convex models,
  while only GA-SGD converges stably on the neural model.

The per-workload (algorithm x workers) grid is declarative
(:func:`workload_points`) and runs on the sweep orchestrator;
:func:`aggregate` rebuilds the comparisons — loss curves included —
from per-point JSON artifacts. :func:`run` is the legacy single-panel
helper, now a shim over the same machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import RunResult
from repro.experiments.report import format_series, format_table
from repro.experiments.workloads import get_workload
from repro.sweep.artifacts import result_from_artifact
from repro.sweep.grid import SweepPoint
from repro.sweep.orchestrator import run_sweep
from repro.sweep.study import study

# The figure's three panels: (model, dataset, (small W, large W)).
# MobileNet runs at (10, 50): GA-SGD is the only stable algorithm there
# and its per-batch communication makes W=300 a wall-clock sink.
PANELS = [
    ("lr", "higgs", (10, 300)),
    ("svm", "higgs", (10, 300)),
    ("mobilenet", "cifar10", (10, 50)),
]
# Epoch cap for GA-SGD in the default study grid. At large scale GA-SGD
# is dominated by per-batch communication; a small cap keeps the sweep
# bounded without changing its (anti-scaling) story.
GA_SGD_STUDY_EPOCHS = 3.0


@dataclass
class AlgorithmComparison:
    """Results of one workload across algorithms and worker counts."""

    workload: str
    results: dict[tuple[str, int], RunResult]  # (algorithm, workers) -> result

    def speedup(self, algorithm: str, small: int, large: int) -> float | None:
        base = self.results.get((algorithm, small))
        scaled_run = self.results.get((algorithm, large))
        if base is None or scaled_run is None or scaled_run.duration_s == 0:
            return None
        return base.duration_s / scaled_run.duration_s

    def worker_counts(self) -> tuple[int, int]:
        counts = sorted({w for _, w in self.results})
        return (counts[0], counts[-1])


def _algorithms_for(model: str) -> list[str]:
    if model in ("mobilenet", "resnet50"):
        # ADMM cannot optimise non-convex objectives (paper §4.2).
        return ["ga_sgd", "ma_sgd"]
    return ["admm", "ma_sgd", "ga_sgd"]


def workload_points(
    model: str = "lr",
    dataset: str = "higgs",
    worker_counts: tuple[int, int] = (10, 300),
    channel: str = "memcached",
    max_epochs: float | None = None,
    ga_max_epochs: float | None = None,
    seed: int = 20210620,
) -> list[SweepPoint]:
    """One (algorithm, workers) grid cell per point, for one workload."""
    workload = get_workload(model, dataset)
    points = []
    for algorithm in _algorithms_for(model):
        for workers in worker_counts:
            epochs_cap = max_epochs or workload.max_epochs
            if algorithm == "ga_sgd" and ga_max_epochs is not None:
                # GA-SGD at large scale is dominated by per-batch
                # communication; capping epochs keeps runs bounded
                # without changing the (non-)convergence story.
                epochs_cap = ga_max_epochs
            points.append(
                SweepPoint(
                    "fig7",
                    f"{model}/{dataset} {algorithm},W={workers}",
                    config_kwargs=dict(
                        model=model,
                        dataset=dataset,
                        algorithm=algorithm,
                        system="lambdaml",
                        workers=workers,
                        channel=channel,
                        # §4 protocol: Memcached is launched before the Lambdas.
                        channel_prestarted=True,
                        batch_size=workload.batch_size,
                        batch_scope=workload.batch_scope,
                        lr=workload.lr,
                        k=workload.k,
                        loss_threshold=workload.threshold,
                        max_epochs=epochs_cap,
                        partition_mode="label-skew"
                        if model in ("mobilenet", "resnet50")
                        else "iid",
                        seed=seed,
                    ),
                    tags={"workload": f"{model}/{dataset}"},
                )
            )
    return points


def sweep_points(
    max_epochs: float | None = None, seed: int = 20210620
) -> list[SweepPoint]:
    """The full Figure-7 grid (all three panels)."""
    points = []
    for model, dataset, counts in PANELS:
        points += workload_points(
            model, dataset, worker_counts=counts,
            max_epochs=max_epochs,
            ga_max_epochs=max_epochs or GA_SGD_STUDY_EPOCHS,
            seed=seed,
        )
    return points


def aggregate(artifacts: list[dict]) -> list[AlgorithmComparison]:
    """Rebuild per-workload comparisons from sweep artifacts."""
    comparisons: dict[str, AlgorithmComparison] = {}
    for artifact in artifacts:
        workload = artifact["tags"]["workload"]
        comparison = comparisons.setdefault(
            workload, AlgorithmComparison(workload=workload, results={})
        )
        config = artifact["config"]
        key = (config["algorithm"], config["workers"])
        comparison.results[key] = result_from_artifact(artifact)
    return list(comparisons.values())


def run(
    model: str = "lr",
    dataset: str = "higgs",
    worker_counts: tuple[int, int] = (10, 300),
    channel: str = "memcached",
    max_epochs: float | None = None,
    ga_max_epochs: float | None = None,
    seed: int = 20210620,
) -> AlgorithmComparison:
    """Train one workload with every applicable algorithm (legacy shim)."""
    points = workload_points(
        model, dataset, worker_counts=worker_counts, channel=channel,
        max_epochs=max_epochs, ga_max_epochs=ga_max_epochs, seed=seed,
    )
    return aggregate(run_sweep(points).artifacts)[0]


def format_report(comparison: AlgorithmComparison, worker_counts=(10, 300)) -> str:
    small, large = worker_counts
    rows = []
    for (algorithm, workers), result in sorted(comparison.results.items()):
        rows.append(
            [
                algorithm,
                workers,
                result.converged,
                result.final_loss,
                result.duration_s,
                result.comm_rounds,
                result.epochs,
            ]
        )
    table = format_table(
        f"Figure 7 — algorithms on {comparison.workload}",
        ["algorithm", "workers", "converged", "loss", "time(s)", "comms", "epochs"],
        rows,
    )
    speedups = []
    algorithms = sorted({a for a, _ in comparison.results})
    for algorithm in algorithms:
        s = comparison.speedup(algorithm, small, large)
        speedups.append([algorithm, s])
    table2 = format_table(
        f"Speed-up of {large} vs {small} workers",
        ["algorithm", "speedup"],
        speedups,
    )
    curves = {
        f"{a}@{w}": r.loss_curve() for (a, w), r in sorted(comparison.results.items())
    }
    return "\n\n".join([table, table2, format_series("Loss vs time", curves)])


@study("fig7")
class Fig7Study:
    """algorithm comparison (GA-SGD / MA-SGD / ADMM) at small vs large worker counts"""

    @staticmethod
    def points(ctx):
        return sweep_points(max_epochs=ctx.max_epochs, seed=ctx.seed)

    aggregate = staticmethod(aggregate)

    @staticmethod
    def format_report(comparisons: list[AlgorithmComparison]) -> str:
        return "\n\n".join(
            format_report(c, worker_counts=c.worker_counts()) for c in comparisons
        )
