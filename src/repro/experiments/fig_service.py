"""figS — the scheduler panel for the multi-tenant training service.

The paper stops at single-job economics; this extension asks the
service operator's question: with jobs from many tenants arriving as a
Poisson stream onto shared storage capacity, which admission policy
wins, and what does it trade away?

A fixed workload — ``JOBS`` Poisson arrivals cycling two heterogeneous
job classes (a cheap and an expensive LR/RCV1 configuration, both
communication-bound on one shared redis node) — is replayed under every
registered scheduler. The grid points are the two class configs (their
isolated runs are the slowdown/cost denominators and the replay-trace
sources); ``aggregate`` then simulates one service run per scheduler on
the shared engine and reports p50/p99 completion, $/job and contention
slowdown — including the measured p99-vs-cost trade-off between
``fifo`` and ``adaptive`` worker scaling.
"""

from __future__ import annotations

from repro.sweep.grid import SweepPoint
from repro.sweep.study import study

JOBS = 12
RATE_PER_HOUR = 3600.0  # one arrival a second: faster than service
ACCOUNTS = 3
MAX_CONCURRENT = 4


def class_kwargs(max_epochs: float | None = None, seed: int = 20210620) -> list[dict]:
    """The two tenant job classes (cheap vs expensive, both comm-bound)."""
    base = dict(
        model="lr", dataset="rcv1", workers=8, max_epochs=max_epochs or 2.0,
        channel="redis", channel_prestarted=True, seed=seed,
    )
    return [
        dict(base, data_scale=2000),  # "small": cheap, fast
        dict(base, data_scale=6000),  # "large": 3x the data, pricier
    ]


def sweep_points(
    max_epochs: float | None = None, seed: int = 20210620
) -> list[SweepPoint]:
    labels = ("small", "large")
    return [
        SweepPoint(
            "figS",
            f"class={label} lr/rcv1,W={kw['workers']},scale={kw['data_scale']}",
            config_kwargs=kw,
            tags={"series": "service", "class": label},
        )
        for label, kw in zip(labels, class_kwargs(max_epochs, seed))
    ]


def simulate_schedulers(artifacts: list[dict]) -> dict:
    """One Poisson service run per scheduler, over shared baselines."""
    from repro.service import (
        SCHEDULER_NAMES,
        BaselineProvider,
        JobRequest,
        ServiceRuntime,
        make_scheduler,
        poisson_arrivals,
        service_metrics,
    )

    provider = BaselineProvider()
    provider.prime({a["config_hash"]: a for a in artifacts})
    # The artifacts ARE the class configs (tagged small/large); cycle
    # them across the arrival stream, seeded by the classes' own seed.
    by_class = {a["tags"]["class"]: dict(a["config"]) for a in artifacts}
    classes = [by_class[label] for label in sorted(by_class)]
    seed = int(classes[0]["seed"])
    arrivals = poisson_arrivals(seed, RATE_PER_HOUR, JOBS)
    requests = [
        JobRequest(
            job=f"j{i:03d}",
            tenant=f"acct{i % ACCOUNTS}",
            arrival_s=t,
            config_kwargs=dict(classes[i % len(classes)]),
        )
        for i, t in enumerate(arrivals)
    ]
    schedulers = {}
    for name in SCHEDULER_NAMES:
        records = ServiceRuntime(
            [JobRequest(r.job, r.tenant, r.arrival_s, dict(r.config_kwargs),
                        r.priority) for r in requests],
            make_scheduler(name),
            MAX_CONCURRENT,
            provider,
        ).run()
        schedulers[name] = service_metrics(records)
    return {
        "tenants": JOBS,
        "rate_per_hour": RATE_PER_HOUR,
        "seed": seed,
        "max_concurrent": MAX_CONCURRENT,
        "schedulers": schedulers,
    }


def format_report(result: dict) -> str:
    from repro.experiments.report import format_table

    schedulers = result["schedulers"]
    table = format_table(
        f"figS — service schedulers ({result['tenants']} Poisson jobs @ "
        f"{result['rate_per_hour']:g}/h, limit {result['max_concurrent']})",
        ["scheduler", "p50 (s)", "p99 (s)", "$/job", "mean slowdown",
         "max slowdown", "fairness", "makespan (s)"],
        [
            [name, m["p50_completion_s"], m["p99_completion_s"],
             m["cost_per_job"], m["mean_slowdown"], m["max_slowdown"],
             m.get("fairness_jain", 1.0), m["makespan_s"]]
            for name, m in schedulers.items()
        ],
    )
    lines = [table]
    fifo, adaptive = schedulers.get("fifo"), schedulers.get("adaptive")
    if fifo and adaptive:
        lines.append(
            "fifo vs adaptive: "
            f"$/job {fifo['cost_per_job']:.4g} -> {adaptive['cost_per_job']:.4g}, "
            f"p99 {fifo['p99_completion_s']:.4g} s -> "
            f"{adaptive['p99_completion_s']:.4g} s "
            "(adaptive trades tail latency for cost)"
        )
    return "\n".join(lines)


@study("figS")
class ServiceSchedulerStudy:
    """service extension: four admission schedulers over one Poisson multi-tenant workload"""

    @staticmethod
    def points(ctx):
        return sweep_points(max_epochs=ctx.max_epochs, seed=ctx.seed)

    aggregate = staticmethod(simulate_schedulers)
    format_report = staticmethod(format_report)
