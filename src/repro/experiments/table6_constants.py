"""Table 6: the measured constants, re-measured from our substrate.

The analytical constants are inputs (taken from the paper), but the
simulator should *reproduce* them when measured from the outside —
e.g. timing an object GET against the simulated S3 should recover
latency + size/bandwidth. This experiment performs those measurements
through the engine and reports constants side by side, acting as a
self-consistency check between `repro.analytics.constants` and
`repro.storage` / `repro.faas` / `repro.iaas`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.constants import TABLE6
from repro.experiments.report import format_table
from repro.faas.runtime import faas_startup_seconds
from repro.iaas.cluster import iaas_startup_seconds
from repro.simulation.commands import Get, Put
from repro.simulation.engine import Engine
from repro.storage.base import ObjectStore
from repro.storage.services import MemcachedStore, S3Store, VMDiskStore
from repro.sweep.study import study
from repro.utils.serialization import SizedPayload

MB = 1024 * 1024


@dataclass
class ConstantRow:
    symbol: str
    configuration: str
    paper_value: float
    measured_value: float
    unit: str


def _measure_bandwidth(store: ObjectStore, nbytes: int = 64 * MB) -> float:
    """Measured effective bandwidth of one large transfer (bytes/s)."""
    engine = Engine()
    done = {}

    def proc():
        yield Put(store, "bw", SizedPayload(np.zeros(8), nbytes))
        start = engine.now
        yield Get(store, "bw")
        done["get_seconds"] = engine.now - start

    engine.spawn(proc(), "bw-probe")
    engine.run()
    seconds = done["get_seconds"] - store.profile.latency_s
    return nbytes / seconds


def _measure_latency(store: ObjectStore) -> float:
    """Measured small-object round trip (seconds)."""
    engine = Engine()
    done = {}

    def proc():
        yield Put(store, "lat", SizedPayload(np.zeros(1), 8))
        start = engine.now
        yield Get(store, "lat")
        done["get_seconds"] = engine.now - start

    engine.spawn(proc(), "lat-probe")
    engine.run()
    return done["get_seconds"]


def run() -> list[ConstantRow]:
    rows = []
    for w, paper in sorted(TABLE6.t_faas.items()):
        rows.append(ConstantRow("t_F(w)", f"w={w}", paper, faas_startup_seconds(w), "s"))
    for w, paper in sorted(TABLE6.t_iaas.items()):
        rows.append(ConstantRow("t_I(w)", f"w={w}", paper, iaas_startup_seconds(w), "s"))

    s3 = S3Store()
    rows.append(
        ConstantRow("B_S3", "Amazon S3", TABLE6.bandwidth_s3 / MB, _measure_bandwidth(s3) / MB, "MB/s")
    )
    rows.append(ConstantRow("L_S3", "Amazon S3", TABLE6.latency_s3, _measure_latency(S3Store()), "s"))

    ebs = VMDiskStore()
    rows.append(
        ConstantRow("B_EBS", "gp2", TABLE6.bandwidth_ebs / MB, _measure_bandwidth(ebs) / MB, "MB/s")
    )

    mc = MemcachedStore(node="cache.t3.medium")
    mc.available_at = 0.0  # skip the startup wait for the micro-probe
    rows.append(
        ConstantRow(
            "B_EC", "cache.t3.medium", TABLE6.bandwidth_ec_t3 / MB, _measure_bandwidth(mc) / MB, "MB/s"
        )
    )
    mc2 = MemcachedStore(node="cache.t3.medium")
    mc2.available_at = 0.0
    rows.append(
        ConstantRow("L_EC", "cache.t3.medium", TABLE6.latency_ec_t3, _measure_latency(mc2), "s")
    )
    return rows


def format_report(rows: list[ConstantRow]) -> str:
    return format_table(
        "Table 6 — constants: paper vs measured-from-substrate",
        ["symbol", "configuration", "paper", "measured", "unit"],
        [[r.symbol, r.configuration, r.paper_value, r.measured_value, r.unit] for r in rows],
        floatfmt="{:.4g}",
    )


@study("table6", kind="direct")
class Table6Study:
    """self-consistency check: analytical constants re-measured from the substrate"""

    aggregate = staticmethod(lambda artifacts: run())
    format_report = staticmethod(format_report)
