"""Figure 15 (Q2): what if the data is hot (resident in a VM)?

All platforms read YFCC100M (for LR) and Cifar10 (for MobileNet) from
an m5a.12xlarge holding the data instead of S3. IaaS peers pull at
near line rate; Lambda workers are bottlenecked by the per-function
FaaS link and the VM's RPC serving path — so IaaS significantly
outperforms FaaS and the hybrid, consistent with Hellerstein et al.'s
"shipping data to code" critique the paper echoes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.casestudy import q2_hot_data
from repro.experiments.fig14_fast_hybrid import _workload_params
from repro.experiments.report import format_table
from repro.sweep.study import study


@dataclass
class HotDataRow:
    workload: str
    system: str
    runtime_s: float
    cost: float


def run(workers_lr: int = 100, workers_mn: int = 10) -> list[HotDataRow]:
    rows = []
    # ADMM converges in ~1 round (10 epochs) on YFCC (Figure 9g shows a
    # short training phase), so hot-data loading dominates end to end.
    lr_params = _workload_params("lr", "yfcc100m", epochs=10.0, rounds_per_epoch=0.1)
    for system, (runtime, cost) in q2_hot_data(lr_params, workers_lr).items():
        rows.append(HotDataRow("lr/yfcc100m", system, runtime, cost))
    mn_params = _workload_params("mobilenet", "cifar10", epochs=30.0, rounds_per_epoch=47.0)
    for system, (runtime, cost) in q2_hot_data(mn_params, workers_mn).items():
        rows.append(HotDataRow("mobilenet/cifar10", system, runtime, cost))
    return rows


def format_report(rows: list[HotDataRow]) -> str:
    return format_table(
        "Figure 15 — Q2: hot data served from an m5a.12xlarge (analytical)",
        ["workload", "system", "runtime(s)", "cost($)"],
        [[r.workload, r.system, r.runtime_s, r.cost] for r in rows],
    )


@study("fig15", kind="direct")
class Fig15Study:
    """Q2 what-if: hot data resident in a serving VM, evaluated analytically"""

    aggregate = staticmethod(lambda artifacts: run())
    format_report = staticmethod(format_report)
