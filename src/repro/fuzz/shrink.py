"""Greedy per-field shrinking of failing scenarios.

A raw counterexample from the fuzzer is a dict of a dozen-plus config
kwargs, most of them irrelevant to the failure. The shrinker walks the
kwargs greedily — for each field, try dropping it (fall back to the
TrainingConfig default), then try each smaller/simpler ladder value —
re-running the *failing invariant only* on every candidate and keeping
any change that still fails. It loops to a fixpoint (a change that
helps can unlock further drops) under a hard evaluation cap, since
every probe is a real training run.

The result is the classic property-based-testing artifact: a minimal
config where every remaining field is load-bearing for the failure,
small enough to read, cheap enough to replay in CI forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import config_validity_error
from repro.fuzz.invariants import Invariant

# Hard cap on invariant evaluations per shrink. Each probe trains at
# least once; the greedy pass over ~15 fields x ~3 candidates twice
# fits comfortably, and a pathological ping-pong cannot run away.
MAX_EVALS = 80

# Simplest-first ladders tried per field *after* the plain drop. A
# probe may only move a field to a strictly earlier (simpler) ladder
# position than its current value — otherwise two failing ladder values
# ping-pong forever, burning the eval budget without converging. Only
# fields whose smaller values genuinely simplify the repro are listed;
# everything else just gets the drop-to-default probe.
_SHRINK_LADDERS: dict[str, tuple] = {
    "workers": (2, 3, 4),
    "max_epochs": (1,),
    "k": (3,),
    "batch_size": (10000,),  # fewer iterations per epoch
    "seed": (3,),
    "lr": (0.01,),
    "data_scale": (500, 200, 80, 40),  # bigger divisor = smaller data
    "mttf_s": (300.0, 600.0),
    "checkpoint_interval": (1,),
    "storage_error_rate": (0.01,),
    "storage_retry_limit": (8, 5),
}

# Fields whose TrainingConfig default is *heavier* than any fuzzed
# value (data_scale=None is the full dataset, max_epochs=60, workers=
# 10): never probe the plain drop, only the ladder — dropping them is
# not a simplification and would make probes explosively slow.
_NO_DROP = frozenset({"data_scale", "max_epochs", "workers"})

# Probe order: least structural first, so noise axes vanish before the
# shrinker starts probing the workload shape itself.
_DROP_ORDER = (
    "cold_start_jitter",
    "straggler_jitter",
    "ma_sync_epochs",
    "batch_scope",
    "checkpoint_interval",
    "storage_retry_limit",
    "storage_error_rate",
    "mttf_s",
    "channel",
    "pattern",
    "protocol",
    "batch_size",
    "lr",
    "seed",
    "max_epochs",
    "k",
    "data_scale",
    "workers",
    "system",
    "algorithm",
    "dataset",
    "model",
)


@dataclass
class ShrinkResult:
    """Outcome of shrinking one counterexample."""

    kwargs: dict
    message: str  # failure message of the *shrunk* config
    evals: int = 0
    shrunk_fields: list[str] = field(default_factory=list)

    @property
    def removed(self) -> int:
        return len(self.shrunk_fields)


def shrink(
    invariant: Invariant,
    kwargs: dict,
    message: str,
    max_evals: int = MAX_EVALS,
) -> ShrinkResult:
    """Minimise ``kwargs`` while ``invariant`` still fails.

    ``message`` is the original failure description; the returned
    result carries the (possibly different) message produced by the
    shrunk config, which is what the corpus stores and replays.
    """
    current = dict(kwargs)
    current_message = message
    evals = 0
    shrunk: list[str] = []

    def still_fails(candidate: dict) -> str | None:
        """Failure message if ``candidate`` also violates the invariant."""
        nonlocal evals
        if evals >= max_evals:
            return None
        if config_validity_error(candidate) is not None:
            return None
        if not invariant.applies(candidate):
            return None
        evals += 1
        try:
            return invariant.check(dict(candidate))
        except Exception as exc:  # a crashing probe is not a shrink
            return f"invariant check crashed: {type(exc).__name__}: {exc}"

    changed = True
    while changed and evals < max_evals:
        changed = False
        fields_present = [f for f in _DROP_ORDER if f in current]
        # Fields outside the known order (future axes) still get probed.
        fields_present += sorted(set(current) - set(_DROP_ORDER))
        for name in fields_present:
            if evals >= max_evals:
                break
            candidates = []
            if name not in _NO_DROP:
                candidates.append({k: v for k, v in current.items() if k != name})
            ladder = _SHRINK_LADDERS.get(name, ())
            position = (
                ladder.index(current[name])
                if current.get(name) in ladder
                else len(ladder)
            )
            for value in ladder[:position]:
                candidates.append({**current, name: value})
            for candidate in candidates:
                failure = still_fails(candidate)
                if failure is not None:
                    if name not in shrunk:
                        shrunk.append(name)
                    current = candidate
                    current_message = failure
                    changed = True
                    break  # greedy: take the first simplification

    return ShrinkResult(
        kwargs=current,
        message=current_message,
        evals=evals,
        shrunk_fields=shrunk,
    )
