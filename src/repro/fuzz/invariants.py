"""The invariant catalog: properties every valid scenario must satisfy.

Each invariant is a self-contained predicate over one scenario's config
kwargs: ``check(kwargs)`` runs whatever trainings it needs and returns
``None`` (holds) or a one-line failure description. Self-containment is
what makes shrinking honest — the shrinker re-runs *only* the failing
invariant on each candidate, so a check may not depend on state left
behind by another.

The catalog encodes the repository's load-bearing contracts:

* ``completes`` — every valid config trains to completion with a
  consistent evaluation log (no deadlock, no lost or duplicated
  evaluation, positive clocks and dollars).
* ``determinism_under_rerun`` — two in-process runs of one config are
  bit-identical (catches hidden global state: module caches, GC-order
  dependencies, shared RNG objects).
* ``replay_matches_exact`` — a recorded trace replayed through the
  replay substrate reproduces the exact run bit for bit (PR 3's
  contract, over the whole sampled space instead of golden points).
* ``fault_invariance`` — stripping the fault axes changes clocks and
  dollars, never a loss float; chaos only ever *adds* time and cost
  (the sound core of "monotone in crash rate": pointwise monotonicity
  across different crash schedules is not a theorem — two schedules
  are not nested — but clean <= faulted always is).
* ``stat_sibling_invariance`` — flipping a systems axis (platform,
  channel, pattern, straggler jitter) off a BSP config leaves the
  sorted (epoch, worker, loss) trajectory bit-identical: the
  canonical-rank-order-fold guarantee that underwrites two-phase
  sweeps.
* ``sweep_roundtrip`` — a two-point sweep produces byte-identical
  artifacts pooled vs serial, and resuming it immediately afterwards
  runs zero points (the artifact layer's "zero pending after resume").

NaN losses are tolerated everywhere (a diverging learning rate is a
statistical outcome, not a bug) but must be *deterministically* NaN:
trajectory comparisons treat NaN == NaN.
"""

from __future__ import annotations

import math
import tempfile
from dataclasses import dataclass
from typing import Callable

from repro.core.config import TrainingConfig, config_validity_error
from repro.core.driver import train
from repro.errors import ReproError
from repro.faults import unit_draw
from repro.substrate import RecordingSubstrate, ReplaySubstrate

#: TrainingConfig fields that make up the fault plane. Stripping them
#: from a scenario yields its fault-free twin.
FAULT_FIELDS = (
    "crash_rate",
    "mttf_s",
    "storage_error_rate",
    "storage_retry_limit",
    "storage_retry_base_s",
    "cold_start_jitter",
    "checkpoint_interval",
)


@dataclass(frozen=True)
class Invariant:
    """One checkable property of the TrainingConfig x FaultPlan space."""

    name: str
    description: str
    #: Campaign-level sampling probability. ``completes`` always runs;
    #: the multi-training invariants are dialled down so a budget buys
    #: breadth first and each extra property still gets dozens of
    #: scenarios per 200-budget campaign.
    probability: float
    applies: Callable[[dict], bool]
    check: Callable[[dict], "str | None"]

    def gated_on(self, seed: int, index: int) -> bool:
        """Deterministically decide whether scenario ``index`` runs this.

        Pure function of (campaign seed, invariant name, index): the
        same campaign always checks the same properties on the same
        scenarios, so a campaign report is reproducible from its seed.
        """
        if self.probability >= 1.0:
            return True
        return unit_draw(seed, f"invariant-gate/{self.name}", index) < self.probability


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------
def _config(kwargs: dict) -> TrainingConfig:
    return TrainingConfig(**kwargs)


def _floats_equal(a: float, b: float) -> bool:
    return a == b or (math.isnan(a) and math.isnan(b))


def _trajectory(result) -> list[tuple[float, int, float]]:
    return [(p.epoch, p.worker, float(p.loss)) for p in result.history]


def _trajectories_equal(a, b) -> bool:
    if len(a) != len(b):
        return False
    return all(
        ea == eb and wa == wb and _floats_equal(la, lb)
        for (ea, wa, la), (eb, wb, lb) in zip(a, b)
    )


def _describe_mismatch(what: str, a, b) -> str:
    return f"{what} differ: {a!r} vs {b!r}"


def _compare_results(first, second, what: str) -> str | None:
    """Bit-level equality of two RunResults' observable surface."""
    if not _floats_equal(first.duration_s, second.duration_s):
        return _describe_mismatch(f"{what}: duration_s", first.duration_s, second.duration_s)
    if not _floats_equal(first.cost_total, second.cost_total):
        return _describe_mismatch(f"{what}: cost_total", first.cost_total, second.cost_total)
    if not _floats_equal(first.final_loss, second.final_loss):
        return _describe_mismatch(f"{what}: final_loss", first.final_loss, second.final_loss)
    if first.converged != second.converged:
        return _describe_mismatch(f"{what}: converged", first.converged, second.converged)
    if first.epochs != second.epochs or first.comm_rounds != second.comm_rounds:
        return _describe_mismatch(
            f"{what}: epochs/rounds",
            (first.epochs, first.comm_rounds),
            (second.epochs, second.comm_rounds),
        )
    if not _trajectories_equal(_trajectory(first), _trajectory(second)):
        return f"{what}: loss trajectories diverge"
    return None


def _is_bsp(kwargs: dict) -> bool:
    return kwargs.get("protocol", "bsp") == "bsp"


def _timing_coupled(kwargs: dict) -> bool:
    return _config(kwargs).timing_coupled


def _has_faults(kwargs: dict) -> bool:
    return any(kwargs.get(name) for name in ("crash_rate", "mttf_s", "storage_error_rate"))


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------
def check_completes(kwargs: dict) -> str | None:
    try:
        result = train(_config(kwargs))
    except ReproError as exc:
        return f"valid config failed to train: {type(exc).__name__}: {exc}"
    trajectory = _trajectory(result)
    if not trajectory:
        return "run completed with an empty evaluation history"
    pairs = [(epoch, worker) for epoch, worker, _ in trajectory]
    if len(set(pairs)) != len(pairs):
        dupes = sorted({p for p in pairs if pairs.count(p) > 1})
        return f"duplicated evaluations for (epoch, worker) {dupes[:4]}"
    workers = kwargs.get("workers", 10)
    missing = set(range(workers)) - {worker for _, worker, _ in trajectory}
    if missing:
        return f"lost evaluations: rank(s) {sorted(missing)} never recorded a loss"
    if not result.duration_s > 0:
        return f"non-positive duration {result.duration_s!r}"
    if not result.cost_total > 0:
        return f"non-positive cost {result.cost_total!r}"
    if result.meta["events"]["crashes"] and not result.meta["events"]["reincarnations"] and _config(kwargs).platform == "faas":
        return "FaaS crashes occurred but no successor was ever spawned"
    return None


def check_determinism_under_rerun(kwargs: dict) -> str | None:
    first = train(_config(kwargs))
    second = train(_config(kwargs))
    return _compare_results(first, second, "rerun")


def check_replay_matches_exact(kwargs: dict) -> str | None:
    recording = RecordingSubstrate()
    exact = train(_config(kwargs), substrate=recording)
    replayed = train(_config(kwargs), substrate=ReplaySubstrate(recording.trace))
    return _compare_results(exact, replayed, "replay-vs-exact")


def check_fault_invariance(kwargs: dict) -> str | None:
    clean_kwargs = {k: v for k, v in kwargs.items() if k not in FAULT_FIELDS}
    faulted = train(_config(kwargs))
    clean = train(_config(clean_kwargs))
    faulted_traj = sorted(_trajectory(faulted), key=lambda p: (p[0], p[1]))
    clean_traj = sorted(_trajectory(clean), key=lambda p: (p[0], p[1]))
    if not _trajectories_equal(faulted_traj, clean_traj):
        return (
            "fault axes changed the loss trajectory "
            f"({len(faulted_traj)} vs {len(clean_traj)} evaluations)"
        )
    if faulted.duration_s < clean.duration_s:
        return (
            "chaos made the run faster: faulted duration "
            f"{faulted.duration_s} < clean {clean.duration_s}"
        )
    if faulted.cost_total < clean.cost_total:
        return (
            "chaos made the run cheaper: faulted cost "
            f"{faulted.cost_total} < clean {clean.cost_total}"
        )
    return None


def sibling_kwargs(kwargs: dict) -> dict | None:
    """A valid config sharing ``kwargs``' statistical fingerprint.

    Preference order: flip the *platform* (lambdaml <-> pytorch — the
    strongest cross-check, FaaS patterns vs the IaaS collective), then
    a FaaS channel or pattern flip, then the straggler-jitter flip that
    is valid everywhere. Returns ``None`` only if every candidate is
    somehow invalid (never, in practice).
    """
    system = kwargs.get("system", "lambdaml")
    candidates: list[dict] = []
    if system in ("lambdaml", "pytorch"):
        # Drop channel/pattern (FaaS-only axes) and the whole fault
        # plane from a platform flip: fault axes are trajectory-neutral
        # by fault_invariance, and keeping a FaaS-scale MTTF on an IaaS
        # sibling would chain restart-from-scratch recoveries forever.
        flipped = {k: v for k, v in kwargs.items() if k not in FAULT_FIELDS}
        flipped["system"] = "pytorch" if system == "lambdaml" else "lambdaml"
        if flipped["system"] == "pytorch":
            flipped.pop("channel", None)
            flipped.pop("pattern", None)
        candidates.append(flipped)
    if system == "lambdaml":
        channel = kwargs.get("channel", "s3")
        candidates.append({**kwargs, "channel": "memcached" if channel == "s3" else "s3"})
        pattern = kwargs.get("pattern", "allreduce")
        candidates.append(
            {**kwargs, "pattern": "scatterreduce" if pattern == "allreduce" else "allreduce"}
        )
    jitter = kwargs.get("straggler_jitter", 0.05)
    candidates.append({**kwargs, "straggler_jitter": 0.2 if jitter != 0.2 else 0.0})
    for candidate in candidates:
        if candidate != kwargs and config_validity_error(candidate) is None:
            return candidate
    return None


def check_stat_sibling_invariance(kwargs: dict) -> str | None:
    sibling = sibling_kwargs(kwargs)
    if sibling is None:
        return None  # no valid sibling to compare against
    base = train(_config(kwargs))
    other = train(_config(sibling))
    base_traj = sorted(_trajectory(base), key=lambda p: (p[0], p[1]))
    other_traj = sorted(_trajectory(other), key=lambda p: (p[0], p[1]))
    if not _trajectories_equal(base_traj, other_traj):
        flipped = sorted(
            name
            for name in set(sibling) | set(kwargs)
            if sibling.get(name) != kwargs.get(name)
        )
        return (
            f"flipping systems axes {flipped} changed the loss trajectory — "
            "aggregation is not folding in canonical rank order"
        )
    return None


def check_sweep_roundtrip(kwargs: dict) -> str | None:
    from repro.sweep.grid import SweepPoint
    from repro.sweep.orchestrator import run_sweep

    sibling = sibling_kwargs(kwargs)
    points = [SweepPoint(experiment="fuzz", label="base", config_kwargs=dict(kwargs))]
    if sibling is not None:
        points.append(
            SweepPoint(experiment="fuzz", label="sibling", config_kwargs=sibling)
        )

    def strip_meta(artifact: dict) -> dict:
        return {key: value for key, value in artifact.items() if key != "meta"}

    with tempfile.TemporaryDirectory(prefix="repro-fuzz-sweep-") as tmp:
        serial = run_sweep(points, out_dir=f"{tmp}/serial", jobs=1)
        pooled = run_sweep(points, out_dir=f"{tmp}/pool", jobs=2)
        if pooled.failed:
            return f"pooled sweep lost {len(pooled.failed)} point(s): {pooled.failed[0]['reason']}"
        serial_artifacts = [strip_meta(a) for a in serial.artifacts]
        pooled_artifacts = [strip_meta(a) for a in pooled.artifacts]
        if serial_artifacts != pooled_artifacts:
            return "pooled sweep artifacts differ from serial ones"
        resumed = run_sweep(points, out_dir=f"{tmp}/serial", jobs=1, resume=True)
        if resumed.ran != 0 or resumed.skipped != len(points):
            return (
                "resume of a completed sweep was not a no-op: "
                f"ran {resumed.ran}, skipped {resumed.skipped} of {len(points)}"
            )
        if [strip_meta(a) for a in resumed.artifacts] != serial_artifacts:
            return "resumed artifacts differ from the originals"
    return None


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------
INVARIANTS: dict[str, Invariant] = {
    inv.name: inv
    for inv in (
        Invariant(
            name="completes",
            description="valid configs train to completion with a consistent "
            "evaluation log and positive clocks and dollars",
            probability=1.0,
            applies=lambda kwargs: True,
            check=check_completes,
        ),
        Invariant(
            name="determinism_under_rerun",
            description="two in-process runs of one config are bit-identical",
            probability=0.25,
            applies=lambda kwargs: True,
            check=check_determinism_under_rerun,
        ),
        Invariant(
            name="replay_matches_exact",
            description="a recorded trace replays bit-identically to the "
            "exact run (BSP only; timing-coupled configs have no trace)",
            probability=0.3,
            applies=lambda kwargs: not _timing_coupled(kwargs),
            check=check_replay_matches_exact,
        ),
        Invariant(
            name="fault_invariance",
            description="stripping the fault axes never changes a loss float, "
            "and chaos only adds time and cost",
            probability=0.6,
            applies=lambda kwargs: _is_bsp(kwargs) and _has_faults(kwargs),
            check=check_fault_invariance,
        ),
        Invariant(
            name="stat_sibling_invariance",
            description="flipping a systems axis (platform/channel/pattern/"
            "stragglers) leaves the loss trajectory bit-identical",
            probability=0.45,
            applies=lambda kwargs: not _timing_coupled(kwargs),
            check=check_stat_sibling_invariance,
        ),
        Invariant(
            name="sweep_roundtrip",
            description="pooled and serial sweeps produce byte-identical "
            "artifacts and a finished sweep resumes with zero pending points",
            probability=0.06,
            applies=lambda kwargs: not _timing_coupled(kwargs) and not _has_faults(kwargs),
            check=check_sweep_roundtrip,
        ),
    )
}
