"""The regression corpus: shrunk counterexamples that replay forever.

Every failure a fuzz campaign finds is shrunk and saved as one small
JSON file. The corpus is the campaign's durable output: tier-1 tests
replay every entry on every run, so a bug the fuzzer caught once can
never silently return — the corpus entry *is* the regression test.

An entry records the shrunk config kwargs, the invariant they violated
and the original failure context. Replaying an entry re-runs its
invariant on its kwargs and expects it to **hold**: entries enter the
corpus when a bug is found, and the fix that closes the bug turns the
entry green permanently. A red replay means the old bug is back (or
was never fixed).

Entries are content-light on purpose — kwargs, not artifacts — because
the whole pipeline is deterministic: the kwargs alone reproduce every
byte of the original failure.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.errors import FuzzError
from repro.fuzz.invariants import INVARIANTS

CORPUS_SCHEMA_VERSION = 1

#: The tree-relative corpus replayed by tier-1 (tests/test_fuzz_corpus.py).
DEFAULT_CORPUS_DIR = (
    Path(__file__).resolve().parents[3] / "tests" / "data" / "fuzz_corpus"
)


@dataclass(frozen=True)
class CorpusEntry:
    """One shrunk counterexample, pinned for eternal replay."""

    invariant: str
    config_kwargs: dict
    scenario_id: str  # "seed:index" of the campaign scenario that found it
    message: str  # failure description at save time
    shrunk_fields: list[str] = field(default_factory=list)
    schema: int = CORPUS_SCHEMA_VERSION

    @property
    def name(self) -> str:
        return f"{self.invariant}-{self.scenario_id.replace(':', '-')}"


def save_entry(corpus_dir: str | os.PathLike, entry: CorpusEntry) -> Path:
    """Write ``entry`` atomically as ``<invariant>-<seed>-<index>.json``."""
    directory = Path(corpus_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{entry.name}.json"
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(asdict(entry), indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def load_entry(path: str | os.PathLike) -> CorpusEntry:
    path = Path(path)
    try:
        raw = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise FuzzError(f"unreadable corpus entry {path}: {exc}") from exc
    schema = raw.get("schema")
    if schema != CORPUS_SCHEMA_VERSION:
        raise FuzzError(
            f"corpus entry {path.name} has schema {schema!r} "
            f"(this engine reads schema {CORPUS_SCHEMA_VERSION})"
        )
    try:
        return CorpusEntry(
            invariant=raw["invariant"],
            config_kwargs=dict(raw["config_kwargs"]),
            scenario_id=raw["scenario_id"],
            message=raw["message"],
            shrunk_fields=list(raw.get("shrunk_fields", [])),
        )
    except KeyError as exc:
        raise FuzzError(f"corpus entry {path.name} is missing field {exc}") from exc


def load_corpus(corpus_dir: str | os.PathLike = DEFAULT_CORPUS_DIR) -> list[CorpusEntry]:
    """All entries of a corpus directory, sorted by filename."""
    directory = Path(corpus_dir)
    if not directory.is_dir():
        return []
    return [load_entry(path) for path in sorted(directory.glob("*.json"))]


def replay_entry(entry: CorpusEntry) -> str | None:
    """Re-run an entry's invariant; ``None`` means the old bug stays dead.

    A non-``None`` return is the failure message — the regression the
    corpus exists to catch.
    """
    invariant = INVARIANTS.get(entry.invariant)
    if invariant is None:
        raise FuzzError(
            f"corpus entry {entry.name} references unknown invariant "
            f"{entry.invariant!r}; known: {sorted(INVARIANTS)}"
        )
    if not invariant.applies(entry.config_kwargs):
        raise FuzzError(
            f"corpus entry {entry.name}: invariant {entry.invariant!r} "
            "no longer applies to the stored kwargs (config semantics "
            "drifted; regenerate or retire the entry)"
        )
    return invariant.check(dict(entry.config_kwargs))
