"""Scenario fuzzer + chaos suite for the LambdaML reproduction.

Seeded property-based testing over the full TrainingConfig x FaultPlan
space: :mod:`~repro.fuzz.space` samples valid scenarios content-
addressably (``"seed:index"`` is a full repro), :mod:`~repro.fuzz
.invariants` is the property catalog, :mod:`~repro.fuzz.runner` runs
budgeted campaigns over the resilient process pool, :mod:`~repro.fuzz
.shrink` minimises counterexamples and :mod:`~repro.fuzz.corpus`
persists them as a regression corpus that tier-1 replays forever.
"""

from repro.fuzz.corpus import (
    CORPUS_SCHEMA_VERSION,
    DEFAULT_CORPUS_DIR,
    CorpusEntry,
    load_corpus,
    load_entry,
    replay_entry,
    save_entry,
)
from repro.fuzz.invariants import FAULT_FIELDS, INVARIANTS, Invariant, sibling_kwargs
from repro.fuzz.runner import (
    PROCESS_SURVIVES,
    CampaignResult,
    CampaignTask,
    Finding,
    plan_campaign,
    run_campaign,
)
from repro.fuzz.shrink import MAX_EVALS, ShrinkResult, shrink
from repro.fuzz.space import MAX_ATTEMPTS, Scenario, ScenarioSpace

__all__ = [
    "CORPUS_SCHEMA_VERSION",
    "DEFAULT_CORPUS_DIR",
    "FAULT_FIELDS",
    "INVARIANTS",
    "MAX_ATTEMPTS",
    "MAX_EVALS",
    "PROCESS_SURVIVES",
    "CampaignResult",
    "CampaignTask",
    "CorpusEntry",
    "Finding",
    "Invariant",
    "Scenario",
    "ScenarioSpace",
    "ShrinkResult",
    "load_corpus",
    "load_entry",
    "plan_campaign",
    "replay_entry",
    "run_campaign",
    "save_entry",
    "shrink",
    "sibling_kwargs",
]
