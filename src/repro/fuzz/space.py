"""The scenario space: seeded sampling of valid TrainingConfig kwargs.

Property-based fuzzing needs two things from its input generator:

* **Content-addressed scenarios.** There is no RNG object anywhere.
  Every decision is a pure function of ``sha256(f"{seed}:{stream}:0")``
  via :func:`repro.faults.unit_draw`, so scenario ``"0:137"`` is the
  same dict of config kwargs on every host, every Python, every run —
  a failure report containing only the scenario id is a full repro.
* **A high valid-sample rate.** The legal config space is ragged
  (EM is kmeans-only, ADMM convex-only, ASP is a FaaS design point,
  crash faults are BSP FaaS/IaaS-only, Lambda memory bounds W x
  dataset...). Sampling axes independently and rejecting would waste
  most draws, so the generator *conditions* each axis on the ones
  already drawn and keeps :func:`repro.core.config
  .config_validity_error` only as the backstop: any sample it still
  rejects is redrawn on a fresh attempt stream (the attempt number is
  part of every stream name, so retries never replay the rejected
  draws).

Value ladders are deliberately small and tuned for wall-clock speed
(scaled-down datasets, 1-2 epoch caps): the point of a fuzz scenario
is to cross systems x statistics x fault axes, not to converge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import config_validity_error
from repro.errors import FuzzError
from repro.faults import unit_draw

# Redraw budget per scenario index. Constructive conditioning keeps the
# expected number of attempts close to 1; the cap only guards against a
# future axis making some corner of the space accidentally empty.
MAX_ATTEMPTS = 32

# Speed-tuned dataset down-scaling ladders (divisors). higgs is 11M
# rows x 28 dense features, rcv1 697k x 47k sparse: both ladders land
# a single scenario training in well under a second of wall clock.
_DATA_SCALES = {"higgs": (200, 500), "rcv1": (40, 80)}


def _pick(u: float, options):
    """Map one unit draw onto a finite ladder (uniform over options)."""
    return options[min(int(u * len(options)), len(options) - 1)]


@dataclass(frozen=True)
class Scenario:
    """One sampled point of the TrainingConfig x FaultPlan space.

    ``scenario_id`` alone reproduces it: ``ScenarioSpace(seed)
    .scenario(index)`` re-derives byte-identical ``config_kwargs``.
    """

    seed: int
    index: int
    attempt: int  # which redraw produced the valid sample (usually 0)
    config_kwargs: dict = field(default_factory=dict)

    @property
    def scenario_id(self) -> str:
        return f"{self.seed}:{self.index}"


class ScenarioSpace:
    """Seeded, deterministic sampler over valid training scenarios."""

    def __init__(self, seed: int) -> None:
        self.seed = seed

    # ------------------------------------------------------------------
    def scenario(self, index: int) -> Scenario:
        """The ``index``-th scenario of this seed (rejection-sampled)."""
        for attempt in range(MAX_ATTEMPTS):
            kwargs = self._draw(index, attempt)
            if config_validity_error(kwargs) is None:
                return Scenario(
                    seed=self.seed, index=index, attempt=attempt,
                    config_kwargs=kwargs,
                )
        raise FuzzError(
            f"scenario {self.seed}:{index}: no valid sample in "
            f"{MAX_ATTEMPTS} attempts (the conditioned sampler should "
            "almost never reject; an axis ladder is probably broken)"
        )

    def scenarios(self, budget: int):
        """The first ``budget`` scenarios, in index order."""
        return [self.scenario(index) for index in range(budget)]

    @classmethod
    def from_id(cls, scenario_id: str) -> Scenario:
        """Re-derive a scenario from its ``"seed:index"`` content address."""
        try:
            seed_text, index_text = scenario_id.split(":")
            seed, index = int(seed_text), int(index_text)
        except ValueError as exc:
            raise FuzzError(
                f"bad scenario id {scenario_id!r}; expected 'seed:index'"
            ) from exc
        return cls(seed).scenario(index)

    # ------------------------------------------------------------------
    def _draw(self, index: int, attempt: int) -> dict:
        """One conditioned sample of config kwargs (pure; may be invalid)."""

        def u(axis: str) -> float:
            return unit_draw(self.seed, f"scenario/{index}/{attempt}/{axis}", 0)

        kwargs: dict = {}

        # -- workload: model -> dataset -> algorithm -------------------
        model = _pick(u("model"), ("lr", "lr", "svm", "kmeans"))
        if model == "kmeans":
            dataset, algorithm = "higgs", "em"
            kwargs["k"] = _pick(u("k"), (3, 5, 10))
        else:
            dataset = _pick(u("dataset"), ("higgs", "higgs", "rcv1"))
            algorithm = _pick(u("algorithm"), ("ma_sgd", "ma_sgd", "ga_sgd", "admm"))
        kwargs.update(model=model, dataset=dataset, algorithm=algorithm)

        # -- platform / system / protocol ------------------------------
        systems = ["lambdaml", "lambdaml", "pytorch"]
        if algorithm == "ga_sgd":
            systems.append("hybridps")  # the PS architecture is GA-only
        system = _pick(u("system"), tuple(systems))
        kwargs["system"] = system
        protocol = "bsp"
        if system == "lambdaml" and model != "kmeans" and u("protocol") < 0.15:
            protocol = "asp"  # SIREN-style S-ASP: FaaS SGD only
            kwargs["protocol"] = protocol

        # -- shape: workers / batch / scale ----------------------------
        if system == "pytorch":
            workers = _pick(u("workers"), (2, 3, 4, 6, 8))
        else:
            # One higgs partition only fits a 3 GB Lambda from W>=3;
            # start at 4 so the validity backstop almost never fires.
            workers = _pick(u("workers"), (4, 6, 8))
        kwargs["workers"] = workers
        kwargs["batch_size"] = _pick(u("batch_size"), (2048, 4096, 10000))
        if u("batch_scope") < 0.25:
            kwargs["batch_scope"] = "per_worker"
        kwargs["data_scale"] = _pick(u("data_scale"), _DATA_SCALES[dataset])
        # GA-SGD synchronises every iteration (long simulated runs) and
        # ADMM burns admm_scans shard scans per round (heavy numpy):
        # one epoch crosses all the systems axes just as well.
        if algorithm in ("ga_sgd", "admm"):
            kwargs["max_epochs"] = 1
        else:
            kwargs["max_epochs"] = _pick(u("max_epochs"), (1, 2, 2))

        # -- statistics: lr / seed / MA cadence ------------------------
        # SVM's hinge subgradients diverge fast on unnormalised HIGGS at
        # lr 0.1; divergence (NaN losses) is a legitimate statistical
        # outcome the invariants tolerate, but a space full of it
        # exercises nothing else.
        kwargs["lr"] = _pick(
            u("lr"), (0.01, 0.05) if model == "svm" else (0.01, 0.05, 0.1)
        )
        kwargs["seed"] = _pick(u("seed"), (3, 7, 11, 20210620))
        if algorithm == "ma_sgd" and u("ma_sync_epochs") < 0.3:
            kwargs["ma_sync_epochs"] = 2

        # -- systems axes: channel / pattern / stragglers --------------
        if system == "lambdaml":
            # dynamodb is excluded: large linear models brush its 400 KB
            # item limit, which is a modelled *feature*, not a bug.
            kwargs["channel"] = _pick(u("channel"), ("s3", "memcached", "redis"))
            kwargs["pattern"] = _pick(u("pattern"), ("allreduce", "scatterreduce"))
        kwargs["straggler_jitter"] = _pick(u("straggler_jitter"), (0.0, 0.05, 0.2))

        # -- fault plane ----------------------------------------------
        # Crash faults are defined for BSP FaaS/IaaS only; storage
        # errors compose anywhere. ADMM is excluded from crash
        # injection: its rounds (admm_scans full shard scans) are long
        # against any MTTF that still produces crashes, which livelocks
        # recovery into re-executing the same round — the paper's own
        # unsupported long-iteration regime, modelled separately by the
        # FunctionTimeoutError path. Retry limits are conditioned on
        # the error rate so exhaustion stays a deliberately-exercised
        # path (see tests) rather than random campaign noise: at these
        # (rate, limit) pairs P(one op exhausts) <= ~1e-8.
        crashes = (
            protocol == "bsp"
            and system in ("lambdaml", "pytorch")
            and algorithm != "admm"
        )
        if crashes and u("crash") < 0.55:
            if system == "lambdaml":
                # GA-SGD's per-iteration sync stretches simulated time
                # ~10x, so its hazard ladder stretches with it — the
                # crash *count* per run stays comparable.
                mttfs = (300.0, 600.0) if algorithm == "ga_sgd" else (90.0, 180.0, 300.0)
                kwargs["mttf_s"] = _pick(u("mttf"), mttfs)
                kwargs["checkpoint_interval"] = _pick(u("checkpoint_interval"), (1, 2, 4))
                if u("cold_start_jitter") < 0.5:
                    kwargs["cold_start_jitter"] = 0.3
            else:
                # IaaS recovery is restart-from-scratch: MTTF must sit
                # well above the longest simulated job at these scales
                # (~800 s) or restarts chain indefinitely.
                kwargs["mttf_s"] = _pick(u("mttf"), (1800.0, 3600.0))
        if u("storage_errors") < 0.4:
            rate = _pick(u("storage_error_rate"), (0.01, 0.05))
            kwargs["storage_error_rate"] = rate
            kwargs["storage_retry_limit"] = _pick(
                u("storage_retry_limit"), (3, 5) if rate == 0.01 else (5, 8)
            )
        return kwargs
