"""The fuzz campaign runner: budgeted, seeded, parallel, self-shrinking.

A campaign is a pure function of ``(seed, budget)``: scenario ``index``
always samples the same config kwargs and always runs the same gated
subset of the invariant catalog, so two hosts running the same campaign
check exactly the same properties and find exactly the same failures.

Scenario checking fans out over the sweep layer's resilient process
pool — a fuzz worker that dies (OOM-killed probing a memory-envelope
corner, segfaulting in native code) is itself a *finding*, recorded
against the synthetic ``process_survives`` invariant, and the campaign
keeps going. Shrinking runs serially in the parent afterwards: probes
reuse the failing invariant's check, and the shrunk counterexample is
saved to the regression corpus (unless the corpus dir is ``None``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.fuzz.corpus import CorpusEntry, save_entry
from repro.fuzz.invariants import INVARIANTS
from repro.fuzz.shrink import MAX_EVALS, ShrinkResult, shrink
from repro.fuzz.space import ScenarioSpace

#: Synthetic invariant name for "the worker process itself survived".
PROCESS_SURVIVES = "process_survives"


@dataclass(frozen=True)
class CampaignTask:
    """One scenario plus the invariant names gated on for it (picklable)."""

    index: int
    scenario_id: str
    config_kwargs: dict
    invariants: tuple[str, ...]


@dataclass
class Finding:
    """One invariant violation (pre- and post-shrink views)."""

    scenario_id: str
    invariant: str
    message: str
    config_kwargs: dict
    shrunk_kwargs: dict | None = None
    shrunk_message: str | None = None
    shrunk_fields: list[str] = field(default_factory=list)
    shrink_evals: int = 0
    corpus_path: str | None = None

    def describe(self) -> str:
        kwargs = self.shrunk_kwargs if self.shrunk_kwargs is not None else self.config_kwargs
        message = self.shrunk_message or self.message
        return f"{self.scenario_id} {self.invariant}: {message}\n    repro kwargs: {kwargs}"


@dataclass
class CampaignResult:
    seed: int
    budget: int
    scenarios: int = 0
    checks: dict = field(default_factory=dict)  # invariant name -> runs
    findings: list[Finding] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        checked = sum(self.checks.values())
        verdict = (
            "no invariant violations"
            if self.ok
            else f"{len(self.findings)} invariant violation(s)"
        )
        return (
            f"fuzz campaign seed={self.seed}: {self.scenarios} scenarios, "
            f"{checked} checks ({', '.join(f'{k}={v}' for k, v in sorted(self.checks.items()))}) "
            f"in {self.duration_s:.1f}s — {verdict}"
        )


def plan_campaign(seed: int, budget: int) -> list[CampaignTask]:
    """The full task list of a campaign (deterministic in seed/budget)."""
    space = ScenarioSpace(seed)
    tasks = []
    for scenario in space.scenarios(budget):
        gated = tuple(
            name
            for name, inv in INVARIANTS.items()
            if inv.applies(scenario.config_kwargs)
            and inv.gated_on(seed, scenario.index)
        )
        tasks.append(
            CampaignTask(
                index=scenario.index,
                scenario_id=scenario.scenario_id,
                config_kwargs=scenario.config_kwargs,
                invariants=gated,
            )
        )
    return tasks


def _check_task(task: CampaignTask) -> tuple[int, list[tuple[str, str]]]:
    """Run one scenario's gated invariants (pool-side; must be picklable)."""
    failures = []
    for name in task.invariants:
        try:
            message = INVARIANTS[name].check(dict(task.config_kwargs))
        except Exception as exc:
            message = f"invariant check crashed: {type(exc).__name__}: {exc}"
        if message is not None:
            failures.append((name, message))
    return task.index, failures


def run_campaign(
    budget: int,
    seed: int = 0,
    workers: int = 1,
    corpus_dir=None,
    shrink_failures: bool = True,
    shrink_max_evals: int = MAX_EVALS,
    progress=None,
) -> CampaignResult:
    """Fuzz ``budget`` scenarios of ``seed``; shrink and record failures.

    ``workers > 1`` fans scenarios out over the resilient process pool;
    a dying worker becomes a ``process_survives`` finding instead of
    hanging or aborting the campaign. Findings are shrunk serially in
    this process and (when ``corpus_dir`` is set) saved as regression
    corpus entries.
    """
    say = progress or (lambda message: None)
    started = time.monotonic()
    tasks = plan_campaign(seed, budget)
    result = CampaignResult(seed=seed, budget=budget, scenarios=len(tasks))
    for task in tasks:
        for name in task.invariants:
            result.checks[name] = result.checks.get(name, 0) + 1

    by_index = {task.index: task for task in tasks}
    raw_failures: list[tuple[CampaignTask, str, str]] = []

    def on_result(payload) -> None:
        index, failures = payload
        task = by_index[index]
        for name, message in failures:
            raw_failures.append((task, name, message))
            say(f"[{index + 1}/{len(tasks)}] {task.scenario_id} FAILED {name}: {message}")
        if not failures:
            say(f"[{index + 1}/{len(tasks)}] {task.scenario_id} ok ({len(task.invariants)} checks)")

    if workers <= 1:
        for task in tasks:
            on_result(_check_task(task))
    else:
        from repro.sweep.orchestrator import _run_resilient_pool

        def on_dead(task: CampaignTask, reason: str) -> None:
            result.checks[PROCESS_SURVIVES] = result.checks.get(PROCESS_SURVIVES, 0) + 1
            raw_failures.append((task, PROCESS_SURVIVES, reason))
            say(f"[{task.index + 1}/{len(tasks)}] {task.scenario_id} FAILED {PROCESS_SURVIVES}: {reason}")

        _run_resilient_pool(tasks, min(workers, len(tasks)), on_result, on_dead, fn=_check_task)

    # Order findings by scenario for a stable report regardless of pool
    # scheduling; the pool already preserves nothing else.
    raw_failures.sort(key=lambda item: (item[0].index, item[1]))

    for task, name, message in raw_failures:
        finding = Finding(
            scenario_id=task.scenario_id,
            invariant=name,
            message=message,
            config_kwargs=dict(task.config_kwargs),
        )
        # A dead process has no in-process check to probe against, so
        # process_survives findings are recorded un-shrunk.
        if shrink_failures and name in INVARIANTS:
            say(f"shrinking {task.scenario_id} {name}...")
            shrunk: ShrinkResult = shrink(
                INVARIANTS[name], task.config_kwargs, message,
                max_evals=shrink_max_evals,
            )
            finding.shrunk_kwargs = shrunk.kwargs
            finding.shrunk_message = shrunk.message
            finding.shrunk_fields = shrunk.shrunk_fields
            finding.shrink_evals = shrunk.evals
            say(
                f"shrunk {task.scenario_id} {name}: removed "
                f"{shrunk.removed} field(s) in {shrunk.evals} evals -> {shrunk.kwargs}"
            )
        if corpus_dir is not None and name in INVARIANTS:
            entry = CorpusEntry(
                invariant=name,
                config_kwargs=dict(
                    finding.shrunk_kwargs
                    if finding.shrunk_kwargs is not None
                    else finding.config_kwargs
                ),
                scenario_id=task.scenario_id,
                message=finding.shrunk_message or finding.message,
                shrunk_fields=list(finding.shrunk_fields),
            )
            finding.corpus_path = str(save_entry(corpus_dir, entry))
            say(f"saved counterexample to {finding.corpus_path}")
        result.findings.append(finding)

    result.duration_s = time.monotonic() - started
    return result
