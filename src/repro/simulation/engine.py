"""The discrete-event engine.

Processes are Python generators yielding :mod:`repro.simulation.commands`.
The engine keeps a single priority queue of `(time, seq, closure)`
events; data effects (storage writes, collective reductions) are applied
at the simulated *completion* time of their operation, so reads that
complete earlier never observe later writes. All scheduling is
deterministic: ties are broken by a monotonically increasing sequence
number.

Complexity guarantees (the engine must scale to runs with hundreds of
workers, so these are load-bearing — see ``benchmarks/
bench_engine_microbench.py``):

* Storage wake-ups are event-driven, not scan-driven. Waiters are
  registered in dict-keyed registries (``key -> waiters`` for
  :class:`WaitKey`, ``prefix -> waiters`` for :class:`WaitKeyCount`),
  so a completed put wakes exactly the affected waiters: O(1) lookup
  for the exact key plus O(len(key)) dict probes to find registered
  prefixes the key falls under, plus O(waiters on that prefix) integer
  comparisons. No put ever rescans unrelated waiters or stored keys.
* Prefix counts come from the store's live counters (O(1) for a
  registered prefix, O(log n) bisect otherwise) and key listings from
  its sorted index (O(log n + matches)) — see
  :mod:`repro.storage.base`.
* Wake-up order is the waiters' registration order (tracked by a
  dedicated sequence counter), matching what the historical linear
  scan produced, so traces are reproducible across engine versions.
* Poll billing for a satisfied waiter is one batched
  ``record_polls(count)`` call, not one billing call per simulated
  poll.
* Service slot booking is O(log slots) via
  :class:`repro.simulation.resources.ServiceQueue`'s heap.
* Event dispatch is batched per timestamp: the run loop advances the
  clock once per distinct simulated instant, then drains every event
  stamped with that instant in a tight inner loop (synchronized
  phases — a W-worker barrier release, W² same-instant chunk
  completions — pay one clock advance, not W²). Dispatch order within
  a batch is still exactly heap order (seq tie-breaking), so batching
  is invisible to traces.

Profiling: :meth:`Engine.enable_stats` attaches an
:class:`EngineStats` that counts dispatched events per callsite
(closure ``__qualname__``), batches and peak heap size — the
event-count profile ``repro.cli train --profile`` dumps next to the
cProfile table. Disabled (the default) it costs one identity check
per event. :func:`capture_stats` auto-enables it on every engine
constructed inside a ``with`` block and collects the stats objects,
which is how the CLI profiles runs whose engines are built deep
inside the driver or sweep orchestrator.

Fault-injection semantics (see :mod:`repro.faults`): :meth:`Engine.
kill` terminates a process at its current yield point, deregistering
any storage waiter it holds so a later put neither bills polls for nor
wakes the dead process; in-flight operations still apply their data
effects (an S3 write survives its writer). Daemon processes (fault
monitors) never keep the simulation alive — the run loop stops, and
the clock freezes, once the last non-daemon process finishes.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
import re
from contextlib import contextmanager
from typing import Any, Callable, Generator, Iterable

from repro.errors import (
    DeadlockError,
    KeyNotFoundError,
    SimulationError,
    TransientStorageError,
)
from repro.simulation.clock import SimClock
from repro.simulation.commands import (
    Collective,
    Compute,
    Delete,
    Get,
    Join,
    ListKeys,
    Put,
    Sleep,
    Spawn,
    WaitKey,
    WaitKeyCount,
)
from repro.simulation.tracing import TimeBreakdown
from repro.utils.serialization import payload_nbytes

Command = Any
ProcessGenerator = Generator[Command, Any, Any]

_DIGITS = re.compile(r"(\d+)")


def _natural_key(name: str) -> tuple:
    """Sort key treating digit runs numerically: worker-2 < worker-10."""
    return tuple(
        int(part) if part.isdigit() else part for part in _DIGITS.split(name)
    )


class ProcessState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"
    KILLED = "killed"


# States in which a process can still run. Hot paths (_step, the get
# completion closure) test membership directly instead of going through
# the Process.alive property descriptor — same predicate, no call.
_ALIVE_STATES = (ProcessState.READY, ProcessState.RUNNING, ProcessState.BLOCKED)


class EngineStats:
    """Optional per-run event counters (attach via Engine.enable_stats).

    ``by_callsite`` keys are the dispatched closures' ``__qualname__``
    (e.g. ``Engine._dispatch_put.<locals>.apply``), which names the
    engine seam that scheduled the event — enough to see *which* hot
    path a regression lives in without a full cProfile run.
    """

    __slots__ = ("events", "batches", "peak_heap", "by_callsite")

    def __init__(self) -> None:
        self.events = 0
        self.batches = 0
        self.peak_heap = 0
        self.by_callsite: dict[str, int] = {}

    def record(self, fn: Callable[[], None]) -> None:
        self.events += 1
        name = getattr(fn, "__qualname__", None) or repr(fn)
        self.by_callsite[name] = self.by_callsite.get(name, 0) + 1

    def top_callsites(self, n: int = 10) -> list[tuple[str, int]]:
        ranked = sorted(self.by_callsite.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def summary(self) -> dict:
        """JSON-ready snapshot (what --profile writes to the artifact dir)."""
        return {
            "events": self.events,
            "batches": self.batches,
            "events_per_batch": round(self.events / self.batches, 3) if self.batches else 0.0,
            "peak_heap": self.peak_heap,
            "top_callsites": self.top_callsites(),
        }


# When set (by capture_stats), every Engine constructed auto-enables
# its EngineStats and appends it here, so profiling needs no plumbing
# through the layers that build engines (driver, service, orchestrator).
_STATS_SINK: list[EngineStats] | None = None


@contextmanager
def capture_stats(sink: list[EngineStats] | None = None):
    """Collect an :class:`EngineStats` from every engine built inside.

    Process-local (in-process sweeps and single trainings only): sweep
    workers in other processes never see the sink, which is why
    ``repro.cli sweep --profile`` forces ``--jobs 1``.
    """
    global _STATS_SINK
    if sink is None:
        sink = []
    prev = _STATS_SINK
    _STATS_SINK = sink
    try:
        yield sink
    finally:
        _STATS_SINK = prev


class Process:
    """A simulated thread of execution with its own time breakdown."""

    def __init__(self, generator: ProcessGenerator, name: str, daemon: bool = False):
        self.generator = generator
        self.name = name
        self.daemon = daemon
        self.state = ProcessState.READY
        self.result: Any = None
        self.exception: BaseException | None = None
        self.trace = TimeBreakdown()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.joiners: list[Callable[[], None]] = []
        # Token invalidating stale wake-up events after a kill.
        self._wake_token = 0
        # Storage wait this process is currently registered on, if any:
        # ("key", store, key) or ("count", store, prefix). Lets kill()
        # deregister the waiter so a later put neither bills polls for
        # nor wakes a dead process.
        self._pending_wait: tuple | None = None

    @property
    def alive(self) -> bool:
        return self.state in _ALIVE_STATES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process({self.name!r}, {self.state.value})"


class Engine:
    """Deterministic discrete-event scheduler."""

    def __init__(self, on_error: str = "raise") -> None:
        if on_error not in ("raise", "record"):
            raise SimulationError(f"on_error must be 'raise' or 'record', got {on_error!r}")
        self.clock = SimClock()
        self.on_error = on_error
        self.processes: list[Process] = []
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        # Pre-bound hot callables: _schedule runs once per event for the
        # whole simulation, so the attribute/global lookups it would
        # otherwise repeat are measurable at mega-scale.
        self._seq_next = self._seq.__next__
        self._heappush = heapq.heappush
        # Optional event-count profile (enable_stats); None = disabled.
        self.stats: EngineStats | None = None
        if _STATS_SINK is not None:
            _STATS_SINK.append(self.enable_stats())
        # store id() -> key -> [(registration seq, callback, process)].
        self._key_waiters: dict[
            int, dict[str, list[tuple[int, Callable[[float], None], Process]]]
        ] = {}
        # store id() -> prefix -> [(needed, reg seq, callback, process)].
        self._count_waiters: dict[
            int, dict[str, list[tuple[int, int, Callable[[float], None], Process]]]
        ] = {}
        # Registration order for waiters; separate from the event seq so
        # registering a waiter never perturbs event tie-breaking.
        self._waiter_seq = itertools.count()
        # Live count of processes blocked inside a storage wait; used to
        # attribute deadlocks to storage vs join/collective rendezvous.
        self._blocked_on_store = 0
        # Daemons (fault monitors) never keep the simulation alive: the
        # run loop stops once every non-daemon process has finished,
        # even if daemon wake-ups remain queued — otherwise a monitor
        # sleeping toward a crash that will never happen would drag the
        # simulated clock past the end of the job.
        self._nondaemon_spawned = 0
        self._nondaemon_alive = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.clock.now

    def spawn(
        self,
        generator: ProcessGenerator,
        name: str,
        delay: float = 0.0,
        daemon: bool = False,
    ) -> Process:
        """Register a new process; its first step runs `delay` s from now."""
        proc = Process(generator, name, daemon=daemon)
        self.processes.append(proc)
        if not daemon:
            self._nondaemon_spawned += 1
            self._nondaemon_alive += 1
        start_at = self.now + delay
        self._schedule(start_at, lambda: self._first_step(proc))
        return proc

    def enable_stats(self) -> EngineStats:
        """Attach (or return the existing) event-count profile."""
        if self.stats is None:
            self.stats = EngineStats()
        return self.stats

    def run(self, until: float | None = None) -> None:
        """Process events until the queue drains (or `until` is reached).

        Raises :class:`DeadlockError` if non-daemon processes remain
        blocked with no event that could ever wake them.

        Dispatch is batched per simulated instant: one heap pop decides
        the batch timestamp t and advances the clock; a tight inner
        loop then drains every event stamped exactly t — including
        events the batch itself schedules at t (zero-delay resumes,
        same-instant completions) — without touching the clock again.
        Pops still come off the heap one at a time, so dispatch order
        (and all seq tie-breaking) is identical to the historical
        one-pop-one-advance loop; only the per-event clock/`until`
        bookkeeping is hoisted out.
        """
        # Bind the hot callables once instead of per event.
        heap = self._heap
        heappop = heapq.heappop
        clock = self.clock
        advance_to = clock.advance_to
        stats = self.stats
        while heap:
            if self._nondaemon_spawned and not self._nondaemon_alive:
                # Only daemon events remain; the job itself is over.
                break
            t, _, fn = heappop(heap)
            if until is not None and t > until:
                # Put it back for a later resumed run() call.
                self._schedule(t, fn)
                advance_to(until)
                return
            advance_to(t)
            if stats is not None:
                stats.batches += 1
                if len(heap) >= stats.peak_heap:
                    stats.peak_heap = len(heap) + 1
                stats.record(fn)
            fn()
            # Same-instant drain. Events pushed at exactly t while the
            # batch runs land at the heap top and are consumed here; a
            # float-equality miss just falls back to the outer loop.
            # (t <= until holds for the whole batch: it was checked
            # above and the timestamp does not change.)
            while heap and heap[0][0] == t:
                if self._nondaemon_spawned and not self._nondaemon_alive:
                    break
                fn = heappop(heap)[2]
                if stats is not None:
                    stats.record(fn)
                fn()
        stuck = [p for p in self.processes if p.state == ProcessState.BLOCKED and not p.daemon]
        if stuck:
            names = ", ".join(p.name for p in stuck[:8])
            raise DeadlockError(
                f"{len(stuck)} process(es) blocked with no pending events "
                f"({self._blocked_on_store} waiting on storage): {names}"
            )
        for proc in self.processes:
            if proc.daemon and proc.alive:
                self.kill(proc)

    def kill(self, proc: Process) -> None:
        """Terminate a process immediately (fault injection, daemons)."""
        if not proc.alive:
            return
        proc._wake_token += 1
        proc.state = ProcessState.KILLED
        proc.finished_at = self.now
        self._retire(proc)
        self._deregister_wait(proc)
        proc.generator.close()
        self._wake_joiners(proc)

    # ------------------------------------------------------------------
    # Scheduling internals
    # ------------------------------------------------------------------
    def _schedule(self, at: float, fn: Callable[[], None]) -> None:
        now = self.clock.now
        if at <= now:
            if at < now - 1e-12:
                raise SimulationError(f"cannot schedule event in the past: {at} < {now}")
            at = now
        self._heappush(self._heap, (at, self._seq_next(), fn))

    def _first_step(self, proc: Process) -> None:
        if proc.state is not ProcessState.READY:
            return
        proc.started_at = self.now
        self._step(proc, send_value=None)

    def _step(self, proc: Process, send_value: Any = None, throw: BaseException | None = None):
        """Advance the generator one command and dispatch it."""
        if proc.state not in _ALIVE_STATES:
            return
        proc.state = ProcessState.RUNNING
        try:
            if throw is not None:
                command = proc.generator.throw(throw)
            else:
                command = proc.generator.send(send_value)
        except StopIteration as stop:
            proc.state = ProcessState.DONE
            proc.result = stop.value
            proc.finished_at = self.now
            self._retire(proc)
            self._wake_joiners(proc)
            return
        except BaseException as exc:  # noqa: BLE001 - recorded or re-raised below
            proc.state = ProcessState.FAILED
            proc.exception = exc
            proc.finished_at = self.now
            self._retire(proc)
            self._wake_joiners(proc)
            if self.on_error == "raise":
                raise
            return
        proc.state = ProcessState.BLOCKED
        proc._wake_token += 1
        self._dispatch(proc, command)

    def _resume_later(
        self, proc: Process, at: float, value: Any = None, throw: BaseException | None = None
    ) -> None:
        token = proc._wake_token

        def fire() -> None:
            if proc._wake_token != token or proc.state is not ProcessState.BLOCKED:
                return
            self._step(proc, send_value=value, throw=throw)

        self._schedule(at, fire)

    def _retire(self, proc: Process) -> None:
        """Account one alive->terminal transition (DONE/FAILED/KILLED)."""
        if not proc.daemon:
            self._nondaemon_alive -= 1

    def _wake_joiners(self, proc: Process) -> None:
        joiners, proc.joiners = proc.joiners, []
        for wake in joiners:
            wake()

    # ------------------------------------------------------------------
    # Command dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, proc: Process, command: Command) -> None:
        # Exact-type table lookup: one dict probe per yielded command
        # instead of walking an isinstance chain. Command subclasses
        # (none in-tree) fall back to the equivalent isinstance walk.
        handler = _DISPATCH_TABLE.get(type(command))
        if handler is not None:
            handler(self, proc, command)
        else:
            self._dispatch_general(proc, command)

    def _dispatch_timed(self, proc: Process, command: Sleep | Compute) -> None:
        if command.duration < 0 or not math.isfinite(command.duration):
            raise SimulationError(
                f"{proc.name}: invalid duration {command.duration!r}"
            )
        proc.trace.add(command.category, command.duration)
        self._resume_later(proc, self.now + command.duration)

    def _dispatch_spawn(self, proc: Process, command: Spawn) -> None:
        child = self.spawn(command.generator, command.name, delay=command.delay)
        self._resume_later(proc, self.now, value=child)

    def _dispatch_general(self, proc: Process, command: Command) -> None:
        # Subclass fallback derived from the same table the fast path
        # uses, so there is one source of truth for command handling.
        for command_type, handler in _DISPATCH_TABLE.items():
            if isinstance(command, command_type):
                handler(self, proc, command)
                return
        raise SimulationError(f"{proc.name}: unknown command {command!r}")

    # -- storage ---------------------------------------------------------
    def _charge_op(self, proc: Process, category: str, issued: float, start: float, end: float):
        if start > issued:
            proc.trace.add("wait", start - issued)
        proc.trace.add(category, end - start)

    def _throw_storage_failure(
        self, proc: Process, category: str, issued: float, exc: TransientStorageError
    ) -> None:
        """Deliver a retry-exhausted storage op to its issuing worker.

        The failed attempts already occupied the service and the event
        counters (see ObjectStore._schedule_failed_attempts); here the
        worker waits out that window and then sees the error thrown at
        its yield point — the same injection seam KeyNotFoundError
        uses — so a generator (or the fault injector behind it) can
        recover instead of the whole simulation aborting.
        """
        failed_at = max(issued, exc.failed_at if exc.failed_at is not None else issued)
        proc.trace.add(category, failed_at - issued)
        self._resume_later(proc, failed_at, throw=exc)

    def _dispatch_put(self, proc: Process, cmd: Put) -> None:
        nbytes = payload_nbytes(cmd.value)
        issued = self.now
        try:
            start, end = cmd.store.schedule_op("put", nbytes, issued)
        except TransientStorageError as exc:
            self._throw_storage_failure(proc, cmd.category, issued, exc)
            return
        self._charge_op(proc, cmd.category, issued, start, end)

        def apply() -> None:
            cmd.store._do_put(cmd.key, cmd.value)
            self._notify_put(cmd.store, cmd.key)
            self._resume_later(proc, self.now, value=nbytes)

        self._schedule(end, apply)

    def _dispatch_get(self, proc: Process, cmd: Get) -> None:
        issued = self.now
        # Size is only known at completion; we first charge the latency,
        # then the transfer of the actual object found at completion.
        def apply_lookup() -> None:
            if proc.state not in _ALIVE_STATES:
                return  # killed while the request was in flight
            try:
                value = cmd.store._do_get(cmd.key)
            except KeyNotFoundError as exc:
                self._resume_later(proc, self.now, throw=exc)
                return
            nbytes = payload_nbytes(value)
            try:
                start, end = cmd.store.schedule_op("get", nbytes, issued)
            except TransientStorageError as exc:
                self._throw_storage_failure(proc, cmd.category, issued, exc)
                return
            self._charge_op(proc, cmd.category, issued, start, end)
            self._resume_later(proc, max(end, self.now), value=value)

        self._schedule(issued, apply_lookup)

    def _dispatch_delete(self, proc: Process, cmd: Delete) -> None:
        issued = self.now
        start, end = cmd.store.schedule_op("delete", 0, issued)
        self._charge_op(proc, cmd.category, issued, start, end)

        def apply() -> None:
            cmd.store._do_delete(cmd.key)
            self._resume_later(proc, self.now)

        self._schedule(end, apply)

    def _dispatch_list(self, proc: Process, cmd: ListKeys) -> None:
        issued = self.now
        start, end = cmd.store.schedule_op("list", 0, issued)
        self._charge_op(proc, cmd.category, issued, start, end)

        def apply() -> None:
            keys = cmd.store._do_list(cmd.prefix)
            self._resume_later(proc, self.now, value=keys)

        self._schedule(end, apply)

    # -- waiting on storage state ----------------------------------------
    def _dispatch_wait_key(self, proc: Process, cmd: WaitKey) -> None:
        issued = self.now

        def wake(visible_at: float) -> None:
            wake_at = max(visible_at, issued) + cmd.poll_interval
            waited = wake_at - issued
            polls = max(1, math.ceil(waited / cmd.poll_interval))
            cmd.store.record_polls(polls)
            proc.trace.add(cmd.category, waited)
            self._resume_later(proc, wake_at)

        if cmd.store._exists(cmd.key):
            wake(issued)
        else:
            self._register_key_waiter(cmd.store, cmd.key, wake, proc)

    def _dispatch_wait_count(self, proc: Process, cmd: WaitKeyCount) -> None:
        issued = self.now

        def wake(visible_at: float) -> None:
            wake_at = max(visible_at, issued) + cmd.poll_interval
            waited = wake_at - issued
            polls = max(1, math.ceil(waited / cmd.poll_interval))
            cmd.store.record_polls(polls)
            proc.trace.add(cmd.category, waited)
            self._resume_later(proc, wake_at)

        if cmd.store._count_prefix(cmd.prefix) >= cmd.count:
            wake(issued)
        else:
            self._register_count_waiter(cmd.store, cmd.prefix, cmd.count, wake, proc)

    def _register_key_waiter(
        self, store: Any, key: str, wake: Callable[[float], None], proc: Process
    ) -> None:
        by_key = self._key_waiters.setdefault(id(store), {})
        by_key.setdefault(key, []).append((next(self._waiter_seq), wake, proc))
        proc._pending_wait = ("key", store, key)
        self._blocked_on_store += 1

    def _register_count_waiter(
        self,
        store: Any,
        prefix: str,
        count: int,
        wake: Callable[[float], None],
        proc: Process,
    ) -> None:
        by_prefix = self._count_waiters.setdefault(id(store), {})
        waiters = by_prefix.setdefault(prefix, [])
        if not waiters:
            store.register_prefix(prefix)
        waiters.append((count, next(self._waiter_seq), wake, proc))
        proc._pending_wait = ("count", store, prefix)
        self._blocked_on_store += 1

    def _deregister_wait(self, proc: Process) -> None:
        """Drop `proc`'s storage-wait registration (kill path).

        Without this, a key becoming visible after the waiter's death
        would bill polls for — and try to wake — a process that no
        longer exists.
        """
        pending = proc._pending_wait
        if pending is None:
            return
        proc._pending_wait = None
        kind, store, token = pending
        registry = self._key_waiters if kind == "key" else self._count_waiters
        by_token = registry.get(id(store))
        waiters = by_token.get(token) if by_token else None
        if not waiters:
            return
        remaining = [entry for entry in waiters if entry[-1] is not proc]
        self._blocked_on_store -= len(waiters) - len(remaining)
        if remaining:
            by_token[token] = remaining
        else:
            del by_token[token]
            if kind == "count":
                store.unregister_prefix(token)

    def _notify_put(self, store: Any, key: str) -> None:
        """Wake exactly the waiters affected by `key` becoming visible.

        Key waiters are indexed by exact key; count waiters by prefix,
        located via the store's registered-prefix index. Satisfied
        waiters fire in registration order (key waiters first, matching
        the historical scan order), so wake-up sequence numbers — and
        therefore all downstream tie-breaking — are deterministic.
        """
        sid = id(store)
        by_key = self._key_waiters.get(sid)
        if by_key:
            woken = by_key.pop(key, None)
            if woken:
                for _, wake, waiter in woken:
                    self._blocked_on_store -= 1
                    waiter._pending_wait = None
                    wake(self.now)

        by_prefix = self._count_waiters.get(sid)
        if by_prefix:
            satisfied: list[tuple[int, Callable[[float], None], Process]] = []
            for prefix in list(store.matching_registered_prefixes(key)):
                waiters = by_prefix.get(prefix)
                if not waiters:
                    continue
                current = store._count_prefix(prefix)
                remaining = [w for w in waiters if w[0] > current]
                if len(remaining) == len(waiters):
                    continue
                satisfied.extend(w[1:] for w in waiters if w[0] <= current)
                if remaining:
                    by_prefix[prefix] = remaining
                else:
                    del by_prefix[prefix]
                    store.unregister_prefix(prefix)
            if satisfied:
                # Registration (seq) order across prefixes, as the old
                # linear scan woke them; seqs are unique so the wake
                # callables are never compared.
                satisfied.sort(key=lambda entry: entry[0])
                for _, wake, waiter in satisfied:
                    self._blocked_on_store -= 1
                    waiter._pending_wait = None
                    wake(self.now)

    # -- join / collectives ------------------------------------------------
    def _dispatch_join(self, proc: Process, cmd: Join) -> None:
        target = cmd.process
        issued = self.now

        def wake() -> None:
            if not proc.alive:
                return  # joiner was killed while waiting
            proc.trace.add(cmd.category, self.now - issued)
            if target.state is ProcessState.FAILED and target.exception is not None:
                self._resume_later(proc, self.now, throw=target.exception)
            else:
                self._resume_later(proc, self.now, value=target.result)

        if target.alive:
            target.joiners.append(wake)
        else:
            wake()

    def _dispatch_collective(self, proc: Process, cmd: Collective) -> None:
        group = cmd.group
        round_id = group.round_counter.get(proc.name, 0)
        group.round_counter[proc.name] = round_id + 1
        pending = group.pending.setdefault(round_id, [])
        pending.append((proc, cmd.value, self.now, cmd.category))
        if len(pending) < group.size:
            return
        # Last member arrived: reduce and wake everyone. Contributions
        # are folded in *rank order* — numeric, not lexicographic:
        # "worker-10" sorting before "worker-2" would fold a >10-member
        # collective in a different order than the storage patterns,
        # and float reduction order is visible in the last ulp (the
        # replay substrate shares traces across platforms on the
        # promise that it isn't).
        del group.pending[round_id]
        arrivals = sorted(pending, key=lambda item: _natural_key(item[0].name))
        values = [value for _, value, _, _ in arrivals]
        nbytes = max((payload_nbytes(v) for v in values), default=0)
        result = group.reduce_fn(values) if group.reduce_fn is not None else None
        duration = group.time_fn(nbytes, group.size) if group.time_fn is not None else 0.0
        t_last = max(arrived for _, _, arrived, _ in pending)
        completion = t_last + duration
        for member, _, arrived, category in pending:
            member.trace.add("wait", t_last - arrived)
            member.trace.add(category, duration)
            self._resume_later(member, completion, value=result)


# Unbound handlers keyed by exact command type (see Engine._dispatch).
_DISPATCH_TABLE: dict[type, Callable[[Engine, Process, Any], None]] = {
    Sleep: Engine._dispatch_timed,
    Compute: Engine._dispatch_timed,
    Put: Engine._dispatch_put,
    Get: Engine._dispatch_get,
    Delete: Engine._dispatch_delete,
    ListKeys: Engine._dispatch_list,
    WaitKey: Engine._dispatch_wait_key,
    WaitKeyCount: Engine._dispatch_wait_count,
    Spawn: Engine._dispatch_spawn,
    Join: Engine._dispatch_join,
    Collective: Engine._dispatch_collective,
}


def run_processes(
    generators: Iterable[tuple[str, ProcessGenerator]],
    on_error: str = "raise",
) -> tuple[Engine, list[Process]]:
    """Convenience: spawn all `(name, generator)` pairs and run to completion."""
    engine = Engine(on_error=on_error)
    procs = [engine.spawn(gen, name) for name, gen in generators]
    engine.run()
    return engine, procs
