"""Commands that simulated processes yield to the engine.

A process is a generator; each `yield <command>` suspends it until the
engine has charged the simulated duration of the command (including any
queueing on contended services) and applied its data effect. The value
sent back into the generator is the command's result (e.g. the object
returned by :class:`Get`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.simulation.engine import Process
    from repro.storage.base import ObjectStore


@dataclass
class Sleep:
    """Advance this process's clock by `duration` seconds."""

    duration: float
    category: str = "idle"


@dataclass
class Compute:
    """Like Sleep, but accounted as computation in the time breakdown."""

    duration: float
    category: str = "compute"


@dataclass
class Put:
    """Write `value` under `key`; charged latency + size/bandwidth."""

    store: "ObjectStore"
    key: str
    value: Any
    category: str = "comm"


@dataclass
class Get:
    """Read the object under `key`; raises KeyNotFoundError if absent."""

    store: "ObjectStore"
    key: str
    category: str = "comm"


@dataclass
class Delete:
    """Remove `key` if present (idempotent)."""

    store: "ObjectStore"
    key: str
    category: str = "comm"


@dataclass
class ListKeys:
    """List keys with the given prefix; result is a sorted list of names."""

    store: "ObjectStore"
    prefix: str = ""
    category: str = "comm"


@dataclass
class WaitKey:
    """Block until `key` exists, polling the store every `poll_interval` s.

    The process wakes one poll interval after the key becomes visible
    (matching the polling loops of the paper's synchronous protocol),
    and is charged one list request per simulated poll.
    """

    store: "ObjectStore"
    key: str
    poll_interval: float = 0.05
    category: str = "wait"


@dataclass
class WaitKeyCount:
    """Block until at least `count` keys with `prefix` exist.

    Implements the merging phase of the synchronous protocol: the
    aggregator lists files named by epoch/iteration/partition and waits
    until the number of matching files equals the number of workers.
    """

    store: "ObjectStore"
    prefix: str
    count: int
    poll_interval: float = 0.05
    category: str = "wait"


@dataclass
class Spawn:
    """Start a new process running `generator` after `delay` seconds."""

    generator: Any
    name: str
    delay: float = 0.0
    category: str = "idle"


@dataclass
class Join:
    """Block until `process` finishes; result is its return value."""

    process: "Process"
    category: str = "wait"


@dataclass
class Collective:
    """Rendezvous of `group.size` processes (AllReduce / barrier on IaaS).

    All participants of a round block until the last one arrives; the
    group's time model is then charged once and every participant
    resumes with the reduced value at the same simulated instant.
    """

    group: "CollectiveGroup"
    value: Any = None
    category: str = "comm"


@dataclass
class CollectiveGroup:
    """Identity + timing/reduction rules for a set of collective peers."""

    name: str
    size: int
    # reduce_fn folds the list of contributed values into one result.
    reduce_fn: Any = None
    # time_fn(nbytes_per_member, size) -> seconds for one collective.
    time_fn: Any = None
    # Internal rendezvous state, managed by the engine.
    pending: dict = field(default_factory=dict, repr=False)
    round_counter: dict = field(default_factory=dict, repr=False)
