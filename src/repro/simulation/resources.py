"""Contention modelling for shared services.

A :class:`ServiceQueue` represents a service that can perform at most
`slots` operations concurrently (e.g. Redis's single worker thread vs
Memcached's thread pool). Operations arriving while all slots are busy
queue up deterministically; the returned completion time includes the
queueing delay.

Slot state is a flat min-heap of bare floats — each entry is one
slot's next-free time, nothing else. The historical implementation
heaped ``(next_free_time, slot_index)`` tuples; the index is
observationally irrelevant (every booking replaces *a* minimum of the
multiset of free times with its completion — which physical slot
served the op never reaches any output), so dropping it removes a
tuple allocation and a lexicographic comparison from every heap sift,
and lets each booking run as one :func:`heapq.heapreplace` (a single
O(log slots) sift) instead of a pop + push (two). On the engine's
per-operation hot path — every storage op of every tenant books
through one of these, and the multi-tenant service path funnels *all*
tenants of a service class through a single shared queue — this is
~3x faster per booking than the tuple heap at any slot count (and
measured faster than a numpy argmin scan, whose per-call dispatch
overhead dominates at realistic slot counts).

Bookings are also counted (``ops_booked``) so the service runtime can
report per-class contention pressure without touching the hot path.
"""

from __future__ import annotations

from heapq import heapreplace

from repro.errors import ConfigurationError


class ServiceQueue:
    """Deterministic k-server queue over simulated time."""

    __slots__ = ("slots", "ops_booked", "_free")

    def __init__(self, slots: int) -> None:
        if slots < 1:
            raise ConfigurationError(f"service needs >= 1 slot, got {slots}")
        self.slots = slots
        self.ops_booked = 0
        # Min-heap of next-free simulated times, one float per slot.
        # All-equal entries are a valid heap; no heapify needed.
        self._free: list[float] = [0.0] * slots

    def schedule(self, arrival: float, duration: float) -> tuple[float, float]:
        """Book `duration` seconds of service starting at/after `arrival`.

        Returns `(start, completion)` where `start >= arrival` is when a
        slot became available. Always books the earliest-free slot, so
        results depend only on arrival order — which the engine keeps
        deterministic.
        """
        free = self._free
        free_at = free[0]
        start = arrival if arrival > free_at else free_at
        completion = start + duration
        heapreplace(free, completion)
        self.ops_booked += 1
        return start, completion

    @property
    def busy_until(self) -> float:
        """Latest booked completion across all slots (diagnostics only).

        This is when the *most loaded* slot frees up, not when the next
        operation could start (that is the heap's minimum, found by
        :meth:`schedule`): an op arriving before ``busy_until`` may
        still start immediately on an idle slot. Bookings are never
        un-made, so the value is monotonically non-decreasing over a
        run. Queues are single-use per run — build a fresh
        :class:`ServiceQueue` instead of recycling one (a previous
        ``reset()`` helper was removed as unused: rewinding slot state
        mid-simulation would violate the engine's monotonic clock).
        """
        return max(self._free)
