"""Contention modelling for shared services.

A :class:`ServiceQueue` represents a service that can perform at most
`slots` operations concurrently (e.g. Redis's single worker thread vs
Memcached's thread pool). Operations arriving while all slots are busy
queue up deterministically; the returned completion time includes the
queueing delay.

Slots live in a min-heap keyed by ``(next_free_time, slot_index)``, so
booking an operation is O(log slots) instead of a linear scan — S3's
64-way concurrency is on the engine's per-operation hot path.
"""

from __future__ import annotations

import heapq

from repro.errors import ConfigurationError


class ServiceQueue:
    """Deterministic k-server queue over simulated time."""

    def __init__(self, slots: int) -> None:
        if slots < 1:
            raise ConfigurationError(f"service needs >= 1 slot, got {slots}")
        self.slots = slots
        # Min-heap of (next-free simulated time, slot index).
        self._heap: list[tuple[float, int]] = [(0.0, i) for i in range(slots)]

    def schedule(self, arrival: float, duration: float) -> tuple[float, float]:
        """Book `duration` seconds of service starting at/after `arrival`.

        Returns `(start, completion)` where `start >= arrival` is when a
        slot became available. Picks the earliest-free slot, breaking
        ties by index, so results are independent of caller order only
        insofar as arrival times differ — identical arrivals are served
        in call order, which the engine keeps deterministic.
        """
        free_at, idx = heapq.heappop(self._heap)
        start = max(arrival, free_at)
        completion = start + duration
        heapq.heappush(self._heap, (completion, idx))
        return start, completion

    @property
    def busy_until(self) -> float:
        """Latest booked completion across all slots (diagnostics only).

        This is when the *most loaded* slot frees up, not when the next
        operation could start (that is the heap's minimum, found by
        :meth:`schedule`): an op arriving before ``busy_until`` may
        still start immediately on an idle slot. Bookings are never
        un-made, so the value is monotonically non-decreasing over a
        run. Queues are single-use per run — build a fresh
        :class:`ServiceQueue` instead of recycling one (a previous
        ``reset()`` helper was removed as unused: rewinding slot state
        mid-simulation would violate the engine's monotonic clock).
        """
        return max(free_at for free_at, _ in self._heap)
