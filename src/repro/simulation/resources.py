"""Contention modelling for shared services.

A :class:`ServiceQueue` represents a service that can perform at most
`slots` operations concurrently (e.g. Redis's single worker thread vs
Memcached's thread pool). Operations arriving while all slots are busy
queue up deterministically; the returned completion time includes the
queueing delay.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class ServiceQueue:
    """Deterministic k-server queue over simulated time."""

    def __init__(self, slots: int) -> None:
        if slots < 1:
            raise ConfigurationError(f"service needs >= 1 slot, got {slots}")
        self.slots = slots
        # Next-free simulated time of each slot.
        self._free_at = [0.0] * slots

    def schedule(self, arrival: float, duration: float) -> tuple[float, float]:
        """Book `duration` seconds of service starting at/after `arrival`.

        Returns `(start, completion)` where `start >= arrival` is when a
        slot became available. Picks the earliest-free slot, breaking
        ties by index, so results are independent of caller order only
        insofar as arrival times differ — identical arrivals are served
        in call order, which the engine keeps deterministic.
        """
        idx = min(range(self.slots), key=lambda i: self._free_at[i])
        start = max(arrival, self._free_at[idx])
        completion = start + duration
        self._free_at[idx] = completion
        return start, completion

    @property
    def busy_until(self) -> float:
        """Latest completion currently booked (for tests/diagnostics)."""
        return max(self._free_at)

    def reset(self) -> None:
        self._free_at = [0.0] * self.slots
