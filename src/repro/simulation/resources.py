"""Contention modelling for shared services.

A :class:`ServiceQueue` represents a service that can perform at most
`slots` operations concurrently (e.g. Redis's single worker thread vs
Memcached's thread pool). Operations arriving while all slots are busy
queue up deterministically; the returned completion time includes the
queueing delay.

Slots live in a min-heap keyed by ``(next_free_time, slot_index)``, so
booking an operation is O(log slots) instead of a linear scan — S3's
64-way concurrency is on the engine's per-operation hot path.
"""

from __future__ import annotations

import heapq

from repro.errors import ConfigurationError


class ServiceQueue:
    """Deterministic k-server queue over simulated time."""

    def __init__(self, slots: int) -> None:
        if slots < 1:
            raise ConfigurationError(f"service needs >= 1 slot, got {slots}")
        self.slots = slots
        # Min-heap of (next-free simulated time, slot index).
        self._heap: list[tuple[float, int]] = [(0.0, i) for i in range(slots)]

    def schedule(self, arrival: float, duration: float) -> tuple[float, float]:
        """Book `duration` seconds of service starting at/after `arrival`.

        Returns `(start, completion)` where `start >= arrival` is when a
        slot became available. Picks the earliest-free slot, breaking
        ties by index, so results are independent of caller order only
        insofar as arrival times differ — identical arrivals are served
        in call order, which the engine keeps deterministic.
        """
        free_at, idx = heapq.heappop(self._heap)
        start = max(arrival, free_at)
        completion = start + duration
        heapq.heappush(self._heap, (completion, idx))
        return start, completion

    @property
    def busy_until(self) -> float:
        """Latest completion currently booked (for tests/diagnostics)."""
        return max(free_at for free_at, _ in self._heap)

    def reset(self) -> None:
        self._heap = [(0.0, i) for i in range(self.slots)]
