"""Per-process time accounting.

Each process accumulates simulated seconds per category. The
categories mirror the paper's Figure 10 breakdown (startup, data
loading, computation, communication) plus the waiting/checkpoint time
the paper folds into communication.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

KNOWN_CATEGORIES = (
    "startup",
    "load",
    "compute",
    "comm",
    "wait",
    "merge",
    "checkpoint",
    "idle",
)


@dataclass
class TimeBreakdown:
    """Simulated seconds spent per activity category."""

    seconds: dict[str, float] = field(default_factory=lambda: defaultdict(float))

    def add(self, category: str, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative duration {duration} for {category}")
        self.seconds[category] += duration

    def get(self, category: str) -> float:
        return self.seconds.get(category, 0.0)

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    @property
    def communication(self) -> float:
        """Communication as the paper reports it: transfer + sync wait."""
        return self.get("comm") + self.get("wait") + self.get("merge")

    def merged_with(self, other: "TimeBreakdown") -> "TimeBreakdown":
        out = TimeBreakdown()
        for source in (self, other):
            for category, duration in source.seconds.items():
                out.add(category, duration)
        return out

    @staticmethod
    def max_per_category(parts: list["TimeBreakdown"]) -> "TimeBreakdown":
        """Category-wise maximum across workers.

        Figure 10 reports the critical-path time of the slowest worker
        per phase; with homogeneous workers the max is that worker.
        """
        out = TimeBreakdown()
        for category in KNOWN_CATEGORIES:
            value = max((p.get(category) for p in parts), default=0.0)
            if value > 0:
                out.add(category, value)
        return out

    def as_dict(self) -> dict[str, float]:
        return dict(self.seconds)
