"""Simulated clock.

The clock only moves forward; the engine owns the single instance for a
run and advances it as events complete. Nothing in the library reads
the host wall clock for results.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """Monotonic simulated time in seconds.

    `now` is a plain public attribute (read several times per event on
    the engine's hot path — a property descriptor would double the
    cost); treat it as read-only and advance via :meth:`advance_to`.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def advance_to(self, t: float) -> None:
        if t < self.now - 1e-12:
            raise SimulationError(
                f"clock cannot move backwards: now={self.now:.6f}, target={t:.6f}"
            )
        self.now = max(self.now, t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self.now:.6f})"
