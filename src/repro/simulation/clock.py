"""Simulated clock.

The clock only moves forward; the engine owns the single instance for a
run and advances it as events complete. Nothing in the library reads
the host wall clock for results.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimClock:
    """Monotonic simulated time in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        if t < self._now - 1e-12:
            raise SimulationError(
                f"clock cannot move backwards: now={self._now:.6f}, target={t:.6f}"
            )
        self._now = max(self._now, t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"
