"""Deterministic discrete-event simulation substrate.

Every "cloud" component in this reproduction (Lambda functions, VMs,
storage services, networks) runs on top of this engine. Workers are
plain Python generators that *yield* commands (compute for t seconds,
put an object, wait for a key, join a collective); the engine advances
a simulated clock, models contention on shared services, applies data
effects in simulated-chronological order, and records a per-process
time breakdown (startup / load / compute / communication / wait) that
backs Figure 10 of the paper.
"""

from repro.simulation.clock import SimClock
from repro.simulation.commands import (
    Collective,
    Compute,
    Delete,
    Get,
    Join,
    ListKeys,
    Put,
    Sleep,
    Spawn,
    WaitKey,
    WaitKeyCount,
)
from repro.simulation.engine import Engine, Process, ProcessState
from repro.simulation.resources import ServiceQueue
from repro.simulation.tracing import TimeBreakdown

__all__ = [
    "SimClock",
    "Engine",
    "Process",
    "ProcessState",
    "ServiceQueue",
    "TimeBreakdown",
    "Sleep",
    "Compute",
    "Put",
    "Get",
    "Delete",
    "ListKeys",
    "WaitKey",
    "WaitKeyCount",
    "Spawn",
    "Join",
    "Collective",
]
