"""Linear models: logistic regression and linear SVM.

Both operate on labels in {-1, +1}, accept dense ndarrays or scipy CSR
matrices, and include optional L2 regularisation. The loss is the
*mean* over examples so thresholds are dataset-size independent (the
paper stops training at fixed loss thresholds, Table 4).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.models.base import SupervisedModel


def _margins(X, params: np.ndarray) -> np.ndarray:
    out = X @ params
    if sparse.issparse(out):  # pragma: no cover - scipy returns ndarray
        out = out.toarray().ravel()
    return np.asarray(out).ravel()


def _xtv(X, v: np.ndarray) -> np.ndarray:
    """X^T v as a dense 1-D array for dense or sparse X."""
    out = X.T @ v
    return np.asarray(out).ravel()


class LogisticRegression(SupervisedModel):
    """Binary logistic regression with mean log-loss."""

    def __init__(self, n_features: int, l2: float = 0.0) -> None:
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        self.n_params = n_features
        self.l2 = l2

    def init_params(self, rng: np.random.Generator) -> np.ndarray:
        # Zero init gives the canonical starting loss ln 2 ≈ 0.6931.
        return np.zeros(self.n_params)

    def loss(self, params: np.ndarray, X, y: np.ndarray) -> float:
        z = y * _margins(X, params)
        # log(1 + exp(-z)) computed stably for large |z|.
        losses = np.logaddexp(0.0, -z)
        reg = 0.5 * self.l2 * float(params @ params)
        return float(losses.mean() + reg)

    def gradient(self, params: np.ndarray, X, y: np.ndarray) -> np.ndarray:
        z = y * _margins(X, params)
        # d/dz log(1+exp(-z)) = -sigmoid(-z)
        coef = -y * _sigmoid(-z) / y.shape[0]
        return _xtv(X, coef) + self.l2 * params

    def loss_and_gradient(self, params: np.ndarray, X, y: np.ndarray):
        z = y * _margins(X, params)
        losses = np.logaddexp(0.0, -z)
        reg = 0.5 * self.l2 * float(params @ params)
        coef = -y * _sigmoid(-z) / y.shape[0]
        grad = _xtv(X, coef) + self.l2 * params
        return float(losses.mean() + reg), grad

    def predict(self, params: np.ndarray, X) -> np.ndarray:
        return np.where(_margins(X, params) >= 0, 1, -1)

    def accuracy(self, params: np.ndarray, X, y: np.ndarray) -> float:
        return float((self.predict(params, X) == y).mean())


class LinearSVM(SupervisedModel):
    """Linear SVM with mean *squared* hinge loss.

    The squared hinge (L2-SVM) is smooth, which suits both SGD and the
    ADMM subproblem solver, and its loss scale matches the thresholds
    the paper trains to (0.48 on Higgs, 0.05 on RCV1) — the plain hinge
    cannot go below ~0.8 at Higgs's Bayes accuracy.
    """

    def __init__(self, n_features: int, l2: float = 1e-4) -> None:
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        self.n_params = n_features
        self.l2 = l2

    def init_params(self, rng: np.random.Generator) -> np.ndarray:
        # Zero init gives squared hinge loss exactly 0.5.
        return np.zeros(self.n_params)

    def loss(self, params: np.ndarray, X, y: np.ndarray) -> float:
        margins = y * _margins(X, params)
        violation = np.maximum(0.0, 1.0 - margins)
        reg = 0.5 * self.l2 * float(params @ params)
        return float(0.5 * (violation**2).mean() + reg)

    def gradient(self, params: np.ndarray, X, y: np.ndarray) -> np.ndarray:
        margins = y * _margins(X, params)
        violation = np.maximum(0.0, 1.0 - margins)
        coef = -y * violation / y.shape[0]
        return _xtv(X, coef) + self.l2 * params

    def predict(self, params: np.ndarray, X) -> np.ndarray:
        return np.where(_margins(X, params) >= 0, 1, -1)

    def accuracy(self, params: np.ndarray, X, y: np.ndarray) -> float:
        return float((self.predict(params, X) == y).mean())


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out
