"""Numpy MLP classifier with manual backprop.

Serves as the physical surrogate for the paper's MobileNet/ResNet50
(see `repro.models.zoo`): a real non-convex model whose training curve
supplies statistical efficiency, while logical parameter sizes and
compute profiles supply system costs. Parameters live in one flat
float32 vector so the distributed optimizers treat it exactly like the
linear models.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import SupervisedModel


class MLPClassifier(SupervisedModel):
    """Multi-layer perceptron with ReLU hidden layers and softmax output."""

    def __init__(self, n_features: int, hidden: tuple[int, ...], n_classes: int):
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        self.n_features = n_features
        self.hidden = tuple(hidden)
        self.n_classes = n_classes
        self.dtype = np.dtype(np.float32)

        sizes = [n_features, *self.hidden, n_classes]
        self._shapes: list[tuple[tuple[int, int], tuple[int,]]] = []
        offset = 0
        self._slices: list[tuple[slice, slice]] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            w_size, b_size = fan_in * fan_out, fan_out
            self._shapes.append(((fan_in, fan_out), (fan_out,)))
            self._slices.append(
                (slice(offset, offset + w_size), slice(offset + w_size, offset + w_size + b_size))
            )
            offset += w_size + b_size
        self.n_params = offset

    # -- parameter plumbing ----------------------------------------------------
    def init_params(self, rng: np.random.Generator) -> np.ndarray:
        params = np.empty(self.n_params, dtype=self.dtype)
        for (w_shape, b_shape), (w_slice, b_slice) in zip(self._shapes, self._slices):
            fan_in = w_shape[0]
            scale = np.sqrt(2.0 / fan_in)  # He init for ReLU
            params[w_slice] = (rng.standard_normal(w_shape) * scale).astype(self.dtype).ravel()
            params[b_slice] = 0.0
        return params

    def _unpack(self, params: np.ndarray):
        for (w_shape, _), (w_slice, b_slice) in zip(self._shapes, self._slices):
            yield params[w_slice].reshape(w_shape), params[b_slice]

    # -- forward / backward -----------------------------------------------------
    def _forward(self, params: np.ndarray, X: np.ndarray):
        activations = [np.asarray(X, dtype=self.dtype)]
        layers = list(self._unpack(params))
        for i, (W, b) in enumerate(layers):
            z = activations[-1] @ W + b
            if i < len(layers) - 1:
                z = np.maximum(z, 0.0)  # ReLU
            activations.append(z)
        return activations

    @staticmethod
    def _log_softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))

    def loss(self, params: np.ndarray, X, y: np.ndarray) -> float:
        logits = self._forward(params, X)[-1]
        log_p = self._log_softmax(logits)
        return float(-log_p[np.arange(y.shape[0]), y].mean())

    def loss_and_gradient(self, params: np.ndarray, X, y: np.ndarray):
        n = y.shape[0]
        activations = self._forward(params, X)
        logits = activations[-1]
        log_p = self._log_softmax(logits)
        loss = float(-log_p[np.arange(n), y].mean())

        grad = np.zeros(self.n_params, dtype=self.dtype)
        layers = list(self._unpack(params))
        # dL/dlogits for softmax cross-entropy.
        delta = np.exp(log_p)
        delta[np.arange(n), y] -= 1.0
        delta /= n
        for i in reversed(range(len(layers))):
            W, _ = layers[i]
            a_prev = activations[i]
            w_slice, b_slice = self._slices[i]
            grad[w_slice] = (a_prev.T @ delta).ravel()
            grad[b_slice] = delta.sum(axis=0)
            if i > 0:
                delta = delta @ W.T
                delta[activations[i] <= 0.0] = 0.0  # ReLU mask
        return loss, grad

    def gradient(self, params: np.ndarray, X, y: np.ndarray) -> np.ndarray:
        return self.loss_and_gradient(params, X, y)[1]

    def predict(self, params: np.ndarray, X) -> np.ndarray:
        logits = self._forward(params, X)[-1]
        return logits.argmax(axis=1)

    def accuracy(self, params: np.ndarray, X, y: np.ndarray) -> float:
        return float((self.predict(params, X) == y).mean())
