"""Model zoo: physical model factories + logical system profiles.

For each (model, dataset) workload the paper evaluates, this module
binds together

* a **physical model** we can actually train (numpy LR/SVM/k-means, or
  an MLP surrogate for MobileNet/ResNet50),
* the **logical parameter size** that crosses the network in the real
  system (LR on Higgs is 28 floats = 224 B, matching Table 3;
  MobileNet is 12 MB; ResNet50 is 89 MB), and
* a **compute profile**: seconds of training per instance per epoch on
  the reference worker (one Lambda function at 3 GB ≈ 1.8 vCPU),
  calibrated against the paper's runtime breakdown (Figure 10 gives
  8 s/epoch for LR on 1.1 M Higgs rows → ~7 µs per instance), plus a
  fixed per-iteration overhead (framework dispatch + dense model
  update, dominant for the 1 M-dimensional Criteo models).

GPU speed-ups apply only to the neural models (the paper only runs
MobileNet/ResNet on GPU instances): NVIDIA M60 (g3 family) ≈ 20× a
Lambda worker, NVIDIA T4 (g4 family) ≈ 27× — ratios chosen to match
Figure 12's "T4 is 8× faster end-to-end and 15% faster than M60".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.data.datasets import get_spec
from repro.errors import ConfigurationError
from repro.models.kmeans import KMeansModel
from repro.models.linear import LinearSVM, LogisticRegression
from repro.models.nn import MLPClassifier

MB = 1024 * 1024


@dataclass(frozen=True)
class ComputeProfile:
    """Per-workload compute costs on the reference worker (Lambda 3 GB)."""

    per_instance_s: float  # training cost per example per epoch
    per_iteration_s: float  # fixed overhead per minibatch step (model update)
    eval_fraction: float = 0.35  # forward-only cost relative to training
    gpu_speedup_m60: float = 1.0
    gpu_speedup_t4: float = 1.0


@dataclass(frozen=True)
class ModelInfo:
    """Everything the executors need to know about one workload."""

    model_name: str
    dataset: str
    factory: Callable[[], Any]
    param_bytes: int  # logical wire size of the model/gradient
    compute: ComputeProfile
    convex: bool  # ADMM is only valid for convex objectives
    kind: str  # "supervised" | "kmeans"
    k: int = 0  # clusters, for kmeans
    # Peak training memory per in-flight example (activations +
    # intermediate buffers). Calibrated so ResNet50 fits a 3 GB Lambda
    # at batch 32 but OOMs at 64, as the paper observes (Section 5.2).
    activation_bytes_per_instance: int = 4096


def _linear_profile(dataset: str) -> ComputeProfile:
    profiles = {
        "higgs": ComputeProfile(per_instance_s=7.0e-6, per_iteration_s=5e-4),
        "rcv1": ComputeProfile(per_instance_s=8.0e-6, per_iteration_s=2e-3),
        "yfcc100m": ComputeProfile(per_instance_s=1.0e-3, per_iteration_s=2e-3),
        "criteo": ComputeProfile(per_instance_s=1.5e-5, per_iteration_s=6e-3),
        "cifar10": ComputeProfile(per_instance_s=2.5e-5, per_iteration_s=1e-3),
    }
    try:
        return profiles[dataset]
    except KeyError:
        raise ConfigurationError(f"no linear-model profile for dataset {dataset!r}") from None


def _kmeans_profile(dataset: str, k: int) -> ComputeProfile:
    # Assignment cost grows with k; the constants bracket the paper's
    # KMeans runtimes on Higgs (k=10 vs k=1K differ by ~30x compute).
    base = {
        "higgs": (6.0e-6, 3.0e-7),
        "rcv1": (8.0e-6, 4.0e-6),
        "yfcc100m": (4.0e-4, 1.0e-4),
    }
    try:
        flat, per_k = base[dataset]
    except KeyError:
        raise ConfigurationError(f"no kmeans profile for dataset {dataset!r}") from None
    return ComputeProfile(per_instance_s=flat + per_k * k, per_iteration_s=1e-3)


_NN_PROFILES = {
    "mobilenet": ComputeProfile(
        per_instance_s=5.5e-2,
        per_iteration_s=5e-3,
        gpu_speedup_m60=20.0,
        gpu_speedup_t4=27.0,
    ),
    "resnet50": ComputeProfile(
        per_instance_s=6.0e-1,
        per_iteration_s=8e-3,
        gpu_speedup_m60=20.0,
        gpu_speedup_t4=27.0,
    ),
}

_NN_PARAM_BYTES = {
    "mobilenet": 12 * MB,  # Section 4.1: "the size of model parameters is 12MB"
    "resnet50": 89 * MB,  # Table 3: ResNet model size 89MB
}

# Physical surrogate architectures (hidden widths) for the deep models.
_NN_SURROGATES = {
    "mobilenet": (64,),
    "resnet50": (128, 64),
}


def get_model_info(model_name: str, dataset: str, k: int = 10, l2: float = 1e-4) -> ModelInfo:
    """Resolve a paper workload name into physical + logical metadata."""
    model_name = model_name.lower()
    spec = get_spec(dataset)
    d = spec.n_features

    if model_name == "lr":
        return ModelInfo(
            model_name="lr",
            dataset=dataset,
            factory=lambda: LogisticRegression(d, l2=l2),
            param_bytes=d * 8,
            compute=_linear_profile(dataset),
            convex=True,
            kind="supervised",
        )
    if model_name == "svm":
        return ModelInfo(
            model_name="svm",
            dataset=dataset,
            factory=lambda: LinearSVM(d, l2=l2),
            param_bytes=d * 8,
            compute=_linear_profile(dataset),
            convex=True,
            kind="supervised",
        )
    if model_name == "kmeans":
        return ModelInfo(
            model_name="kmeans",
            dataset=dataset,
            factory=lambda: KMeansModel(d, k=k),
            param_bytes=k * d * 8,
            compute=_kmeans_profile(dataset, k),
            convex=False,  # EM, not ADMM
            kind="kmeans",
            k=k,
        )
    if model_name in _NN_PROFILES:
        if dataset != "cifar10":
            raise ConfigurationError(f"{model_name} is only profiled on cifar10")
        hidden = _NN_SURROGATES[model_name]
        activation = {"mobilenet": 8 * MB, "resnet50": 42 * MB}[model_name]
        return ModelInfo(
            model_name=model_name,
            dataset=dataset,
            factory=lambda: MLPClassifier(d, hidden, spec.n_classes),
            param_bytes=_NN_PARAM_BYTES[model_name],
            compute=_NN_PROFILES[model_name],
            convex=False,
            kind="supervised",
            activation_bytes_per_instance=activation,
        )
    raise ConfigurationError(
        f"unknown model {model_name!r}; expected lr|svm|kmeans|mobilenet|resnet50"
    )


def build_model(model_name: str, dataset: str, k: int = 10, l2: float = 1e-4):
    """Convenience: `(physical model instance, ModelInfo)`."""
    info = get_model_info(model_name, dataset, k=k, l2=l2)
    return info.factory(), info
