"""ML models trained by the reproduction.

Convex models (logistic regression, linear SVM) and k-means are exact
numpy implementations. MobileNet/ResNet50 are represented by small
neural-network surrogates carrying the paper's *logical* parameter
sizes and compute profiles (see `repro.models.zoo` and DESIGN.md §2).
"""

from repro.models.base import SupervisedModel
from repro.models.kmeans import KMeansModel
from repro.models.linear import LinearSVM, LogisticRegression
from repro.models.nn import MLPClassifier
from repro.models.zoo import ComputeProfile, ModelInfo, build_model, get_model_info

__all__ = [
    "SupervisedModel",
    "LogisticRegression",
    "LinearSVM",
    "KMeansModel",
    "MLPClassifier",
    "ModelInfo",
    "ComputeProfile",
    "build_model",
    "get_model_info",
]
