"""K-means trained by distributed expectation maximisation.

One EM iteration is one epoch (a full pass over the data, §2.1.2).
Workers compute local sufficient statistics (per-cluster sums and
counts); these are aggregated through the communication channel exactly
like gradients, after which every worker recomputes the centroids.

The reported loss is the *relative quantization error*: total squared
distance to the closest centroid divided by the total squared norm of
the data. It is scale- and dimension-free (1.0 = centroids at the
origin explain nothing; ~0.12 on the latent-cluster dense generators
when k matches the structure), which lets experiments state thresholds
that are comparable across datasets.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.utils.rng import make_rng


class KMeansModel:
    """State and math for distributed k-means."""

    def __init__(self, n_features: int, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.n_features = n_features
        self.k = k
        self.n_params = k * n_features
        self.dtype = np.dtype(np.float64)

    # -- initialisation -----------------------------------------------------
    def init_centroids(self, X, rng: np.random.Generator | int = 0) -> np.ndarray:
        """Sample k distinct rows as initial centroids (k-means style)."""
        rng = make_rng(rng)
        n = X.shape[0]
        idx = rng.choice(n, size=min(self.k, n), replace=False)
        rows = X[idx]
        if sparse.issparse(rows):
            rows = rows.toarray()
        centroids = np.asarray(rows, dtype=np.float64)
        if centroids.shape[0] < self.k:
            extra = rng.standard_normal((self.k - centroids.shape[0], self.n_features))
            centroids = np.vstack([centroids, extra])
        return centroids

    # -- E/M steps -----------------------------------------------------------
    def assign(self, centroids: np.ndarray, X) -> tuple[np.ndarray, np.ndarray]:
        """Nearest-centroid labels and squared distances for each row."""
        x_sq = (
            np.asarray(X.multiply(X).sum(axis=1)).ravel()
            if sparse.issparse(X)
            else np.einsum("ij,ij->i", X, X)
        )
        c_sq = np.einsum("ij,ij->i", centroids, centroids)
        cross = X @ centroids.T
        if sparse.issparse(cross):  # pragma: no cover - scipy returns ndarray
            cross = cross.toarray()
        cross = np.asarray(cross)
        d2 = x_sq[:, None] - 2.0 * cross + c_sq[None, :]
        labels = np.argmin(d2, axis=1)
        best = np.maximum(d2[np.arange(X.shape[0]), labels], 0.0)
        return labels, best

    def local_stats(self, centroids: np.ndarray, X) -> dict:
        """Sufficient statistics of one shard for a single EM step."""
        labels, d2 = self.assign(centroids, X)
        k, d = self.k, self.n_features
        sums = np.zeros((k, d))
        for cluster in range(k):
            mask = labels == cluster
            if mask.any():
                block = X[mask]
                if sparse.issparse(block):
                    sums[cluster] = np.asarray(block.sum(axis=0)).ravel()
                else:
                    sums[cluster] = block.sum(axis=0)
        counts = np.bincount(labels, minlength=k).astype(np.float64)
        if sparse.issparse(X):
            sq_norm = float(X.multiply(X).sum())
        else:
            sq_norm = float(np.einsum("ij,ij->", X, X))
        return {
            "sums": sums,
            "counts": counts,
            "sq_dist": float(d2.sum()),
            "sq_norm": sq_norm,
            "n": float(X.shape[0]),
        }

    def merge_stats(self, stats: list[dict]) -> dict:
        return {
            "sums": sum(s["sums"] for s in stats),
            "counts": sum(s["counts"] for s in stats),
            "sq_dist": sum(s["sq_dist"] for s in stats),
            "sq_norm": sum(s["sq_norm"] for s in stats),
            "n": sum(s["n"] for s in stats),
        }

    def update(self, centroids: np.ndarray, merged: dict) -> np.ndarray:
        """New centroids from merged stats; empty clusters keep position."""
        counts = merged["counts"]
        new = centroids.copy()
        nonempty = counts > 0
        new[nonempty] = merged["sums"][nonempty] / counts[nonempty, None]
        return new

    # -- loss -----------------------------------------------------------------
    def loss_from_stats(self, merged: dict) -> float:
        if merged["n"] <= 0 or merged["sq_norm"] <= 0:
            return float("inf")
        return merged["sq_dist"] / merged["sq_norm"]

    def loss(self, centroids: np.ndarray, X) -> float:
        _, d2 = self.assign(centroids, X)
        if sparse.issparse(X):
            sq_norm = float(X.multiply(X).sum())
        else:
            sq_norm = float(np.einsum("ij,ij->", X, X))
        if sq_norm <= 0:
            return float("inf")
        return float(d2.sum() / sq_norm)

    # -- flat-vector plumbing for the communication layer ----------------------
    def flatten(self, centroids: np.ndarray) -> np.ndarray:
        return centroids.reshape(-1)

    def unflatten(self, vec: np.ndarray) -> np.ndarray:
        return vec.reshape(self.k, self.n_features)

    def stats_to_vector(self, stats: dict) -> np.ndarray:
        return np.concatenate(
            [
                stats["sums"].reshape(-1),
                stats["counts"],
                [stats["sq_dist"], stats["sq_norm"], stats["n"]],
            ]
        )

    def vector_to_stats(self, vec: np.ndarray) -> dict:
        k, d = self.k, self.n_features
        return {
            "sums": vec[: k * d].reshape(k, d),
            "counts": vec[k * d : k * d + k],
            "sq_dist": float(vec[k * d + k]),
            "sq_norm": float(vec[k * d + k + 1]),
            "n": float(vec[k * d + k + 2]),
        }
