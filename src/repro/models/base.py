"""Model interface.

Everything distributed optimization needs from a model is a flat
parameter vector plus loss/gradient callables on (params, X, y). The
flat-vector convention keeps the communication layer model-agnostic:
GA-SGD ships gradients, MA-SGD/ADMM ship parameter vectors, k-means
ships sufficient statistics, all as 1-D numpy arrays.
"""

from __future__ import annotations

import abc

import numpy as np


class SupervisedModel(abc.ABC):
    """A differentiable model over a flat parameter vector."""

    #: Number of entries in the flat parameter vector.
    n_params: int
    #: numpy dtype of the parameter vector.
    dtype: np.dtype = np.dtype(np.float64)

    @abc.abstractmethod
    def init_params(self, rng: np.random.Generator) -> np.ndarray:
        """Fresh parameter vector (workers must call with a shared seed)."""

    @abc.abstractmethod
    def loss(self, params: np.ndarray, X, y: np.ndarray) -> float:
        """Mean loss over the given examples (plus regularisation)."""

    @abc.abstractmethod
    def gradient(self, params: np.ndarray, X, y: np.ndarray) -> np.ndarray:
        """Gradient of :meth:`loss` with respect to `params`."""

    def loss_and_gradient(self, params: np.ndarray, X, y: np.ndarray):
        """Override when loss and gradient share work."""
        return self.loss(params, X, y), self.gradient(params, X, y)

    def check_params(self, params: np.ndarray) -> None:
        if params.shape != (self.n_params,):
            raise ValueError(
                f"expected params of shape ({self.n_params},), got {params.shape}"
            )
