"""The replica pool: seeded request traffic on the deterministic engine.

One :class:`ServingRuntime` simulates one serving run: a master process
replays the config's content-addressed arrival trace, a pool of replica
instances serves requests, and the configured autoscaling policy grows
and shrinks the pool from seeded state only. Everything runs on
:class:`repro.simulation.engine.Engine`, so the whole run — every
assignment, cold start, expiry and billing event — is a pure function
of the config and the served model.

Platform economics:

* **FaaS** — a cold replica pays a seeded cold start
  (``faas_startup_seconds(1)`` jittered via the ``serving/cold`` draw
  stream) plus the model download from S3; warm replicas serve from
  memory. Idle replicas are reclaimed through the existing
  :class:`~repro.faas.runtime.FunctionLifetime` machinery: each served
  request renews the keep-warm lease (``reincarnate``), and a reaper
  daemon retires the instance once ``remaining()`` hits zero. Billing
  is per use (GB-seconds + invocations) — idle time is free.
* **IaaS / GPU-IaaS** — always-on VMs: the base fleet is pre-booted
  (no cold-start tail), scale-ups pay the VM boot time, and every
  replica bills instance-hours from provisioning to retirement whether
  or not requests arrive. GPU platforms divide the forward-pass time
  by the model's calibrated GPU ratio (see
  :func:`repro.pricing.platforms.inference_speedup`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.faas.limits import MAX_LIFETIME_S, LambdaLimits, lambda_speed_factor
from repro.faas.runtime import FunctionLifetime, faas_startup_seconds
from repro.faults.plan import unit_draw
from repro.models.zoo import get_model_info
from repro.pricing import CostMeter, DEFAULT_CATALOG, get_platform, inference_speedup
from repro.serving.autoscale import PoolState, make_autoscaler
from repro.serving.config import ServingConfig
from repro.serving.registry import ServedModel
from repro.serving.workload import arrivals_for
from repro.simulation.commands import Compute, Sleep
from repro.simulation.engine import Engine

#: Draw stream for per-provision cold-start jitter.
COLD_STREAM = "serving/cold"


def request_service_seconds(config: ServingConfig, entry: ServedModel) -> float:
    """Per-request service time for the model on the config's platform.

    One forward pass (the model's eval fraction of a training step plus
    the per-step dispatch overhead) divided by the platform's speed-up,
    plus the platform-independent routing overhead.
    """
    compute = get_model_info(entry.model, entry.dataset).compute
    forward = compute.per_iteration_s + compute.eval_fraction * compute.per_instance_s
    platform = get_platform(config.platform, config.instance, config.gpu_instance)
    if platform.kind == "faas":
        speedup = lambda_speed_factor(config.memory_gb)
    else:
        speedup = inference_speedup(platform, compute)
    return forward / speedup + config.request_overhead_s


@dataclass
class _Request:
    index: int
    arrival_s: float


class _Replica:
    """One pool instance and its whole lifecycle bookkeeping."""

    def __init__(self, replica_id: int, provisioned_s: float, cold: bool) -> None:
        self.id = replica_id
        self.provisioned_s = provisioned_s
        self.cold_provisioned = cold
        self.state = "starting"  # starting | idle | busy | retired
        self.ready_s: float | None = None
        self.retired_s: float | None = None
        self.idle_since = 0.0
        self.idle_token = 0
        self.served = 0
        self.busy_s = 0.0
        self.lifetime: FunctionLifetime | None = None  # FaaS keep-warm lease


class ServingRuntime:
    """One deterministic serving run over one registered model."""

    def __init__(
        self,
        config: ServingConfig,
        entry: ServedModel,
        catalog=DEFAULT_CATALOG,
    ) -> None:
        self.config = config
        self.entry = entry
        self.platform = get_platform(
            config.platform, config.instance, config.gpu_instance
        )
        self.meter = CostMeter(catalog)
        self.serve_s = request_service_seconds(config, entry)
        self.arrivals = arrivals_for(config)
        self.engine = Engine()
        self._queue: list[_Request] = []
        self._replicas: list[_Replica] = []
        self._records: dict[int, dict] = {}
        self._autoscaler = make_autoscaler(config)
        self._provisions = 0
        self._cold_starts = 0
        self._peak_live = 0
        # FaaS keep-warm window, expressed through the Lambda limits
        # envelope (a keep-warm lease can't outlive the function wall).
        self._warm_limits = LambdaLimits(
            memory_gb=config.memory_gb,
            lifetime_s=min(config.idle_expiry_s, MAX_LIFETIME_S),
        )

    # -- pool state ----------------------------------------------------
    def _live(self) -> list[_Replica]:
        return [r for r in self._replicas if r.state != "retired"]

    def _idle(self) -> list[_Replica]:
        return [r for r in self._replicas if r.state == "idle"]

    def _state(self) -> PoolState:
        live = self._live()
        return PoolState(
            queued=len(self._queue),
            in_flight=sum(1 for r in live if r.state == "busy"),
            live=len(live),
            idle=sum(1 for r in live if r.state == "idle"),
        )

    # -- provisioning --------------------------------------------------
    def _provision(self, cold: bool) -> None:
        now = self.engine.now
        replica = _Replica(len(self._replicas), now, cold)
        self._replicas.append(replica)
        self._provisions += 1
        if not cold:
            # Pre-booted base fleet of an always-on platform: warm from
            # the first instant, boot billed like any alive time.
            self._make_ready(replica)
            return
        self._cold_starts += 1
        if self.platform.kind == "faas":
            jitter = unit_draw(self.config.seed, COLD_STREAM, self._provisions - 1)
            startup = faas_startup_seconds(1) * (1.0 + self.config.cold_jitter * jitter)
            delay = startup + self.entry.load_seconds
            # Lambda bills the init duration (cold start + model pull).
            self.meter.bill_lambda(self.config.memory_gb, delay)
        else:
            delay = self.platform.boot_s + self.entry.load_seconds
        self.meter.bill_s3_request("get", 1)  # the model object download
        self.engine.spawn(
            self._starter(replica, delay), f"replica-{replica.id}-start"
        )

    def _starter(self, replica: _Replica, delay: float):
        yield Sleep(delay, "startup")
        self._make_ready(replica)
        self._pump()

    def _make_ready(self, replica: _Replica) -> None:
        now = self.engine.now
        replica.state = "idle"
        replica.ready_s = now
        replica.idle_since = now
        if self.platform.kind == "faas":
            replica.lifetime = FunctionLifetime(self._warm_limits, started_at=now)
            self._spawn_reaper(replica)

    def _spawn_reaper(self, replica: _Replica) -> None:
        token = replica.idle_token
        remaining = replica.lifetime.remaining(self.engine.now)

        def reaper():
            yield Sleep(remaining, "idle")
            if (
                replica.state == "idle"
                and replica.idle_token == token
                and replica.lifetime.remaining(self.engine.now) <= 0
            ):
                self._retire(replica)

        self.engine.spawn(reaper(), f"replica-{replica.id}-reaper", daemon=True)

    def _retire(self, replica: _Replica) -> None:
        replica.state = "retired"
        replica.retired_s = self.engine.now

    # -- scaling + assignment ------------------------------------------
    def _reconcile(self) -> None:
        now = self.engine.now
        desired = self._autoscaler.desired(self._state(), now)
        live = self._live()
        while len(live) < desired:
            self._provision(cold=True)
            live = self._live()
        # Scale down by releasing the longest-idle replicas; busy ones
        # finish their request first and are reconsidered on completion.
        # FaaS pools never scale down explicitly: idle warm containers
        # are free, so they are left to the keep-warm expiry instead of
        # being retired into future cold starts.
        if self.platform.kind == "iaas" and len(live) > desired:
            idle = sorted(self._idle(), key=lambda r: (r.idle_since, r.id))
            for replica in idle[: len(live) - desired]:
                self._retire(replica)
        self._peak_live = max(self._peak_live, len(self._live()))

    def _pump(self) -> None:
        while self._queue:
            idle = self._idle()
            if not idle:
                break
            # Most-recently-idle first: keeps the warm set small so the
            # rest of the pool can expire (FaaS) or scale down (IaaS).
            replica = max(idle, key=lambda r: (r.idle_since, r.id))
            request = self._queue.pop(0)
            self._assign(replica, request)
        self._reconcile()

    def _assign(self, replica: _Replica, request: _Request) -> None:
        now = self.engine.now
        replica.state = "busy"
        replica.idle_token += 1
        cold = replica.cold_provisioned and replica.served == 0
        self.engine.spawn(
            self._server(replica, request, start_s=now, cold=cold),
            f"request-{request.index}",
        )

    def _server(self, replica: _Replica, request: _Request, start_s: float, cold: bool):
        yield Compute(self.serve_s, "serve")
        now = self.engine.now
        replica.served += 1
        replica.busy_s += self.serve_s
        if self.platform.kind == "faas":
            self.meter.bill_lambda(self.config.memory_gb, self.serve_s, invocations=1)
        self._records[request.index] = {
            "request": request.index,
            "arrival_s": request.arrival_s,
            "start_s": start_s,
            "completion_s": now,
            "latency_s": now - request.arrival_s,
            "wait_s": start_s - request.arrival_s,
            "serve_s": self.serve_s,
            "replica": replica.id,
            "cold": cold,
        }
        if replica.state == "busy":  # not retired mid-flight
            replica.state = "idle"
            replica.idle_since = now
            replica.idle_token += 1
            if replica.lifetime is not None:
                # The invocation renews the keep-warm lease.
                replica.lifetime.reincarnate(now)
                self._spawn_reaper(replica)
        self._pump()

    # -- the run -------------------------------------------------------
    def _master(self):
        self._reconcile()  # the autoscaler's t=0 fleet (cold on FaaS)
        last = 0.0
        for index, arrival in enumerate(self.arrivals):
            if arrival > last:
                yield Sleep(arrival - last, "idle")
                last = arrival
            self._queue.append(_Request(index, arrival))
            self._pump()

    def run(self) -> tuple[list[dict], dict]:
        """Simulate the whole trace; (per-request records, pool summary)."""
        if self.platform.kind == "iaas":
            # Always-on base fleet: booted before the traffic window.
            for _ in range(self.config.min_replicas):
                self._provision(cold=False)
            self._peak_live = len(self._live())
        self.engine.spawn(self._master(), "serving-master")
        self.engine.run()
        if len(self._records) != len(self.arrivals):
            raise SimulationError(
                f"served {len(self._records)} of {len(self.arrivals)} requests"
            )
        records = [self._records[i] for i in range(len(self.arrivals))]
        return records, self._settle(records)

    def _settle(self, records: list[dict]) -> dict:
        makespan = max(r["completion_s"] for r in records)
        alive_s = 0.0
        busy_s = 0.0
        for replica in self._replicas:
            end = replica.retired_s if replica.retired_s is not None else makespan
            alive_s += max(0.0, end - replica.provisioned_s)
            busy_s += replica.busy_s
            if self.platform.kind == "iaas":
                seconds = max(0.0, end - replica.provisioned_s)
                if seconds > 0:
                    self.meter.bill_vm(self.platform.instance, seconds)
        return {
            "platform": self.platform.name,
            "replicas_provisioned": self._provisions,
            "cold_starts": self._cold_starts,
            "peak_replicas": self._peak_live,
            "alive_s": alive_s,
            "busy_s": busy_s,
            "makespan_s": makespan,
            "serve_s": self.serve_s,
            "total_cost": self.meter.total,
            "cost_breakdown": self.meter.breakdown(),
        }
