"""The model registry: the seam between the training and serving tiers.

A :class:`ServedModel` is what the replica pool needs to know about one
trained model: its logical wire size (what a cold replica downloads
from S3 before it can serve), the per-request forward-pass cost on the
reference worker, a quality tag derived from the training run's final
loss, and what that run cost — the training leg of the end-to-end
$/(model + 1M requests) axis.

Entries are built from :class:`~repro.core.results.RunResult` objects
(in-process pipelines) or persisted sweep artifacts (the figV study),
so a registry never retrains anything: models are content-addressed
training outputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.results import RunResult
from repro.errors import ConfigurationError
from repro.models.zoo import get_model_info

# The S3 envelope a cold replica loads its model through (Table 6:
# ~80 ms request latency, ~65 MB/s per connection — same numbers as
# repro.storage.services.S3Store).
S3_LATENCY_S = 8e-2
S3_BANDWIDTH_BPS = 65 * 1024 * 1024


def model_load_seconds(param_bytes: int) -> float:
    """Time for one cold replica to pull its model out of S3."""
    if param_bytes < 0:
        raise ConfigurationError(f"param_bytes must be >= 0, got {param_bytes}")
    return S3_LATENCY_S + param_bytes / S3_BANDWIDTH_BPS


@dataclass(frozen=True)
class ServedModel:
    """One deployable model: identity, size, quality, provenance."""

    name: str
    model: str
    dataset: str
    param_bytes: int
    final_loss: float
    converged: bool
    quality: str  # "converged@<loss>" | "draft@<loss>"
    training_cost: float  # dollars the training run billed
    training_s: float  # simulated seconds the training run took
    source: str  # training config hash (provenance)

    @property
    def load_seconds(self) -> float:
        return model_load_seconds(self.param_bytes)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "model": self.model,
            "dataset": self.dataset,
            "param_bytes": self.param_bytes,
            "load_seconds": self.load_seconds,
            "final_loss": self.final_loss,
            "converged": self.converged,
            "quality": self.quality,
            "training_cost": self.training_cost,
            "training_s": self.training_s,
            "source": self.source,
        }


def _quality_tag(converged: bool, final_loss: float) -> str:
    return f"{'converged' if converged else 'draft'}@{final_loss:.4f}"


class ModelRegistry:
    """Named, immutable serving entries consuming training-tier outputs."""

    def __init__(self) -> None:
        self._entries: dict[str, ServedModel] = {}

    def register(self, entry: ServedModel) -> ServedModel:
        if entry.name in self._entries:
            raise ConfigurationError(f"model {entry.name!r} is already registered")
        self._entries[entry.name] = entry
        return entry

    def register_result(
        self, name: str, result: RunResult, source: str = "run"
    ) -> ServedModel:
        """Build an entry straight from an in-memory training result."""
        config = result.config
        info = get_model_info(config.model, config.dataset)
        return self.register(
            ServedModel(
                name=name,
                model=config.model,
                dataset=config.dataset,
                param_bytes=info.param_bytes,
                final_loss=result.final_loss,
                converged=result.converged,
                quality=_quality_tag(result.converged, result.final_loss),
                training_cost=result.cost_total,
                training_s=result.duration_s,
                source=source,
            )
        )

    def register_artifact(self, name: str, artifact: dict) -> ServedModel:
        """Build an entry from a persisted sweep artifact (figV path)."""
        config = artifact["config"]
        result = artifact["result"]
        info = get_model_info(config["model"], config["dataset"])
        return self.register(
            ServedModel(
                name=name,
                model=config["model"],
                dataset=config["dataset"],
                param_bytes=info.param_bytes,
                final_loss=result["final_loss"],
                converged=result["converged"],
                quality=_quality_tag(result["converged"], result["final_loss"]),
                training_cost=result["cost_total"],
                training_s=result["duration_s"],
                source=artifact["config_hash"],
            )
        )

    def get(self, name: str) -> ServedModel:
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown model {name!r}; registered: {sorted(self._entries)}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._entries)

    def entries(self) -> list[ServedModel]:
        return [self._entries[name] for name in self.names()]

    def __len__(self) -> int:
        return len(self._entries)
