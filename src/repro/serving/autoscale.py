"""Pluggable autoscaling policies for the replica pool.

A policy sees only the pool's state at the simulated instant it is
consulted (queued/in-flight/live counts) and returns the replica count
the pool should reconcile toward. No wall clock, no randomness — a
policy's whole decision stream is a deterministic function of the
seeded simulation, which is what keeps serving reports byte-stable.

* ``fixed`` — hold exactly ``min_replicas``; the always-on baseline.
* ``concurrency`` — track demand: enough replicas that in-flight plus
  queued requests stay at ``target_concurrency`` per replica
  (Knative-style concurrency targeting).
* ``queue_depth`` — react to backlog with hysteresis: one replica up
  when the queue exceeds a threshold (rate-limited by an up-cooldown),
  one replica down when the pool has been drained for a down-cooldown.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.config import ServingConfig


@dataclass(frozen=True)
class PoolState:
    """What a policy may base its decision on."""

    queued: int  # requests waiting for a replica
    in_flight: int  # requests currently being served
    live: int  # replicas starting + idle + busy
    idle: int  # warm replicas with no request


class Autoscaler:
    """Base policy: clamp to the configured [min, max] band."""

    name = "base"

    def __init__(self, min_replicas: int, max_replicas: int) -> None:
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas

    def _clamp(self, desired: int) -> int:
        return max(self.min_replicas, min(self.max_replicas, desired))

    def desired(self, state: PoolState, now: float) -> int:
        raise NotImplementedError


class FixedScaler(Autoscaler):
    """The always-on baseline: a constant fleet of ``min_replicas``."""

    name = "fixed"

    def desired(self, state: PoolState, now: float) -> int:
        return self.min_replicas


class ConcurrencyScaler(Autoscaler):
    """Size the pool so demand per replica meets the concurrency target."""

    name = "concurrency"

    def __init__(
        self, min_replicas: int, max_replicas: int, target_concurrency: float
    ) -> None:
        super().__init__(min_replicas, max_replicas)
        if target_concurrency <= 0:
            raise ConfigurationError("target_concurrency must be > 0")
        self.target_concurrency = target_concurrency

    def desired(self, state: PoolState, now: float) -> int:
        demand = state.in_flight + state.queued
        return self._clamp(math.ceil(demand / self.target_concurrency))


class QueueDepthScaler(Autoscaler):
    """Backlog-triggered stepping with scale-up/scale-down hysteresis."""

    name = "queue_depth"

    def __init__(
        self,
        min_replicas: int,
        max_replicas: int,
        queue_threshold: int,
        up_cooldown_s: float,
        down_cooldown_s: float,
    ) -> None:
        super().__init__(min_replicas, max_replicas)
        if queue_threshold < 1:
            raise ConfigurationError("queue_threshold must be >= 1")
        self.queue_threshold = queue_threshold
        self.up_cooldown_s = up_cooldown_s
        self.down_cooldown_s = down_cooldown_s
        self._target = min_replicas
        self._last_up = -math.inf
        self._last_down = -math.inf

    def desired(self, state: PoolState, now: float) -> int:
        if (
            state.queued >= self.queue_threshold
            and self._target < self.max_replicas
            and now - self._last_up >= self.up_cooldown_s
        ):
            self._target += 1
            self._last_up = now
        elif (
            state.queued == 0
            and state.in_flight < self._target
            and self._target > self.min_replicas
            and now - self._last_down >= self.down_cooldown_s
            and now - self._last_up >= self.down_cooldown_s
        ):
            self._target -= 1
            self._last_down = now
        return self._clamp(self._target)


def make_autoscaler(config: "ServingConfig") -> Autoscaler:
    """Build the config's policy instance (fresh state per run)."""
    if config.autoscaler == "fixed":
        return FixedScaler(config.min_replicas, config.max_replicas)
    if config.autoscaler == "concurrency":
        return ConcurrencyScaler(
            config.min_replicas, config.max_replicas, config.target_concurrency
        )
    if config.autoscaler == "queue_depth":
        return QueueDepthScaler(
            config.min_replicas,
            config.max_replicas,
            config.queue_threshold,
            config.scale_up_cooldown_s,
            config.scale_down_cooldown_s,
        )
    raise ConfigurationError(
        f"unknown autoscaler {config.autoscaler!r}"
    )
