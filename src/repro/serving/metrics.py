"""Serving-level metrics and the persisted serving report.

Pure functions of the per-request records and pool summary the runtime
produced — no host wall-clock, no engine internals — so a serving
report is byte-identical across hosts and across serial/pooled runs.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.service.metrics import percentile

SERVING_SCHEMA_VERSION = 1


def serving_metrics(records: list[dict], pool: dict) -> dict:
    """Aggregate one serving run into its scorecard."""
    if not records:
        raise SimulationError("serving run produced no request records")
    latencies = [r["latency_s"] for r in records]
    n = len(records)
    cold = sum(1 for r in records if r["cold"])
    alive_s = pool["alive_s"]
    return {
        "requests": n,
        "p50_latency_s": percentile(latencies, 50.0),
        "p99_latency_s": percentile(latencies, 99.0),
        "p999_latency_s": percentile(latencies, 99.9),
        "mean_latency_s": sum(latencies) / n,
        "max_latency_s": max(latencies),
        "cold_starts": pool["cold_starts"],
        "cold_start_fraction": cold / n,
        "replicas_provisioned": pool["replicas_provisioned"],
        "peak_replicas": pool["peak_replicas"],
        "utilization": (pool["busy_s"] / alive_s) if alive_s > 0 else 0.0,
        "makespan_s": pool["makespan_s"],
        "total_cost": pool["total_cost"],
        "cost_per_1m_requests": pool["total_cost"] / n * 1_000_000.0,
    }


def build_serving_report(
    serving_hash: str,
    fingerprint: dict,
    model: dict,
    records: list[dict],
    pool: dict,
) -> dict:
    """The persisted (content-addressed) serving report document."""
    metrics = serving_metrics(records, pool)
    return {
        "schema": SERVING_SCHEMA_VERSION,
        "kind": "serving_report",
        "serving_hash": serving_hash,
        "serving": fingerprint,
        "model": model,
        "requests": records,
        "pool": pool,
        "metrics": metrics,
        "end_to_end_dollars": model["training_cost"] + metrics["cost_per_1m_requests"],
    }


def validate_serving_report(report: dict, expected_hash: str | None = None) -> dict:
    """Shape-check a loaded serving report (resume path); raises on mismatch."""
    required = {
        "schema", "kind", "serving_hash", "serving", "model",
        "requests", "pool", "metrics", "end_to_end_dollars",
    }
    if not isinstance(report, dict) or not required <= set(report):
        missing = required - set(report) if isinstance(report, dict) else required
        raise SimulationError(f"serving report missing sections: {sorted(missing)}")
    if report["schema"] != SERVING_SCHEMA_VERSION:
        raise SimulationError(
            f"serving report schema {report['schema']} != {SERVING_SCHEMA_VERSION}"
        )
    if report["kind"] != "serving_report":
        raise SimulationError(f"not a serving report: kind={report['kind']!r}")
    if expected_hash is not None and report["serving_hash"] != expected_hash:
        raise SimulationError(
            f"serving report hash {report['serving_hash']} != {expected_hash}"
        )
    if not isinstance(report["requests"], list) or not report["requests"]:
        raise SimulationError("serving report has no request records")
    return report


def format_serving_report(report: dict) -> str:
    """Render a serving report the way the experiment tables are rendered."""
    from repro.experiments.report import format_table

    metrics = report["metrics"]
    serving = report["serving"]
    model = report["model"]
    table = format_table(
        f"Serving report ({serving.get('platform', '?')} x "
        f"{serving.get('traffic', '?')} x {serving.get('autoscaler', '?')}, "
        f"{metrics['requests']} requests)",
        ["metric", "value"],
        [
            ["p50 latency (s)", metrics["p50_latency_s"]],
            ["p99 latency (s)", metrics["p99_latency_s"]],
            ["p99.9 latency (s)", metrics["p999_latency_s"]],
            ["cold-start fraction", metrics["cold_start_fraction"]],
            ["replica utilization", metrics["utilization"]],
            ["peak replicas", metrics["peak_replicas"]],
            ["$ / 1M requests", metrics["cost_per_1m_requests"]],
        ],
    )
    summary = (
        f"model {model['name']} ({model['quality']}, "
        f"{model['param_bytes'] / (1024 * 1024):.3g} MB, "
        f"load {model['load_seconds']:.3g} s) | "
        f"training ${model['training_cost']:.4g} + serving "
        f"${metrics['cost_per_1m_requests']:.4g}/1M req = "
        f"${report['end_to_end_dollars']:.4g} end-to-end"
    )
    return f"{table}\n{summary}"
