"""ServingConfig: the declarative surface of the inference tier.

Exactly like ``TrainingConfig`` and ``ServiceConfig``, every init field
carries ``_cli`` metadata so ``repro.cli infer`` derives its flags
mechanically — config and CLI cannot drift, and the parity test in
tests/test_cli.py pins the bijection.

A serving config describes the whole train-then-serve pipeline for one
model: the (scaled-down) training run that produces the model, the
seeded request traffic that hits it (shape, rate, length), the hosting
platform (FaaS functions vs always-on CPU/GPU VMs), and the autoscaling
policy that grows and shrinks the replica pool. It is content-addressed
(:func:`serving_fingerprint`), which is what makes serving reports
resumable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.config import DEFAULT_SEED
from repro.core.config import _cli
from repro.errors import ConfigurationError
from repro.faas.limits import MAX_MEMORY_GB
from repro.pricing.platforms import SERVING_PLATFORMS
from repro.utils.hashing import fingerprint_hash

PLATFORM_NAMES = tuple(sorted(SERVING_PLATFORMS))  # faas | gpu_iaas | iaas
TRAFFIC_SHAPES = ("poisson", "diurnal", "bursty")
AUTOSCALER_NAMES = ("fixed", "concurrency", "queue_depth")


@dataclass(frozen=True)
class ServingConfig:
    """One train-then-serve pipeline run (model x traffic x platform)."""

    # -- the served model (and the training run that produces it) ------
    model: str = field(
        default="mobilenet", metadata=_cli("model to train and serve")
    )
    dataset: str = field(
        default="cifar10", metadata=_cli("dataset the model is trained on")
    )
    train_workers: int = field(
        default=4, metadata=_cli("workers for the training run")
    )
    train_epochs: float = field(
        default=1.0, metadata=_cli("epoch budget for the training run")
    )
    data_scale: int = field(
        default=200,
        metadata=_cli("training dataset scale-down divisor"),
    )

    # -- request traffic ----------------------------------------------
    traffic: str = field(
        default="poisson",
        metadata=_cli("request arrival shape", TRAFFIC_SHAPES),
    )
    rate_rps: float = field(
        default=20.0, metadata=_cli("mean request arrival rate (requests/s)")
    )
    requests: int = field(
        default=600, metadata=_cli("number of requests to serve")
    )
    diurnal_period_s: float = field(
        default=30.0,
        metadata=_cli("sinusoid period of the diurnal shape (s)"),
    )
    diurnal_amplitude: float = field(
        default=0.8,
        metadata=_cli("relative amplitude of the diurnal sinusoid, in [0, 1)"),
    )
    burst_every_s: float = field(
        default=10.0, metadata=_cli("spike spacing of the bursty shape (s)")
    )
    burst_len_s: float = field(
        default=1.0, metadata=_cli("spike duration of the bursty shape (s)")
    )
    burst_factor: float = field(
        default=6.0,
        metadata=_cli("rate multiplier inside a bursty spike"),
    )

    # -- replica pool + platform --------------------------------------
    platform: str = field(
        default="faas",
        metadata=_cli("hosting platform for replicas", PLATFORM_NAMES),
    )
    autoscaler: str = field(
        default="concurrency",
        metadata=_cli("replica autoscaling policy", AUTOSCALER_NAMES),
    )
    min_replicas: int = field(
        default=1, metadata=_cli("replicas the pool never drops below")
    )
    max_replicas: int = field(
        default=16, metadata=_cli("replicas the pool never grows beyond")
    )
    target_concurrency: float = field(
        default=2.0,
        metadata=_cli("in-flight requests per replica the concurrency "
                      "policy aims for"),
    )
    queue_threshold: int = field(
        default=4,
        metadata=_cli("queued requests that trigger a queue-depth scale-up"),
    )
    scale_up_cooldown_s: float = field(
        default=2.0,
        metadata=_cli("hysteresis: minimum gap between queue-depth scale-ups"),
    )
    scale_down_cooldown_s: float = field(
        default=30.0,
        metadata=_cli("hysteresis: minimum gap between queue-depth scale-downs"),
    )
    idle_expiry_s: float = field(
        default=120.0,
        metadata=_cli("idle time after which a warm FaaS replica is reclaimed"),
    )
    memory_gb: float = field(
        default=3.0, metadata=_cli("memory of each FaaS replica (GB)")
    )
    cold_jitter: float = field(
        default=0.3,
        metadata=_cli("relative seeded jitter on FaaS cold-start latency"),
    )
    instance: str = field(
        default="c5.xlarge", metadata=_cli("EC2 instance type for --platform iaas")
    )
    gpu_instance: str = field(
        default="g4dn.xlarge",
        metadata=_cli("EC2 instance type for --platform gpu_iaas"),
    )
    request_overhead_s: float = field(
        default=0.002,
        metadata=_cli("per-request routing/network overhead (s), "
                      "platform-independent"),
    )
    seed: int = field(
        default=DEFAULT_SEED,
        metadata=_cli("seed for traffic, cold-start jitter and training"),
    )

    def __post_init__(self) -> None:
        if self.platform not in PLATFORM_NAMES:
            raise ConfigurationError(
                f"unknown platform {self.platform!r}; expected one of {PLATFORM_NAMES}"
            )
        if self.traffic not in TRAFFIC_SHAPES:
            raise ConfigurationError(
                f"unknown traffic shape {self.traffic!r}; "
                f"expected one of {TRAFFIC_SHAPES}"
            )
        if self.autoscaler not in AUTOSCALER_NAMES:
            raise ConfigurationError(
                f"unknown autoscaler {self.autoscaler!r}; "
                f"expected one of {AUTOSCALER_NAMES}"
            )
        if self.rate_rps <= 0:
            raise ConfigurationError("--rate-rps must be > 0")
        if self.requests < 1:
            raise ConfigurationError("--requests must be >= 1")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ConfigurationError("--diurnal-amplitude must be in [0, 1)")
        if self.diurnal_period_s <= 0:
            raise ConfigurationError("--diurnal-period-s must be > 0")
        if not 0 < self.burst_len_s <= self.burst_every_s:
            raise ConfigurationError(
                "--burst-len-s must be in (0, --burst-every-s]"
            )
        if self.burst_factor < 1:
            raise ConfigurationError("--burst-factor must be >= 1")
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ConfigurationError(
                "need 1 <= --min-replicas <= --max-replicas"
            )
        if self.target_concurrency <= 0:
            raise ConfigurationError("--target-concurrency must be > 0")
        if self.queue_threshold < 1:
            raise ConfigurationError("--queue-threshold must be >= 1")
        if self.scale_up_cooldown_s < 0 or self.scale_down_cooldown_s < 0:
            raise ConfigurationError("scale cooldowns must be >= 0")
        if self.idle_expiry_s <= 0:
            raise ConfigurationError("--idle-expiry-s must be > 0")
        if not 0 < self.memory_gb <= MAX_MEMORY_GB:
            raise ConfigurationError(
                f"--memory-gb must be in (0, {MAX_MEMORY_GB}]"
            )
        if self.cold_jitter < 0:
            raise ConfigurationError("--cold-jitter must be >= 0")
        if self.request_overhead_s < 0:
            raise ConfigurationError("--request-overhead-s must be >= 0")

    def train_kwargs(self) -> dict:
        """The ``TrainingConfig`` kwargs of the pipeline's training leg.

        NN surrogates get the minibatch recipe: a full-batch gradient at
        serving data scales both exceeds the Lambda memory wall and
        diverges, so they train ga_sgd with small per-worker batches.
        """
        kwargs = dict(
            model=self.model,
            dataset=self.dataset,
            workers=self.train_workers,
            max_epochs=self.train_epochs,
            data_scale=self.data_scale,
            seed=self.seed,
        )
        if self.model in ("mobilenet", "resnet50"):
            kwargs.update(
                algorithm="ga_sgd", system="lambdaml", channel="memcached",
                batch_size=32, batch_scope="per_worker", lr=0.01,
            )
        return kwargs


def serving_fingerprint(config: ServingConfig) -> dict:
    """Every init field, for content addressing (mirrors config_fingerprint)."""
    return {f.name: getattr(config, f.name) for f in fields(config) if f.init}


def serving_hash(config: ServingConfig) -> str:
    return fingerprint_hash(serving_fingerprint(config))
