"""The serving tier: traffic-driven inference simulation on the engine.

The public entry point is :class:`repro.api.ServingSession` (and the
``repro.cli infer`` command); this package holds the mechanism — the
model registry bridging training outputs into deployable entries, the
seeded traffic shapes, the autoscaled replica pool with FaaS cold-start
economics, and the serving scorecard.
"""

from repro.serving.autoscale import (
    Autoscaler,
    ConcurrencyScaler,
    FixedScaler,
    PoolState,
    QueueDepthScaler,
    make_autoscaler,
)
from repro.serving.config import (
    AUTOSCALER_NAMES,
    PLATFORM_NAMES,
    TRAFFIC_SHAPES,
    ServingConfig,
    serving_fingerprint,
    serving_hash,
)
from repro.serving.metrics import (
    build_serving_report,
    format_serving_report,
    serving_metrics,
    validate_serving_report,
)
from repro.serving.registry import ModelRegistry, ServedModel, model_load_seconds
from repro.serving.runtime import ServingRuntime, request_service_seconds
from repro.serving.workload import (
    TRAFFIC_STREAM,
    arrivals_for,
    request_arrivals,
    traffic_trace,
)

__all__ = [
    "AUTOSCALER_NAMES",
    "Autoscaler",
    "ConcurrencyScaler",
    "FixedScaler",
    "ModelRegistry",
    "PLATFORM_NAMES",
    "PoolState",
    "QueueDepthScaler",
    "ServedModel",
    "ServingConfig",
    "ServingRuntime",
    "TRAFFIC_SHAPES",
    "TRAFFIC_STREAM",
    "arrivals_for",
    "build_serving_report",
    "format_serving_report",
    "make_autoscaler",
    "model_load_seconds",
    "request_arrivals",
    "request_service_seconds",
    "serving_fingerprint",
    "serving_hash",
    "serving_metrics",
    "traffic_trace",
    "validate_serving_report",
]
