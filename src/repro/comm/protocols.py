"""Synchronization protocols (paper Section 3.2.4).

*Synchronous* (BSP): realised by the patterns themselves — the merging
phase is the WaitKeyCount on per-round part files, the updating phase
is the WaitKey on the merged file. Executors simply run one pattern
exchange per round.

*Asynchronous* (the paper's S-ASP, after SIREN): one global model lives
in the storage channel; each worker independently reads it, trains
locally, and writes it back, with no coordination. The helpers below
implement the read/write halves plus the stop-flag convention workers
use to learn that someone reached the loss threshold.
"""

from __future__ import annotations

import numpy as np

from repro.simulation.commands import Get, ListKeys, Put
from repro.storage.base import ObjectStore
from repro.utils.serialization import SizedPayload, unwrap

GLOBAL_MODEL_KEY = "global/model"
STOP_KEY = "global/stop"


def seed_global_model(store: ObjectStore, vector: np.ndarray, logical_nbytes: int) -> None:
    """Place the initial global model (driver-side, zero simulated time)."""
    store.seed_object(GLOBAL_MODEL_KEY, SizedPayload(vector, logical_nbytes))


def async_read_model(store: ObjectStore):
    """Generator: fetch the current global model (possibly stale)."""
    obj = yield Get(store, GLOBAL_MODEL_KEY)
    return np.asarray(unwrap(obj), dtype=np.float64)


def async_write_model(store: ObjectStore, vector: np.ndarray, logical_nbytes: int):
    """Generator: publish a new global model (last writer wins)."""
    yield Put(store, GLOBAL_MODEL_KEY, SizedPayload(vector, logical_nbytes))
    return None


def async_signal_stop(store: ObjectStore, rank: int):
    """Generator: tell the other workers the loss threshold was reached."""
    yield Put(store, STOP_KEY, int(rank))
    return None


def async_should_stop(store: ObjectStore):
    """Generator: check whether any worker has signalled convergence."""
    keys = yield ListKeys(store, STOP_KEY)
    return bool(keys)
