"""Vector aggregation helpers shared by the communication patterns."""

from __future__ import annotations

import numpy as np

from repro.errors import CommunicationError


def reduce_vectors(vectors: list[np.ndarray], reduce: str) -> np.ndarray:
    """Element-wise mean or sum of equal-length vectors.

    The fold is an explicit sequential accumulation in list order, not
    ``np.stack(...).mean(axis=0)``: numpy's reductions pick a summation
    strategy (sequential vs pairwise/unrolled) from the *array shape*,
    so the same contributions reduced as ``(w, 1)`` chunks vs one
    ``(w, d)`` block can differ in the last ulp once ``w > 8``. Every
    aggregation path (AllReduce leader, ScatterReduce slice reducers,
    the IaaS collective) folds through here, which makes the merged
    floats a function of the contribution *order alone* — independent
    of how a pattern chunks the vector. The replay substrate's
    trace-sharing across patterns/platforms relies on exactly that.
    """
    if not vectors:
        raise CommunicationError("nothing to reduce")
    first = vectors[0]
    for v in vectors[1:]:
        if v.shape != first.shape:
            raise CommunicationError(
                f"shape mismatch in reduction: {v.shape} vs {first.shape}"
            )
    acc = np.array(vectors[0], dtype=np.float64, copy=True)
    for v in vectors[1:]:
        acc += np.asarray(v, dtype=np.float64)
    if reduce == "mean":
        acc /= len(vectors)
        return acc
    if reduce == "sum":
        return acc
    raise CommunicationError(f"unknown reduction {reduce!r}; expected mean|sum")


def split_chunks(vector: np.ndarray, parts: int) -> list[np.ndarray]:
    """Split a vector into `parts` nearly equal chunks (ScatterReduce)."""
    if parts < 1:
        raise CommunicationError(f"parts must be >= 1, got {parts}")
    return [np.asarray(c) for c in np.array_split(vector, parts)]
