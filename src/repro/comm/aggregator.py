"""Vector aggregation helpers shared by the communication patterns."""

from __future__ import annotations

import numpy as np

from repro.errors import CommunicationError


def reduce_vectors(vectors: list[np.ndarray], reduce: str) -> np.ndarray:
    """Element-wise mean or sum of equal-length vectors."""
    if not vectors:
        raise CommunicationError("nothing to reduce")
    first = vectors[0]
    for v in vectors[1:]:
        if v.shape != first.shape:
            raise CommunicationError(
                f"shape mismatch in reduction: {v.shape} vs {first.shape}"
            )
    stacked = np.stack([np.asarray(v, dtype=np.float64) for v in vectors])
    if reduce == "mean":
        return stacked.mean(axis=0)
    if reduce == "sum":
        return stacked.sum(axis=0)
    raise CommunicationError(f"unknown reduction {reduce!r}; expected mean|sum")


def split_chunks(vector: np.ndarray, parts: int) -> list[np.ndarray]:
    """Split a vector into `parts` nearly equal chunks (ScatterReduce)."""
    if parts < 1:
        raise CommunicationError(f"parts must be >= 1, got {parts}")
    return [np.asarray(c) for c in np.array_split(vector, parts)]
