"""FaaS communication: patterns over storage channels + protocols."""

from repro.comm.aggregator import reduce_vectors, split_chunks
from repro.comm.patterns import allreduce, scatter_reduce
from repro.comm.protocols import async_read_model, async_write_model

__all__ = [
    "reduce_vectors",
    "split_chunks",
    "allreduce",
    "scatter_reduce",
    "async_read_model",
    "async_write_model",
]
