"""AllReduce and ScatterReduce over a storage channel (Figure 4).

Both are generator functions used with `yield from` inside executor
processes. They move :class:`SizedPayload`-wrapped vectors so the
simulated wire carries the paper's *logical* model size even though the
physical surrogate arrays are smaller.

AllReduce: every worker PUTs its update; the leader (rank 0) waits for
all parts, GETs them sequentially (this serial read is exactly the
single-reducer bottleneck Table 3 exposes on ResNet50), merges, and
PUTs one merged file; everyone else polls for and GETs the merged file.

ScatterReduce: every worker is the reducer of one 1/w slice; each
worker PUTs w-1 chunk files, reduces its own slice, PUTs the merged
slice, then GETs the other w-1 merged slices.

Keys embed (epoch-independent) round ids, mirroring the file-naming
scheme of the paper's synchronous protocol (§3.2.4). After merging,
the leader discards consumed part files — zero-simulated-time
housekeeping so long runs do not accumulate memory.
"""

from __future__ import annotations

import numpy as np

from repro.comm.aggregator import reduce_vectors, split_chunks
from repro.simulation.commands import Compute, Get, Put, WaitKey, WaitKeyCount
from repro.storage.base import ObjectStore
from repro.utils.serialization import SizedPayload, unwrap

# Effective memory bandwidth for merging vectors on a worker, used to
# charge the reducer's aggregation compute (noticeable for 89 MB
# ResNet-sized payloads, negligible for linear models).
MERGE_BYTES_PER_SECOND = 2e9

POLL_INTERVAL_S = 0.05


def _merge_seconds(total_bytes: float) -> float:
    return total_bytes / MERGE_BYTES_PER_SECOND


def allreduce(
    store: ObjectStore,
    rank: int,
    workers: int,
    round_id: str,
    vector: np.ndarray,
    logical_nbytes: int,
    reduce: str = "mean",
    poll_interval: float = POLL_INTERVAL_S,
):
    """Generator: aggregate `vector` across workers; returns merged vector."""
    prefix = f"ar/{round_id}/part_"
    merged_key = f"ar/{round_id}/merged"
    yield Put(store, f"{prefix}{rank:05d}", SizedPayload(vector, logical_nbytes))

    if rank == 0:
        yield WaitKeyCount(store, prefix, workers, poll_interval, category="merge")
        parts = []
        for peer in range(workers):
            obj = yield Get(store, f"{prefix}{peer:05d}")
            parts.append(unwrap(obj))
        merged = reduce_vectors(parts, reduce)
        yield Compute(_merge_seconds(logical_nbytes * workers), category="merge")
        yield Put(store, merged_key, SizedPayload(merged, logical_nbytes))
        for peer in range(workers):
            store.discard(f"{prefix}{peer:05d}")
        return merged

    yield WaitKey(store, merged_key, poll_interval)
    obj = yield Get(store, merged_key)
    return unwrap(obj)


def scatter_reduce(
    store: ObjectStore,
    rank: int,
    workers: int,
    round_id: str,
    vector: np.ndarray,
    logical_nbytes: int,
    reduce: str = "mean",
    poll_interval: float = POLL_INTERVAL_S,
):
    """Generator: ScatterReduce aggregation; returns full merged vector."""
    if workers == 1:
        # Degenerate case: nothing to exchange.
        return np.asarray(vector, dtype=np.float64)

    chunks = split_chunks(vector, workers)
    chunk_bytes = max(1, logical_nbytes // workers)

    # Scatter: send chunk j to its reducer (worker j). Own chunk stays local.
    for peer in range(workers):
        if peer == rank:
            continue
        key = f"sr/{round_id}/for_{peer:05d}/from_{rank:05d}"
        yield Put(store, key, SizedPayload(chunks[peer], chunk_bytes))

    # Reduce my slice: wait for w-1 foreign contributions.
    my_prefix = f"sr/{round_id}/for_{rank:05d}/"
    yield WaitKeyCount(store, my_prefix, workers - 1, poll_interval, category="merge")
    contributions = [chunks[rank]]
    for peer in range(workers):
        if peer == rank:
            continue
        obj = yield Get(store, f"sr/{round_id}/for_{rank:05d}/from_{peer:05d}")
        contributions.append(unwrap(obj))
    merged_chunk = reduce_vectors(contributions, reduce)
    yield Compute(_merge_seconds(chunk_bytes * workers), category="merge")
    yield Put(store, f"sr/{round_id}/merged_{rank:05d}", SizedPayload(merged_chunk, chunk_bytes))
    for peer in range(workers):
        if peer != rank:
            store.discard(f"sr/{round_id}/for_{rank:05d}/from_{peer:05d}")

    # Gather: collect everyone's merged slice to rebuild the full vector.
    yield WaitKeyCount(store, f"sr/{round_id}/merged_", workers, poll_interval)
    merged_parts: list[np.ndarray] = []
    for peer in range(workers):
        if peer == rank:
            merged_parts.append(merged_chunk)
            continue
        obj = yield Get(store, f"sr/{round_id}/merged_{peer:05d}")
        merged_parts.append(unwrap(obj))
    return np.concatenate(merged_parts)


PATTERNS = {
    "allreduce": allreduce,
    "scatterreduce": scatter_reduce,
}
