"""AllReduce and ScatterReduce over a storage channel (Figure 4).

Both are generator functions used with `yield from` inside executor
processes. They move :class:`SizedPayload`-wrapped vectors so the
simulated wire carries the paper's *logical* model size even though the
physical surrogate arrays are smaller.

AllReduce: every worker PUTs its update; the leader (rank 0) waits for
all parts, GETs them sequentially (this serial read is exactly the
single-reducer bottleneck Table 3 exposes on ResNet50), merges, and
PUTs one merged file; everyone else polls for and GETs the merged file.

ScatterReduce: every worker is the reducer of one 1/w slice; each
worker PUTs w-1 chunk files, reduces its own slice, PUTs the merged
slice, then GETs the other w-1 merged slices.

Keys embed (epoch-independent) round ids, mirroring the file-naming
scheme of the paper's synchronous protocol (§3.2.4). After merging,
the leader discards consumed part files — zero-simulated-time
housekeeping so long runs do not accumulate memory.
"""

from __future__ import annotations

from weakref import WeakKeyDictionary

import numpy as np

from repro.comm.aggregator import reduce_vectors, split_chunks
from repro.simulation.commands import Compute, Get, Put, WaitKey, WaitKeyCount
from repro.storage.base import ObjectStore
from repro.utils.serialization import SizedPayload, unwrap

# Effective memory bandwidth for merging vectors on a worker, used to
# charge the reducer's aggregation compute (noticeable for 89 MB
# ResNet-sized payloads, negligible for linear models).
MERGE_BYTES_PER_SECOND = 2e9

POLL_INTERVAL_S = 0.05


def _merge_seconds(total_bytes: float) -> float:
    return total_bytes / MERGE_BYTES_PER_SECOND


# Pending reader counts for round files that are consumed by several
# workers (`ar/.../merged`, `sr/.../merged_{rank}`): the last reader
# discards the file, so long runs do not accumulate one object per
# round per pattern. Keyed weakly by store so state dies with the run.
_PENDING_READS: "WeakKeyDictionary[ObjectStore, dict[str, int]]" = WeakKeyDictionary()


def round_index_of_key(key: str) -> int | None:
    """The communication round a round-file key belongs to, or None.

    Both patterns name their temporaries ``ar/<round_id>/...`` and
    ``sr/<round_id>/...`` where ``round_id`` starts with the
    zero-padded 8-digit round index (loss exchanges append ``-loss``).
    Anything else — partitions, checkpoints, the ASP global model — is
    not a round file and returns None (retained forever by the GC
    retention window below).
    """
    if not (key.startswith("ar/") or key.startswith("sr/")):
        return None
    digits = key[3:11]
    if len(digits) == 8 and digits.isdigit() and key[11:12] in ("/", "-"):
        return int(digits)
    return None


class RetentionWindow:
    """Crash-safe GC: retain round files until every checkpoint passes.

    Attached to a store by the job context when crash injection is on
    (replacing the old blanket ``gc_enabled = False``). Last-reader
    discards of round files are deferred while their round index is at
    or above ``floor`` — the oldest round any rank's successor could
    still re-execute. When the fault injector observes that *every*
    rank's durable checkpoint has moved past round ``r`` it advances
    the floor, and all round files below it are deleted in one sweep
    (reader counts are useless here: re-executed rounds re-read and
    re-write files in ways a counter armed by the first execution
    cannot track). Keys that are not round files are retained forever,
    exactly as before.
    """

    def __init__(self) -> None:
        self.floor = 0  # rounds below this are collectable
        self.collected = 0  # keys deleted by floor advances (observability)

    def retains(self, key: str) -> bool:
        round_index = round_index_of_key(key)
        return round_index is None or round_index >= self.floor

    def advance(self, store: ObjectStore, floor: int) -> int:
        """Raise the floor to `floor`; delete the rounds that fell below.

        Zero-simulated-time housekeeping, like ``discard``: by the time
        the floor moves past a round, every rank holds a durable
        checkpoint at a later round, so no successor can ever re-read
        these keys. Returns the number of keys deleted.
        """
        removed = 0
        for r in range(self.floor, floor):
            for prefix in (f"ar/{r:08d}", f"sr/{r:08d}"):
                for key in store._do_list(prefix):
                    store._do_delete(key)
                    removed += 1
        self.floor = max(self.floor, floor)
        self.collected += removed
        return removed


def _arm_gc(store: ObjectStore, key: str, readers: int) -> None:
    """Arm the last-reader counter when the shared file is (re)written.

    Producer-initialized on every put, so a retried round that reuses
    a round id on the same store starts from a fresh count instead of
    inheriting a stale, partially decremented one from an aborted run.
    """
    if not store.gc_enabled:
        return
    if store.retention is not None:
        # Crash-injected run: respawned workers re-read and re-write
        # round files in ways reader counts cannot track. The retention
        # window's floor sweep collects dead rounds instead.
        return
    counts = _PENDING_READS.get(store)
    if counts is None:
        counts = {}
        _PENDING_READS[store] = counts
    counts[key] = readers


def _discard_after_last_read(store: ObjectStore, key: str) -> None:
    """Note one completed read of `key`; discard after the last one.

    Safe with respect to simulated time: every reader's lookup happens
    at its Get's *issue* instant, while the discard happens only once
    every armed reader's Get has returned, so no reader can miss the
    object. Zero-time, unbilled housekeeping (see ObjectStore.discard).
    """
    counts = _PENDING_READS.get(store)
    if counts is None:
        return
    remaining = counts.get(key)
    if remaining is None:
        return
    if remaining <= 1:
        del counts[key]
        store.discard(key)
    else:
        counts[key] = remaining - 1


def allreduce(
    store: ObjectStore,
    rank: int,
    workers: int,
    round_id: str,
    vector: np.ndarray,
    logical_nbytes: int,
    reduce: str = "mean",
    poll_interval: float = POLL_INTERVAL_S,
):
    """Generator: aggregate `vector` across workers; returns merged vector."""
    prefix = f"ar/{round_id}/part_"
    merged_key = f"ar/{round_id}/merged"
    yield Put(store, f"{prefix}{rank:05d}", SizedPayload(vector, logical_nbytes))

    if rank == 0:
        yield WaitKeyCount(store, prefix, workers, poll_interval, category="merge")
        parts = []
        for peer in range(workers):
            obj = yield Get(store, f"{prefix}{peer:05d}")
            parts.append(unwrap(obj))
        merged = reduce_vectors(parts, reduce)
        yield Compute(_merge_seconds(logical_nbytes * workers), category="merge")
        yield Put(store, merged_key, SizedPayload(merged, logical_nbytes))
        for peer in range(workers):
            store.discard(f"{prefix}{peer:05d}")
        if workers == 1:
            # No followers will ever read (and thus GC) the merged file.
            store.discard(merged_key)
        else:
            _arm_gc(store, merged_key, workers - 1)
        return merged

    yield WaitKey(store, merged_key, poll_interval)
    obj = yield Get(store, merged_key)
    _discard_after_last_read(store, merged_key)
    return unwrap(obj)


def scatter_reduce(
    store: ObjectStore,
    rank: int,
    workers: int,
    round_id: str,
    vector: np.ndarray,
    logical_nbytes: int,
    reduce: str = "mean",
    poll_interval: float = POLL_INTERVAL_S,
):
    """Generator: ScatterReduce aggregation; returns full merged vector."""
    if workers == 1:
        # Degenerate case: nothing to exchange.
        return np.asarray(vector, dtype=np.float64)

    chunks = split_chunks(vector, workers)
    chunk_bytes = max(1, logical_nbytes // workers)
    # Key fragments are reused w-1 times each; building them once keeps
    # string formatting off the w^2-put hot path of large rounds.
    ranks = [f"{peer:05d}" for peer in range(workers)]
    me = ranks[rank]
    base = f"sr/{round_id}/"

    # Scatter: send chunk j to its reducer (worker j). Own chunk stays local.
    for peer in range(workers):
        if peer == rank:
            continue
        key = f"{base}for_{ranks[peer]}/from_{me}"
        yield Put(store, key, SizedPayload(chunks[peer], chunk_bytes))

    # Reduce my slice: wait for w-1 foreign contributions. Contributions
    # are reduced in *rank order* (own chunk slotted at position `rank`,
    # not first): float reduction is order-sensitive at the last ulp,
    # and every aggregation path — AllReduce's leader, this reducer,
    # the IaaS collective (arrivals sorted by process name) — must fold
    # in the same canonical order for a BSP trajectory to be
    # bit-identical across patterns and platforms. The replay substrate
    # relies on exactly that invariant to share one recorded trace per
    # statistical fingerprint across the whole systems grid.
    my_prefix = f"{base}for_{me}/"
    yield WaitKeyCount(store, my_prefix, workers - 1, poll_interval, category="merge")
    contributions = []
    for peer in range(workers):
        if peer == rank:
            contributions.append(chunks[rank])
            continue
        obj = yield Get(store, f"{my_prefix}from_{ranks[peer]}")
        contributions.append(unwrap(obj))
    merged_chunk = reduce_vectors(contributions, reduce)
    yield Compute(_merge_seconds(chunk_bytes * workers), category="merge")
    yield Put(store, f"{base}merged_{me}", SizedPayload(merged_chunk, chunk_bytes))
    _arm_gc(store, f"{base}merged_{me}", workers - 1)
    for peer in range(workers):
        if peer != rank:
            store.discard(f"{my_prefix}from_{ranks[peer]}")

    # Gather: collect everyone's merged slice to rebuild the full vector.
    yield WaitKeyCount(store, f"{base}merged_", workers, poll_interval)
    merged_parts: list[np.ndarray] = []
    for peer in range(workers):
        if peer == rank:
            merged_parts.append(merged_chunk)
            continue
        key = f"{base}merged_{ranks[peer]}"
        obj = yield Get(store, key)
        # Each merged slice is read by the other w-1 workers; the last
        # of them retires it so rounds don't leak one file per rank.
        _discard_after_last_read(store, key)
        merged_parts.append(unwrap(obj))
    return np.concatenate(merged_parts)


PATTERNS = {
    "allreduce": allreduce,
    "scatterreduce": scatter_reduce,
}
