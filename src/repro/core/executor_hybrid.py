"""Hybrid (Cirrus-style) executor: Lambda workers + VM parameter server.

Each worker pushes its minibatch gradient to the PS (which applies the
update under a lock) and pulls the latest model — the right-hand side
of Figure 3. There is no global barrier: like Cirrus's SGD, updates
interleave, so workers check convergence on their local validation
shard and broadcast a stop flag through the PS's key space.

Only gradient-style algorithms make sense against a PS; the driver
restricts this executor to GA-SGD.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.context import JobContext, WorkerOutcome
from repro.faas.runtime import FunctionLifetime
from repro.simulation.commands import Compute, Get, ListKeys, Put, Sleep
from repro.utils.serialization import SizedPayload, unwrap

STOP_PREFIX = "stop/"


def hybrid_worker(ctx: JobContext, rank: int):
    """Lambda worker speaking RPC to the VM parameter server.

    Timing-coupled (PS updates interleave with no barrier), so it only
    ever runs on the exact substrate — see TrainingConfig.timing_coupled.
    """
    cfg = ctx.config
    algo = ctx.stats(rank)
    ps = ctx.ps

    yield Sleep(ctx.startup_s, "startup")
    ctx.lifetimes[rank] = FunctionLifetime(ctx.limits, ctx.engine.now)
    yield Get(ctx.data_store, ctx.partition_key(rank), category="load")
    # The PS VM is still provisioning (~2 min); that gate is start-up
    # time in Figure 10's accounting, not communication.
    if ps.available_at > ctx.engine.now:
        yield Sleep(ps.available_at - ctx.engine.now, "startup")

    yield Compute(ctx.eval_seconds(rank), "compute")
    local_loss = algo.local_loss()
    ctx.record(rank, 0.0, local_loss)

    epoch_float = 0.0
    rounds = 0
    next_eval = 1.0
    while epoch_float < cfg.max_epochs:
        gradient = algo.round_payload()
        yield Compute(ctx.round_seconds(rank), "compute")
        yield Put(
            ps,
            f"grad/{rank:05d}/{rounds:08d}",
            SizedPayload(np.asarray(gradient, dtype=np.float64), ctx.info.param_bytes),
        )
        pulled = yield Get(ps, ps.MODEL_KEY)
        algo.params = np.asarray(unwrap(pulled))
        rounds += 1
        epoch_float += algo.epochs_per_round

        if epoch_float + 1e-9 >= next_eval:
            yield Compute(ctx.eval_seconds(rank), "compute")
            local_loss = algo.local_loss()
            ctx.record(rank, epoch_float, local_loss)
            next_eval = math.floor(epoch_float + 1e-9) + 1.0
            if ctx.converged(local_loss):
                yield Put(ps, f"{STOP_PREFIX}{rank:05d}", int(rank))
                break
            stop_keys = yield ListKeys(ps, STOP_PREFIX)
            if stop_keys:
                break
    return WorkerOutcome(rank, epoch_float, rounds, local_loss)
