"""FaaS (LambdaML) executors: BSP and asynchronous worker loops.

The BSP loop is the paper's job execution sequence (§3.1): load data,
compute statistics, send statistics, aggregate, update, repeat — with
the Figure-5 lifetime monitor checkpointing to S3 and re-invoking when
the 15-minute wall approaches.

Under crash injection (``TrainingConfig.crash_rate`` / ``mttf_s``) the
same Figure-5 machinery turns into *recovery* checkpointing: every
round boundary persists a checkpoint to S3, and a killed worker's
successor incarnation (spawned by :class:`~repro.faults.injector.
FaultInjector` with a :class:`~repro.faults.injector.WorkerResume`)
pays a cold start, re-loads its partition and checkpoint, restores the
substrate snapshot, and resumes the BSP loop mid-run — replaying the
identical statistical stream, so only clocks and dollars move.

The asynchronous loop follows SIREN-style S-ASP (§3.2.4): a single
global model lives in the channel; workers read-modify-write it per
iteration with no coordination, decaying the learning rate 1/sqrt(T).
"""

from __future__ import annotations

import math

import numpy as np

from repro.comm.protocols import (
    async_read_model,
    async_should_stop,
    async_signal_stop,
    async_write_model,
)
from repro.core.bsp_loop import RoundState, bsp_rounds
from repro.core.context import JobContext, WorkerOutcome
from repro.errors import FunctionTimeoutError, TransientStorageError
from repro.faas.checkpoint import Checkpoint, checkpoint_bytes
from repro.faas.runtime import REINVOKE_OVERHEAD_S, FunctionLifetime
from repro.faults.injector import WorkerResume
from repro.simulation.commands import Compute, Get, Put, Sleep
from repro.utils.serialization import SizedPayload


def faas_bsp_worker(ctx: JobContext, rank: int, resume: WorkerResume | None = None):
    """Synchronous LambdaML worker (generator for the engine).

    ``resume`` is only ever passed by the fault injector: it marks this
    generator as the successor of a crashed incarnation, carrying the
    cold-start latency, the substrate snapshot to restore, and the
    round boundary to continue from (``None`` when the predecessor died
    before its first durable checkpoint — then everything restarts, but
    on the restored initial statistical state).
    """
    injector = ctx.fault_injector
    try:
        if resume is None:
            yield Sleep(ctx.startup_s, "startup")
        else:
            yield Sleep(resume.cold_start_s, "startup")
        lifetime = FunctionLifetime(ctx.limits, ctx.engine.now)
        if resume is not None:
            lifetime.incarnations = resume.incarnation
        ctx.lifetimes[rank] = lifetime
        yield Get(ctx.data_store, ctx.partition_key(rank), category="load")

        round_state: RoundState | None = None
        if resume is not None:
            ctx.substrate.restore_rank(rank, resume.snapshot)
            if resume.round_state is not None:
                # State reload: fetch the checkpoint the predecessor wrote.
                yield Get(
                    ctx.data_store, Checkpoint.key_for(rank), category="checkpoint"
                )
                round_state = resume.round_state

        def exchange(round_id: str, wire: np.ndarray, nbytes: int):
            merged = yield from ctx.exchange(rank, round_id, wire, nbytes=nbytes)
            return merged

        def pre_round(state: RoundState):
            """Round-boundary bookkeeping: recovery checkpoint + Figure 5."""
            if injector is not None and injector.should_checkpoint(rank, state.rounds):
                # Persist a recovery checkpoint *before* the round so a
                # crash anywhere inside it resumes from this boundary. The
                # in-memory snapshot is saved only after the Put completes:
                # a checkpoint is recoverable once durable, not before.
                yield from write_checkpoint(
                    ctx, rank, state.epoch_float, state.rounds, state.local_loss
                )
                injector.save_recovery(rank, state, ctx.substrate.snapshot_rank(rank))
            round_estimate = ctx.round_seconds(rank)
            if round_estimate > ctx.limits.lifetime_s - ctx.limits.checkpoint_margin_s:
                raise FunctionTimeoutError(
                    f"a single round needs {round_estimate:.0f}s, which cannot fit in "
                    f"one {ctx.limits.lifetime_s:.0f}s function lifetime "
                    "(the paper's unsupported >15-minute-iteration case)"
                )
            if lifetime.needs_checkpoint(ctx.engine.now, round_estimate):
                yield from checkpoint_and_reinvoke(
                    ctx, rank, ctx.stats(rank), state.epoch_float, state.rounds,
                    state.local_loss,
                )
                lifetime.reincarnate(ctx.engine.now)

        outcome = yield from bsp_rounds(
            ctx, rank, exchange, pre_round=pre_round, resume=round_state
        )
    except TransientStorageError:
        if injector is None or not injector.crashes_enabled:
            raise  # no recovery machinery running: the job fails
        # A storage op gave up past its retry budget: this function
        # dies exactly like a crashed one. Hand off to the injector,
        # which spawns the successor incarnation from the last durable
        # checkpoint; returning a non-WorkerOutcome makes the driver
        # ignore this incarnation's (partial) result.
        injector.recover_from_storage_exhaustion(rank)
        return None
    return outcome


def write_checkpoint(
    ctx: JobContext, rank: int, epoch_float: float, rounds: int, local_loss: float
):
    """Persist one recovery checkpoint to the data store (simulated)."""
    state = Checkpoint(
        rank=rank,
        epoch_float=epoch_float,
        round_index=rounds,
        params=ctx.stats(rank).params.copy(),
        last_local_loss=local_loss,
    )
    nbytes = checkpoint_bytes(ctx.info.param_bytes)
    yield Put(ctx.data_store, state.key(), SizedPayload(state, nbytes), category="checkpoint")
    ctx.checkpoint_count += 1


def checkpoint_and_reinvoke(
    ctx: JobContext, rank: int, algo, epoch_float: float, rounds: int, local_loss: float
):
    """Figure-5 mechanism: save state to S3, self-trigger a successor."""
    state = Checkpoint(
        rank=rank,
        epoch_float=epoch_float,
        round_index=rounds,
        params=algo.params.copy(),
        last_local_loss=local_loss,
    )
    nbytes = checkpoint_bytes(ctx.info.param_bytes)
    yield Put(ctx.data_store, state.key(), SizedPayload(state, nbytes), category="checkpoint")
    # Cold start of the successor function plus reloading the
    # checkpoint; the fault plan's deterministic jitter widens the cold
    # start when the config asks for variance (cold_start_jitter > 0).
    # The invocation number comes from the context's shared counter so
    # lifetime reinvocations and crash respawns never reuse a draw.
    cold = ctx.fault_plan.cold_start_s(
        rank, ctx.next_invocation(rank), REINVOKE_OVERHEAD_S
    )
    yield Sleep(cold, "checkpoint")
    yield Get(ctx.data_store, state.key(), category="checkpoint")
    ctx.checkpoint_count += 1
    ctx.extra_invocations += 1


def faas_async_worker(ctx: JobContext, rank: int):
    """Asynchronous (S-ASP) LambdaML worker.

    Timing-coupled (every read-modify-write interleaves), so it only
    ever runs on the exact substrate — the view below is always a real
    algorithm with a model and a shard.
    """
    cfg = ctx.config
    algo = ctx.stats(rank)
    model = algo.model
    shard = algo.shard
    store = ctx.channel.store
    iters_per_epoch = shard.iterations_per_epoch
    per_iter_s = ctx.round_seconds(rank)  # GA round == one iteration

    yield Sleep(ctx.startup_s, "startup")
    ctx.lifetimes[rank] = FunctionLifetime(ctx.limits, ctx.engine.now)
    yield Get(ctx.data_store, ctx.partition_key(rank), category="load")

    yield Compute(ctx.eval_seconds(rank), "compute")
    params = yield from async_read_model(store)
    params = params.astype(algo.params.dtype)
    local_loss = model.loss(params, shard.X_val, shard.y_val)
    ctx.record(rank, 0.0, local_loss)

    epoch = 0
    rounds = 0
    batches = iter(())
    while epoch < cfg.max_epochs:
        lr_t = cfg.lr / math.sqrt(epoch + 1.0)  # 1/sqrt(T) decay [104]
        for _ in range(iters_per_epoch):
            try:
                X_batch, y_batch = next(batches)
            except StopIteration:
                batches = shard.epoch_batches()
                X_batch, y_batch = next(batches)
            grad = model.gradient(params, X_batch, y_batch)
            params = params - (lr_t * grad).astype(params.dtype, copy=False)
            yield Compute(per_iter_s, "compute")
            yield from async_write_model(store, params, ctx.info.param_bytes)
            fresh = yield from async_read_model(store)
            params = fresh.astype(params.dtype)
            rounds += 1
        epoch += 1
        yield Compute(ctx.eval_seconds(rank), "compute")
        local_loss = model.loss(params, shard.X_val, shard.y_val)
        ctx.record(rank, float(epoch), local_loss)
        if ctx.converged(local_loss):
            yield from async_signal_stop(store, rank)
            break
        stopped = yield from async_should_stop(store)
        if stopped:
            break
    return WorkerOutcome(rank, float(epoch), rounds, local_loss)
