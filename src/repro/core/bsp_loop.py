"""Shared BSP training loop used by the FaaS and IaaS executors.

One communication round:

1. run the algorithm's local computation (charged as simulated compute);
2. exchange the statistic vector (gradient / local model / consensus
   term / k-means sufficient statistics) through the platform's
   aggregation mechanism — the payload is exactly the logical model
   size, matching Table 3's per-exchange measurements;
3. apply the merged statistic;
4. at epoch boundaries, evaluate the local validation loss on the
   freshly merged state and run a tiny (16-byte) loss all-reduce, so
   every worker sees the identical global loss — the stop decision is
   lockstep-consistent and the rendezvous can never deadlock.

The loss exchange costs one extra metadata-sized round per epoch
(negligible next to the model-sized exchanges), and removes any lag
between reaching the threshold and stopping — important for ADMM,
whose rounds span ten epochs.

Fault recovery enters through two seams. The ``pre_round`` hook runs
at every round boundary with the loop's full :class:`RoundState` —
atomically with the loss record that may precede the boundary, since
no command is yielded in between — which is where the FaaS executor
persists its recovery checkpoint. A respawned incarnation then passes
that state back via ``resume``: the loop skips the baseline
evaluation (its record survived the crash) and continues from the
checkpointed round, with the substrate restored so the re-executed
statistics are bit-identical to what the dead incarnation would have
computed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Generator

import numpy as np

from repro.core.context import JobContext, WorkerOutcome
from repro.simulation.commands import Compute

EPS = 1e-9
LOSS_WIRE_BYTES = 16


@dataclass(frozen=True)
class RoundState:
    """The BSP loop's position at a round boundary (picklable)."""

    epoch_float: float
    rounds: int
    local_loss: float
    global_loss: float


# An exchange callback receives (round_id, wire_vector, logical_nbytes)
# and is itself a generator yielding simulation commands, returning the
# merged vector.
ExchangeFn = Callable[[str, np.ndarray, int], Generator]
# Optional hook run before each round with the loop's RoundState (FaaS
# uses it for the Figure-5 lifetime check and recovery checkpoints).
PreRoundHook = Callable[[RoundState], Generator]


def bsp_rounds(
    ctx: JobContext,
    rank: int,
    exchange: ExchangeFn,
    pre_round: PreRoundHook | None = None,
    resume: RoundState | None = None,
):
    """Generator running BSP rounds to convergence; returns WorkerOutcome."""
    cfg = ctx.config
    algo = ctx.stats(rank)  # substrate view: exact, recording, or replay

    if resume is None:
        # Baseline evaluation (loss at initialisation).
        yield Compute(ctx.eval_seconds(rank), "compute")
        local_loss = algo.local_loss()
        ctx.record(rank, 0.0, local_loss)
        epoch_float = 0.0
        rounds = 0
        global_loss = local_loss
    else:
        # Recovered incarnation: the baseline (and every record up to
        # the checkpoint) is already in the history; pick up mid-run.
        epoch_float = resume.epoch_float
        rounds = resume.rounds
        local_loss = resume.local_loss
        global_loss = resume.global_loss

    while epoch_float < cfg.max_epochs:
        if pre_round is not None:
            yield from pre_round(
                RoundState(epoch_float, rounds, local_loss, global_loss)
            )

        payload = algo.round_payload()
        yield Compute(ctx.round_seconds(rank), "compute")
        wire = np.asarray(payload, dtype=np.float64)
        merged = yield from exchange(f"{rounds:08d}", wire, ctx.wire_bytes)
        algo.apply(merged)

        next_epoch = epoch_float + algo.epochs_per_round
        crossing = math.floor(next_epoch + EPS) > math.floor(epoch_float + EPS)
        rounds += 1
        epoch_float = next_epoch

        if crossing:
            yield Compute(ctx.eval_seconds(rank), "compute")
            local_loss = algo.local_loss()
            loss_wire = np.array([local_loss, 1.0])
            merged_loss = yield from exchange(
                f"{rounds:08d}-loss", loss_wire, LOSS_WIRE_BYTES
            )
            # Mean-reduce yields [mean, 1]; sum-reduce yields [sum, w].
            global_loss = (
                merged_loss[0] / merged_loss[1] if merged_loss[1] > 0 else math.inf
            )
            ctx.record(rank, epoch_float, local_loss)
            if ctx.converged(global_loss):
                break
    return WorkerOutcome(rank, epoch_float, rounds, global_loss)
