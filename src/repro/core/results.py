"""Run results: what every experiment consumes.

A :class:`RunResult` carries the three axes the paper reports —
wall-clock time to the loss threshold, dollar cost, and statistical
trajectory (loss vs time / communication rounds) — plus the Figure-10
style per-phase time breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import TrainingConfig
from repro.simulation.tracing import TimeBreakdown


@dataclass
class LossPoint:
    """One observation of the validation loss during training."""

    time_s: float
    epoch: float
    loss: float
    worker: int


@dataclass
class RunResult:
    """Outcome of one simulated training job."""

    config: TrainingConfig
    converged: bool
    final_loss: float
    duration_s: float
    cost_total: float
    cost_breakdown: dict[str, float]
    epochs: float
    comm_rounds: int
    history: list[LossPoint] = field(default_factory=list)
    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)
    per_worker: list[TimeBreakdown] = field(default_factory=list)
    checkpoints: int = 0
    final_accuracy: float | None = None
    # Structured event-log summary: reliability counters (checkpoints
    # taken, crashes injected, reincarnations/restarts, storage errors
    # and retries, backoff seconds) under the "events" key. Counts of
    # *simulated* events — deterministic, persisted inside artifacts'
    # result section so sweeps record the reliability story per point.
    meta: dict = field(default_factory=dict)

    @property
    def events(self) -> dict:
        return self.meta.get("events", {})

    @property
    def startup_s(self) -> float:
        return self.breakdown.get("startup")

    @property
    def duration_without_startup_s(self) -> float:
        return max(0.0, self.duration_s - self.startup_s)

    def loss_curve(self) -> list[tuple[float, float]]:
        """(time, loss) pairs ordered by time (minimum loss per time)."""
        points = sorted(self.history, key=lambda p: (p.time_s, p.loss))
        return [(p.time_s, p.loss) for p in points]

    def time_to_loss(self, threshold: float) -> float | None:
        """First simulated time at which the loss dipped below threshold."""
        for point in sorted(self.history, key=lambda p: p.time_s):
            if point.loss <= threshold:
                return point.time_s
        return None

    def summary(self) -> str:
        state = "converged" if self.converged else "NOT converged"
        return (
            f"{self.config.describe()}: {state} at loss {self.final_loss:.4f} "
            f"in {self.duration_s:.1f}s (epochs={self.epochs:.1f}, "
            f"rounds={self.comm_rounds}, ${self.cost_total:.4f})"
        )
