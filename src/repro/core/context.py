"""Job context: shared state wiring a training run together.

Built once per run by the driver, the context owns the engine, the cost
meter, the communication channel and all derived timing constants —
the *systems* half of a run. The *statistical* half (dataset shards,
per-worker algorithm state, losses) lives behind the pluggable
substrate (:mod:`repro.substrate`): executors reach it exclusively via
:meth:`JobContext.stats`, so an exact run, a recording run and a
replayed run drive identical command streams through the engine.

Executor generators receive the context plus their rank and interact
with the simulated world exclusively through `yield`ed commands and
context helpers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.config import (
    ANGEL_COMPUTE_FACTOR,
    ANGEL_STARTUP_EXTRA_S,
    TrainingConfig,
    faas_memory_error,
)
from repro.core.results import LossPoint
from repro.comm.patterns import RetentionWindow, allreduce, scatter_reduce
from repro.data.datasets import DatasetSpec, get_spec
from repro.data.loader import Shard
from repro.errors import ConfigurationError, OutOfMemoryError
from repro.faas.limits import LambdaLimits, lambda_speed_factor
from repro.faas.runtime import FunctionLifetime, faas_startup_seconds
from repro.faults.plan import FaultPlan, StorageFaultPolicy
from repro.iaas.cluster import VMCluster
from repro.iaas.mpi import MPICommunicator
from repro.iaas.ps import ParameterServer, make_parameter_server
from repro.iaas.vm import get_instance
from repro.models.zoo import ModelInfo, get_model_info
from repro.optim.base import DistributedAlgorithm
from repro.pricing.meter import CostMeter
from repro.simulation.engine import Engine
from repro.storage.services import Channel, S3Store, make_channel
from repro.substrate import make_substrate
from repro.utils.serialization import SizedPayload



@dataclass
class WorkerOutcome:
    """Returned by executor generators when a worker finishes."""

    rank: int
    epochs: float
    rounds: int
    final_loss: float


class JobContext:
    """Everything a worker generator needs, keyed by rank."""

    def __init__(self, config: TrainingConfig, substrate=None, engine=None) -> None:
        self.config = config
        self.spec: DatasetSpec = get_spec(config.dataset)
        self.info: ModelInfo = get_model_info(
            config.model, config.dataset, k=config.k, l2=config.l2
        )
        # `engine` lets several job graphs share one simulated clock
        # (the multi-tenant service in repro.service); the default — a
        # private engine starting at t=0 — is the classic isolated run.
        # The cost meter is always per-job: on a shared engine it is
        # what makes per-tenant dollars attributable.
        self.engine = Engine() if engine is None else engine
        self.meter = CostMeter()
        self.scale = config.data_scale or self.spec.default_scale

        # The statistical half of the run. Exact/recording substrates
        # synthesize the dataset and build one algorithm per rank;
        # replay builds nothing (`shards`/`algorithms` stay empty) and
        # serves every statistical question from its trace.
        self.substrate = make_substrate(substrate)
        self.substrate.attach(self)
        self.shards: list[Shard] = self.substrate.shards
        self.algorithms: list[DistributedAlgorithm] = self.substrate.algorithms

        # The fault plane: a pure, seeded schedule of crashes, cold
        # starts and transient storage errors (repro.faults). The plan
        # always exists (cheap, empty when all rates are zero); the
        # injector is installed by the driver only when crashes are on.
        self.fault_plan = FaultPlan.from_config(config)
        self.fault_injector = None

        # Training data is staged in S3 for every platform (paper §5.1).
        self.data_store = S3Store(meter=self.meter)
        self._wire_store_faults(self.data_store, "data")
        for rank in range(config.workers):
            self.data_store.seed_object(
                self.partition_key(rank),
                SizedPayload(None, self.spec.partition_bytes(config.workers)),
            )

        # Platform-specific infrastructure, built lazily by the driver.
        self.channel: Channel | None = None
        self.mpi: MPICommunicator | None = None
        self.cluster: VMCluster | None = None
        self.ps: ParameterServer | None = None
        self.limits = LambdaLimits(
            memory_gb=config.lambda_memory_gb, lifetime_s=config.lambda_lifetime_s
        )
        self.lifetimes: dict[int, FunctionLifetime] = {}

        # Shared observability (pure bookkeeping, no simulated effects).
        self.history: list[LossPoint] = []
        self.record_counts: dict[int, int] = {}  # per-rank history entries
        self.checkpoint_count = 0
        self.extra_invocations = 0

        # Worker process registry: `worker_procs[rank]` is the rank's
        # *current* incarnation (the injector swaps it on respawn);
        # `all_worker_procs` keeps every incarnation for billing.
        self.worker_procs: dict[int, object] = {}
        self.all_worker_procs: list = []
        # One authoritative invocation counter per rank, shared by
        # Figure-5 lifetime reinvocations AND crash respawns: both
        # index the same cold/{rank} jitter stream, so a single
        # counter keeps every draw distinct (and documents how many
        # function invocations the rank consumed).
        self._invocations: dict[int, int] = {}

        self._speed_cache: dict[int, float] = {}

    def next_invocation(self, rank: int) -> int:
        """Claim the next invocation number for `rank` (initial run = 1)."""
        count = self._invocations.get(rank, 1) + 1
        self._invocations[rank] = count
        return count

    def _wire_store_faults(self, store, label: str) -> None:
        """Attach the run's fault policy/GC mode to a storage service."""
        if self.fault_plan.storage_faults_enabled:
            store.fault_policy = StorageFaultPolicy(self.fault_plan, label)
        if self.fault_plan.crashes_enabled:
            # Respawned workers re-read round files their predecessor
            # consumed; last-reader GC would make that a deadlock. A
            # retention window defers collection instead: the fault
            # injector advances its floor as checkpoints become
            # durable, and rounds no successor can re-execute are
            # swept — long crash-injected runs stay bounded in memory.
            store.retention = RetentionWindow()

    # ------------------------------------------------------------------
    # Infrastructure setup (called by the driver)
    # ------------------------------------------------------------------
    def setup_faas(self) -> None:
        self.channel = make_channel(
            self.config.channel, meter=self.meter, node=self.config.cache_node
        )
        if self.config.channel_prestarted:
            self.channel.store.available_at = 0.0
        self._wire_store_faults(self.channel.store, "channel")
        self.startup_s = faas_startup_seconds(self.config.workers)
        self._check_faas_memory()

    def setup_iaas(self) -> None:
        self.cluster = VMCluster.build(self.config.instance, self.config.workers)
        self.mpi = MPICommunicator(self.cluster)
        self.startup_s = self.cluster.startup_s
        if self.config.system == "angel":
            self.startup_s += ANGEL_STARTUP_EXTRA_S

    def setup_hybrid(self) -> None:
        self.startup_s = faas_startup_seconds(self.config.workers)
        init = self.stats(0).params.astype(np.float64).copy()
        # The PS applies each worker's gradient; dividing the rate by w
        # keeps the effective step equivalent to one averaged update.
        self.ps = make_parameter_server(
            self.config.ps_instance,
            init_params=init,
            logical_param_bytes=self.info.param_bytes,
            lr=self.config.lr / self.config.workers,
            rpc=self.config.rpc,
            lambda_memory_gb=self.config.lambda_memory_gb,
            meter=self.meter,
        )
        self._check_faas_memory()

    def _check_faas_memory(self) -> None:
        """Enforce the 3 GB Lambda memory envelope (paper §5.2 OOM case).

        The arithmetic lives in :func:`repro.core.config.
        faas_memory_error` so the scenario fuzzer's validity predicate
        and this setup-time check can never disagree.
        """
        error = faas_memory_error(self.config)
        if error is not None:
            raise OutOfMemoryError(error)

    # ------------------------------------------------------------------
    # Statistical substrate
    # ------------------------------------------------------------------
    def stats(self, rank: int):
        """Worker `rank`'s statistical view (the substrate seam).

        Executors must route every statistical call — payloads, loss
        evaluations, round structure — through this, never through
        ``self.algorithms`` directly, so recorded and replayed runs
        stay interchangeable with exact ones.
        """
        return self.substrate.stats(rank)

    # ------------------------------------------------------------------
    # Timing helpers
    # ------------------------------------------------------------------
    def worker_speed(self, rank: int) -> float:
        """Training throughput of worker `rank` vs the reference worker."""
        if rank in self._speed_cache:
            return self._speed_cache[rank]
        cfg = self.config
        if cfg.platform in ("faas", "hybrid"):
            base = lambda_speed_factor(cfg.lambda_memory_gb)
        else:
            instance = get_instance(cfg.instance)
            if instance.gpu and self.info.kind == "supervised" and not self.info.convex:
                # Deep models on GPU instances run at GPU throughput.
                base = (
                    self.info.compute.gpu_speedup_m60
                    if instance.gpu == "m60"
                    else self.info.compute.gpu_speedup_t4
                )
            else:
                base = instance.relative_speed
            if cfg.system == "angel":
                base /= ANGEL_COMPUTE_FACTOR
        jitter = cfg.straggler_jitter
        denom = max(1, cfg.workers - 1)
        speed = base / (1.0 + jitter * rank / denom)
        self._speed_cache[rank] = speed
        return speed

    def _work_seconds(self, rank: int, instances: float, iterations: float) -> float:
        profile = self.info.compute
        raw = instances * profile.per_instance_s + iterations * profile.per_iteration_s
        return raw / self.worker_speed(rank)

    def round_seconds(self, rank: int) -> float:
        instances, iterations = self.stats(rank).round_work()
        # Compute profiles are calibrated on *logical* data volumes.
        return self._work_seconds(rank, instances * self.scale, iterations)

    def eval_seconds(self, rank: int) -> float:
        instances, iterations = self.stats(rank).eval_work()
        profile = self.info.compute
        raw = (
            instances * self.scale * profile.per_instance_s * profile.eval_fraction
            + iterations * profile.per_iteration_s
        )
        return raw / self.worker_speed(rank)

    def epoch_seconds(self, rank: int) -> float:
        """One full local training epoch (asynchronous executor)."""
        shard = self.shards[rank]
        return self._work_seconds(
            rank, shard.n_rows * self.scale, shard.iterations_per_epoch
        )

    # ------------------------------------------------------------------
    # Communication helpers
    # ------------------------------------------------------------------
    @property
    def wire_bytes(self) -> int:
        """Logical bytes of one statistic payload."""
        if self.info.kind == "kmeans":
            # Sufficient statistics: per-cluster sums + counts.
            return self.info.k * (self.spec.n_features + 1) * 8
        return self.info.param_bytes

    def exchange(
        self, rank: int, round_id: str, wire: np.ndarray, nbytes: int | None = None
    ) -> Iterator:
        """Generator: one synchronous FaaS exchange via the channel."""
        if self.channel is None:
            raise ConfigurationError("FaaS exchange requires a channel")
        pattern = allreduce if self.config.pattern == "allreduce" else scatter_reduce
        return pattern(
            self.channel.store,
            rank,
            self.config.workers,
            round_id,
            wire,
            logical_nbytes=self.wire_bytes if nbytes is None else nbytes,
            reduce=self.stats(rank).reduce,
            poll_interval=self.config.poll_interval_s,
        )

    def partition_key(self, rank: int) -> str:
        return f"data/{self.config.dataset}/part_{rank:05d}"

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def record(self, rank: int, epoch: float, loss: float) -> None:
        if not math.isfinite(loss):
            loss = float("inf")
        self.history.append(
            LossPoint(time_s=self.engine.now, epoch=epoch, loss=loss, worker=rank)
        )
        # Per-rank counts let the fault injector roll back exactly the
        # records a dead incarnation made past its last checkpoint.
        self.record_counts[rank] = self.record_counts.get(rank, 0) + 1

    def fault_events(self) -> dict:
        """Structured reliability summary (RunResult.meta / artifacts)."""
        events = {
            "checkpoints": self.checkpoint_count,
            "lifetime_reinvocations": self.extra_invocations,
            "crashes": 0,
            "reincarnations": 0,
            "restarts": 0,
            "recovery_checkpoints": 0,
            "storage_errors": 0,
            "storage_retries": 0,
            "storage_backoff_s": 0.0,
            "storage_exhaustions": 0,
            "gc_collected_keys": 0,
        }
        if self.fault_injector is not None:
            injected = self.fault_injector.events()
            events["crashes"] = injected["crashes"]
            events["reincarnations"] = injected["reincarnations"]
            events["restarts"] = injected["restarts"]
            events["recovery_checkpoints"] = injected["recovery_checkpoints"]
        stores = [self.data_store]
        if self.channel is not None:
            stores.append(self.channel.store)
        for store in stores:
            events["storage_errors"] += store.fault_events["storage_errors"]
            events["storage_retries"] += store.fault_events["retries"]
            events["storage_backoff_s"] += store.fault_events["backoff_s"]
            events["storage_exhaustions"] += store.fault_events["exhaustions"]
            if store.retention is not None:
                events["gc_collected_keys"] += store.retention.collected
        return events

    def converged(self, loss: float) -> bool:
        threshold = self.config.loss_threshold
        return threshold is not None and math.isfinite(loss) and loss <= threshold
