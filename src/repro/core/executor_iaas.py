"""IaaS executors: distributed PyTorch (and Angel) worker loops.

Workers run the same round-based algorithms as the FaaS executors but
synchronise through MPI/Gloo ring AllReduce between VMs instead of a
storage channel — the architectural difference of Figure 1. The Angel
variant inherits this loop with slower start-up, HDFS-style loading and
a compute penalty (see `repro.core.config`).
"""

from __future__ import annotations

import numpy as np

from repro.core.bsp_loop import bsp_rounds
from repro.core.config import ANGEL_LOAD_FACTOR
from repro.core.context import JobContext
from repro.simulation.commands import Get, Sleep


def iaas_worker(ctx: JobContext, rank: int):
    """Distributed-PyTorch-style worker (generator for the engine)."""
    cfg = ctx.config
    algo = ctx.stats(rank)  # substrate view: exact, recording, or replay

    yield Sleep(ctx.startup_s, "startup")
    load_started = ctx.engine.now
    yield Get(ctx.data_store, ctx.partition_key(rank), category="load")
    if cfg.system == "angel":
        # Angel reads from HDFS, which Figure 10 shows is ~4x slower
        # than the S3 path used by the other systems.
        s3_seconds = ctx.engine.now - load_started
        yield Sleep(s3_seconds * (ANGEL_LOAD_FACTOR - 1.0), "load")

    def exchange(round_id: str, wire: np.ndarray, nbytes: int):
        merged = yield ctx.mpi.allreduce(wire, nbytes, reduce=algo.reduce)
        return merged

    outcome = yield from bsp_rounds(ctx, rank, exchange)
    return outcome
