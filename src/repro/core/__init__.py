"""LambdaML core: configuration, job context, executors, driver."""

from repro.core.config import TrainingConfig
from repro.core.context import JobContext, WorkerOutcome
from repro.core.driver import train
from repro.core.results import LossPoint, RunResult

__all__ = [
    "TrainingConfig",
    "JobContext",
    "WorkerOutcome",
    "train",
    "RunResult",
    "LossPoint",
]
