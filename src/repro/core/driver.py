"""The `train()` driver: build a job, simulate it, bill it, report it.

This is the library's main entry point. Given a
:class:`TrainingConfig` it constructs the simulated infrastructure for
the configured platform, runs the worker processes to completion on the
discrete-event engine, and returns a :class:`RunResult` with runtime,
cost, convergence trajectory and the Figure-10 time breakdown.
"""

from __future__ import annotations

import numpy as np

from repro.comm.protocols import seed_global_model
from repro.core.config import TrainingConfig
from repro.core.context import JobContext, WorkerOutcome
from repro.core.executor_faas import faas_async_worker, faas_bsp_worker
from repro.core.executor_hybrid import hybrid_worker
from repro.core.executor_iaas import iaas_worker
from repro.core.results import RunResult
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.simulation.tracing import TimeBreakdown


def train(config: TrainingConfig, substrate=None) -> RunResult:
    """Run one simulated training job end to end.

    ``substrate`` selects the statistical backend: ``None``/``"exact"``
    for the real numpy path, ``"record"`` (or a
    :class:`~repro.substrate.record.RecordingSubstrate` instance, whose
    ``.trace`` survives the call) to additionally capture a convergence
    trace, or a :class:`~repro.substrate.replay.ReplaySubstrate` to
    re-emit one with zero numpy work — bit-identical duration, cost,
    history and breakdown for BSP configs.
    """
    ctx = JobContext(config, substrate=substrate)
    launch_job(ctx)
    ctx.engine.run()
    return finalize_job(ctx, 0.0, ctx.engine.now)


def launch_job(ctx: JobContext, name_prefix: str = "") -> None:
    """Build `ctx`'s platform and spawn its workers on its engine.

    Extracted from :func:`train` so the multi-tenant service can launch
    many jobs on one *shared* engine: each job keeps its own context
    (stores, meter, fault plan) while its worker processes interleave
    with every other tenant's on one clock. With the default empty
    prefix and a private engine this is exactly the classic path.
    ``name_prefix`` (e.g. ``"tenantA/"``) keeps process names unique
    and attributable in a shared engine's trace.
    """
    executor = _setup_platform(ctx)
    for rank in range(ctx.config.workers):
        proc = ctx.engine.spawn(
            executor(ctx, rank), name=f"{name_prefix}worker-{rank}"
        )
        ctx.worker_procs[rank] = proc
        ctx.all_worker_procs.append(proc)
    if ctx.fault_plan.crashes_enabled:
        ctx.fault_injector = FaultInjector(ctx.fault_plan)
        ctx.fault_injector.install(ctx, executor, name_prefix=name_prefix)


def finalize_job(ctx: JobContext, started_at: float, ended_at: float) -> RunResult:
    """Bill `ctx`'s finished job and assemble its :class:`RunResult`.

    ``started_at``/``ended_at`` are absolute engine instants — 0 and
    ``engine.now`` for an isolated run, the job's admission and last
    worker exit for a service job on a shared clock. Billing and the
    reported duration are computed relative to that window, so a
    tenant pays for its own span, not the service's whole day.
    """
    duration = ended_at - started_at
    _bill_job(ctx, ctx.all_worker_procs, started_at, ended_at)

    # Outcomes come from each rank's *final* incarnation; earlier ones
    # were killed by the fault injector and return nothing.
    config = ctx.config
    final_procs = [ctx.worker_procs[rank] for rank in range(config.workers)]
    outcomes = [p.result for p in final_procs if isinstance(p.result, WorkerOutcome)]
    if not outcomes:
        raise ConfigurationError("no worker produced an outcome")
    final_loss = float(np.median([o.final_loss for o in outcomes]))
    epochs = max(o.epochs for o in outcomes)
    rounds = max(o.rounds for o in outcomes)

    traces = _per_rank_traces(ctx)
    result = RunResult(
        config=config,
        converged=ctx.converged(final_loss),
        final_loss=final_loss,
        duration_s=duration,
        cost_total=ctx.meter.total,
        cost_breakdown=ctx.meter.breakdown(),
        epochs=epochs,
        comm_rounds=rounds,
        history=ctx.history,
        breakdown=TimeBreakdown.max_per_category(traces),
        per_worker=traces,
        checkpoints=ctx.checkpoint_count,
        final_accuracy=ctx.substrate.final_accuracy(ctx),
        meta={"events": ctx.fault_events()},
    )
    ctx.substrate.finalize(ctx, result, outcomes)
    return result


def _per_rank_traces(ctx: JobContext) -> list[TimeBreakdown]:
    """One TimeBreakdown per rank, folding in killed incarnations.

    A fault-free run has exactly one process per rank, whose trace is
    returned as-is (bit-identical to the pre-fault-plane driver). Under
    crash injection a rank's simulated time is split across
    incarnations; summing the categories keeps ``per_worker`` rank-
    shaped and makes the recovery overhead visible in the breakdown.
    """
    workers = ctx.config.workers
    if len(ctx.all_worker_procs) == workers:
        return [proc.trace for proc in ctx.all_worker_procs]
    by_rank: list[list] = [[] for _ in range(workers)]
    for proc in ctx.all_worker_procs:
        # "worker-3", "worker-3#2", or a service job's "tenantA/worker-3#2".
        rank = int(proc.name.split("#", 1)[0].rsplit("-", 1)[1])
        by_rank[rank].append(proc.trace)
    merged = []
    for traces in by_rank:
        combined = TimeBreakdown()
        for trace in traces:
            for category, seconds in trace.seconds.items():
                combined.add(category, seconds)
        merged.append(combined)
    return merged


def _setup_platform(ctx: JobContext):
    """Configure infrastructure and pick the executor for the platform."""
    config = ctx.config
    if config.platform == "faas":
        ctx.setup_faas()
        if config.protocol == "asp":
            init = ctx.stats(0).params.astype(np.float64)
            seed_global_model(ctx.channel.store, init, ctx.info.param_bytes)
            return faas_async_worker
        return faas_bsp_worker
    if config.platform == "iaas":
        ctx.setup_iaas()
        return iaas_worker
    if config.platform == "hybrid":
        if config.algorithm.lower().replace("-", "_") not in ("ga_sgd", "ga", "sgd"):
            raise ConfigurationError(
                "the hybrid parameter-server architecture trains with GA-SGD "
                "(Cirrus-style gradient pushes)"
            )
        ctx.setup_hybrid()
        return hybrid_worker
    raise ConfigurationError(f"unknown platform {config.platform!r}")


def _bill_job(ctx: JobContext, procs, started_at: float, ended_at: float) -> None:
    """Charge compute resources for the whole job at its end.

    Instants are absolute engine times; per-second resources (VMs,
    ElastiCache) are billed for the job's own window, and a process
    that never finished (killed daemon-style at engine teardown) is
    billed as if it ran to the job's end.
    """
    config = ctx.config
    meter = ctx.meter
    duration = ended_at - started_at
    if config.platform in ("faas", "hybrid"):
        for proc in procs:
            started = proc.started_at if proc.started_at is not None else started_at
            finished = proc.finished_at if proc.finished_at is not None else ended_at
            meter.bill_lambda(
                config.lambda_memory_gb, max(0.0, finished - started), invocations=1
            )
        if ctx.extra_invocations:
            meter.bill_lambda(0.0, 0.0, invocations=ctx.extra_invocations)
    if config.platform == "iaas":
        meter.bill_vm(config.instance, duration, count=config.workers)
    if config.platform == "hybrid":
        meter.bill_vm(config.ps_instance, duration, count=1)
    if ctx.channel is not None and ctx.channel.node is not None:
        meter.bill_elasticache(ctx.channel.node, duration)
