"""Training configuration: the paper's four-dimensional design space.

A :class:`TrainingConfig` pins down (1) the distributed optimization
algorithm, (2) the communication channel, (3) the communication
pattern, and (4) the synchronization protocol — plus the workload
(model x dataset), the platform (FaaS / IaaS / hybrid) and the system
variant being emulated (LambdaML, distributed PyTorch, Angel,
HybridPS).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.config import DEFAULT_SEED
from repro.data.datasets import get_spec
from repro.errors import ConfigurationError
from repro.faas.limits import LambdaLimits
from repro.models.zoo import get_model_info
from repro.utils.hashing import fingerprint_hash

SYSTEMS = ("lambdaml", "pytorch", "angel", "hybridps")
PLATFORM_OF_SYSTEM = {
    "lambdaml": "faas",
    "pytorch": "iaas",
    "angel": "iaas",
    "hybridps": "hybrid",
}

# Angel's Hadoop/Yarn stack: slower start-up, HDFS loading, and a less
# efficient matrix library (factors fitted to Figure 10: 457 s start-up
# vs 132 s, 35 s loading vs 9 s, 125 s compute vs 80 s at W=10).
ANGEL_STARTUP_EXTRA_S = 325.0
ANGEL_LOAD_FACTOR = 3.9
ANGEL_COMPUTE_FACTOR = 1.56

# The convergence-relevant subset of the config: every field that can
# change a BSP loss trajectory, and nothing that cannot. Two configs
# sharing a statistical fingerprint run *bit-identical* statistical
# decisions — same per-round payload sizes, same per-epoch losses, same
# stop round — no matter how their systems axes (channel, pattern,
# instance, prices, poll interval, Lambda sizing...) differ. The replay
# substrate leans on this to record convergence once per fingerprint
# and re-emit it across a whole systems grid. Field by field:
#
#   model, dataset        the objective and the data distribution
#   algorithm             GA-SGD / MA-SGD / ADMM / EM update rules
#   workers               shard count and reduction width
#   batch_size, batch_scope   the logical minibatch (global_batch)
#   min_local_batch       statistical floor of the physical batch
#   lr, l2, k             step size / regulariser / cluster count
#   admm_rho, admm_scans  ADMM penalty and scans-per-round
#   ma_sync_epochs        MA-SGD local epochs between averages
#   loss_threshold, max_epochs   the stopping rule
#   partition_mode, data_scale, seed   what data each worker holds and
#                         every RNG draw (init, shuffles, sampling)
#   protocol              BSP vs ASP round structure
#
# Deliberately absent: system, channel, cache_node, channel_prestarted,
# pattern, poll_interval_s, instance, lambda_memory_gb,
# lambda_lifetime_s, ps_instance, rpc, straggler_jitter — all of which
# move simulated clocks and dollars but not a single merged float
# (aggregation folds contributions in canonical rank order on every
# pattern and platform; see repro.comm.patterns). The fault axes
# (crash_rate, mttf_s, storage_error_rate, storage_retry_limit,
# storage_retry_base_s, cold_start_jitter, checkpoint_interval) are
# likewise absent: BSP crash recovery replays the identical
# statistical stream from the last checkpoint (however sparsely those
# checkpoints are spaced) and storage retries only stretch operations,
# so a whole fault grid shares one statistical fingerprint — and one
# recorded trace (pinned by tests/test_fault_injection.py's golden
# invariance tests).
STAT_FIELDS = (
    "model",
    "dataset",
    "algorithm",
    "workers",
    "batch_size",
    "batch_scope",
    "min_local_batch",
    "lr",
    "l2",
    "k",
    "admm_rho",
    "admm_scans",
    "ma_sync_epochs",
    "loss_threshold",
    "max_epochs",
    "partition_mode",
    "data_scale",
    "seed",
    "protocol",
)


def _cli(help: str, choices: tuple[str, ...] | None = None) -> dict:
    """Field metadata consumed by the derived ``repro.cli train`` flags.

    Every init field gets exactly one mechanically generated flag
    (``--field-name``) whose type and default come from the dataclass
    itself — this metadata only adds the help text and, where the value
    set is closed, the argparse choices. The parity test in
    tests/test_cli.py pins the field <-> flag bijection.
    """
    meta: dict = {"help": help}
    if choices is not None:
        meta["choices"] = choices
    return meta


@dataclass
class TrainingConfig:
    """One end-to-end training run."""

    model: str = field(
        metadata=_cli("model to train", ("lr", "svm", "kmeans", "mobilenet", "resnet50"))
    )
    dataset: str = field(
        metadata=_cli("dataset", ("higgs", "rcv1", "cifar10", "yfcc100m", "criteo"))
    )
    # MA-SGD is the only algorithm valid on every convex and deep model,
    # hence the default; EM is kmeans-only, ADMM convex-only.
    algorithm: str = field(
        default="ma_sgd",
        metadata=_cli("distributed optimization algorithm",
                      ("ga_sgd", "ma_sgd", "admm", "em")),
    )
    system: str = field(
        default="lambdaml",
        metadata=_cli("system being emulated", SYSTEMS),
    )
    workers: int = field(default=10, metadata=_cli("worker count"))

    # Communication channel / pattern / protocol (FaaS dimensions).
    channel: str = field(
        default="s3",
        metadata=_cli("FaaS communication channel",
                      ("s3", "memcached", "redis", "dynamodb")),
    )
    cache_node: str = field(
        default="cache.t3.small", metadata=_cli("ElastiCache node type")
    )
    # The paper's micro-benchmarks (§4) launch ElastiCache before
    # triggering the Lambdas, excluding its ~140 s boot from the
    # measurement; the end-to-end comparisons (Table 1) include it.
    channel_prestarted: bool = field(
        default=False,
        metadata=_cli("launch the cache channel before the Lambdas (§4 protocol)"),
    )
    pattern: str = field(
        default="allreduce",
        metadata=_cli("communication pattern", ("allreduce", "scatterreduce")),
    )
    protocol: str = field(
        default="bsp", metadata=_cli("synchronization protocol", ("bsp", "asp"))
    )
    # How often workers poll the storage service for merged files in
    # the synchronous protocol (§3.2.4's "keep polling ... until the
    # name of the merged file shows up").
    poll_interval_s: float = field(
        default=0.05, metadata=_cli("storage polling interval (seconds)")
    )

    # Infrastructure knobs.
    instance: str = field(
        default="t2.medium", metadata=_cli("IaaS worker VM type")
    )
    lambda_memory_gb: float = field(
        default=3.0, metadata=_cli("Lambda memory size (GB)")
    )
    # Function lifetime; AWS caps it at 900 s. Shorter values are
    # useful for exercising the Figure-5 checkpoint/re-invoke path on
    # fast workloads (fault-injection tests).
    lambda_lifetime_s: float = field(
        default=900.0, metadata=_cli("Lambda function lifetime (seconds)")
    )
    ps_instance: str = field(
        default="c5.4xlarge", metadata=_cli("hybrid parameter-server VM type")
    )
    rpc: str = field(
        default="grpc", metadata=_cli("hybrid PS RPC framework", ("grpc", "thrift"))
    )

    # Optimization hyper-parameters.
    batch_size: int = field(
        default=10_000, metadata=_cli("logical minibatch (see --batch-scope)")
    )
    batch_scope: str = field(
        default="global",
        metadata=_cli("minibatch scope", ("global", "per_worker")),
    )
    lr: float = field(default=0.1, metadata=_cli("learning rate"))
    k: int = field(default=10, metadata=_cli("clusters for kmeans"))
    l2: float = field(default=1e-4, metadata=_cli("L2 regularisation"))
    admm_rho: float = field(default=0.05, metadata=_cli("ADMM penalty rho"))
    admm_scans: int = field(default=10, metadata=_cli("ADMM scans per exchange"))
    ma_sync_epochs: int = field(
        default=1, metadata=_cli("MA-SGD local epochs between averages")
    )

    # Statistical floor for the physical per-worker batch (see
    # repro.data.loader.make_shards).
    min_local_batch: int = field(
        default=1, metadata=_cli("physical per-worker batch floor")
    )

    # Stopping.
    loss_threshold: float | None = field(
        default=None, metadata=_cli("stop when the loss dips below this")
    )
    max_epochs: float = field(default=60.0, metadata=_cli("epoch budget"))

    # Data handling / reproducibility.
    partition_mode: str = field(
        default="iid", metadata=_cli("data partitioning", ("iid", "label-skew"))
    )
    data_scale: int | None = field(
        default=None, metadata=_cli("dataset down-scaling divisor (default: 1)")
    )
    seed: int = field(default=DEFAULT_SEED, metadata=_cli("RNG seed"))
    straggler_jitter: float = field(
        default=0.05, metadata=_cli("relative speed spread across workers")
    )

    # Fault plane (systems axes: they move clocks and dollars, never a
    # merged float — see repro.faults). Crash faults kill worker
    # processes mid-run: FaaS workers then checkpoint every round and
    # recover; IaaS jobs restart from scratch.
    crash_rate: float = field(
        default=0.0,
        metadata=_cli("expected crashes per worker per simulated hour"),
    )
    mttf_s: float | None = field(
        default=None,
        metadata=_cli("mean time to failure per worker (overrides --crash-rate)"),
    )
    storage_error_rate: float = field(
        default=0.0,
        metadata=_cli("probability a storage put/get transiently fails"),
    )
    storage_retry_limit: int = field(
        default=5, metadata=_cli("retries before a flaky storage op gives up")
    )
    storage_retry_base_s: float = field(
        default=0.1,
        metadata=_cli("first exponential-backoff gap between retries"),
    )
    cold_start_jitter: float = field(
        default=0.0,
        metadata=_cli("relative spread of re-invocation cold starts"),
    )
    # How many round boundaries apart FaaS recovery checkpoints are
    # written under crash injection. 1 (the MLLess-style default)
    # checkpoints every round; larger intervals trade checkpoint I/O
    # for more re-executed rounds after a crash — clocks and dollars
    # move, the trajectory does not.
    checkpoint_interval: int = field(
        default=1,
        metadata=_cli("rounds between FaaS recovery checkpoints (1 = every round)"),
    )

    # Derived (filled by __post_init__).
    platform: str = field(init=False)

    def __post_init__(self) -> None:
        if self.system not in SYSTEMS:
            raise ConfigurationError(f"unknown system {self.system!r}; known: {SYSTEMS}")
        self.platform = PLATFORM_OF_SYSTEM[self.system]
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.pattern not in ("allreduce", "scatterreduce"):
            raise ConfigurationError(f"unknown pattern {self.pattern!r}")
        if self.protocol not in ("bsp", "asp"):
            raise ConfigurationError(f"unknown protocol {self.protocol!r}")
        if self.batch_scope not in ("global", "per_worker"):
            raise ConfigurationError(f"unknown batch_scope {self.batch_scope!r}")
        if self.max_epochs <= 0:
            raise ConfigurationError(f"max_epochs must be > 0, got {self.max_epochs}")
        if self.straggler_jitter < 0:
            raise ConfigurationError("straggler_jitter must be >= 0")
        if self.crash_rate < 0:
            raise ConfigurationError("crash_rate must be >= 0")
        if self.mttf_s is not None and self.mttf_s <= 0:
            raise ConfigurationError(f"mttf_s must be > 0, got {self.mttf_s}")
        if not 0.0 <= self.storage_error_rate < 1.0:
            raise ConfigurationError(
                f"storage_error_rate must be in [0, 1), got {self.storage_error_rate}"
            )
        if self.storage_retry_limit < 0:
            raise ConfigurationError("storage_retry_limit must be >= 0")
        if self.storage_retry_base_s < 0:
            raise ConfigurationError("storage_retry_base_s must be >= 0")
        if self.cold_start_jitter < 0:
            raise ConfigurationError("cold_start_jitter must be >= 0")
        if self.checkpoint_interval < 1:
            raise ConfigurationError(
                f"checkpoint_interval must be >= 1, got {self.checkpoint_interval}"
            )
        if self.fault_mttf_s is not None and (
            self.protocol != "bsp" or self.platform not in ("faas", "iaas")
        ):
            raise ConfigurationError(
                "crash injection is defined for BSP FaaS/IaaS runs "
                f"(got {self.protocol}/{self.platform}); ASP and hybrid-PS "
                "trajectories are timing-coupled, so a crash would change "
                "the statistics instead of only the clocks"
            )
        get_spec(self.dataset)  # validates dataset name

        info = get_model_info(self.model, self.dataset, k=self.k, l2=self.l2)
        algo = self.algorithm.lower().replace("-", "_")
        if algo == "admm" and not info.convex:
            raise ConfigurationError(
                "ADMM only optimises convex objectives; "
                f"{self.model} is not convex (paper Section 4.2)"
            )
        if info.kind == "kmeans" and algo not in ("em", "kmeans"):
            raise ConfigurationError("kmeans must be trained with the EM algorithm")
        if info.kind != "kmeans" and algo in ("em", "kmeans"):
            raise ConfigurationError("EM only trains kmeans")
        if self.protocol == "asp" and self.system != "lambdaml":
            raise ConfigurationError("the asynchronous protocol is a FaaS design point")
        if self.protocol == "asp" and info.kind == "kmeans":
            raise ConfigurationError("asynchronous training is defined for SGD workloads")

    # -- fault plane --------------------------------------------------------
    @property
    def fault_mttf_s(self) -> float | None:
        """Effective mean time to failure per worker, or None.

        ``mttf_s`` wins when set; otherwise ``crash_rate`` (crashes per
        worker per simulated hour) is inverted. Both spellings exist so
        sweeps can put either quantity on an axis.
        """
        if self.mttf_s is not None:
            return self.mttf_s
        if self.crash_rate > 0:
            return 3600.0 / self.crash_rate
        return None

    @property
    def faults_enabled(self) -> bool:
        """Does this run need the fault plane at all?"""
        return self.fault_mttf_s is not None or self.storage_error_rate > 0

    # -- statistical identity ---------------------------------------------
    @property
    def timing_coupled(self) -> bool:
        """Does simulated *timing* feed back into the trajectory?

        ASP workers read-modify-write a shared model with no barrier,
        and hybrid-PS workers interleave gradient pushes under a lock —
        in both, the event order (hence every systems knob) shapes the
        floats. BSP's lockstep rounds are the only timing-decoupled
        regime, so only BSP traces can be replayed across systems axes.
        """
        return self.protocol == "asp" or self.platform == "hybrid"

    def stat_fingerprint(self) -> dict:
        """The convergence-relevant fields (see :data:`STAT_FIELDS`).

        For timing-coupled configs (ASP, hybrid PS) the fingerprint
        widens to *every* init field: their trajectory depends on the
        systems axes, so no two distinct configs may share one.
        """
        if self.timing_coupled:
            return config_fingerprint(self)
        return {name: getattr(self, name) for name in STAT_FIELDS}

    def stat_hash(self) -> str:
        """Content address of :meth:`stat_fingerprint` (trace file name)."""
        return fingerprint_hash(self.stat_fingerprint())

    # -- convenience ------------------------------------------------------
    @property
    def global_batch(self) -> int:
        """Logical global minibatch (per-worker scopes multiply by w)."""
        if self.batch_scope == "per_worker":
            return self.batch_size * self.workers
        return self.batch_size

    def physical_batch(self, scale: int) -> int:
        """Global batch scaled down with the dataset (min 1 per worker)."""
        return max(self.workers, self.global_batch // scale)

    def describe(self) -> str:
        return (
            f"{self.system}:{self.model}/{self.dataset} "
            f"algo={self.algorithm} w={self.workers} "
            f"channel={self.channel} pattern={self.pattern} protocol={self.protocol}"
        )


def config_fingerprint(config: TrainingConfig) -> dict:
    """All init fields of a config (defaults included), JSON-ready."""
    return {
        f.name: getattr(config, f.name)
        for f in fields(TrainingConfig)
        if f.init
    }


def faas_memory_error(config: TrainingConfig) -> str | None:
    """The §5.2 Lambda OOM envelope, as a predicate.

    Returns why this config cannot fit one worker into its Lambda
    function, or ``None`` when it fits. Shared by the job context
    (which raises :class:`~repro.errors.OutOfMemoryError` at setup)
    and :func:`config_validity_error` (which lets the scenario fuzzer
    reject infeasible samples before spending a training on them).
    """
    if PLATFORM_OF_SYSTEM[config.system] not in ("faas", "hybrid"):
        return None
    spec = get_spec(config.dataset)
    info = get_model_info(config.model, config.dataset, k=config.k, l2=config.l2)
    limits = LambdaLimits(
        memory_gb=config.lambda_memory_gb, lifetime_s=config.lambda_lifetime_s
    )
    local_batch = max(1, config.global_batch // config.workers)
    needed = (
        spec.partition_bytes(config.workers)
        + 4 * info.param_bytes
        + local_batch * info.activation_bytes_per_instance
    )
    if needed > limits.memory_bytes:
        return (
            f"{config.model}/{config.dataset} with batch {config.global_batch} on "
            f"{config.workers} workers needs ~{needed / 1024**3:.2f} GiB per function, "
            f"exceeding the {limits.memory_gb:.0f} GB Lambda limit"
        )
    return None


def config_validity_error(kwargs: dict) -> str | None:
    """Why these ``TrainingConfig`` kwargs cannot run, or ``None``.

    The legal-space predicate the scenario fuzzer samples against:
    constructor validation (unknown systems, incompatible
    algorithm/model pairs, crash faults on timing-coupled platforms,
    out-of-range fault axes...) plus the pre-flight resource envelopes
    that would abort a run during setup (the Lambda memory check).
    A ``None`` return means ``train(TrainingConfig(**kwargs))`` will
    not be rejected before its first simulated event.
    """
    try:
        config = TrainingConfig(**kwargs)
    except TypeError as exc:
        return f"bad constructor kwargs: {exc}"
    except ConfigurationError as exc:
        return str(exc)
    return faas_memory_error(config)
