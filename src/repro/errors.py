"""Exception hierarchy for the LambdaML reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class. Subsystems raise the most specific
subclass available; simulated cloud-service failures (for example a
Lambda timeout or a DynamoDB item-size rejection) are modelled as
exceptions from this module rather than ad-hoc return codes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A training or infrastructure configuration is invalid."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class DeadlockError(SimulationError):
    """All live processes are blocked and no event can make progress."""


class StorageError(ReproError):
    """Base class for simulated storage-service failures."""


class KeyNotFoundError(StorageError):
    """A requested object key does not exist in the store."""


class ItemTooLargeError(StorageError):
    """An object exceeds the service's item-size limit (e.g. DynamoDB 400 KB)."""


class ServiceNotStartedError(StorageError):
    """The storage service has not finished its startup (e.g. ElastiCache)."""


class TransientStorageError(StorageError):
    """A storage operation kept failing past the retry policy's budget.

    ``failed_at`` carries the simulated instant the op gave up (the
    completion of its last failed attempt); the engine delivers the
    error to the issuing worker at that time.
    """

    failed_at: float | None = None


class FaaSError(ReproError):
    """Base class for simulated FaaS (Lambda) failures."""


class FunctionTimeoutError(FaaSError):
    """A function exceeded its maximum lifetime without checkpointing."""


class OutOfMemoryError(FaaSError):
    """A function exceeded its configured memory limit."""


class InvocationError(FaaSError):
    """A function could not be invoked (bad payload, missing handler...)."""


class IaaSError(ReproError):
    """Base class for simulated IaaS (VM cluster) failures."""


class ClusterError(IaaSError):
    """The VM cluster is in an unusable state."""


class CommunicationError(ReproError):
    """A collective communication operation failed."""


class ConvergenceError(ReproError):
    """Training failed to reach the requested loss threshold in budget."""


class FaultInjectionError(ReproError):
    """The fault plane cannot inject faults into this configuration."""


class FuzzError(ReproError):
    """The scenario fuzzer could not sample, check or replay a scenario."""


class SubstrateError(ReproError):
    """The statistical substrate cannot serve this run (bad mode/trace)."""


class ReplayDivergenceError(SubstrateError):
    """A replayed run consumed more statistical events than its trace holds.

    Raised when the systems layer asks the replay substrate for a loss
    the recording never produced — the recorded and replayed configs do
    not actually share a statistical trajectory (fingerprint bug, stale
    trace, or a timing-coupled config that slipped past the guards).
    """
