"""Pluggable admission/placement policies for the training service.

A scheduler answers two questions whenever a concurrency slot frees up:
*which* queued job is admitted next (:meth:`Scheduler.pick`) and *how
many* workers it is granted (:meth:`Scheduler.workers_for`). The
``state`` argument is the live :class:`~repro.service.runtime.
ServiceRuntime`, exposing queue depth, running-job count, per-account
consumption and isolated-run baselines — everything a policy may
condition on. All policies are deterministic: ties break on queue
position, so the same workload always schedules identically.

* ``fifo`` — arrival order, workers as requested. The baseline.
* ``fair_share`` — the queued job whose tenant account has consumed
  the least granted worker-seconds so far goes first; heavy accounts
  yield to light ones during contention.
* ``cost_aware`` — MLLess-style cost-efficiency ordering: the job with
  the cheapest expected isolated $/job goes first, so cheap jobs are
  never stuck behind expensive ones (lowers mean cost-weighted wait,
  can starve expensive jobs under sustained load).
* ``adaptive`` — SMLT-style worker scaling: under load (outstanding
  jobs exceed the concurrency limit) each admitted job is granted half
  its requested fleet. Fewer workers mean fewer exchanges and cheaper
  jobs, but longer runs — the measured p99/cost trade-off figS reports.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.service.arrivals import JobRequest


class Scheduler:
    """FIFO admission, workers as requested (policy base class)."""

    name = "fifo"

    def pick(self, queue: list[JobRequest], state) -> int:
        """Index into `queue` of the next job to admit."""
        return 0

    def workers_for(self, request: JobRequest, state) -> int:
        """Workers granted to the admitted job."""
        return int(request.config_kwargs.get("workers", 1))


class FifoScheduler(Scheduler):
    name = "fifo"


class FairShareScheduler(Scheduler):
    name = "fair_share"

    def pick(self, queue: list[JobRequest], state) -> int:
        return min(
            range(len(queue)),
            key=lambda i: (state.tenant_busy_s.get(queue[i].tenant, 0.0), i),
        )


class CostAwareScheduler(Scheduler):
    name = "cost_aware"

    def pick(self, queue: list[JobRequest], state) -> int:
        return min(
            range(len(queue)),
            key=lambda i: (state.isolated_cost(queue[i]), i),
        )


class AdaptiveScheduler(Scheduler):
    name = "adaptive"

    def workers_for(self, request: JobRequest, state) -> int:
        requested = int(request.config_kwargs.get("workers", 1))
        outstanding = state.running_jobs + len(state.queue) + 1
        if outstanding > state.max_concurrent:
            return max(2, requested // 2)
        return requested


SCHEDULERS = {
    cls.name: cls
    for cls in (FifoScheduler, FairShareScheduler, CostAwareScheduler,
                AdaptiveScheduler)
}


def make_scheduler(name: str) -> Scheduler:
    try:
        return SCHEDULERS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; known: {sorted(SCHEDULERS)}"
        ) from None
