"""Job arrivals: seeded Poisson process and trace-driven workloads.

The Poisson stream uses the fault plane's counter-mode draw discipline
(:func:`repro.faults.plan.unit_draw` — ``sha256(seed, stream, index)``)
so the arrival pattern is a pure function of the service seed: the same
seed produces the same workload on every host, and arrivals never
perturb any other stream (training RNG, crash instants, jitter).

Trace-driven arrivals load a JSON workload file — a list of job
entries::

    [{"arrival_s": 0.0, "tenant": "acme", "priority": 1.0,
      "config": {"workers": 25}},
     ...]

``config`` holds per-job ``TrainingConfig`` overrides on top of the
service's base workload; ``tenant``/``priority``/``job`` are optional.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.faults.plan import unit_draw
from repro.service.config import ServiceConfig

ARRIVAL_STREAM = "service/arrival"


@dataclass(frozen=True)
class JobRequest:
    """One submitted training job (picklable, primitives only)."""

    job: str  # unique id within the service run ("j00", ...)
    tenant: str  # account the job bills to (fair-share unit)
    arrival_s: float  # absolute instant the job enters the queue
    config_kwargs: dict = field(default_factory=dict)
    priority: float = 0.0


def poisson_arrivals(seed: int, rate_per_hour: float, count: int) -> list[float]:
    """`count` arrival instants of a seeded Poisson process (seconds).

    Inverse-CDF exponential inter-arrivals from the counter-mode unit
    stream — the same transform :meth:`FaultPlan.crash_times` uses for
    crash instants, on its own stream name.
    """
    mean_gap = 3600.0 / rate_per_hour
    times = []
    t = 0.0
    for index in range(count):
        u = unit_draw(seed, ARRIVAL_STREAM, index)
        t += -mean_gap * math.log(1.0 - u)
        times.append(t)
    return times


def load_trace(path: str) -> list[dict]:
    """Parse and shape-check a JSON workload trace."""
    with open(path, encoding="utf-8") as fh:
        entries = json.load(fh)
    if not isinstance(entries, list) or not entries:
        raise ConfigurationError(f"workload trace {path}: expected a non-empty list")
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict) or "arrival_s" not in entry:
            raise ConfigurationError(
                f"workload trace {path}: entry {i} needs an 'arrival_s' field"
            )
    return entries


def build_requests(config: ServiceConfig) -> list[JobRequest]:
    """The service run's full workload, sorted by arrival time."""
    base = config.job_kwargs()
    if config.arrivals == "poisson":
        times = poisson_arrivals(config.seed, config.rate, config.tenants)
        requests = [
            JobRequest(
                job=f"j{i:03d}",
                tenant=f"acct{i % config.accounts}",
                arrival_s=t,
                config_kwargs=dict(base),
            )
            for i, t in enumerate(times)
        ]
    else:
        entries = load_trace(config.trace)
        requests = [
            JobRequest(
                job=str(entry.get("job", f"j{i:03d}")),
                tenant=str(entry.get("tenant", f"acct{i % config.accounts}")),
                arrival_s=float(entry["arrival_s"]),
                config_kwargs={**base, **entry.get("config", {})},
                priority=float(entry.get("priority", 0.0)),
            )
            for i, entry in enumerate(entries)
        ]
    requests.sort(key=lambda r: (r.arrival_s, r.job))
    jobs = [r.job for r in requests]
    if len(set(jobs)) != len(jobs):
        raise ConfigurationError("workload has duplicate job ids")
    return requests
