"""Multi-tenant training service: arrivals, schedulers, shared-engine runtime.

The public entry point is :class:`repro.api.Service`; this package holds
the mechanism — see :mod:`repro.service.runtime` for the architecture.
"""

from repro.service.arrivals import JobRequest, build_requests, poisson_arrivals
from repro.service.config import (
    SCHEDULER_NAMES,
    ServiceConfig,
    service_fingerprint,
    service_hash,
)
from repro.service.metrics import (
    build_report,
    format_service_report,
    jain_fairness,
    percentile,
    service_metrics,
    validate_report,
)
from repro.service.runtime import (
    BaselineProvider,
    ServiceRuntime,
    SharedServices,
)
from repro.service.schedulers import SCHEDULERS, Scheduler, make_scheduler

__all__ = [
    "SCHEDULERS",
    "SCHEDULER_NAMES",
    "BaselineProvider",
    "JobRequest",
    "Scheduler",
    "ServiceConfig",
    "ServiceRuntime",
    "SharedServices",
    "build_report",
    "build_requests",
    "format_service_report",
    "jain_fairness",
    "make_scheduler",
    "percentile",
    "poisson_arrivals",
    "service_fingerprint",
    "service_hash",
    "service_metrics",
    "validate_report",
]
