"""The multi-tenant service runtime: many jobs, one engine, shared capacity.

Three pieces:

* :class:`SharedServices` — the contention model. Every tenant's
  :class:`~repro.storage.base.ObjectStore` keeps its own data plane
  (no key collisions between jobs) but stores of the same *service
  class* share one :class:`~repro.simulation.resources.ServiceQueue`:
  all S3 stores compete for the same 64 connection slots, all tenants
  on one ElastiCache node for its thread pool. That shared queue is
  what makes a neighbour's traffic slow your transfers — the
  contention-induced slowdown the report measures — while leaving the
  statistical trajectory of every job untouched.

* :class:`BaselineProvider` — isolated-run ground truth. Each distinct
  granted config is trained once on a *private* engine (recording a
  replay trace when the policy allows); the isolated duration/cost are
  the denominators for slowdown and the inputs to cost-aware
  scheduling, and the traces let service jobs replay statistics with
  zero numpy work.

* :class:`ServiceRuntime` — the discrete-event service itself. A master
  process sleeps to each arrival instant and enqueues the request; a
  synchronous pump admits jobs through the scheduler while concurrency
  slots are free; each admitted job gets its own
  :class:`~repro.core.context.JobContext` on the *shared* engine
  (private clock-sharing, private cost meter) and is launched through
  the same :func:`~repro.core.driver.launch_job` path ``train()`` uses;
  a shepherd process joins the job's workers (following fault-injector
  respawns), finalizes and bills it with
  :func:`~repro.core.driver.finalize_job`, and re-pumps the queue.

Everything is simulated-deterministic: the records carry no host
wall-clock, so the same workload and seed produce byte-identical
reports on any machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import TrainingConfig
from repro.core.context import JobContext
from repro.core.driver import finalize_job, launch_job, train
from repro.core.results import RunResult
from repro.errors import SimulationError
from repro.simulation.commands import Join, Sleep
from repro.simulation.engine import Engine
from repro.simulation.resources import ServiceQueue
from repro.service.arrivals import JobRequest
from repro.service.schedulers import Scheduler
from repro.substrate.record import RecordingSubstrate
from repro.substrate.replay import ReplaySubstrate
from repro.sweep.artifacts import artifact_from_result, write_artifact
from repro.sweep.grid import SweepPoint, config_hash

BASELINE_EXPERIMENT = "baselines"


class SharedServices:
    """One capacity queue per storage service class, shared by tenants."""

    def __init__(self) -> None:
        self._queues: dict[str, ServiceQueue] = {}

    def contention_stats(self) -> dict[str, dict]:
        """Per-service-class booking pressure (simulation-deterministic).

        ``ops`` counts every booking the shared queue served across all
        tenants; ``busy_until`` is the latest booked completion. Both
        come from counters the queue maintains anyway, so reading them
        costs nothing on the hot path.
        """
        return {
            kind: {
                "slots": queue.slots,
                "ops": queue.ops_booked,
                "busy_until": round(queue.busy_until, 6),
            }
            for kind, queue in sorted(self._queues.items())
        }

    def adopt(self, store, kind: str) -> None:
        """Swap `store`'s private queue for the class-wide shared one."""
        queue = self._queues.get(kind)
        if queue is None:
            queue = ServiceQueue(store.profile.concurrency)
            self._queues[kind] = queue
        store.queue = queue

    def adopt_job(self, ctx: JobContext) -> None:
        """Wire a freshly launched job's stores into the shared capacity.

        The data plane always rides S3; an S3 communication channel
        shares that same regional capacity, caches share per-node
        queues (tenants on one node contend for its threads), DynamoDB
        is its own service. Cache nodes are treated as provisioned by
        the service at t=0 (a warm pool), so their absolute
        ``available_at`` is left untouched.
        """
        self.adopt(ctx.data_store, "s3")
        if ctx.channel is None:
            return
        kind = ctx.config.channel
        if kind not in ("s3", "dynamodb"):
            kind = f"{kind}:{ctx.config.cache_node}"
        self.adopt(ctx.channel.store, "s3" if kind == "s3" else kind)


class BaselineProvider:
    """Isolated results + replay traces per distinct config, memoized.

    ``policy`` is ``"auto"`` (replay statistics for every eligible
    config, recording one trace per statistical fingerprint) or
    ``"exact"`` (every service job runs real numpy). Lazily computed
    baselines are persisted as ordinary sweep artifacts when
    ``artifacts_dir`` is set, so a resumed service run can prime from
    disk instead of re-training.
    """

    def __init__(
        self,
        policy: str = "auto",
        artifacts_dir=None,
        results: dict[str, RunResult] | None = None,
        traces: dict[str, dict] | None = None,
    ) -> None:
        if policy not in ("auto", "exact"):
            raise SimulationError(f"unknown baseline policy {policy!r}")
        self.policy = policy
        self.artifacts_dir = artifacts_dir
        self._results = dict(results or {})
        self._traces = dict(traces or {})

    @staticmethod
    def baseline_point(config: TrainingConfig) -> SweepPoint:
        from repro.core.config import config_fingerprint

        return SweepPoint(
            BASELINE_EXPERIMENT,
            config.describe(),
            config_kwargs=config_fingerprint(config),
        )

    def prime(self, artifacts: dict[str, dict]) -> None:
        from repro.sweep.artifacts import result_from_artifact

        for config_hash_, artifact in artifacts.items():
            self._results.setdefault(
                config_hash_, result_from_artifact(artifact)
            )

    def prime_traces(self, traces: dict[str, dict]) -> None:
        for stat_hash, trace in traces.items():
            self._traces.setdefault(stat_hash, trace)

    # -- internals --------------------------------------------------------
    def _replay_eligible(self, config: TrainingConfig) -> bool:
        # Timing-coupled protocols feed timing back into statistics
        # (exact-only by construction); faulted configs re-execute
        # rounds from substrate snapshots — keep those on the exact
        # path too so the fault plane is genuinely exercised.
        return (
            self.policy == "auto"
            and not config.timing_coupled
            and not config.faults_enabled
        )

    def _run_isolated(self, config: TrainingConfig) -> RunResult:
        record = (
            self._replay_eligible(config)
            and config.stat_hash not in self._traces
        )
        substrate = RecordingSubstrate() if record else None
        result = train(config, substrate)
        if record:
            self._traces[config.stat_hash] = substrate.trace
        if self.artifacts_dir is not None:
            write_artifact(
                self.artifacts_dir,
                artifact_from_result(
                    self.baseline_point(config),
                    result,
                    substrate="record" if record else "exact",
                ),
            )
        return result

    # -- interface used by the runtime ------------------------------------
    def result(self, config: TrainingConfig) -> RunResult:
        """The config's isolated run (private engine, no contention)."""
        key = config_hash(config)
        cached = self._results.get(key)
        if cached is None:
            cached = self._run_isolated(config)
            self._results[key] = cached
        return cached

    def substrate_for(self, config: TrainingConfig):
        """A fresh substrate for one service job of this config."""
        if not self._replay_eligible(config):
            return None
        trace = self._traces.get(config.stat_hash)
        if trace is None:
            # Record even when the result was primed from an artifact:
            # one exact training buys replay for every service job of
            # this statistical fingerprint.
            self._results[config_hash(config)] = self._run_isolated(config)
            trace = self._traces.get(config.stat_hash)
        return None if trace is None else ReplaySubstrate(trace)


def _feasible_workers(kwargs: dict, granted: int, submitted: int) -> int:
    """Walk a scheduler's worker grant back toward the submission until
    the config clears pre-flight validation.

    Shrinking a fleet grows each worker's shard, so an aggressive grant
    can violate the Lambda memory envelope (§5.2); the first feasible
    count between the grant and the submitted size wins.
    """
    from repro.core.config import config_validity_error

    step = 1 if submitted >= granted else -1
    for candidate in range(granted, submitted + step, step):
        if config_validity_error({**kwargs, "workers": candidate}) is None:
            return candidate
    return submitted


@dataclass
class _Job:
    """Bookkeeping for one admitted job (simulation-internal)."""

    request: JobRequest
    config: TrainingConfig
    ctx: JobContext
    admitted_s: float
    granted: int
    submitted_workers: int


class ServiceRuntime:
    """Run a workload of training jobs through one shared engine."""

    def __init__(
        self,
        requests: list[JobRequest],
        scheduler: Scheduler,
        max_concurrent: int,
        baselines: BaselineProvider,
    ) -> None:
        self.requests = sorted(requests, key=lambda r: (r.arrival_s, r.job))
        self.scheduler = scheduler
        self.max_concurrent = max_concurrent
        self.baselines = baselines
        self.engine = Engine()
        self.shared = SharedServices()
        self.queue: list[JobRequest] = []
        self.running: dict[str, _Job] = {}
        self.tenant_busy_s: dict[str, float] = {}
        self.records: list[dict] = []
        self.results: dict[str, RunResult] = {}  # job id -> full RunResult
        # Filled after run(): per-service-class shared-queue pressure.
        self.service_stats: dict[str, dict] = {}

    # -- scheduler state view ---------------------------------------------
    @property
    def running_jobs(self) -> int:
        return len(self.running)

    def isolated_cost(self, request: JobRequest) -> float:
        return self.baselines.result(
            TrainingConfig(**request.config_kwargs)
        ).cost_total

    # -- simulation -------------------------------------------------------
    def run(self) -> list[dict]:
        """Simulate the whole workload; returns per-job records."""
        self.engine.spawn(self._master(), "service/master")
        self.engine.run()
        if self.queue or self.running:
            raise SimulationError(
                f"service run ended with {len(self.queue)} queued and "
                f"{len(self.running)} running job(s)"
            )
        self.records.sort(key=lambda r: r["job"])
        self.service_stats = self.shared.contention_stats()
        return self.records

    def _master(self):
        """Feed arrivals into the queue at their simulated instants."""
        for request in self.requests:
            delay = request.arrival_s - self.engine.now
            if delay > 0:
                yield Sleep(delay, "idle")
            self.queue.append(request)
            self._pump()

    def _pump(self) -> None:
        """Admit queued jobs through the scheduler while slots are free.

        Synchronous (no simulated time passes): runs inside the master
        on arrival and inside a shepherd on completion, so a freed slot
        is refilled at the exact completion instant.
        """
        while self.queue and len(self.running) < self.max_concurrent:
            index = self.scheduler.pick(list(self.queue), self)
            request = self.queue.pop(index)
            submitted = int(request.config_kwargs.get("workers", 1))
            granted = self.scheduler.workers_for(request, self)
            granted = _feasible_workers(request.config_kwargs, granted, submitted)
            kwargs = dict(request.config_kwargs)
            if granted != submitted:
                kwargs["workers"] = granted
            config = TrainingConfig(**kwargs)
            substrate = self.baselines.substrate_for(config)
            ctx = JobContext(config, substrate=substrate, engine=self.engine)
            launch_job(ctx, name_prefix=f"{request.job}/")
            self.shared.adopt_job(ctx)
            job = _Job(
                request=request,
                config=config,
                ctx=ctx,
                admitted_s=self.engine.now,
                granted=granted,
                submitted_workers=submitted,
            )
            self.running[request.job] = job
            self.engine.spawn(self._shepherd(job), f"{request.job}/shepherd")

    def _shepherd(self, job: _Job):
        """Wait out one job's workers (across respawns), then settle it."""
        ctx = job.ctx
        while True:
            live = [p for p in ctx.worker_procs.values() if p.alive]
            if not live:
                break
            # Joining any one live incarnation is enough: on wake the
            # loop re-reads worker_procs, which the fault injector has
            # already pointed at successors it spawned.
            yield Join(live[0])
        self._settle(job)
        self._pump()

    def _settle(self, job: _Job) -> None:
        """Finalize, bill and record one finished job; free its slot."""
        completed_s = self.engine.now
        result = finalize_job(job.ctx, job.admitted_s, completed_s)
        request = job.request
        del self.running[request.job]
        self.results[request.job] = result
        self.tenant_busy_s[request.tenant] = (
            self.tenant_busy_s.get(request.tenant, 0.0)
            + result.duration_s * job.granted
        )
        baseline = self.baselines.result(job.config)
        events = result.meta.get("events", {})
        self.records.append({
            "job": request.job,
            "tenant": request.tenant,
            "priority": request.priority,
            "config_hash": config_hash(job.config),
            "arrival_s": request.arrival_s,
            "admitted_s": job.admitted_s,
            "completed_s": completed_s,
            "queue_s": job.admitted_s - request.arrival_s,
            "run_s": result.duration_s,
            "completion_s": completed_s - request.arrival_s,
            "workers_submitted": job.submitted_workers,
            "workers_granted": job.granted,
            "cost_dollars": result.cost_total,
            "isolated_run_s": baseline.duration_s,
            "isolated_cost": baseline.cost_total,
            "slowdown": result.duration_s / baseline.duration_s,
            "converged": result.converged,
            "final_loss": result.final_loss,
            "epochs": result.epochs,
            "crashes": events.get("crashes", 0),
            "gc_collected_keys": events.get("gc_collected_keys", 0),
        })
