"""Service-level metrics and the report document.

Everything here is a pure function of the per-job records the runtime
produced — no host wall-clock, no engine internals — so a report is
byte-identical across hosts and across serial/pooled baseline runs.
"""

from __future__ import annotations

from repro.errors import SimulationError

REPORT_SCHEMA_VERSION = 1


def percentile(values: list[float], q: float) -> float:
    """Deterministic linear-interpolation percentile (q in [0, 100])."""
    if not values:
        raise SimulationError("percentile of an empty series")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (q / 100.0) * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


def jain_fairness(values: list[float]) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²), in (0, 1]; 1 = equal."""
    if not values:
        raise SimulationError("fairness of an empty series")
    square_of_sum = sum(values) ** 2
    sum_of_squares = sum(v * v for v in values)
    if sum_of_squares == 0.0:
        return 1.0  # all-zero allocations are (vacuously) equal
    return square_of_sum / (len(values) * sum_of_squares)


def _tenant_mean_slowdowns(records: list[dict]) -> list[float]:
    """Per-tenant mean slowdown, in first-appearance order."""
    totals: dict = {}
    for r in records:
        slowdown_sum, jobs = totals.setdefault(r["tenant"], [0.0, 0])
        totals[r["tenant"]] = [slowdown_sum + r["slowdown"], jobs + 1]
    return [slowdown_sum / jobs for slowdown_sum, jobs in totals.values()]


def service_metrics(records: list[dict]) -> dict:
    """Aggregate per-job records into the service-level scorecard."""
    completions = [r["completion_s"] for r in records]
    slowdowns = [r["slowdown"] for r in records]
    total_cost = sum(r["cost_dollars"] for r in records)
    jobs = len(records)
    return {
        "jobs": jobs,
        "p50_completion_s": percentile(completions, 50.0),
        "p99_completion_s": percentile(completions, 99.0),
        "mean_completion_s": sum(completions) / jobs,
        "mean_queue_s": sum(r["queue_s"] for r in records) / jobs,
        "total_cost": total_cost,
        "cost_per_job": total_cost / jobs,
        "mean_slowdown": sum(slowdowns) / jobs,
        "max_slowdown": max(slowdowns),
        # How evenly the schedulers spread contention: Jain's index over
        # per-tenant mean slowdowns (1 = every tenant slowed equally).
        "fairness_jain": jain_fairness(_tenant_mean_slowdowns(records)),
        "makespan_s": max(r["completed_s"] for r in records),
        "converged_jobs": sum(1 for r in records if r["converged"]),
    }


def build_report(
    service_hash: str,
    fingerprint: dict,
    records: list[dict],
) -> dict:
    """The persisted (content-addressed) service report document."""
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "kind": "service_report",
        "service_hash": service_hash,
        "service": fingerprint,
        "tenants": records,
        "metrics": service_metrics(records),
    }


def validate_report(report: dict, expected_hash: str | None = None) -> dict:
    """Shape-check a loaded report (resume path); raises on mismatch."""
    required = {"schema", "kind", "service_hash", "service", "tenants", "metrics"}
    if not isinstance(report, dict) or not required <= set(report):
        missing = required - set(report) if isinstance(report, dict) else required
        raise SimulationError(f"service report missing sections: {sorted(missing)}")
    if report["schema"] != REPORT_SCHEMA_VERSION:
        raise SimulationError(
            f"service report schema {report['schema']} != {REPORT_SCHEMA_VERSION}"
        )
    if report["kind"] != "service_report":
        raise SimulationError(f"not a service report: kind={report['kind']!r}")
    if expected_hash is not None and report["service_hash"] != expected_hash:
        raise SimulationError(
            f"service report hash {report['service_hash']} != {expected_hash}"
        )
    if not isinstance(report["tenants"], list) or not report["tenants"]:
        raise SimulationError("service report has no tenant records")
    return report


def format_service_report(report: dict) -> str:
    """Render a report the way the experiment tables are rendered."""
    from repro.experiments.report import format_table

    metrics = report["metrics"]
    rows = [
        [
            r["job"], r["tenant"], r["workers_granted"], r["queue_s"],
            r["run_s"], r["completion_s"], r["slowdown"], r["cost_dollars"],
        ]
        for r in report["tenants"]
    ]
    table = format_table(
        f"Service report ({report['service'].get('scheduler', '?')}, "
        f"{metrics['jobs']} jobs)",
        ["job", "tenant", "W", "queue(s)", "run(s)", "completion(s)",
         "slowdown", "cost($)"],
        rows,
    )
    summary = (
        f"p50 completion {metrics['p50_completion_s']:.3g} s | "
        f"p99 {metrics['p99_completion_s']:.3g} s | "
        f"$/job {metrics['cost_per_job']:.4g} | "
        f"mean slowdown {metrics['mean_slowdown']:.3g}x | "
        f"fairness {metrics.get('fairness_jain', 1.0):.3g} | "
        f"makespan {metrics['makespan_s']:.3g} s"
    )
    return f"{table}\n{summary}"
