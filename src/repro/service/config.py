"""ServiceConfig: the declarative surface of the multi-tenant service.

Exactly like ``TrainingConfig``, every init field carries ``_cli``
metadata so ``repro.cli serve`` derives its flags mechanically — the
service config and the CLI cannot drift, and the parity test in
tests/test_cli.py pins the bijection.

A service config describes a *workload of jobs*, not one job: how jobs
arrive (a seeded Poisson process or a JSON trace file), how many, which
tenant accounts they belong to, which scheduler admits them, and the
training workload each job runs. It is content-addressed the same way
training configs are (:func:`service_fingerprint`), which is what makes
service reports resumable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.config import DEFAULT_SEED
from repro.core.config import _cli
from repro.errors import ConfigurationError
from repro.utils.hashing import fingerprint_hash

ARRIVAL_KINDS = ("poisson", "trace")
SCHEDULER_NAMES = ("fifo", "fair_share", "cost_aware", "adaptive")


@dataclass(frozen=True)
class ServiceConfig:
    """One multi-tenant service run (arrivals x scheduler x workload)."""

    arrivals: str = field(
        default="poisson",
        metadata=_cli("job arrival process", ARRIVAL_KINDS),
    )
    rate: float = field(
        default=6.0, metadata=_cli("Poisson arrival rate (jobs/hour)")
    )
    tenants: int = field(
        default=8, metadata=_cli("number of jobs to admit over the run")
    )
    accounts: int = field(
        default=3,
        metadata=_cli("tenant accounts Poisson jobs cycle through "
                      "(fair-share accounting unit)"),
    )
    trace: str = field(
        default="",
        metadata=_cli("JSON workload file for --arrivals trace"),
    )
    scheduler: str = field(
        default="fifo",
        metadata=_cli("admission/placement policy", SCHEDULER_NAMES),
    )
    max_concurrent: int = field(
        default=4, metadata=_cli("jobs running concurrently before queueing")
    )

    # The training workload each Poisson job runs (trace entries may
    # override any TrainingConfig field per job).
    model: str = field(default="lr", metadata=_cli("model each job trains"))
    dataset: str = field(default="higgs", metadata=_cli("dataset each job uses"))
    workers: int = field(default=8, metadata=_cli("workers requested per job"))
    max_epochs: float = field(default=2.0, metadata=_cli("epoch budget per job"))
    data_scale: int = field(
        default=2000, metadata=_cli("instances per job (scaled-down runs)")
    )
    channel: str = field(
        default="s3",
        metadata=_cli("communication channel each job uses",
                      ("s3", "memcached", "redis", "dynamodb")),
    )
    seed: int = field(
        default=DEFAULT_SEED,
        metadata=_cli("seed for arrivals and every job's training run"),
    )

    def __post_init__(self) -> None:
        if self.arrivals not in ARRIVAL_KINDS:
            raise ConfigurationError(
                f"unknown arrival process {self.arrivals!r}; "
                f"expected one of {ARRIVAL_KINDS}"
            )
        if self.scheduler not in SCHEDULER_NAMES:
            raise ConfigurationError(
                f"unknown scheduler {self.scheduler!r}; "
                f"expected one of {SCHEDULER_NAMES}"
            )
        if self.arrivals == "poisson" and self.rate <= 0:
            raise ConfigurationError("poisson arrivals need --rate > 0")
        if self.arrivals == "trace" and not self.trace:
            raise ConfigurationError("--arrivals trace needs --trace FILE")
        if self.tenants < 1:
            raise ConfigurationError("--tenants must be >= 1")
        if self.accounts < 1:
            raise ConfigurationError("--accounts must be >= 1")
        if self.max_concurrent < 1:
            raise ConfigurationError("--max-concurrent must be >= 1")

    def job_kwargs(self) -> dict:
        """The base ``TrainingConfig`` kwargs every job starts from.

        Cache channels run prestarted: the service keeps a warm node
        pool, and the isolated baselines use the same setting so
        slowdown measures contention, not who paid the cold boot.
        """
        kwargs = dict(
            model=self.model,
            dataset=self.dataset,
            workers=self.workers,
            max_epochs=self.max_epochs,
            data_scale=self.data_scale,
            channel=self.channel,
            seed=self.seed,
        )
        if self.channel in ("memcached", "redis"):
            kwargs["channel_prestarted"] = True
        return kwargs


def service_fingerprint(config: ServiceConfig) -> dict:
    """Every init field, for content addressing (mirrors config_fingerprint)."""
    return {f.name: getattr(config, f.name) for f in fields(config) if f.init}


def service_hash(config: ServiceConfig) -> str:
    return fingerprint_hash(service_fingerprint(config))
