"""Figure 12: runtime/cost scatter across instance types and learning rates."""

from conftest import once

from repro.experiments import fig12_configurations


def test_fig12_configurations(benchmark, write_report):
    scatters = once(
        benchmark, fig12_configurations.run, workers_cap=50, max_epochs=20
    )
    report = fig12_configurations.format_report(scatters)
    write_report("fig12_configurations", report)

    by_workload = {s.workload: s for s in scatters}

    # LR/YFCC: some FaaS config beats all IaaS configs on runtime, but
    # is not significantly cheaper.
    lr = by_workload["lr/yfcc100m"]
    best_faas = lr.best("faas", "runtime_s")
    best_iaas_rt = lr.best("iaas", "runtime_s")
    assert best_faas.runtime_s < best_iaas_rt.runtime_s
    cheapest_faas = lr.best("faas", "cost")
    cheapest_iaas = lr.best("iaas", "cost")
    assert cheapest_faas.cost > 0.5 * cheapest_iaas.cost

    # MobileNet: a GPU IaaS point dominates FaaS on both axes.
    mn = by_workload["mobilenet/cifar10"]
    gpu_points = [p for p in mn.points if "g4dn" in p.label or "g3s" in p.label]
    faas_points = [p for p in mn.points if p.platform == "faas"]
    best_gpu = min(gpu_points, key=lambda p: p.runtime_s)
    assert all(best_gpu.runtime_s < f.runtime_s for f in faas_points)
    assert all(best_gpu.cost < f.cost for f in faas_points)
