"""Figure 6: dataset inventory (logical specs + physical stand-ins)."""

from conftest import once

from repro.experiments import datasets_table


def test_fig6_datasets(benchmark, write_report):
    rows = once(benchmark, datasets_table.run)
    report = datasets_table.format_report(rows)
    write_report("fig6_datasets", report)
    assert len(rows) == 5
