"""Figure 11: runtime vs cost as worker counts scale."""

from conftest import once

from repro.experiments import fig11_scaling


def _run_both():
    lr = fig11_scaling.run_lr_higgs(
        faas_workers=(10, 30, 50, 100),
        iaas_workers=(1, 2, 5, 10, 20),
        max_epochs=40,
    )
    mn = fig11_scaling.run_mobilenet(
        faas_workers=(5, 10, 20),
        gpu_workers=(1, 2, 5, 10),
        max_epochs=6,
    )
    return [lr, mn]


def test_fig11_scaling(benchmark, write_report):
    profiles = once(benchmark, _run_both)
    report = fig11_scaling.format_report(profiles)
    write_report("fig11_scaling", report)

    lr, mn = profiles
    faas_points = [p for p in lr.points if p.system == "faas"]
    iaas_points = [p for p in lr.points if p.system == "iaas"]
    # FaaS reaches a lower runtime than any IaaS configuration...
    assert min(p.runtime_s for p in faas_points) < min(p.runtime_s for p in iaas_points)
    # ...but is never significantly cheaper than the cheapest IaaS.
    assert min(p.cost for p in faas_points) > 0.5 * min(p.cost for p in iaas_points)
    # More workers cost more at the top end of the sweep.
    costs_by_w = sorted((p.workers, p.cost) for p in faas_points)
    assert costs_by_w[-1][1] > costs_by_w[0][1]

    # MobileNet: some GPU IaaS point dominates every FaaS point.
    gpu = [p for p in mn.points if p.system == "iaas-gpu"]
    faas_mn = [p for p in mn.points if p.system == "faas"]
    best_gpu = min(gpu, key=lambda p: p.runtime_s)
    assert all(
        best_gpu.runtime_s < f.runtime_s and best_gpu.cost < f.cost for f in faas_mn
    )
