"""CI gate: fail when the engine hot path regresses vs BENCH_engine.json.

Re-runs the ScatterReduce microbenchmark from
``bench_engine_microbench.py`` at the recorded worker counts and
applies two checks against the record committed in ``BENCH_engine.json``:

1. **Scaling ratios (machine-independent).** time(w_hi)/time(w_lo)
   for every *adjacent* pair of recorded worker counts (50->100,
   100->512, 512->1024) measures the complexity class, not the
   machine: the O(w^3) seed engine ran 12x from w=50 to w=100; the
   pre-mega flat-index engine ran ~13x from 512 to 1024 (its O(n)
   key-list memmove) where the chunked-index engine runs ~5x. A gate
   fails when the measured ratio exceeds the recorded ratio by
   ``--ratio-slack`` (default 1.75x) — this is the real regression
   detector, immune to slow CI runners, and the per-pair placement
   localises *which* scale regime regressed.
2. **Absolute wall-clock (loose).** Each point must finish within
   ``--factor`` (default 3x) of the recorded ``current_seconds`` —
   a backstop for uniform constant-factor slowdowns. Deliberately
   generous because the baseline was measured on a dev machine and CI
   runner cores vary; each point takes the best of ``--repeats`` runs
   (points at w >= 512 run once — at ~10-45 s apiece, repeating them
   would dominate the CI job for noise-reduction the ratio gates
   don't need).

It also sanity-checks the *shape* of ``BENCH_sweep.json`` (the sweep
acceptance record): both the original per-point schema and the
``substrate`` section added with the record/replay sweeps must parse
and carry their required keys, so a malformed benchmark commit fails
CI instead of silently rotting. No sweep is re-run here — full-scale
sweep points cost minutes each; regenerate with
``benchmarks/bench_substrate_replay.py`` (or, for the ``service``
section, ``benchmarks/bench_service_schedulers.py``) when the numbers
change.

Run locally::

    PYTHONPATH=src python benchmarks/check_regression.py

Exit code 0 = within budget, 1 = regression, 2 = bad baseline file.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_engine_microbench import run_round  # noqa: E402

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
DEFAULT_SWEEP_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

# Required keys per section of BENCH_sweep.json. The file grows fields
# freely (unknown keys are tolerated by design — that is the point of
# this check being shape-based); these are the ones reports and future
# regressions dereference.
_SWEEP_POINT_KEYS = {"workers", "config_hash", "simulated_runtime_s",
                     "cost_dollars", "converged", "host_wall_seconds"}
_SWEEP_SUBSTRATE_KEYS = {"points", "unique_stat_fingerprints", "exact_trainings",
                         "exact_training_reduction", "replayed_points",
                         "exact_point_wall_seconds_mean",
                         "replay_point_wall_seconds_mean",
                         "artifacts_bit_identical"}
_SWEEP_RELIABILITY_KEYS = {"points", "unique_stat_fingerprints",
                           "traces_recorded", "replayed_points", "series"}
_RELIABILITY_ROW_KEYS = {"crash_rate_per_hour", "storage_error_rate",
                         "runtime_s", "cost_dollars", "overhead_s",
                         "overhead_dollars", "crashes"}
_RELIABILITY_SERIES = {"faas-crash", "iaas-crash", "faas-storage", "faas-interval"}
_SWEEP_FUZZ_KEYS = {"seed", "budget", "scenarios", "checks_per_invariant",
                    "checks_total", "campaign_wall_seconds"}
_SWEEP_SERVICE_KEYS = {"tenants", "rate_per_hour", "seed", "max_concurrent",
                       "schedulers"}
_SWEEP_MEGA_KEYS = {"note", "command", "workers", "host_wall_seconds"}
_SERVICE_METRIC_KEYS = {"jobs", "p50_completion_s", "p99_completion_s",
                        "mean_completion_s", "mean_queue_s", "total_cost",
                        "cost_per_job", "mean_slowdown", "max_slowdown",
                        "fairness_jain", "makespan_s", "converged_jobs"}
_SERVICE_SCHEDULERS = {"fifo", "fair_share", "cost_aware", "adaptive"}
_SWEEP_SERVING_KEYS = {"requests", "rate_rps", "seed", "models", "panel"}
_SERVING_CELL_KEYS = {"model", "platform", "traffic", "autoscaler",
                      "p50_latency_s", "p99_latency_s", "p999_latency_s",
                      "cold_start_fraction", "utilization",
                      "cost_per_1m_requests", "end_to_end_dollars"}
_SERVING_PLATFORMS = {"faas", "iaas", "gpu_iaas"}


def check_sweep_baseline(path: Path) -> list[str]:
    """Shape-validate BENCH_sweep.json; returns problem descriptions."""
    if not path.exists():
        return []  # nothing recorded yet: nothing to validate
    try:
        baseline = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path.name}: unreadable JSON ({exc})"]
    problems = []
    points = baseline.get("points")
    if not isinstance(points, dict) or not points:
        problems.append(f"{path.name}: 'points' must be a non-empty object")
    else:
        for key, record in points.items():
            if not isinstance(record, dict):
                problems.append(f"{path.name}: point {key} is not an object")
                continue
            missing = _SWEEP_POINT_KEYS - record.keys()
            if missing:
                problems.append(
                    f"{path.name}: point {key} missing {sorted(missing)}"
                )
    substrate = baseline.get("substrate")
    if substrate is not None:  # optional until the replay bench has run
        if not isinstance(substrate, dict):
            problems.append(f"{path.name}: 'substrate' must be an object")
            return problems
        missing = _SWEEP_SUBSTRATE_KEYS - substrate.keys()
        if missing:
            problems.append(
                f"{path.name}: 'substrate' section missing {sorted(missing)}"
            )
        elif not substrate["artifacts_bit_identical"]:
            problems.append(
                f"{path.name}: 'substrate' records non-identical replay "
                "artifacts — the recorded run was invalid"
            )
    problems.extend(_check_reliability_section(path, baseline.get("reliability")))
    problems.extend(_check_fuzz_section(path, baseline.get("fuzz_campaign")))
    problems.extend(_check_service_section(path, baseline.get("service")))
    problems.extend(_check_serving_section(path, baseline.get("serving")))
    problems.extend(_check_mega_section(path, baseline))
    return problems


def _check_serving_section(path: Path, serving) -> list[str]:
    """Shape-validate the figV train-then-serve panel record."""
    if serving is None:  # optional until the serving bench has run
        return []
    if not isinstance(serving, dict):
        return [f"{path.name}: 'serving' must be an object"]
    missing = _SWEEP_SERVING_KEYS - serving.keys()
    if missing:
        return [f"{path.name}: 'serving' section missing {sorted(missing)}"]
    panel = serving["panel"]
    if not isinstance(panel, list) or not panel:
        return [f"{path.name}: 'serving' panel must be a non-empty list"]
    problems = []
    for cell in panel:
        if not isinstance(cell, dict):
            problems.append(f"{path.name}: serving panel cell is not an object")
            continue
        missing = _SERVING_CELL_KEYS - cell.keys()
        if missing:
            problems.append(
                f"{path.name}: serving cell missing {sorted(missing)}"
            )
            continue
        where = (f"{cell['model']}/{cell['platform']}/"
                 f"{cell['traffic']}/{cell['autoscaler']}")
        if cell["platform"] not in _SERVING_PLATFORMS:
            problems.append(
                f"{path.name}: serving cell {where} has unknown platform"
            )
        if not (cell["p50_latency_s"] <= cell["p99_latency_s"]
                <= cell["p999_latency_s"]):
            problems.append(
                f"{path.name}: serving cell {where} has unordered "
                "latency percentiles"
            )
        if not 0.0 <= cell["cold_start_fraction"] <= 1.0 \
                or not 0.0 <= cell["utilization"] <= 1.0:
            problems.append(
                f"{path.name}: serving cell {where} has a fraction "
                "outside [0, 1]"
            )
        if cell["cost_per_1m_requests"] <= 0 or cell["end_to_end_dollars"] <= 0:
            problems.append(
                f"{path.name}: serving cell {where} records free serving — "
                "simulated requests are never free"
            )
        if cell["cold_start_fraction"] > 0 and cell["platform"] != "faas":
            if cell["autoscaler"] == "fixed":
                problems.append(
                    f"{path.name}: serving cell {where} cold-starts on a "
                    "pre-booted always-on fleet"
                )
    # The headline finding figV exists to report: bursty traffic on FaaS
    # must show a cold-start tail that the always-on fleet doesn't have.
    # The record is deterministic (seeded traffic), so this inequality
    # is a property of the committed numbers, not of the CI machine.
    def _cell(platform, autoscaler):
        for cell in panel:
            if isinstance(cell, dict) and not (_SERVING_CELL_KEYS - cell.keys()) \
                    and cell["model"] == "nn" and cell["traffic"] == "bursty" \
                    and cell["platform"] == platform \
                    and cell["autoscaler"] == autoscaler:
                return cell
        return None

    faas, iaas = _cell("faas", "concurrency"), _cell("iaas", "fixed")
    if faas is not None and iaas is not None:
        if not (faas["p999_latency_s"] > iaas["p999_latency_s"]
                and faas["cold_start_fraction"] > 0.0
                and iaas["cold_start_fraction"] == 0.0):
            problems.append(
                f"{path.name}: the recorded bursty FaaS/IaaS pair shows no "
                f"cold-start tail (p99.9 {faas['p999_latency_s']} vs "
                f"{iaas['p999_latency_s']}, cold "
                f"{faas['cold_start_fraction']} vs "
                f"{iaas['cold_start_fraction']})"
            )
    return problems


def _check_mega_section(path: Path, baseline: dict) -> list[str]:
    """Shape-validate the mega-scale ceiling record (sweep --mega tail)."""
    mega = baseline.get("mega")
    if mega is None:  # optional until bench_fig11_mega has run
        return []
    if not isinstance(mega, dict):
        return [f"{path.name}: 'mega' must be an object"]
    missing = _SWEEP_MEGA_KEYS - mega.keys()
    if missing:
        return [f"{path.name}: 'mega' section missing {sorted(missing)}"]
    problems = []
    points = baseline.get("points") or {}
    for workers in mega["workers"]:
        if str(workers) not in points:
            problems.append(
                f"{path.name}: mega records W={workers} but 'points' has no "
                "such entry — rerun benchmarks/bench_fig11_mega.py"
            )
    return problems


def _check_service_section(path: Path, service) -> list[str]:
    """Shape-validate the figS multi-tenant service scheduler record."""
    if service is None:  # optional until the service bench has run
        return []
    if not isinstance(service, dict):
        return [f"{path.name}: 'service' must be an object"]
    missing = _SWEEP_SERVICE_KEYS - service.keys()
    if missing:
        return [f"{path.name}: 'service' section missing {sorted(missing)}"]
    problems = []
    schedulers = service["schedulers"]
    if not isinstance(schedulers, dict) or len(schedulers) < 2:
        return [f"{path.name}: 'service' needs >= 2 scheduler scorecards"]
    unknown = schedulers.keys() - _SERVICE_SCHEDULERS
    if unknown:
        problems.append(f"{path.name}: unknown service schedulers {sorted(unknown)}")
    for name, metrics in schedulers.items():
        if not isinstance(metrics, dict):
            problems.append(f"{path.name}: service scheduler {name} is not an object")
            continue
        missing = _SERVICE_METRIC_KEYS - metrics.keys()
        if missing:
            problems.append(
                f"{path.name}: service scheduler {name} missing {sorted(missing)}"
            )
            continue
        if metrics["jobs"] != service["tenants"]:
            problems.append(
                f"{path.name}: service scheduler {name} served "
                f"{metrics['jobs']} of {service['tenants']} jobs"
            )
        if metrics["p50_completion_s"] > metrics["p99_completion_s"]:
            problems.append(
                f"{path.name}: service scheduler {name} has p50 > p99"
            )
        if metrics["mean_slowdown"] < 1.0 or metrics["cost_per_job"] <= 0:
            problems.append(
                f"{path.name}: service scheduler {name} records an impossible "
                f"scorecard (mean_slowdown {metrics['mean_slowdown']}, "
                f"$/job {metrics['cost_per_job']}) — contention cannot speed "
                "jobs up and simulated jobs are never free"
            )
    # The headline finding figS exists to report: adaptive worker
    # scaling must actually trade tail latency for $/job vs fifo. The
    # record is deterministic (seeded arrivals), so this inequality is
    # a property of the committed numbers, not of the CI machine.
    fifo, adaptive = schedulers.get("fifo"), schedulers.get("adaptive")
    if isinstance(fifo, dict) and isinstance(adaptive, dict) \
            and not (_SERVICE_METRIC_KEYS - fifo.keys()) \
            and not (_SERVICE_METRIC_KEYS - adaptive.keys()):
        if not (adaptive["cost_per_job"] < fifo["cost_per_job"]
                and adaptive["p99_completion_s"] > fifo["p99_completion_s"]):
            problems.append(
                f"{path.name}: the recorded fifo/adaptive pair shows no "
                f"cost-vs-tail trade-off ($/job {fifo['cost_per_job']} -> "
                f"{adaptive['cost_per_job']}, p99 {fifo['p99_completion_s']} "
                f"-> {adaptive['p99_completion_s']})"
            )
    return problems


def _check_fuzz_section(path: Path, fuzz) -> list[str]:
    """Shape-validate the reference fuzz-campaign record."""
    if fuzz is None:  # optional until the fuzz bench has run
        return []
    if not isinstance(fuzz, dict):
        return [f"{path.name}: 'fuzz_campaign' must be an object"]
    missing = _SWEEP_FUZZ_KEYS - fuzz.keys()
    if missing:
        return [f"{path.name}: 'fuzz_campaign' section missing {sorted(missing)}"]
    problems = []
    if fuzz["scenarios"] != fuzz["budget"]:
        problems.append(
            f"{path.name}: fuzz campaign checked {fuzz['scenarios']} of "
            f"{fuzz['budget']} budgeted scenarios"
        )
    checks = fuzz["checks_per_invariant"]
    if not isinstance(checks, dict) or checks.get("completes") != fuzz["budget"]:
        problems.append(
            f"{path.name}: 'completes' must run on every scenario "
            f"(got {checks})"
        )
    if sum(checks.values()) != fuzz["checks_total"]:
        problems.append(f"{path.name}: fuzz checks_total is inconsistent")
    return problems


def _check_reliability_section(path: Path, reliability) -> list[str]:
    """Shape-validate the figR cost-of-reliability record."""
    if reliability is None:  # optional until the figR bench has run
        return []
    if not isinstance(reliability, dict):
        return [f"{path.name}: 'reliability' must be an object"]
    problems = []
    missing = _SWEEP_RELIABILITY_KEYS - reliability.keys()
    if missing:
        problems.append(
            f"{path.name}: 'reliability' section missing {sorted(missing)}"
        )
        return problems
    if reliability["unique_stat_fingerprints"] != 1:
        problems.append(
            f"{path.name}: reliability grid must share ONE statistical "
            f"fingerprint (fault axes are systems axes), recorded "
            f"{reliability['unique_stat_fingerprints']}"
        )
    if reliability["traces_recorded"] != 1:
        problems.append(
            f"{path.name}: reliability sweep should record exactly 1 trace, "
            f"recorded {reliability['traces_recorded']}"
        )
    series = reliability["series"]
    if not isinstance(series, dict) or not series:
        problems.append(f"{path.name}: reliability 'series' must be non-empty")
        return problems
    unknown = series.keys() - _RELIABILITY_SERIES
    if unknown:
        problems.append(f"{path.name}: unknown reliability series {sorted(unknown)}")
    for name, rows in series.items():
        if not isinstance(rows, list) or not rows:
            problems.append(f"{path.name}: reliability series {name} is empty")
            continue
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                problems.append(f"{path.name}: {name}[{i}] is not an object")
                continue
            missing = _RELIABILITY_ROW_KEYS - row.keys()
            if missing:
                problems.append(
                    f"{path.name}: {name}[{i}] missing {sorted(missing)}"
                )
            elif row["overhead_s"] < 0:
                problems.append(
                    f"{path.name}: {name}[{i}] has negative overhead "
                    f"({row['overhead_s']}s) — faults cannot speed a run up"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help="committed benchmark record (BENCH_engine.json)")
    parser.add_argument("--factor", type=float, default=3.0,
                        help="allowed absolute slowdown vs the recorded "
                        "current_seconds (machine-sensitive backstop)")
    parser.add_argument("--ratio-slack", type=float, default=1.75,
                        help="allowed growth of time(w_max)/time(w_min) vs "
                        "the recorded ratio (machine-independent)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per point; the best (min) is compared")
    parser.add_argument("--sweep-baseline", type=Path, default=DEFAULT_SWEEP_BASELINE,
                        help="sweep benchmark record to shape-validate "
                        "(BENCH_sweep.json; skipped when absent)")
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(args.baseline.read_text())
        results = baseline["results"]
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        print(f"cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
        return 2

    sweep_problems = check_sweep_baseline(args.sweep_baseline)
    if sweep_problems:
        print("sweep benchmark record is malformed:", file=sys.stderr)
        for line in sweep_problems:
            print(f"  {line}", file=sys.stderr)
        return 2
    print(f"sweep baseline {args.sweep_baseline.name}: shape ok")

    failures = []
    measured: dict[int, float] = {}
    for key in sorted(results, key=int):
        record = results[key]
        workers = record["workers"]
        budget = record["current_seconds"] * args.factor
        repeats = max(1, args.repeats) if workers < 512 else 1
        elapsed = min(run_round(workers) for _ in range(repeats))
        measured[workers] = elapsed
        verdict = "ok" if elapsed <= budget else "REGRESSION"
        print(
            f"w={workers:4d}  recorded={record['current_seconds']:8.4f}s  "
            f"budget={budget:8.4f}s  measured={elapsed:8.4f}s  {verdict}"
        )
        if elapsed > budget:
            failures.append(
                f"w={workers}: {elapsed:.4f}s > {budget:.4f}s "
                f"({args.factor:g}x the recorded {record['current_seconds']:.4f}s)"
            )

    # Machine-independent complexity checks: how does runtime *scale*
    # between adjacent recorded worker counts? Per-pair gates localise
    # which scale regime regressed (e.g. a flat-index relapse shows at
    # 512->1024 long before it moves 50->100).
    ordered = sorted(measured)
    for w_lo, w_hi in zip(ordered, ordered[1:]):
        recorded_ratio = (
            results[str(w_hi)]["current_seconds"]
            / results[str(w_lo)]["current_seconds"]
        )
        measured_ratio = measured[w_hi] / measured[w_lo]
        limit = recorded_ratio * args.ratio_slack
        verdict = "ok" if measured_ratio <= limit else "REGRESSION"
        print(
            f"scaling w={w_lo}->{w_hi}: recorded {recorded_ratio:.2f}x, "
            f"limit {limit:.2f}x, measured {measured_ratio:.2f}x  {verdict}"
        )
        if measured_ratio > limit:
            failures.append(
                f"scaling ratio w={w_lo}->{w_hi}: {measured_ratio:.2f}x > "
                f"{limit:.2f}x (complexity-class regression; the O(w^3) seed "
                f"engine measured ~12x at 50->100, the flat-index engine "
                f"~13x at 512->1024)"
            )

    if failures:
        print("\nengine hot-path regression detected:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        print(
            "\nIf this slowdown is intentional (e.g. a fidelity/perf trade-off),\n"
            "re-measure and commit a new BENCH_engine.json:\n"
            "    PYTHONPATH=src python benchmarks/bench_engine_microbench.py",
            file=sys.stderr,
        )
        return 1
    print("engine hot path within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
