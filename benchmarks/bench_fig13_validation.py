"""Figure 13: analytical-model validation + sampling estimator."""

from conftest import once

from repro.experiments import fig13_validation


def _run_both():
    points = fig13_validation.run_fixed_epochs(epoch_grid=(1, 5, 10, 25, 50), workers=10)
    estimates = fig13_validation.run_estimator(
        cases=(("lr", "higgs"), ("svm", "higgs")), algorithms=("ma_sgd", "admm")
    )
    return points, estimates


def test_fig13_validation(benchmark, write_report):
    points, estimates = once(benchmark, _run_both)
    report = fig13_validation.format_report(points, estimates)
    write_report("fig13_validation", report)

    # (a) The analytical model tracks simulated runtime within ~30%.
    for p in points:
        assert abs(p.faas_predicted_s - p.faas_actual_s) / p.faas_actual_s < 0.35, p
        assert abs(p.iaas_predicted_s - p.iaas_actual_s) / p.iaas_actual_s < 0.35, p

    # (b) The 10% sampling estimator lands in the right epoch ballpark
    # and the resulting runtime prediction is the right magnitude.
    for e in estimates:
        assert e.estimated_epochs <= 3 * max(e.actual_epochs, 1.0) + 10, e
        assert e.predicted_runtime_s < 10 * e.actual_runtime_s, e
        assert e.predicted_runtime_s > e.actual_runtime_s / 10, e
