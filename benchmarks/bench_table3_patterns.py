"""Table 3: AllReduce vs ScatterReduce over S3."""

from conftest import once

from repro.experiments import table3_patterns


def test_table3_patterns(benchmark, write_report):
    rows = once(benchmark, table3_patterns.run)
    report = table3_patterns.format_report(rows)
    write_report("table3_patterns", report)

    by_label = {r.label: r for r in rows}
    # Paper: 9.2s vs 9.8s (LR), 3.3s vs 3.1s (MN), 17.3s vs 8.5s (RN).
    lr = by_label["LR,Higgs,W=50"]
    assert lr.scatter_reduce_s >= lr.allreduce_s * 0.8  # SR no better for tiny models
    rn = by_label["ResNet,Cifar10,W=10"]
    assert rn.allreduce_s / rn.scatter_reduce_s > 1.5  # ~2x in the paper
    mn = by_label["MobileNet,Cifar10,W=10"]
    assert 0.5 < mn.allreduce_s / mn.scatter_reduce_s < 2.5  # roughly even
