"""Figure 10: runtime breakdown, LR on Higgs, W=10, 10 epochs."""

import pytest
from conftest import once

from repro.experiments import fig10_breakdown

# Paper-reported seconds: (startup, load, compute, comm, total).
PAPER = {
    "pytorch": (132, 9, 80, 0.9, 221),
    "angel": (457, 35, 125, 1.1, 618),
    "hybridps": (123, 9, 80, 1.0, 213),
    "lambdaml": (1, 9, 80, 2, 92),
}


def test_fig10_breakdown(benchmark, write_report):
    rows = once(benchmark, fig10_breakdown.run, epochs=10.0, workers=10)
    report = fig10_breakdown.format_report(rows)
    write_report("fig10_breakdown", report)

    by_system = {r.system: r for r in rows}
    for system, (startup, load, compute, _comm, total) in PAPER.items():
        row = by_system[system]
        assert row.startup_s == pytest.approx(startup, rel=0.35), system
        assert row.load_s == pytest.approx(load, rel=0.6), system
        assert row.compute_s == pytest.approx(compute, rel=0.4), system
        assert row.total_s == pytest.approx(total, rel=0.4), system

    # Orderings the paper highlights.
    assert by_system["lambdaml"].total_s < by_system["hybridps"].total_s
    assert by_system["hybridps"].total_s < by_system["angel"].total_s
    assert (
        by_system["lambdaml"].total_without_startup_s
        >= by_system["pytorch"].total_without_startup_s
    )
