"""Table 6: analytical-model constants re-measured from the substrate."""

import pytest
from conftest import once

from repro.experiments import table6_constants


def test_table6_constants(benchmark, write_report):
    rows = once(benchmark, table6_constants.run)
    report = table6_constants.format_report(rows)
    write_report("table6_constants", report)
    for row in rows:
        assert row.measured_value == pytest.approx(row.paper_value, rel=0.25), (
            row.symbol,
            row.configuration,
        )
