"""fig11 mega tail: the W=1024/2048/4096 FaaS points behind ``--mega``.

Runs the mega-scale slice of fig11's LR/Higgs FaaS series through the
real sweep orchestrator with ``substrate="auto"`` — the same replay
substrate a ``repro.cli sweep --experiment fig11 --mega`` invocation
uses — and merges the per-point records into the ``points`` section of
``BENCH_sweep.json``, plus a ``mega`` section recording the ceiling
and per-point host wall. Worker count is a statistical axis (each W is
its own fingerprint), so every mega point is one exact training with a
trace recorded; what the record demonstrates is that the engine
*completes* the W=4096 point at all — the pre-mega engine's flat key
index put that out of interactive reach (see BENCH_engine.json's
``pre_mega`` baselines).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_fig11_mega.py

``--dry`` prints the record without touching BENCH_sweep.json.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.experiments.fig11_scaling import MEGA_FAAS_WORKERS, lr_higgs_points
from repro.sweep.orchestrator import run_sweep

BASELINE = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def mega_points():
    """Just the mega FaaS tail: no default FaaS series, no IaaS grid."""
    return lr_higgs_points(
        faas_workers=(), iaas_workers=(), iaas_instances=(),
        max_epochs=40, mega=True,
    )


def measure() -> dict:
    points = mega_points()
    assert [p.config_kwargs["workers"] for p in points] == list(MEGA_FAAS_WORKERS)
    records = {}
    walls = {}
    with tempfile.TemporaryDirectory() as tmp:
        for point in points:  # one at a time: per-point host wall
            t0 = time.perf_counter()
            run = run_sweep([point], out_dir=Path(tmp), substrate="auto")
            wall = time.perf_counter() - t0
            (artifact,) = run.artifacts
            result = artifact["result"]
            workers = artifact["config"]["workers"]
            walls[str(workers)] = round(wall, 3)
            records[str(workers)] = {
                "workers": workers,
                "config_hash": artifact["config_hash"],
                "simulated_runtime_s": round(result["duration_s"], 1),
                "cost_dollars": round(result["cost_total"], 4),
                "converged": result["converged"],
                "comm_rounds": result["comm_rounds"],
                "host_wall_seconds": round(wall, 3),
            }
            print(
                f"W={workers:5d}  host={wall:7.1f}s  "
                f"sim={result['duration_s']:8.1f}s  "
                f"cost=${result['cost_total']:8.2f}  "
                f"converged={result['converged']}"
            )
    return {
        "note": (
            "fig11 LR/Higgs FaaS tail past the cost cliff (sweep --mega): "
            "the mega-scale engine (chunked key index, batched dispatch, "
            "float-heap service slots) completes the W=4096 point "
            f"in {walls[str(max(MEGA_FAAS_WORKERS))]} s of host wall — the "
            "regime the pre-mega flat-index engine could not reach "
            "interactively (284 s for ONE 1024-worker ScatterReduce round; "
            "see BENCH_engine.json)."
        ),
        "command": (
            "PYTHONPATH=src python -m repro.cli sweep --experiment fig11 "
            "--mega  (this record: benchmarks/bench_fig11_mega.py)"
        ),
        "workers": list(MEGA_FAAS_WORKERS),
        "host_wall_seconds": walls,
        "points": records,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dry", action="store_true",
                        help="print the record without updating BENCH_sweep.json")
    args = parser.parse_args(argv)
    record = measure()
    print(json.dumps(record, indent=1))
    if not args.dry:
        baseline = json.loads(BASELINE.read_text()) if BASELINE.exists() else {}
        # Mega points join the main per-point table (same shape, just
        # more of the curve) and the mega section records the ceiling.
        baseline.setdefault("points", {}).update(record["points"])
        baseline["mega"] = {k: v for k, v in record.items() if k != "points"}
        BASELINE.write_text(json.dumps(baseline, indent=1) + "\n")
        print(f"[merged into {BASELINE}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
