"""Service scheduler acceptance run: the figS panel, benched.

Runs the figS study end to end — the two tenant job classes go through
the sweep orchestrator for isolated baselines + replay traces, then the
same 12-job Poisson workload is simulated under every registered
scheduler on one shared engine — and records the resulting scorecards
into the ``service`` section of ``BENCH_sweep.json``::

    PYTHONPATH=src python benchmarks/bench_service_schedulers.py [--dry]

``--dry`` prints the record without touching BENCH_sweep.json.
``benchmarks/check_regression.py`` shape-validates the committed
section and asserts the headline fifo-vs-adaptive cost/tail trade-off
still holds in the recorded numbers.
"""

from __future__ import annotations

import os

# Pin BLAS to one thread *before* numpy loads (same rationale as
# repro.cli): the service report is content-addressed and byte-stable,
# so the baseline trainings must be bit-deterministic.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__ as repro_version
from repro.experiments.fig_service import (
    format_report,
    simulate_schedulers,
    sweep_points,
)
from repro.sweep.artifacts import scan_artifacts
from repro.sweep.orchestrator import run_sweep

BASELINE = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def measure() -> dict:
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "figS"
        run_sweep(
            sweep_points(),
            out_dir=out,
            jobs=2,
            resume=True,
            substrate="auto",
            traces_dir=Path(tmp) / "traces",
        )
        artifacts, _ = scan_artifacts(out)
        result = simulate_schedulers(list(artifacts.values()))
    wall = time.perf_counter() - t0

    print(format_report(result))
    return {
        "note": (
            "figS multi-tenant service panel: 12 seeded Poisson arrivals "
            "cycling two comm-bound lr/rcv1 job classes onto one shared "
            "redis node, replayed under every registered scheduler. "
            "Slowdowns are measured against each job's isolated run; the "
            "fifo-vs-adaptive pair records the cost-vs-tail-latency "
            "trade-off check_regression.py gates on."
        ),
        "command": "PYTHONPATH=src python benchmarks/bench_service_schedulers.py",
        "panel_wall_seconds": round(wall, 3),
        **result,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dry", action="store_true",
                        help="print the record; do not update BENCH_sweep.json")
    args = parser.parse_args(argv)

    record = measure()
    print(json.dumps(record, indent=1))
    if args.dry:
        return 0
    baseline = json.loads(BASELINE.read_text()) if BASELINE.exists() else {}
    baseline["service"] = record
    baseline["engine_version"] = repro_version
    BASELINE.write_text(json.dumps(baseline, indent=1, sort_keys=True) + "\n")
    print(f"updated {BASELINE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
