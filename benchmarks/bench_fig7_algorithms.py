"""Figure 7: GA-SGD vs MA-SGD vs ADMM on LambdaML.

Scaled: the paper's 300-worker runs use 96 workers here (the ordering
and the anti-scaling of GA-SGD appear well before 300); GA-SGD epoch
caps keep the known-slow configurations bounded.
"""

from conftest import once

from repro.experiments import fig7_algorithms

WORKER_COUNTS = (10, 96)


def test_fig7a_lr_higgs(benchmark, write_report):
    comparison = once(
        benchmark,
        fig7_algorithms.run,
        model="lr",
        dataset="higgs",
        worker_counts=WORKER_COUNTS,
        max_epochs=40,
        ga_max_epochs=2,
    )
    report = fig7_algorithms.format_report(comparison, WORKER_COUNTS)
    write_report("fig7a_lr_higgs", report)
    admm_speedup = comparison.speedup("admm", *WORKER_COUNTS)
    ga_speedup = comparison.speedup("ga_sgd", *WORKER_COUNTS)
    # Paper: ADMM ~16x, GA-SGD ~0.08x. Shapes: ADMM scales, GA anti-scales.
    assert admm_speedup > 1.5
    assert ga_speedup < 1.0
    assert admm_speedup > ga_speedup


def test_fig7b_svm_higgs(benchmark, write_report):
    comparison = once(
        benchmark,
        fig7_algorithms.run,
        model="svm",
        dataset="higgs",
        worker_counts=WORKER_COUNTS,
        max_epochs=40,
        ga_max_epochs=2,
    )
    report = fig7_algorithms.format_report(comparison, WORKER_COUNTS)
    write_report("fig7b_svm_higgs", report)
    assert comparison.speedup("admm", *WORKER_COUNTS) > comparison.speedup(
        "ga_sgd", *WORKER_COUNTS
    )


def test_fig7c_mobilenet_cifar10(benchmark, write_report):
    comparison = once(
        benchmark,
        fig7_algorithms.run,
        model="mobilenet",
        dataset="cifar10",
        worker_counts=(10, 50),
        max_epochs=3,
        ga_max_epochs=3,
    )
    report = fig7_algorithms.format_report(comparison, (10, 50))
    write_report("fig7c_mobilenet_cifar10", report)
    ga = comparison.results[("ga_sgd", 10)]
    ma = comparison.results[("ma_sgd", 10)]
    # Paper: MA-SGD unstable on the neural model; GA-SGD is the choice.
    assert ga.final_loss < ma.final_loss
