"""Figure 8: synchronous vs asynchronous protocols."""

from conftest import once

from repro.experiments import fig8_synchronization


def test_fig8_synchronization(benchmark, write_report):
    comparisons = once(
        benchmark,
        fig8_synchronization.run,
        max_epochs=6,
        cases=[("lr", "higgs", 10), ("lr", "rcv1", 5)],
    )
    report = fig8_synchronization.format_report(comparisons)
    write_report("fig8_synchronization", report)

    for comp in comparisons:
        # ASP is faster per epoch (fewer storage ops per round)...
        asp_pace = comp.asp.duration_s / max(comp.asp.epochs, 1e-9)
        bsp_pace = comp.bsp.duration_s / max(comp.bsp.epochs, 1e-9)
        assert asp_pace < bsp_pace, comp.label
        # ...but statistically no better: it never beats BSP's loss.
        assert comp.asp.final_loss >= comp.bsp.final_loss - 5e-3, comp.label
