"""Serving tier acceptance run: the figV panel, benched.

Runs the figV study end to end — the two model classes train through
the sweep orchestrator, then the full platform x traffic x autoscaler
serving panel replays over the artifacts — and records the panel into
the ``serving`` section of ``BENCH_sweep.json``::

    PYTHONPATH=src python benchmarks/bench_figV_serving.py [--dry]

``--dry`` prints the record without touching BENCH_sweep.json.
``benchmarks/check_regression.py`` shape-validates the committed
section and asserts the headline cold-start-tail finding (bursty FaaS
p99.9 >> always-on IaaS p99.9) still holds in the recorded numbers.
"""

from __future__ import annotations

import os

# Pin BLAS to one thread *before* numpy loads (same rationale as
# repro.cli): the serving panel is a pure function of the training
# artifacts, so those must be bit-deterministic.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__ as repro_version
from repro.experiments.fig_serving import (
    format_report,
    serve_pipeline,
    sweep_points,
)
from repro.sweep.artifacts import scan_artifacts
from repro.sweep.orchestrator import run_sweep

BASELINE = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def measure() -> dict:
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "figV"
        run_sweep(
            sweep_points(),
            out_dir=out,
            jobs=2,
            resume=True,
            substrate="auto",
            traces_dir=Path(tmp) / "traces",
        )
        artifacts, _ = scan_artifacts(out)
        result = serve_pipeline(list(artifacts.values()))
    wall = time.perf_counter() - t0

    print(format_report(result))
    return {
        "note": (
            "figV train-then-serve pipeline: a MobileNet/Cifar10 surrogate "
            "and an LR/Higgs contrast trained to artifacts, then served "
            "under seeded request traffic across hosting platform (FaaS / "
            "always-on CPU / GPU VMs) x traffic shape (poisson / diurnal / "
            "bursty) x autoscaling policy. Each cell records latency "
            "percentiles, cold-start fraction, utilization and the "
            "end-to-end dollars (training + $/1M requests) "
            "check_regression.py gates on."
        ),
        "command": "PYTHONPATH=src python benchmarks/bench_figV_serving.py",
        "panel_wall_seconds": round(wall, 3),
        **result,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dry", action="store_true",
                        help="print the record; do not update BENCH_sweep.json")
    args = parser.parse_args(argv)

    record = measure()
    print(json.dumps(record, indent=1))
    if args.dry:
        return 0
    baseline = json.loads(BASELINE.read_text()) if BASELINE.exists() else {}
    baseline["serving"] = record
    baseline["engine_version"] = repro_version
    BASELINE.write_text(json.dumps(baseline, indent=1, sort_keys=True) + "\n")
    print(f"updated {BASELINE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
