"""Figure 14 (Q1): 10 Gbps FaaS<->IaaS what-if (analytical)."""

from conftest import once

from repro.experiments import fig14_fast_hybrid


def test_fig14_fast_hybrid(benchmark, write_report):
    rows = once(benchmark, fig14_fast_hybrid.run, workers_lr=100, workers_mn=10)
    report = fig14_fast_hybrid.format_report(rows)
    write_report("fig14_fast_hybrid", report)

    lr = {r.system: r for r in rows if r.workload == "lr/yfcc100m"}
    mn = {r.system: r for r in rows if r.workload == "mobilenet/cifar10"}

    # 10 Gbps makes the hybrid much faster than today's hybrid.
    assert lr["hybrid-10g"].runtime_s < lr["hybrid"].runtime_s
    assert mn["hybrid-10g"].runtime_s < mn["hybrid"].runtime_s
    # For LR/YFCC even the 10G hybrid loses to pure FaaS (PS VM boot + SGD).
    assert lr["faas"].runtime_s < lr["hybrid-10g"].runtime_s
    # For MobileNet the 10G hybrid beats CPU IaaS but not the GPU.
    assert mn["hybrid-10g"].runtime_s < mn["iaas"].runtime_s
    assert mn["iaas-gpu"].runtime_s < mn["hybrid-10g"].runtime_s
    # The hypothetical GPU-FaaS at g3s pricing undercuts GPU IaaS cost.
    assert mn["gpu-faas (hypothetical)"].cost < mn["iaas-gpu"].cost
