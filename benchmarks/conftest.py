"""Benchmark harness plumbing.

Each benchmark regenerates one table/figure of the paper at a scale
that finishes in seconds-to-minutes, then writes the formatted rows to
`benchmarks/reports/<name>.txt` — those files are the reproduction
record referenced by EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

# Bit-deterministic numpy regardless of machine load (see tests/conftest.py).
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import pytest

REPORTS_DIR = Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    return REPORTS_DIR


@pytest.fixture
def write_report(report_dir):
    def _write(name: str, text: str) -> None:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report saved to {path}]")

    return _write


def once(benchmark, fn, *args, **kwargs):
    """Run an expensive simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
