"""Table 2: Lambda <-> VM parameter-server RPC micro-benchmark."""

import pytest
from conftest import once

from repro.experiments import table2_hybrid_rpc

# (lambdas, mem, instance) -> paper-measured gRPC transfer seconds.
PAPER_GRPC_TRANSFER = {
    (1, 3.0, "t2.2xlarge"): 2.62,
    (1, 1.0, "t2.2xlarge"): 3.02,
    (1, 3.0, "c5.4xlarge"): 1.85,
    (1, 1.0, "c5.4xlarge"): 2.36,
    (10, 3.0, "t2.2xlarge"): 5.7,
    (10, 3.0, "c5.4xlarge"): 3.7,
}


def test_table2_hybrid_rpc(benchmark, write_report):
    rows = once(benchmark, table2_hybrid_rpc.run)
    report = table2_hybrid_rpc.format_report(rows)
    write_report("table2_hybrid_rpc", report)

    by_config = {(r.n_lambdas, r.lambda_memory_gb, r.ps_instance): r for r in rows}
    for config, paper_value in PAPER_GRPC_TRANSFER.items():
        ours = by_config[config].grpc_transfer_s
        assert ours == pytest.approx(paper_value, rel=0.45), (config, ours, paper_value)
    # Thrift is an order of magnitude slower at transfers but faster at
    # model updates (paper's right-hand columns).
    one = by_config[(1, 3.0, "c5.4xlarge")]
    assert one.thrift_transfer_s > 8 * one.grpc_transfer_s
    assert one.grpc_update_s > one.thrift_update_s
