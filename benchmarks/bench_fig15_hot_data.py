"""Figure 15 (Q2): hot data served from a VM (analytical)."""

from conftest import once

from repro.experiments import fig15_hot_data


def test_fig15_hot_data(benchmark, write_report):
    rows = once(benchmark, fig15_hot_data.run, workers_lr=100, workers_mn=10)
    report = fig15_hot_data.format_report(rows)
    write_report("fig15_hot_data", report)

    lr = {r.system: r for r in rows if r.workload == "lr/yfcc100m"}
    # With 110 GB resident in a VM, IaaS significantly outperforms
    # FaaS and the hybrid on runtime.
    assert lr["iaas"].runtime_s < 0.7 * lr["faas"].runtime_s
    assert lr["iaas"].runtime_s < 0.7 * lr["hybrid"].runtime_s
