"""Figure 9: end-to-end systems comparison (scaled worker counts)."""

from conftest import once

from repro.experiments import fig9_end_to_end

# The full panel list with worker counts capped at 20 and epoch caps
# so the sweep finishes in CI time; Criteo and ResNet50 are covered by
# their own workload probes/tests (heaviest physical substrates).
PANELS = [
    ("lr", "higgs"),
    ("svm", "higgs"),
    ("kmeans", "higgs"),
    ("lr", "rcv1"),
    ("svm", "rcv1"),
    ("kmeans", "rcv1"),
    ("lr", "yfcc100m"),
    ("svm", "yfcc100m"),
    ("kmeans", "yfcc100m"),
    ("mobilenet", "cifar10"),
]


def test_fig9_end_to_end(benchmark, write_report):
    panels = once(
        benchmark, fig9_end_to_end.run, panels=PANELS, workers_cap=50, max_epochs=20
    )
    report = fig9_end_to_end.format_report(panels)
    write_report("fig9_end_to_end", report)

    by_name = {p.workload.split(",")[0]: p.results for p in panels}

    # Convex, communication-efficient workloads: LambdaML fastest,
    # Angel slowest (start-up + HDFS + compute).
    for workload in ("lr/higgs", "svm/higgs", "lr/rcv1", "kmeans/higgs"):
        results = by_name[workload]
        assert results["lambdaml"].duration_s < results["pytorch-sgd"].duration_s, workload
        assert results["angel"].duration_s > results["pytorch-sgd"].duration_s, workload

    # Deep model: PyTorch beats LambdaML (VM-to-VM comm beats storage
    # channels), hybrid is serdes-bound, GPU wins outright.
    mn = by_name["mobilenet/cifar10"]
    assert mn["pytorch-gpu"].duration_s < mn["pytorch-sgd"].duration_s
    assert mn["pytorch-gpu"].duration_s < mn["lambdaml"].duration_s
    assert mn["hybridps"].duration_s > mn["pytorch-gpu"].duration_s
