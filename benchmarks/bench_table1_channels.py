"""Table 1: communication channels (S3 / Memcached / DynamoDB / VM-PS)."""

from conftest import once

from repro.experiments import table1_channels


def test_table1_channels(benchmark, write_report):
    rows = once(benchmark, table1_channels.run, scaled=True)
    report = table1_channels.format_report(rows)
    write_report("table1_channels", report)

    by_name = {(r.workload, r.workers): r for r in rows}
    lr10 = by_name[("lr/higgs", 10)]
    # Memcached pays its startup on a short job: S3 wins both axes
    # (paper: cost 5x, slowdown 4.17x).
    assert lr10.slowdown["memcached"] > 1.3
    assert lr10.rel_cost["memcached"] > 1.3
    # DynamoDB tracks S3 for tiny models (paper: ~0.95 cost, 0.83 slow).
    assert 0.5 < lr10.slowdown["dynamodb"] < 1.2
    # VM-PS also pays a VM boot (paper: cost 4.7, slowdown 3.85).
    assert lr10.slowdown["vm-ps"] > 1.3

    mn10 = by_name[("mobilenet/cifar10", 10)]
    # Long MobileNet jobs amortise Memcached's startup; its low latency
    # then beats S3 (paper: slowdown 0.77, cost 0.9).
    assert mn10.slowdown["memcached"] < 1.0
    # DynamoDB cannot hold the 12 MB model at all.
    assert mn10.slowdown["dynamodb"] is None
