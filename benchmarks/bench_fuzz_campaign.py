"""Fuzz campaign acceptance run: seeded chaos at budget, benched.

Runs the reference fuzz campaign (seed 0, 50 scenarios, 2 workers)
end to end — sampling, invariant gating, the resilient pool, corpus
plumbing — and requires it to come back green: the released engine
must hold every invariant over the reference slice of the
TrainingConfig x FaultPlan space. Then records campaign shape and
wall clock into the ``fuzz_campaign`` section of ``BENCH_sweep.json``::

    PYTHONPATH=src python benchmarks/bench_fuzz_campaign.py [--dry]

``--dry`` prints the record without touching BENCH_sweep.json.
"""

from __future__ import annotations

import os

# Pin BLAS to one thread *before* numpy loads (same rationale as
# repro.cli): invariant checks compare loss floats bit-for-bit, so the
# trainings must be bit-deterministic.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__ as repro_version
from repro.fuzz import plan_campaign, run_campaign

BASELINE = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

SEED = 0
BUDGET = 50
WORKERS = 2


def measure() -> dict:
    # The plan is a pure function of (seed, budget): pin its shape so a
    # drift in the sampler or the gating shows up as a bench diff, not
    # as silently different coverage.
    plan = plan_campaign(SEED, BUDGET)
    per_invariant: dict[str, int] = {}
    for task in plan:
        for name in task.invariants:
            per_invariant[name] = per_invariant.get(name, 0) + 1

    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        result = run_campaign(
            budget=BUDGET, seed=SEED, workers=WORKERS, corpus_dir=tmp
        )
    wall = time.perf_counter() - t0

    if not result.ok:
        print("fuzz campaign acceptance failed:", file=sys.stderr)
        for finding in result.findings:
            print(f"  {finding.describe()}", file=sys.stderr)
        raise SystemExit(1)
    if result.checks != per_invariant:
        print(
            f"campaign ran {result.checks}, but the plan gated {per_invariant}",
            file=sys.stderr,
        )
        raise SystemExit(1)

    return {
        "note": (
            "reference fuzz campaign: seeded property-based invariant "
            "checks over sampled TrainingConfig x FaultPlan scenarios "
            "(determinism, replay-vs-exact, fault trajectory-neutrality, "
            "stat-sibling bit-identity, sweep roundtrip), fanned out over "
            "the crash-resilient process pool. Green = every invariant "
            "held on every gated scenario."
        ),
        "command": "PYTHONPATH=src python benchmarks/bench_fuzz_campaign.py",
        "seed": SEED,
        "budget": BUDGET,
        "workers": WORKERS,
        "scenarios": result.scenarios,
        "checks_per_invariant": dict(sorted(result.checks.items())),
        "checks_total": sum(result.checks.values()),
        "campaign_wall_seconds": round(wall, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dry", action="store_true",
                        help="print the record; do not update BENCH_sweep.json")
    args = parser.parse_args(argv)

    record = measure()
    print(json.dumps(record, indent=1))
    if args.dry:
        return 0
    baseline = json.loads(BASELINE.read_text()) if BASELINE.exists() else {}
    baseline["fuzz_campaign"] = record
    baseline["engine_version"] = repro_version
    BASELINE.write_text(json.dumps(baseline, indent=1, sort_keys=True) + "\n")
    print(f"updated {BASELINE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
