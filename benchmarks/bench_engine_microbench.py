"""Engine hot-path microbenchmark: w-worker ScatterReduce rounds.

Measures the *wall-clock* cost of simulating communication rounds at
scale — the regime the Fig. 11 sweeps and Table 3 patterns need (100+
workers). The seed engine rescanned every stored key per waiter per
put (O(w^3) string scans per round); the indexed data plane brings a
round back to near-linear work.

Run standalone to (re)generate ``BENCH_engine.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_engine_microbench.py

The JSON records the seed baseline (measured on the pre-refactor
engine at commit ea1bc81 on this container) next to the current
engine's numbers so the speedup is auditable.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.comm.patterns import scatter_reduce
from repro.simulation.engine import Engine
from repro.storage.services import S3Store

# Wall-clock seconds for one scatter_reduce round, measured on the seed
# engine (commit ea1bc81) on this container, single-threaded BLAS.
SEED_BASELINE_S = {50: 0.334, 100: 4.065}

VECTOR_ELEMS = 256  # physical surrogate; logical size set separately
LOGICAL_NBYTES = 400_000  # ~LR/RCV1-sized model


def run_round(workers: int, rounds: int = 1) -> float:
    """Simulate `rounds` ScatterReduce rounds; return wall seconds."""
    engine = Engine()
    store = S3Store()
    store.available_at = 0.0
    vector = np.ones(VECTOR_ELEMS, dtype=np.float64)

    def worker(rank: int):
        for r in range(rounds):
            merged = yield from scatter_reduce(
                store, rank, workers, f"r{r}", vector, LOGICAL_NBYTES
            )
            assert merged.shape[0] == VECTOR_ELEMS

    for rank in range(workers):
        engine.spawn(worker(rank), f"w{rank}")
    t0 = time.perf_counter()
    engine.run()
    return time.perf_counter() - t0


def main() -> int:
    results = {}
    for workers, baseline in sorted(SEED_BASELINE_S.items()):
        elapsed = run_round(workers)
        results[str(workers)] = {
            "workers": workers,
            "seed_seconds": baseline,
            "current_seconds": round(elapsed, 4),
            "speedup": round(baseline / elapsed, 2) if elapsed > 0 else float("inf"),
        }
        print(
            f"w={workers:4d}  seed={baseline:8.3f}s  "
            f"now={elapsed:8.3f}s  speedup={baseline / elapsed:8.1f}x"
        )
    out = {
        "benchmark": "scatter_reduce round wall-clock (engine hot path)",
        "seed_commit": "ea1bc81",
        "logical_nbytes": LOGICAL_NBYTES,
        "results": results,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    path.write_text(json.dumps(out, indent=2) + "\n")
    print(f"[written to {path}]")
    target = results["100"]["speedup"]
    if target < 10.0:
        print(f"FAIL: 100-worker speedup {target}x < 10x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
