"""Engine hot-path microbenchmark: w-worker ScatterReduce rounds.

Measures the *wall-clock* cost of simulating communication rounds at
scale — the regime the Fig. 11 sweeps and Table 3 patterns need (100+
workers). The seed engine rescanned every stored key per waiter per
put (O(w^3) string scans per round); the indexed data plane brings a
round back to near-linear work.

Run standalone to (re)generate ``BENCH_engine.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_engine_microbench.py

The JSON records two baselines next to the current engine's numbers so
the speedups stay auditable:

* ``seed`` (w=50, w=100) — the pre-refactor O(w^3) engine at commit
  ea1bc81. Running it past ~100 workers is impractical, which is why
  the large points use the second baseline.
* ``pre_mega`` (w=512, w=1024) — the indexed-but-flat engine at commit
  2ebd351, i.e. immediately before the mega-scale rework (chunked key
  index, batched dispatch, float-heap service slots). Its flat sorted
  key list pays an O(n) memmove per put/delete, which is the wall the
  numbers show: 2x the workers (512 -> 1024) cost it 13x the wall
  clock. The mega-scale acceptance gate lives here: the current
  engine must hold >= 3x over this baseline at w=1024.
"""

from __future__ import annotations

import gc
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.comm.patterns import scatter_reduce
from repro.simulation.engine import Engine
from repro.storage.services import S3Store

# Wall-clock seconds for one scatter_reduce round, measured on the seed
# engine (commit ea1bc81) on this container, single-threaded BLAS.
SEED_BASELINE_S = {50: 0.334, 100: 4.065}
# Same round on the pre-mega-scale engine (commit 2ebd351, flat sorted
# key list), measured on this container with the machine idle.
PRE_MEGA_BASELINE_S = {512: 22.10, 1024: 284.07}

VECTOR_ELEMS = 256  # physical surrogate; logical size set separately
LOGICAL_NBYTES = 400_000  # ~LR/RCV1-sized model


def run_round(workers: int, rounds: int = 1) -> float:
    """Simulate `rounds` ScatterReduce rounds; return wall seconds."""
    engine = Engine()
    store = S3Store()
    store.available_at = 0.0
    vector = np.ones(VECTOR_ELEMS, dtype=np.float64)

    def worker(rank: int):
        for r in range(rounds):
            merged = yield from scatter_reduce(
                store, rank, workers, f"r{r}", vector, LOGICAL_NBYTES
            )
            assert merged.shape[0] == VECTOR_ELEMS

    for rank in range(workers):
        engine.spawn(worker(rank), f"w{rank}")
    # GC hygiene: a w=1024 round keeps millions of containers live, and
    # generational collections firing mid-measurement swing the wall
    # clock by up to ~50% run-to-run — enough to trip the scaling-ratio
    # gate on noise. Collect leftover garbage first, then keep the
    # collector off while the clock runs (both here and in
    # check_regression.py, which imports this function).
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        engine.run()
        return time.perf_counter() - t0
    finally:
        if was_enabled:
            gc.enable()


def main() -> int:
    baselines = {w: ("seed", s) for w, s in SEED_BASELINE_S.items()}
    baselines.update(
        {w: ("pre_mega", s) for w, s in PRE_MEGA_BASELINE_S.items()}
    )
    results = {}
    for workers in sorted(baselines):
        engine_name, baseline = baselines[workers]
        elapsed = run_round(workers)
        results[str(workers)] = {
            "workers": workers,
            "baseline_engine": engine_name,
            "baseline_seconds": baseline,
            "current_seconds": round(elapsed, 4),
            "speedup": round(baseline / elapsed, 2) if elapsed > 0 else float("inf"),
        }
        print(
            f"w={workers:4d}  {engine_name:>8}={baseline:8.3f}s  "
            f"now={elapsed:8.3f}s  speedup={baseline / elapsed:8.1f}x"
        )
    out = {
        "benchmark": "scatter_reduce round wall-clock (engine hot path)",
        "seed_commit": "ea1bc81",
        "pre_mega_commit": "2ebd351",
        "logical_nbytes": LOGICAL_NBYTES,
        "results": results,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    path.write_text(json.dumps(out, indent=2) + "\n")
    print(f"[written to {path}]")
    failures = []
    if results["100"]["speedup"] < 10.0:
        failures.append(f"100-worker speedup {results['100']['speedup']}x < 10x vs seed")
    if results["1024"]["speedup"] < 3.0:
        failures.append(
            f"1024-worker speedup {results['1024']['speedup']}x < 3x vs the "
            "pre-mega engine (mega-scale acceptance gate)"
        )
    for line in failures:
        print(f"FAIL: {line}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
