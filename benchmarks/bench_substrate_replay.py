"""Exact vs replay sweep timing on a fig11-style systems slice.

The slice fixes the fig11 LR/Higgs workload (ADMM, Table-4
hyper-parameters) and fans the *systems* axes — channel x pattern —
over two worker counts. Workers are a statistical axis, so the grid
has exactly two unique statistical fingerprints; a ``substrate="auto"``
sweep therefore pays for two exact numpy trainings and replays the
other ten points from their traces, while ``substrate="exact"`` trains
all twelve.

Verifies that both sweeps produce byte-identical artifacts (meta
aside), then updates the ``substrate`` section of ``BENCH_sweep.json``
with the measured per-point latency drop::

    PYTHONPATH=src python benchmarks/bench_substrate_replay.py [--dry]

``--dry`` prints the record without touching BENCH_sweep.json.
"""

from __future__ import annotations

import os

# Pin BLAS to one thread *before* numpy loads (same rationale as
# repro.cli): the bench compares a freshly recorded trace against an
# independently recomputed exact sweep, so exact runs must be
# bit-deterministic across invocations.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.workloads import get_workload
from repro.sweep.grid import SweepPoint, expand_grid
from repro.sweep.orchestrator import run_sweep

BASELINE = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

CHANNELS = ("s3", "redis", "memcached")
PATTERNS = ("allreduce", "scatterreduce")
WORKERS = (10, 30)


def slice_points() -> list[SweepPoint]:
    """fig11's LR/Higgs FaaS workload x a channel/pattern systems grid."""
    workload = get_workload("lr", "higgs")
    base = dict(
        model="lr", dataset="higgs", algorithm="admm", system="lambdaml",
        batch_size=workload.batch_size, lr=workload.lr,
        loss_threshold=workload.threshold, max_epochs=workload.max_epochs,
        seed=20210620,
    )
    return [
        SweepPoint(
            "bench-substrate",
            f"{kw['channel']},{kw['pattern']},W={kw['workers']}",
            config_kwargs=kw,
            tags={"series": "lr/higgs", "system": "faas"},
        )
        for kw in expand_grid(
            base,
            {"workers": WORKERS, "channel": CHANNELS, "pattern": PATTERNS},
        )
    ]


def strip_meta(artifact: dict) -> dict:
    return {key: value for key, value in artifact.items() if key != "meta"}


def measure() -> dict:
    points = slice_points()
    with tempfile.TemporaryDirectory() as tmp:
        t0 = time.perf_counter()
        exact = run_sweep(points, out_dir=Path(tmp) / "exact", substrate="exact")
        exact_wall = time.perf_counter() - t0

        t0 = time.perf_counter()
        auto = run_sweep(points, out_dir=Path(tmp) / "auto", substrate="auto")
        auto_wall = time.perf_counter() - t0

    mismatched = [
        a["label"]
        for a, b in zip(exact.artifacts, auto.artifacts)
        if strip_meta(a) != strip_meta(b)
    ]
    if mismatched:
        raise SystemExit(f"replay artifacts diverged from exact: {mismatched}")

    exact_per_point = [a["meta"]["wall_seconds"] for a in exact.artifacts]
    replayed_per_point = [
        a["meta"]["wall_seconds"]
        for a in auto.artifacts
        if a["meta"]["substrate"] == "replay"
    ]
    exact_trainings = auto.recorded + auto.exact_runs
    return {
        "note": (
            "fig11 LR/Higgs workload (ADMM, Table-4 hyper-parameters) x a "
            "channel/pattern systems slice. Workers are a statistical axis, "
            "channel/pattern are not: substrate=auto trains numpy once per "
            "unique statistical fingerprint and replays the rest from "
            "traces, bit-identical artifacts (verified on this run)."
        ),
        "command": (
            "PYTHONPATH=src python benchmarks/bench_substrate_replay.py"
        ),
        "grid": {
            "workers": list(WORKERS),
            "channels": list(CHANNELS),
            "patterns": list(PATTERNS),
        },
        "points": len(points),
        "unique_stat_fingerprints": auto.stat_groups,
        "exact_trainings": exact_trainings,
        "exact_training_reduction": round(len(points) / exact_trainings, 2),
        "replayed_points": auto.replayed,
        "exact_sweep_wall_seconds": round(exact_wall, 3),
        "auto_sweep_wall_seconds": round(auto_wall, 3),
        "sweep_speedup": round(exact_wall / auto_wall, 2),
        "exact_point_wall_seconds_mean": round(
            sum(exact_per_point) / len(exact_per_point), 3
        ),
        "replay_point_wall_seconds_mean": round(
            sum(replayed_per_point) / len(replayed_per_point), 4
        ),
        "artifacts_bit_identical": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dry", action="store_true",
                        help="print the record without updating BENCH_sweep.json")
    args = parser.parse_args(argv)

    record = measure()
    print(json.dumps(record, indent=1))
    if not args.dry:
        baseline = json.loads(BASELINE.read_text()) if BASELINE.exists() else {}
        baseline["substrate"] = record
        BASELINE.write_text(json.dumps(baseline, indent=1) + "\n")
        print(f"updated {BASELINE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
