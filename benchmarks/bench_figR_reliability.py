"""Figure R acceptance run: the cost-of-reliability curves, benched.

Runs the full ``figR`` grid (FaaS-with-checkpoints vs
IaaS-restart-from-scratch over crash rates, plus the storage-retry
series) through a ``substrate="auto"`` sweep, verifies the fault-plane
invariants on real workload scale —

* exactly one trace recorded for the whole grid (fault axes and the
  FaaS/IaaS split are all systems axes),
* every artifact reports the same final loss,
* overheads grow monotonically with the crash rate per series —

and writes the measured curves into the ``reliability`` section of
``BENCH_sweep.json``::

    PYTHONPATH=src python benchmarks/bench_figR_reliability.py [--dry]

``--dry`` prints the record without touching BENCH_sweep.json.
"""

from __future__ import annotations

import os

# Pin BLAS to one thread *before* numpy loads (same rationale as
# repro.cli): artifact hashes and loss floats must not depend on the
# host's BLAS threading.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro import __version__ as repro_version
from repro.experiments import figR_reliability
from repro.sweep.orchestrator import run_sweep

BASELINE = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def measure() -> dict:
    points = figR_reliability.sweep_points()
    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        run = run_sweep(points, out_dir=tmp, substrate="auto")
    wall = time.perf_counter() - t0

    problems = []
    if run.stat_groups != 1 or run.recorded != 1:
        problems.append(
            f"expected 1 stat fingerprint / 1 recording, got "
            f"{run.stat_groups}/{run.recorded}"
        )
    losses = {a["result"]["final_loss"] for a in run.artifacts}
    if len(losses) != 1:
        problems.append(f"final losses diverged across fault points: {losses}")

    curves = figR_reliability.aggregate(run.artifacts)
    series = {}
    for curve in curves:
        rows = []
        for p in sorted(
            curve.points,
            key=lambda p: (p.crash_rate, p.storage_error_rate, p.checkpoint_interval),
        ):
            rows.append(
                {
                    "crash_rate_per_hour": p.crash_rate,
                    "storage_error_rate": p.storage_error_rate,
                    "checkpoint_interval": p.checkpoint_interval,
                    "runtime_s": round(p.runtime_s, 3),
                    "cost_dollars": round(p.cost, 6),
                    "overhead_s": round(p.overhead_s, 3),
                    "overhead_dollars": round(p.overhead_cost, 6),
                    "crashes": p.events.get("crashes", 0),
                    "restarts": p.events.get("restarts", 0),
                    "reincarnations": p.events.get("reincarnations", 0),
                    "storage_retries": p.events.get("storage_retries", 0),
                }
            )
        # Faults can only add time: overhead is zero at the fault-free
        # point, never negative, and largest at the top fault rate.
        # (Strict monotonicity is NOT expected at low crash rates: a
        # lone crash landing just before a round boundary costs a full
        # redo, one landing just after costs almost nothing.)
        overheads = [r["overhead_s"] for r in rows]
        for row in rows:
            zero_fault = (
                row["crash_rate_per_hour"] == 0 and row["storage_error_rate"] == 0
            )
            if zero_fault and row["overhead_s"] != 0.0:
                problems.append(f"{curve.series}: nonzero baseline overhead")
        if overheads and min(overheads) < 0:
            problems.append(f"{curve.series}: negative overheads: {overheads}")
        # The rate-swept series must peak at the top rate. The interval
        # series sweeps cadence at a FIXED rate, where which crash lands
        # where dominates — only non-negativity is a theorem there.
        if (
            curve.series != "faas-interval"
            and overheads
            and overheads[-1] != max(overheads)
        ):
            problems.append(f"{curve.series}: implausible overheads: {overheads}")
        series[curve.series] = rows

    if problems:
        print("figR acceptance failed:", file=sys.stderr)
        for line in problems:
            print(f"  {line}", file=sys.stderr)
        raise SystemExit(1)

    return {
        "note": (
            "cost of reliability on the Table-4 LR/Higgs workload (W=10): "
            "runtime/cost overhead vs crash rate for FaaS with per-round "
            "checkpoints vs IaaS restart-from-scratch, plus FaaS transient "
            "storage errors under retry/backoff. One statistical "
            "fingerprint serves the whole grid: substrate=auto recorded a "
            "single trace and replayed every fault point."
        ),
        "command": "PYTHONPATH=src python benchmarks/bench_figR_reliability.py",
        "points": len(run.artifacts),
        "unique_stat_fingerprints": run.stat_groups,
        "traces_recorded": run.recorded,
        "replayed_points": run.replayed,
        "sweep_wall_seconds": round(wall, 3),
        "series": series,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dry", action="store_true",
                        help="print the record; do not update BENCH_sweep.json")
    args = parser.parse_args(argv)

    record = measure()
    print(json.dumps(record, indent=1))
    if args.dry:
        return 0
    baseline = json.loads(BASELINE.read_text()) if BASELINE.exists() else {}
    baseline["reliability"] = record
    baseline["engine_version"] = repro_version
    BASELINE.write_text(json.dumps(baseline, indent=1, sort_keys=True) + "\n")
    print(f"updated {BASELINE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
