"""Table 5: ML pipelines (preprocessing + learning-rate grid search)."""

from conftest import once

from repro.experiments import table5_pipeline


def test_table5_pipeline(benchmark, write_report):
    rows = once(
        benchmark,
        table5_pipeline.run,
        epochs_per_job=10.0,
        grid=[0.01, 0.03, 0.05, 0.08, 0.1],  # 5-point grid keeps CI fast
    )
    report = table5_pipeline.format_report(rows)
    write_report("table5_pipeline", report)

    by_key = {(r.workload, r.platform): r for r in rows}
    lr_faas = by_key[("lr/higgs", "faas")]
    lr_iaas = by_key[("lr/higgs", "iaas")]
    # Paper: FaaS 96s/$0.47 vs IaaS 233s/$0.31 — faster, not cheaper.
    assert lr_faas.runtime_s < lr_iaas.runtime_s
    assert lr_faas.cost > lr_iaas.cost

    mn_faas = by_key[("mobilenet/cifar10", "faas")]
    mn_iaas = by_key[("mobilenet/cifar10", "iaas")]
    # Paper: IaaS (GPU) is faster AND much cheaper for MobileNet.
    assert mn_iaas.runtime_s < mn_faas.runtime_s
    assert mn_iaas.cost < mn_faas.cost
