"""Section 5.1.1: COST sanity check (1 machine vs 10 workers)."""

from conftest import once

from repro.experiments import cost_sanity


def test_cost_sanity(benchmark, write_report):
    rows = once(
        benchmark,
        cost_sanity.run,
        cases=[("lr", "higgs"), ("svm", "higgs"), ("kmeans", "higgs")],
        max_epochs=30,
    )
    report = cost_sanity.format_report(rows)
    write_report("cost_sanity", report)
    # Paper: ~9-10x on the convex Higgs workloads; we require real,
    # greater-than-2x scaling so the distributed runs are justified.
    for row in rows:
        assert row.faas_speedup > 2.0, row.workload
        assert row.iaas_speedup > 1.0, row.workload
