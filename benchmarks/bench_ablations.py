"""Ablations over LambdaML's design choices (beyond the paper's tables).

DESIGN.md calls out several constants the system is sensitive to; these
benches quantify each one on the LR/Higgs workload:

* ADMM local scans per round (communication/computation tradeoff);
* Lambda memory size (vCPU share scales with memory);
* ElastiCache node type (bandwidth tiers);
* synchronous-protocol poll interval (storage polling overhead).
"""

from conftest import once

from repro.core.config import TrainingConfig
from repro.core.driver import train
from repro.experiments.report import format_table


def _cfg(**overrides) -> TrainingConfig:
    base = dict(
        model="lr", dataset="higgs", algorithm="admm", system="lambdaml",
        workers=10, channel="s3", batch_size=10_000, lr=0.05,
        loss_threshold=0.66, max_epochs=40, seed=20210620,
    )
    base.update(overrides)
    return TrainingConfig(**base)


def _sweep_admm_scans():
    rows = []
    for scans in (2, 5, 10, 20):
        result = train(_cfg(admm_scans=scans))
        rows.append([scans, result.converged, result.comm_rounds,
                     result.epochs, result.duration_s, result.cost_total])
    return rows


def test_ablation_admm_scans(benchmark, write_report):
    rows = once(benchmark, _sweep_admm_scans)
    report = format_table(
        "Ablation — ADMM local scans per round (LR, Higgs, W=10)",
        ["scans", "converged", "rounds", "epochs", "time(s)", "cost($)"],
        rows,
    )
    write_report("ablation_admm_scans", report)
    by_scans = {r[0]: r for r in rows}
    # More scans per round -> fewer communication rounds.
    assert by_scans[20][2] <= by_scans[2][2]
    # Everything still converges.
    assert all(r[1] for r in rows)


def _sweep_lambda_memory():
    rows = []
    for memory_gb in (1.0, 2.0, 3.0):
        result = train(_cfg(lambda_memory_gb=memory_gb, loss_threshold=None, max_epochs=10))
        rows.append([memory_gb, result.breakdown.get("compute"),
                     result.duration_s, result.cost_total])
    return rows


def test_ablation_lambda_memory(benchmark, write_report):
    rows = once(benchmark, _sweep_lambda_memory)
    report = format_table(
        "Ablation — Lambda memory size (vCPU share), 10 fixed epochs",
        ["memory (GB)", "compute(s)", "time(s)", "cost($)"],
        rows,
    )
    write_report("ablation_lambda_memory", report)
    by_mem = {r[0]: r for r in rows}
    # 1 GB functions get 1/3 the vCPU share: ~3x the compute time.
    assert by_mem[1.0][1] > 2.5 * by_mem[3.0][1]
    # Cost does not drop proportionally: cheaper-per-second but slower.
    assert by_mem[1.0][3] > 0.7 * by_mem[3.0][3]


def _sweep_cache_nodes():
    rows = []
    for node in ("cache.t3.small", "cache.t3.medium", "cache.m5.large"):
        result = train(
            _cfg(
                model="mobilenet", dataset="cifar10", algorithm="ga_sgd",
                channel="memcached", cache_node=node, channel_prestarted=True,
                batch_size=128, batch_scope="per_worker",
                loss_threshold=None, max_epochs=1,
            )
        )
        rows.append([node, result.breakdown.get("comm"), result.duration_s,
                     result.cost_total])
    return rows


def test_ablation_cache_node(benchmark, write_report):
    rows = once(benchmark, _sweep_cache_nodes)
    report = format_table(
        "Ablation — ElastiCache node tier (MobileNet, 1 epoch)",
        ["node", "comm(s)", "time(s)", "cost($)"],
        rows,
    )
    write_report("ablation_cache_node", report)
    by_node = {r[0]: r for r in rows}
    # Bigger nodes move 12 MB models faster.
    assert by_node["cache.m5.large"][1] < by_node["cache.t3.small"][1]


def _sweep_poll_interval():
    rows = []
    for poll in (0.01, 0.05, 0.2, 1.0):
        result = train(
            _cfg(algorithm="ma_sgd", loss_threshold=None, max_epochs=5,
                 poll_interval_s=poll)
        )
        rows.append([poll, result.breakdown.get("wait") + result.breakdown.get("merge"),
                     result.duration_s])
    return rows


def test_ablation_poll_interval(benchmark, write_report):
    rows = once(benchmark, _sweep_poll_interval)
    report = format_table(
        "Ablation — synchronous-protocol poll interval (MA-SGD, 5 epochs)",
        ["poll (s)", "wait+merge (s)", "time(s)"],
        rows,
    )
    write_report("ablation_poll_interval", report)
    # Coarser polling wastes more time per synchronisation point.
    assert rows[-1][2] > rows[0][2]
