"""Legacy setup shim.

The execution environment is offline and lacks the `wheel` package, so
PEP-517 editable installs fail with "invalid command 'bdist_wheel'".
This shim lets `pip install -e . --no-use-pep517` (and plain
`pip install -e .` on toolchains that prefer setup.py) perform a
legacy editable install. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
