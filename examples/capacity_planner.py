"""Capacity planner: should *your* workload train on FaaS or IaaS?

Uses the paper's Section-5.3 analytical model plus the sampling-based
epochs estimator to answer, for a chosen workload:

* how many workers minimise runtime / cost on each platform,
* where the FaaS/IaaS crossover falls,
* what the hybrid (PS-on-VM) architecture would do, today and with a
  hypothetical 10 Gbps FaaS-IaaS link (Figure 14's what-if).

Run:  python examples/capacity_planner.py
"""

from __future__ import annotations

from repro.api import AnalyticalModel, HybridModel, SamplingEstimator, WorkloadParams
from repro.data.datasets import get_spec
from repro.models.zoo import get_model_info

MB = 1024 * 1024


def build_params(model: str, dataset: str, algorithm: str, lr: float, threshold: float):
    """Estimate epochs from a 10% sample, then assemble model inputs."""
    estimator = SamplingEstimator(sample_fraction=0.1, seed=7)
    estimate = estimator.estimate(model, dataset, algorithm, lr=lr, threshold=threshold,
                                  batch_size=100)
    spec = get_spec(dataset)
    info = get_model_info(model, dataset)
    compute = spec.n_instances * info.compute.per_instance_s
    rounds = 0.1 if algorithm == "admm" else 1.0
    print(
        f"sampling estimator: {estimate.epochs:.1f} epochs to loss {threshold}"
        f" ({'converged' if estimate.converged else 'cap hit'})"
    )
    return WorkloadParams(
        dataset_bytes=spec.size_bytes,
        model_bytes=info.param_bytes,
        epochs_faas=estimate.epochs,
        epochs_iaas=estimate.epochs,
        compute_faas_s=compute,
        compute_iaas_s=compute,
        rounds_per_epoch=rounds,
    )


def main() -> None:
    params = build_params("lr", "higgs", "admm", lr=0.05, threshold=0.66)
    model = AnalyticalModel(params)
    hybrid = HybridModel(params)
    hybrid_10g = HybridModel(
        params, faas_vm_bandwidth=1250 * MB, serdes_bandwidth=1250 * MB
    )

    print(f"\n{'w':>4} {'FaaS(s)':>9} {'FaaS($)':>8} {'IaaS(s)':>9} {'IaaS($)':>8} "
          f"{'Hybrid(s)':>10} {'Hybrid10G(s)':>13}")
    best = {"faas": None, "iaas": None}
    for w in (1, 2, 5, 10, 20, 50, 100, 150):
        faas_s, faas_c = model.faas_seconds(w), model.faas_cost(w)
        iaas_s, iaas_c = model.iaas_seconds(w), model.iaas_cost(w)
        print(
            f"{w:>4} {faas_s:>9.1f} {faas_c:>8.4f} {iaas_s:>9.1f} {iaas_c:>8.4f} "
            f"{hybrid.seconds(w):>10.1f} {hybrid_10g.seconds(w):>13.1f}"
        )
        if best["faas"] is None or faas_s < best["faas"][1]:
            best["faas"] = (w, faas_s, faas_c)
        if best["iaas"] is None or iaas_s < best["iaas"][1]:
            best["iaas"] = (w, iaas_s, iaas_c)

    fw, fs, fc = best["faas"]
    iw, is_, ic = best["iaas"]
    print(f"\nbest FaaS: w={fw}: {fs:.1f}s at ${fc:.4f}")
    print(f"best IaaS: w={iw}: {is_:.1f}s at ${ic:.4f}")
    verdict = "FaaS wins on runtime" if fs < is_ else "IaaS wins on runtime"
    cheaper = "FaaS cheaper" if fc < ic else "IaaS cheaper"
    print(f"=> {verdict}; {cheaper}.")


if __name__ == "__main__":
    main()
