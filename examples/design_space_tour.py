"""A tour of LambdaML's design space (paper Section 3).

Sweeps the four FaaS design dimensions on one workload and prints how
each choice moves runtime and cost:

1. distributed optimization algorithm (GA-SGD / MA-SGD / ADMM),
2. communication channel (S3 / Memcached / DynamoDB),
3. communication pattern (AllReduce / ScatterReduce),
4. synchronization protocol (BSP / ASP).

Run:  python examples/design_space_tour.py
"""

from __future__ import annotations

from repro import TrainingConfig, train


def run(**overrides):
    base = dict(
        model="lr",
        dataset="higgs",
        algorithm="admm",
        system="lambdaml",
        workers=10,
        channel="s3",
        batch_size=100_000,
        lr=0.05,
        loss_threshold=0.66,
        max_epochs=40,
    )
    base.update(overrides)
    return train(TrainingConfig(**base))


def show(title: str, runs: dict) -> None:
    print(f"\n== {title} ==")
    print(f"{'configuration':<22} {'conv':<6} {'loss':>7} {'time(s)':>9} {'cost($)':>9} {'rounds':>7}")
    for name, r in runs.items():
        print(
            f"{name:<22} {str(r.converged):<6} {r.final_loss:>7.4f} "
            f"{r.duration_s:>9.1f} {r.cost_total:>9.4f} {r.comm_rounds:>7}"
        )


def main() -> None:
    show(
        "1. Algorithm (channel=s3)",
        {
            "ADMM": run(algorithm="admm"),
            "MA-SGD": run(algorithm="ma_sgd"),
            "GA-SGD": run(algorithm="ga_sgd", lr=0.3, max_epochs=3),
        },
    )
    show(
        "2. Channel (algorithm=admm)",
        {
            "S3": run(channel="s3"),
            "Memcached": run(channel="memcached"),
            "DynamoDB": run(channel="dynamodb"),
        },
    )
    show(
        "3. Pattern (mobilenet, memcached)",
        {
            "AllReduce": run(
                model="mobilenet", dataset="cifar10", algorithm="ga_sgd",
                channel="memcached", channel_prestarted=True,
                batch_size=128, batch_scope="per_worker",
                loss_threshold=None, max_epochs=1, pattern="allreduce",
            ),
            "ScatterReduce": run(
                model="mobilenet", dataset="cifar10", algorithm="ga_sgd",
                channel="memcached", channel_prestarted=True,
                batch_size=128, batch_scope="per_worker",
                loss_threshold=None, max_epochs=1, pattern="scatterreduce",
            ),
        },
    )
    show(
        "4. Protocol (ga-sgd)",
        {
            "BSP": run(algorithm="ga_sgd", lr=0.3, max_epochs=4, straggler_jitter=0.3),
            "ASP": run(algorithm="ga_sgd", lr=0.3, max_epochs=4, protocol="asp",
                       straggler_jitter=0.3),
        },
    )


if __name__ == "__main__":
    main()
