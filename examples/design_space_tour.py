"""A tour of LambdaML's design space (paper Section 3).

Sweeps the four FaaS design dimensions on one workload via the
``repro.api`` facade and prints how each choice moves runtime and cost:

1. distributed optimization algorithm (GA-SGD / MA-SGD / ADMM),
2. communication channel (S3 / Memcached / DynamoDB),
3. communication pattern (AllReduce / ScatterReduce),
4. synchronization protocol (BSP / ASP).

Run:  python examples/design_space_tour.py
      python examples/design_space_tour.py --quick   # CI-scale grid
"""

from __future__ import annotations

import sys

from repro.api import Scenario, compare

# --quick shrinks the dataset and epoch budget so the whole tour runs
# in seconds (the CI examples-smoke job uses it); the shapes survive.
QUICK = "--quick" in sys.argv

BASE = Scenario(
    model="lr",
    dataset="higgs",
    algorithm="admm",
    system="lambdaml",
    workers=10,
    channel="s3",
    batch_size=100_000,
    lr=0.05,
    loss_threshold=0.66,
    max_epochs=4 if QUICK else 40,
    data_scale=5000 if QUICK else None,
)


def show(title: str, scenarios: dict) -> None:
    print()
    print(compare(scenarios).report(title))


def main() -> None:
    ga_epochs = 1 if QUICK else 3
    show(
        "1. Algorithm (channel=s3)",
        {
            "ADMM": BASE,
            "MA-SGD": BASE.vary(algorithm="ma_sgd"),
            "GA-SGD": BASE.vary(algorithm="ga_sgd", lr=0.3, max_epochs=ga_epochs),
        },
    )
    show(
        "2. Channel (algorithm=admm)",
        {
            "S3": BASE,
            "Memcached": BASE.vary(channel="memcached"),
            "DynamoDB": BASE.vary(channel="dynamodb"),
        },
    )
    mobilenet = BASE.vary(
        model="mobilenet", dataset="cifar10", algorithm="ga_sgd",
        channel="memcached", channel_prestarted=True,
        batch_size=128, batch_scope="per_worker",
        loss_threshold=None, max_epochs=0.2 if QUICK else 1,
    )
    show(
        "3. Pattern (mobilenet, memcached)",
        {
            "AllReduce": mobilenet.vary(pattern="allreduce"),
            "ScatterReduce": mobilenet.vary(pattern="scatterreduce"),
        },
    )
    sgd = BASE.vary(
        algorithm="ga_sgd", lr=0.3, max_epochs=1 if QUICK else 4,
        straggler_jitter=0.3,
    )
    show(
        "4. Protocol (ga-sgd)",
        {
            "BSP": sgd,
            "ASP": sgd.vary(protocol="asp"),
        },
    )


if __name__ == "__main__":
    main()
