"""Fault tolerance on FaaS: the 15-minute wall in action (Figure 5).

Trains the ResNet50 surrogate on Cifar10 with LambdaML. One training
epoch takes over an hour of simulated worker time, so each Lambda
function repeatedly hits the 15-minute lifetime, checkpoints its model
to S3, and self-triggers a successor that resumes from the checkpoint —
the invocation structure of the paper's Figure 5.

Run:  python examples/fault_tolerance.py
"""

from __future__ import annotations

from repro.api import Scenario, run


def main() -> None:
    scenario = Scenario(
        model="resnet50",
        dataset="cifar10",
        algorithm="ga_sgd",  # per-batch rounds fit inside one lifetime
        system="lambdaml",
        workers=10,
        channel="memcached",
        channel_prestarted=True,
        batch_size=32,
        batch_scope="per_worker",
        lr=0.05,
        loss_threshold=0.4,
        max_epochs=2,
    )
    result = run(scenario)

    lifetime_minutes = 15
    print(result.summary())
    print()
    print(f"simulated duration      : {result.duration_s / 60:.1f} minutes")
    print(f"function lifetime       : {lifetime_minutes} minutes")
    print(f"checkpoint/re-invocations (total): {result.checkpoints}")
    print(f"checkpoint overhead (slowest worker): "
          f"{result.breakdown.get('checkpoint'):.1f}s")
    print()
    print("Each worker checkpointed roughly every 15 simulated minutes —")
    print("the Figure-5 hierarchical invocation mechanism at work.")


if __name__ == "__main__":
    main()
