"""Quickstart: train one model on LambdaML and inspect the result.

Trains logistic regression on the Higgs-like dataset with distributed
ADMM over ten simulated Lambda workers communicating through S3 — the
paper's best FaaS configuration for this workload — and prints the
runtime, dollar cost, convergence trajectory and per-phase breakdown.

Uses the public ``repro.api`` facade: a ``Scenario`` describes the run,
``run()`` executes it.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import Scenario, run


def main() -> None:
    scenario = Scenario(
        model="lr",
        dataset="higgs",
        algorithm="admm",  # communication-efficient: syncs every 10 epochs
        system="lambdaml",  # pure FaaS
        workers=10,
        channel="s3",
        batch_size=10_000,
        lr=0.05,
        loss_threshold=0.66,  # paper Table 4 stopping loss
        max_epochs=60,
    )
    result = run(scenario)

    print(result.summary())
    print()
    print("Loss trajectory (time s -> validation loss):")
    for time_s, loss in result.loss_curve()[:10]:
        print(f"  {time_s:8.1f}s  {loss:.4f}")
    print()
    print("Time breakdown of the slowest worker (seconds):")
    for phase, seconds in sorted(result.breakdown.as_dict().items()):
        print(f"  {phase:<12} {seconds:8.2f}")
    print()
    print("Cost breakdown (dollars):")
    for component, dollars in sorted(result.cost_breakdown.items()):
        print(f"  {component:<12} {dollars:8.4f}")


if __name__ == "__main__":
    main()
