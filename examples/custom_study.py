"""Declare a brand-new experiment in ~30 lines (the Study protocol).

The paper explored four design dimensions; here is a scenario it never
ran: *how does the storage polling interval move runtime and cost?*
Polling faster finds merged files sooner but bills more requests — a
genuine trade-off curve, posed as a ``Study`` declaration and executed
by the same parallel/resumable/two-phase orchestrator as every paper
figure. All 8 points share one statistical fingerprint, so
``substrate="auto"`` trains once and replays seven times.

Run:  python examples/custom_study.py
"""

from __future__ import annotations

import tempfile

from repro.api import Scenario, Session, study
from repro.experiments.report import format_table

POLL_INTERVALS = (0.01, 0.05, 0.2, 1.0)


@study("poll_tradeoff")
class PollTradeoffStudy:
    """runtime/cost vs storage polling interval (not in the paper)"""

    @staticmethod
    def points(ctx):
        base = Scenario.workload(
            "lr", "higgs", workers=4, data_scale=5000,
            max_epochs=ctx.max_epochs or 2.0, seed=ctx.seed,
        )
        return [
            s.point("poll_tradeoff")
            for s in base.grid(
                channel=("s3", "memcached"), poll_interval_s=POLL_INTERVALS
            )
        ]

    @staticmethod
    def aggregate(artifacts):
        return [
            (a["config"]["channel"], a["config"]["poll_interval_s"],
             a["result"]["duration_s"], a["result"]["cost_total"])
            for a in artifacts
        ]

    @staticmethod
    def format_report(rows):
        return format_table(
            "Polling interval trade-off (LR/Higgs at 1/5000 scale)",
            ["channel", "poll(s)", "runtime(s)", "cost($)"],
            rows,
        )


def main() -> None:
    with tempfile.TemporaryDirectory() as root:
        session = Session(root, jobs=2)  # substrate="auto", resume=True
        outcome = session.sweep("poll_tradeoff")
        print(outcome.report())
        print()
        print(
            f"{outcome.run.ran} point(s) run "
            f"({outcome.run.recorded} exact training(s), "
            f"{outcome.run.replayed} replayed from its trace)"
        )


if __name__ == "__main__":
    main()
