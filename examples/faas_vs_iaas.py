"""FaaS vs IaaS head to head — the paper's central question.

Runs the same workload (LR / Higgs, distributed ADMM) on:

* LambdaML  — pure FaaS over S3;
* PyTorch   — a t2.medium EC2 cluster with ring AllReduce;
* HybridPS  — Lambda workers pushing to a VM parameter server (Cirrus).

Then prints the runtime/cost verdict, illustrating the headline
insight: *FaaS can be much faster (start-up!) but it is never
significantly cheaper.*

Run:  python examples/faas_vs_iaas.py
"""

from __future__ import annotations

from repro import TrainingConfig, train


def run(system: str, algorithm: str):
    return train(
        TrainingConfig(
            model="lr",
            dataset="higgs",
            algorithm=algorithm,
            system=system,
            workers=10,
            channel="s3",
            batch_size=10_000,
            lr=0.05 if algorithm != "ga_sgd" else 0.3,
            loss_threshold=0.66,
            max_epochs=60,
        )
    )


def main() -> None:
    runs = {
        "LambdaML (FaaS, ADMM)": run("lambdaml", "admm"),
        "PyTorch (IaaS, ADMM)": run("pytorch", "admm"),
        "PyTorch (IaaS, MA-SGD)": run("pytorch", "ma_sgd"),
        "HybridPS (Cirrus-style)": run("hybridps", "ga_sgd"),
    }
    print(f"{'system':<26} {'converged':<10} {'time (s)':>9} {'cost ($)':>9}")
    for name, result in runs.items():
        print(
            f"{name:<26} {str(result.converged):<10} "
            f"{result.duration_s:>9.1f} {result.cost_total:>9.4f}"
        )

    faas = runs["LambdaML (FaaS, ADMM)"]
    iaas = runs["PyTorch (IaaS, ADMM)"]
    print()
    print(f"FaaS speed-up over IaaS : {iaas.duration_s / faas.duration_s:.2f}x")
    print(f"FaaS cost over IaaS     : {faas.cost_total / iaas.cost_total:.2f}x")
    print("=> faster, but not cheaper — the paper's Insight (2).")


if __name__ == "__main__":
    main()
