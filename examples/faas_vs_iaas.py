"""FaaS vs IaaS head to head — the paper's central question.

Runs the same workload (LR / Higgs, distributed ADMM) on:

* LambdaML  — pure FaaS over S3;
* PyTorch   — a t2.medium EC2 cluster with ring AllReduce;
* HybridPS  — Lambda workers pushing to a VM parameter server (Cirrus).

Then prints the runtime/cost verdict, illustrating the headline
insight: *FaaS can be much faster (start-up!) but it is never
significantly cheaper.*

Run:  python examples/faas_vs_iaas.py
"""

from __future__ import annotations

from repro.api import Scenario, compare


def main() -> None:
    base = Scenario(
        model="lr",
        dataset="higgs",
        algorithm="admm",
        workers=10,
        channel="s3",
        batch_size=10_000,
        lr=0.05,
        loss_threshold=0.66,
        max_epochs=60,
    )
    verdict = compare(
        {
            "LambdaML (FaaS, ADMM)": base.vary(system="lambdaml"),
            "PyTorch (IaaS, ADMM)": base.vary(system="pytorch"),
            "PyTorch (IaaS, MA-SGD)": base.vary(system="pytorch", algorithm="ma_sgd"),
            "HybridPS (Cirrus-style)": base.vary(
                system="hybridps", algorithm="ga_sgd", lr=0.3
            ),
        }
    )
    print(verdict.report("FaaS vs IaaS — LR/Higgs, distributed ADMM"))

    faas = verdict["LambdaML (FaaS, ADMM)"]
    iaas = verdict["PyTorch (IaaS, ADMM)"]
    print()
    print(f"FaaS speed-up over IaaS : {iaas.duration_s / faas.duration_s:.2f}x")
    print(f"FaaS cost over IaaS     : {faas.cost_total / iaas.cost_total:.2f}x")
    print("=> faster, but not cheaper — the paper's Insight (2).")


if __name__ == "__main__":
    main()
