"""Root pytest plumbing shared by tests/ and benchmarks/.

Registers the `per_test_timeout_s` ini option (set in pytest.ini,
enforced by the autouse fixture in tests/conftest.py). Option
registration must live in the rootdir conftest so pytest sees it
during startup regardless of which directory is collected.
"""

from __future__ import annotations


def pytest_addoption(parser) -> None:
    parser.addini(
        "per_test_timeout_s",
        help="Wall-clock seconds before a single test is aborted "
        "(0 disables; applies to tests/, not benchmarks/).",
        default="120",
    )
