"""The multi-tenant training service (ISSUE 7).

Acceptance bar: seeded Poisson/trace arrivals are pure functions of the
seed; schedulers are deterministic and actually differ; serial and
pooled service runs produce byte-identical per-tenant baselines and
reports; resume re-runs zero jobs; contention slowdown is measured
against each job's isolated run on a *shared* capacity model.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api import Scenario, Service, ServiceConfig
from repro.cli import main
from repro.core.config import TrainingConfig
from repro.errors import ConfigurationError, SimulationError
from repro.service import (
    BaselineProvider,
    JobRequest,
    ServiceRuntime,
    build_requests,
    make_scheduler,
    percentile,
    poisson_arrivals,
    service_metrics,
    validate_report,
)
from repro.service.metrics import build_report
from repro.service.runtime import _feasible_workers

#: Seconds-scale job class shared by most tests (LR/Higgs, 1 epoch).
FAST_JOB = dict(
    model="lr", dataset="higgs", workers=4, max_epochs=1.0,
    data_scale=1000, channel="s3", seed=11,
)


def fast_service(**overrides) -> ServiceConfig:
    base = dict(
        rate=3600.0, tenants=3, accounts=2, max_concurrent=2,
        model="lr", dataset="higgs", workers=4, max_epochs=1.0,
        data_scale=1000, channel="s3", seed=11,
    )
    base.update(overrides)
    return ServiceConfig(**base)


class TestArrivals:
    def test_poisson_is_a_pure_function_of_the_seed(self):
        first = poisson_arrivals(7, 60.0, 20)
        second = poisson_arrivals(7, 60.0, 20)
        assert first == second
        assert poisson_arrivals(8, 60.0, 20) != first

    def test_poisson_gaps_scale_with_rate(self):
        # Same seed, 100x the rate: the same unit draws stretched by
        # exactly the mean-gap ratio.
        slow = poisson_arrivals(0, 6.0, 50)
        fast = poisson_arrivals(0, 600.0, 50)
        assert slow[-1] / fast[-1] == pytest.approx(100.0)

    def test_poisson_strictly_increasing(self):
        times = poisson_arrivals(3, 120.0, 100)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_build_requests_cycles_accounts(self):
        requests = build_requests(fast_service(tenants=4, accounts=2))
        assert [r.tenant for r in sorted(requests, key=lambda r: r.job)] == [
            "acct0", "acct1", "acct0", "acct1"
        ]

    def test_trace_arrivals_override_config(self, tmp_path):
        trace = tmp_path / "load.json"
        trace.write_text(json.dumps([
            {"arrival_s": 0.0, "tenant": "acme", "priority": 2.0,
             "config": {"workers": 2, "batch_size": 500}},
            {"arrival_s": 5.0},
        ]))
        requests = build_requests(
            fast_service(arrivals="trace", trace=str(trace))
        )
        assert requests[0].tenant == "acme"
        assert requests[0].priority == 2.0
        assert requests[0].config_kwargs["workers"] == 2
        assert requests[1].config_kwargs["workers"] == 4

    def test_trace_must_be_a_nonempty_list_with_arrivals(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps([{"tenant": "x"}]))
        with pytest.raises(ConfigurationError, match="arrival_s"):
            build_requests(fast_service(arrivals="trace", trace=str(bad)))

    def test_duplicate_job_ids_rejected(self, tmp_path):
        trace = tmp_path / "dup.json"
        trace.write_text(json.dumps([
            {"arrival_s": 0.0, "job": "a"}, {"arrival_s": 1.0, "job": "a"},
        ]))
        with pytest.raises(ConfigurationError, match="duplicate job ids"):
            build_requests(fast_service(arrivals="trace", trace=str(trace)))


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="unknown arrival"):
            ServiceConfig(arrivals="burst")
        with pytest.raises(ConfigurationError, match="unknown scheduler"):
            ServiceConfig(scheduler="lifo")
        with pytest.raises(ConfigurationError, match="rate"):
            ServiceConfig(rate=0.0)
        with pytest.raises(ConfigurationError, match="trace"):
            ServiceConfig(arrivals="trace")

    def test_cache_channels_run_prestarted(self):
        # The service keeps a warm node pool, and isolated baselines use
        # the same setting — slowdown measures contention, not cold boots.
        assert fast_service(channel="memcached").job_kwargs()[
            "channel_prestarted"
        ]
        assert "channel_prestarted" not in fast_service().job_kwargs()


class TestSchedulers:
    def _request(self, job, tenant, cost_workers=4):
        return JobRequest(job, tenant, 0.0,
                          dict(FAST_JOB, workers=cost_workers))

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scheduler"):
            make_scheduler("lifo")

    def test_fair_share_prefers_the_lightest_account(self):
        class State:
            tenant_busy_s = {"heavy": 100.0, "light": 1.0}

        queue = [self._request("a", "heavy"), self._request("b", "light")]
        assert make_scheduler("fair_share").pick(queue, State()) == 1

    def test_fifo_takes_arrival_order(self):
        queue = [self._request("a", "x"), self._request("b", "y")]
        assert make_scheduler("fifo").pick(queue, None) == 0

    def test_adaptive_halves_under_load(self):
        class State:
            running_jobs = 4
            queue = [None, None]
            max_concurrent = 4

        granted = make_scheduler("adaptive").workers_for(
            self._request("a", "x", cost_workers=8), State()
        )
        assert granted == 4

    def test_feasible_workers_clamps_oom_grants(self):
        # Global batch 10000 over 2 workers busts the 3 GB Lambda
        # envelope; the clamp walks the grant back toward the
        # submission until the config fits.
        from repro.core.config import config_validity_error

        kwargs = dict(model="lr", dataset="higgs", batch_size=10_000,
                      max_epochs=1.0, data_scale=1000, seed=11)
        assert config_validity_error(dict(kwargs, workers=2)) is not None
        granted = _feasible_workers(dict(kwargs, workers=4), 2, 4)
        assert granted > 2
        assert config_validity_error(dict(kwargs, workers=granted)) is None


class TestMetrics:
    def test_percentile_empty_raises(self):
        with pytest.raises(SimulationError):
            percentile([], 50.0)

    def test_percentile_single_and_interpolated(self):
        assert percentile([4.0], 99.0) == 4.0
        assert percentile([1.0, 3.0], 50.0) == 2.0
        assert percentile([1.0, 2.0, 10.0], 100.0) == 10.0

    def test_validate_report_shape(self):
        record = {"job": "j", "tenant": "t", "completion_s": 1.0,
                  "queue_s": 0.0, "slowdown": 1.0, "cost_dollars": 0.1,
                  "completed_s": 1.0, "converged": True}
        report = build_report("h", {"scheduler": "fifo"}, [record])
        assert validate_report(report) is report
        with pytest.raises(SimulationError, match="hash"):
            validate_report(report, expected_hash="other")
        with pytest.raises(SimulationError, match="missing"):
            validate_report({k: v for k, v in report.items() if k != "metrics"})
        with pytest.raises(SimulationError, match="no tenant"):
            validate_report(dict(report, tenants=[]))


class TestServiceDeterminism:
    def test_same_seed_byte_identical_reports(self):
        runs = []
        for _ in range(2):
            outcome = Service(arrivals=fast_service()).run()
            runs.append(json.dumps(outcome.data, sort_keys=True))
        assert runs[0] == runs[1]

    def test_serial_and_pooled_runs_byte_identical(self, tmp_path):
        # jobs=2 pools the isolated-baseline sweep across processes;
        # per-tenant baseline artifacts (minus host-dependent meta) and
        # the report itself must not notice.
        outs = {}
        for jobs in (1, 2):
            root = tmp_path / f"jobs{jobs}"
            outcome = Service(root, arrivals=fast_service(), jobs=jobs).run()
            artifacts = {
                p.name: json.loads(p.read_text())
                for p in (root / "baselines").glob("*.json")
            }
            for doc in artifacts.values():
                doc.pop("meta", None)
            outs[jobs] = (outcome.path.read_bytes(), artifacts)
        assert outs[1] == outs[2]

    def test_resume_reruns_zero_jobs(self, tmp_path):
        config = fast_service()
        first = Service(tmp_path, arrivals=config).run()
        assert first.ran_jobs == config.tenants
        second = Service(tmp_path, arrivals=config).run()
        assert second.ran_jobs == 0
        assert second.data == first.data
        assert second.path == first.path

    def test_schedulers_rekey_the_report(self, tmp_path):
        fifo = Service(tmp_path, arrivals=fast_service()).run()
        fair = Service(
            tmp_path, arrivals=fast_service(), scheduler="fair_share"
        ).run()
        assert fifo.path != fair.path


class TestServiceRuntime:
    def test_contention_slowdown_measured_on_shared_capacity(self):
        # Eight comm-bound jobs arriving together on one redis node:
        # somebody must wait for somebody else's transfers.
        kwargs = dict(model="lr", dataset="rcv1", workers=4, max_epochs=1.0,
                      data_scale=2000, channel="redis",
                      channel_prestarted=True, seed=11)
        requests = [
            JobRequest(f"j{i}", f"acct{i % 2}", 0.0, dict(kwargs))
            for i in range(4)
        ]
        runtime = ServiceRuntime(
            requests, make_scheduler("fifo"), 4, BaselineProvider()
        )
        records = runtime.run()
        metrics = service_metrics(records)
        assert metrics["max_slowdown"] > 1.0
        assert all(r["slowdown"] >= 1.0 for r in records)

    def test_queueing_respects_the_concurrency_limit(self):
        requests = [
            JobRequest(f"j{i}", "acct0", 0.0, dict(FAST_JOB))
            for i in range(3)
        ]
        runtime = ServiceRuntime(
            requests, make_scheduler("fifo"), 1, BaselineProvider()
        )
        records = runtime.run()
        # One at a time: each job starts only after the previous ends.
        admitted = sorted(r["admitted_s"] for r in records)
        completed = sorted(r["completed_s"] for r in records)
        assert admitted[1] == completed[0]
        assert admitted[2] == completed[1]
        assert sum(r["queue_s"] > 0 for r in records) == 2


class TestServiceFacade:
    def test_submit_pulls_tenant_identity_from_scenario_tags(self):
        service = Service(arrivals=None, scheduler="fifo")
        request = service.submit(
            Scenario(dict(FAST_JOB)).tenant("acme", priority=1.5),
            arrival_s=3.0,
        )
        assert request.tenant == "acme"
        assert request.priority == 1.5
        assert request.arrival_s == 3.0
        untagged = service.submit(Scenario(dict(FAST_JOB)))
        assert untagged.tenant == "default"

    def test_tenant_tags_do_not_touch_the_config_hash(self):
        plain = Scenario(dict(FAST_JOB))
        tagged = plain.tenant("acme", priority=2.0)
        assert tagged.tags["tenant"] == "acme"
        assert plain.point().hash() == tagged.point().hash()
        assert tagged.point().tags["tenant"] == "acme"

    def test_empty_service_rejected(self):
        with pytest.raises(ConfigurationError, match="no jobs"):
            Service().run()

    def test_bad_substrate_rejected(self):
        with pytest.raises(ConfigurationError, match="substrate"):
            Service(substrate="replay")

    def test_submitted_jobs_join_generated_arrivals(self):
        service = Service(arrivals=fast_service(tenants=2))
        service.submit(
            Scenario(dict(FAST_JOB)).tenant("acme"), arrival_s=0.5
        )
        outcome = service.run()
        assert len(outcome.tenants) == 3
        assert {r["tenant"] for r in outcome.tenants} == {
            "acct0", "acct1", "acme"
        }


class TestServeCli:
    ARGS = ["serve", "--rate", "3600", "--tenants", "2", "--accounts", "2",
            "--max-concurrent", "2", "--workers", "4", "--max-epochs", "1",
            "--data-scale", "1000", "--seed", "11"]

    def test_serve_runs_and_reports(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "Service report" in out
        assert "p99" in out
        assert "2 job(s) simulated" in out

    def test_serve_resumes_from_the_report(self, tmp_path, capsys):
        args = self.ARGS + ["--out", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "2 job(s) simulated" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "report resumed, 0 job(s) re-run" in second

    def test_serve_json_document_validates(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        out = capsys.readouterr().out
        document = json.loads(out[: out.rindex("}") + 1])
        validate_report(document)
        assert document["service"]["service"]["scheduler"] == "fifo"


def test_service_config_is_frozen_and_fingerprintable():
    from repro.service import service_fingerprint, service_hash

    config = fast_service()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.rate = 1.0
    fingerprint = service_fingerprint(config)
    assert fingerprint["rate"] == 3600.0
    assert service_hash(config) == service_hash(fast_service())
    assert service_hash(config) != service_hash(fast_service(seed=12))


class TestJainFairness:
    """Satellite: Jain's index over per-tenant slowdowns in the scorecard."""

    def test_equal_allocations_score_one(self):
        from repro.service import jain_fairness

        assert jain_fairness([2.0, 2.0, 2.0]) == pytest.approx(1.0)
        assert jain_fairness([5.0]) == pytest.approx(1.0)

    def test_known_value(self):
        from repro.service import jain_fairness

        # (1+3)^2 / (2 * (1+9)) = 16/20.
        assert jain_fairness([1.0, 3.0]) == pytest.approx(0.8)

    def test_empty_series_rejected(self):
        from repro.service import jain_fairness

        with pytest.raises(SimulationError):
            jain_fairness([])

    def test_scorecard_carries_fairness(self):
        from repro.service import service_metrics

        records = [
            {"tenant": t, "slowdown": s, "completion_s": 10.0,
             "completed_s": 10.0, "queue_s": 0.0, "cost_dollars": 0.1,
             "converged": True}
            for t, s in [("a", 1.0), ("a", 1.2), ("b", 2.0)]
        ]
        metrics = service_metrics(records)
        # Per-tenant means are [1.1, 2.0]; Jain over those, not per-job.
        expected = (1.1 + 2.0) ** 2 / (2 * (1.1**2 + 2.0**2))
        assert metrics["fairness_jain"] == pytest.approx(expected)
        assert 0.0 < metrics["fairness_jain"] <= 1.0
