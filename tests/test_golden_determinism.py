"""Golden determinism regression for the engine's indexed data plane.

The storage/event hot-path refactor (sorted key index, dict-keyed
waiter registries, heap slot picker, batched poll billing) must not
move a single simulated clock tick, trace second, or billed dollar.
This test replays small reference jobs and compares `engine.now`,
per-process :class:`TimeBreakdown` totals, and :class:`CostMeter`
totals against values recorded on the pre-refactor seed engine
(commit ea1bc81). Each job is also run twice in-process to catch
run-to-run nondeterminism.

Regenerate the golden file (only after an *intentional* semantic
change, never to paper over a diff you can't explain):

    PYTHONPATH=src python tests/test_golden_determinism.py --record
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.core.config import TrainingConfig
from repro.core.driver import train

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_engine.json"


def _reference_configs() -> dict[str, TrainingConfig]:
    base = dict(
        model="lr",
        dataset="higgs",
        workers=3,
        batch_size=10_000,
        lr=0.05,
        max_epochs=2,
        seed=21,
    )
    return {
        "faas_s3_scatterreduce": TrainingConfig(
            algorithm="ga_sgd", system="lambdaml", channel="s3",
            pattern="scatterreduce", **base,
        ),
        "faas_redis_allreduce": TrainingConfig(
            algorithm="ma_sgd", system="lambdaml", channel="redis",
            channel_prestarted=True, pattern="allreduce", **base,
        ),
        "iaas_pytorch": TrainingConfig(
            algorithm="ga_sgd", system="pytorch", **base,
        ),
    }


def _snapshot(config: TrainingConfig) -> dict:
    """Run one reference job; extract every value that must not move."""
    result = train(config)
    return {
        "duration_s": result.duration_s,
        "cost_total": result.cost_total,
        "cost_breakdown": dict(sorted(result.cost_breakdown.items())),
        "per_worker_traces": [
            dict(sorted(trace.seconds.items())) for trace in result.per_worker
        ],
        "comm_rounds": result.comm_rounds,
        "epochs": result.epochs,
        # Comparable across processes since data generation moved to
        # stable_hash (seed-era data depended on PYTHONHASHSEED, so the
        # original golden recording pinned times/costs only; the loss
        # values here were re-recorded after the hash fix, with every
        # timing field verified unchanged against the seed recording).
        "final_loss": result.final_loss,
    }


def _assert_identical(actual: dict, expected: dict, label: str) -> None:
    assert actual["duration_s"] == expected["duration_s"], label
    assert actual["cost_total"] == expected["cost_total"], label
    assert actual["cost_breakdown"] == expected["cost_breakdown"], label
    assert actual["comm_rounds"] == expected["comm_rounds"], label
    assert actual["epochs"] == expected["epochs"], label
    assert actual["per_worker_traces"] == expected["per_worker_traces"], label
    assert actual["final_loss"] == expected["final_loss"], label


@pytest.mark.parametrize("name", sorted(_reference_configs()))
def test_golden_engine_values(name: str) -> None:
    golden = json.loads(GOLDEN_PATH.read_text())
    config = _reference_configs()[name]
    first = _snapshot(config)
    _assert_identical(first, golden[name], f"{name}: drifted from seed engine")
    second = _snapshot(config)
    _assert_identical(second, first, f"{name}: run-to-run nondeterminism")


def _record() -> None:
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    golden = {name: _snapshot(cfg) for name, cfg in _reference_configs().items()}
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2) + "\n")
    print(f"recorded {len(golden)} reference jobs to {GOLDEN_PATH}")


if __name__ == "__main__":
    if "--record" in sys.argv:
        _record()
    else:
        print(__doc__)
