"""The statistical substrate: fingerprints, record/replay, bit-identity.

The contract under test (ISSUE 3 acceptance criteria):

* ``stat_fingerprint()`` captures exactly the convergence-relevant
  fields: systems-only changes collide on the same hash, statistical
  changes never do, and timing-coupled configs (ASP, hybrid PS) widen
  to every field;
* a recording run is bit-identical to an exact run (pure observation);
* a replayed run — even under *different* systems axes than the
  recording — reproduces the exact run's ``duration_s``,
  ``cost_total``, ``history`` and ``breakdown`` bit for bit, with zero
  numpy work;
* replay/record refuse timing-coupled configs and mismatched traces.
"""

from __future__ import annotations

import copy

import pytest

from repro.core.config import STAT_FIELDS, TrainingConfig, config_fingerprint
from repro.core.driver import train
from repro.errors import ReplayDivergenceError, SubstrateError
from repro.substrate import (
    ExactSubstrate,
    RecordingSubstrate,
    ReplaySubstrate,
    TraceError,
    load_trace,
    make_substrate,
    scan_traces,
    trace_path,
    validate_trace,
    write_trace,
)

BASE = dict(
    model="lr", dataset="higgs", algorithm="admm", system="lambdaml",
    workers=4, data_scale=5000, loss_threshold=0.66, max_epochs=2.0,
    seed=20210620,
)


def cfg(**overrides) -> TrainingConfig:
    return TrainingConfig(**{**BASE, **overrides})


def result_key(result):
    """Every deterministic field of a RunResult, bitwise."""
    return (
        result.duration_s,
        result.cost_total,
        tuple(sorted(result.cost_breakdown.items())),
        result.converged,
        result.final_loss,
        result.epochs,
        result.comm_rounds,
        result.checkpoints,
        result.final_accuracy,
        tuple((p.time_s, p.epoch, p.loss, p.worker) for p in result.history),
        tuple(sorted(result.breakdown.as_dict().items())),
    )


# ----------------------------------------------------------------------
# Statistical fingerprints
# ----------------------------------------------------------------------
class TestStatFingerprint:
    SYSTEMS_ONLY = (
        dict(channel="redis"),
        dict(channel="memcached", channel_prestarted=True),
        dict(cache_node="cache.m5.large", channel="redis"),
        dict(pattern="scatterreduce"),
        dict(poll_interval_s=0.5),
        dict(lambda_memory_gb=2.0),
        dict(lambda_lifetime_s=300.0),
        dict(straggler_jitter=0.5),
        dict(system="pytorch", instance="c5.xlarge"),
        dict(system="angel"),
    )

    STATISTICAL = (
        dict(workers=5),
        dict(batch_size=5000),
        dict(batch_scope="per_worker"),
        dict(min_local_batch=7),
        dict(lr=0.2),
        dict(l2=1e-3),
        dict(admm_rho=0.1),
        dict(admm_scans=5),
        dict(loss_threshold=0.5),
        dict(max_epochs=4.0),
        dict(partition_mode="label-skew"),
        dict(data_scale=2000),
        dict(seed=7),
        dict(algorithm="ma_sgd"),
        dict(algorithm="ma_sgd", ma_sync_epochs=2),
        dict(model="svm"),
        dict(dataset="rcv1"),
    )

    def test_systems_only_changes_collide(self):
        base_hash = cfg().stat_hash()
        for change in self.SYSTEMS_ONLY:
            assert cfg(**change).stat_hash() == base_hash, change

    def test_statistical_changes_do_not_collide(self):
        seen = {cfg().stat_hash(): dict()}
        for change in self.STATISTICAL:
            stat_hash = cfg(**change).stat_hash()
            assert stat_hash not in seen, (change, seen[stat_hash])
            seen[stat_hash] = change

    def test_protocol_is_statistical(self):
        bsp = cfg(algorithm="ga_sgd")
        asp = cfg(algorithm="ga_sgd", protocol="asp")
        assert bsp.stat_hash() != asp.stat_hash()

    def test_asp_fingerprint_includes_systems_fields(self):
        # ASP's trajectory is timing-dependent: every knob that moves
        # the simulated clock must split the fingerprint.
        base = cfg(algorithm="ga_sgd", protocol="asp")
        assert base.timing_coupled
        assert base.stat_fingerprint() == config_fingerprint(base)
        for change in (dict(channel="redis"), dict(poll_interval_s=0.5),
                       dict(lambda_memory_gb=2.0)):
            other = cfg(algorithm="ga_sgd", protocol="asp", **change)
            assert other.stat_hash() != base.stat_hash(), change

    def test_hybrid_fingerprint_includes_systems_fields(self):
        base = cfg(system="hybridps", algorithm="ga_sgd")
        assert base.timing_coupled
        for change in (dict(rpc="thrift"), dict(ps_instance="c5.9xlarge"),
                       dict(lambda_memory_gb=2.0)):
            other = cfg(system="hybridps", algorithm="ga_sgd", **change)
            assert other.stat_hash() != base.stat_hash(), change

    def test_bsp_is_not_timing_coupled(self):
        assert not cfg().timing_coupled
        assert not cfg(system="pytorch").timing_coupled

    def test_stat_hash_stable_across_numeric_spellings(self):
        assert cfg(max_epochs=2).stat_hash() == cfg(max_epochs=2.0).stat_hash()

    def test_stat_fields_are_real_config_fields(self):
        fingerprint = config_fingerprint(cfg())
        assert set(STAT_FIELDS) <= fingerprint.keys()


# ----------------------------------------------------------------------
# Golden bit-identity: exact vs record vs replay, across the systems grid
# ----------------------------------------------------------------------
SYSTEMS_GRID = {
    "faas_s3_allreduce": dict(channel="s3", pattern="allreduce"),
    "faas_s3_scatterreduce": dict(channel="s3", pattern="scatterreduce"),
    "faas_redis_allreduce": dict(channel="redis", pattern="allreduce"),
    "faas_redis_scatterreduce": dict(channel="redis", pattern="scatterreduce"),
    "iaas_pytorch": dict(system="pytorch"),
}


class TestGoldenBitIdentity:
    @pytest.fixture(scope="class")
    def shared_trace(self):
        """One trace per statistical fingerprint — recorded once."""
        recorder = RecordingSubstrate()
        result = train(cfg(**SYSTEMS_GRID["faas_s3_allreduce"]), substrate=recorder)
        assert result_key(result) == result_key(
            train(cfg(**SYSTEMS_GRID["faas_s3_allreduce"]))
        ), "a recording run must be bit-identical to an exact run"
        return recorder.trace

    @pytest.mark.parametrize("name", sorted(SYSTEMS_GRID))
    def test_replay_is_bit_identical_to_exact(self, name, shared_trace):
        # The trace was recorded under s3/allreduce; replaying it under
        # every other channel x pattern x platform must still reproduce
        # that config's own exact run bit for bit — the separability
        # claim the two-phase sweep is built on.
        config = cfg(**SYSTEMS_GRID[name])
        assert config.stat_hash() == shared_trace["stat_hash"]
        exact = train(config)
        replayed = train(config, substrate=ReplaySubstrate(shared_trace))
        assert result_key(replayed) == result_key(exact)

    def test_replay_does_no_numpy_work(self, shared_trace):
        substrate = ReplaySubstrate(shared_trace)
        train(cfg(**SYSTEMS_GRID["faas_redis_scatterreduce"]), substrate=substrate)
        assert substrate.compute_seconds == 0.0
        assert substrate.algorithms == [] and substrate.shards == []

    def test_ma_sgd_trace_replays_on_iaas(self):
        base = dict(algorithm="ma_sgd", loss_threshold=None, max_epochs=2.0)
        recorder = RecordingSubstrate()
        train(cfg(**base), substrate=recorder)
        config = cfg(system="pytorch", **base)
        exact = train(config)
        replayed = train(config, substrate=ReplaySubstrate(recorder.trace))
        assert result_key(replayed) == result_key(exact)

    def test_replay_holds_past_the_chunking_and_name_sort_boundaries(self):
        # Two regressions hide above w=10: (a) numpy picks its float
        # summation strategy from array *shape*, so ScatterReduce's
        # 1-element chunks (w > model dim) must not reduce in different
        # bit order than AllReduce's full vectors — reduce_vectors
        # folds sequentially to guarantee that; (b) the IaaS collective
        # must order contributions by numeric rank, not name strings
        # ("worker-10" < "worker-2" lexicographically). w=12 > both
        # boundaries for the 28-dim LR/Higgs model... no — 12 < 28, so
        # force tiny chunks via w=30 for (a) and w=12 for (b).
        base = dict(workers=30, loss_threshold=0.6, max_epochs=1.0)
        recorder = RecordingSubstrate()
        train(cfg(**base), substrate=recorder)
        config = cfg(pattern="scatterreduce", channel="redis", **base)
        assert result_key(train(config, substrate=ReplaySubstrate(recorder.trace))) \
            == result_key(train(config))

        base = dict(workers=12, loss_threshold=0.6, max_epochs=1.0)
        recorder = RecordingSubstrate()
        train(cfg(**base), substrate=recorder)
        config = cfg(system="pytorch", **base)
        assert result_key(train(config, substrate=ReplaySubstrate(recorder.trace))) \
            == result_key(train(config))

    def test_kmeans_em_sum_reduce_replays(self):
        base = dict(model="kmeans", algorithm="em", k=3,
                    loss_threshold=None, max_epochs=2.0)
        recorder = RecordingSubstrate()
        train(cfg(**base), substrate=recorder)
        assert recorder.trace["reduce"] == "sum"
        config = cfg(pattern="scatterreduce", **base)
        exact = train(config)
        replayed = train(config, substrate=ReplaySubstrate(recorder.trace))
        assert result_key(replayed) == result_key(exact)


# ----------------------------------------------------------------------
# Guards: timing-coupled configs, mismatched traces, misuse
# ----------------------------------------------------------------------
class TestSubstrateGuards:
    @pytest.fixture(scope="class")
    def trace(self):
        recorder = RecordingSubstrate()
        train(cfg(), substrate=recorder)
        return recorder.trace

    def test_record_refuses_asp(self):
        with pytest.raises(SubstrateError, match="timing-coupled"):
            train(cfg(algorithm="ga_sgd", protocol="asp"),
                  substrate=RecordingSubstrate())

    def test_record_refuses_hybrid(self):
        with pytest.raises(SubstrateError, match="timing-coupled"):
            train(cfg(system="hybridps", algorithm="ga_sgd"),
                  substrate=RecordingSubstrate())

    def test_replay_refuses_asp(self, trace):
        with pytest.raises(SubstrateError, match="timing-coupled"):
            train(cfg(algorithm="ga_sgd", protocol="asp"),
                  substrate=ReplaySubstrate(trace))

    def test_replay_refuses_mismatched_fingerprint(self, trace):
        with pytest.raises(SubstrateError, match="fingerprint"):
            train(cfg(lr=0.31), substrate=ReplaySubstrate(trace))

    def test_replay_diverging_trace_raises(self, trace):
        # A trace whose losses end too early must fail loudly, not
        # fabricate a trajectory.
        truncated = copy.deepcopy(trace)
        for record in truncated["ranks"]:
            record["losses"] = record["losses"][:1]
        with pytest.raises(ReplayDivergenceError, match="trace recorded only"):
            train(cfg(), substrate=ReplaySubstrate(truncated))

    def test_substrates_are_single_use(self):
        substrate = ExactSubstrate()
        train(cfg(), substrate=substrate)
        with pytest.raises(SubstrateError, match="single-use"):
            train(cfg(), substrate=substrate)

    def test_make_substrate_resolution(self, trace):
        assert isinstance(make_substrate(None), ExactSubstrate)
        assert isinstance(make_substrate("exact"), ExactSubstrate)
        assert isinstance(make_substrate("record"), RecordingSubstrate)
        replay = ReplaySubstrate(trace)
        assert make_substrate(replay) is replay
        with pytest.raises(SubstrateError, match="needs a recorded trace"):
            make_substrate("replay")
        with pytest.raises(SubstrateError, match="unknown substrate"):
            make_substrate("surrogate")

    def test_exact_meters_compute_seconds(self):
        substrate = ExactSubstrate()
        train(cfg(), substrate=substrate)
        assert substrate.compute_seconds > 0.0

    def test_views_are_read_only(self):
        from repro.core.context import JobContext

        ctx = JobContext(cfg())
        view = ctx.stats(0)
        with pytest.raises(AttributeError, match="read-only"):
            view.reduce = "sum"
        view.params = view.params  # the one writable attribute (hybrid PS)


# ----------------------------------------------------------------------
# Trace artifacts on disk
# ----------------------------------------------------------------------
class TestTraceArtifacts:
    @pytest.fixture(scope="class")
    def trace(self):
        recorder = RecordingSubstrate()
        train(cfg(), substrate=recorder)
        return recorder.trace

    def test_roundtrip(self, trace, tmp_path):
        path = write_trace(tmp_path, trace)
        assert path == trace_path(tmp_path, trace["stat_hash"])
        assert load_trace(path, expected_hash=trace["stat_hash"]) == trace
        assert [p.name for p in tmp_path.iterdir()] == [path.name]

    def test_partial_json_is_corrupt(self, trace, tmp_path):
        path = write_trace(tmp_path, trace)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(TraceError, match="partial"):
            load_trace(path)

    def test_tampered_fingerprint_is_corrupt(self, trace):
        tampered = copy.deepcopy(trace)
        tampered["stat_fingerprint"]["lr"] = 0.999
        with pytest.raises(TraceError, match="stat hash mismatch"):
            validate_trace(tampered)

    def test_missing_rank_keys_are_corrupt(self, trace):
        broken = copy.deepcopy(trace)
        del broken["ranks"][0]["losses"]
        with pytest.raises(TraceError, match="missing keys"):
            validate_trace(broken)

    def test_foreign_schema_is_corrupt(self, trace):
        with pytest.raises(TraceError, match="schema"):
            validate_trace({**trace, "schema": 99})

    def test_misfiled_trace_is_corrupt(self, trace, tmp_path):
        path = write_trace(tmp_path, trace)
        misfiled = path.with_name("0" * 16 + ".json")
        path.rename(misfiled)
        with pytest.raises(TraceError, match="filed under"):
            load_trace(misfiled, expected_hash=misfiled.stem)

    def test_scan_partitions_valid_and_corrupt(self, trace, tmp_path):
        write_trace(tmp_path, trace)
        (tmp_path / ("1" * 16 + ".json")).write_text("{not json")
        completed, corrupt = scan_traces(tmp_path)
        assert set(completed) == {trace["stat_hash"]}
        assert [p.stem for p in corrupt] == ["1" * 16]
        assert scan_traces(tmp_path / "missing") == ({}, [])

    def test_trace_meta_records_provenance(self, trace):
        from repro import __version__

        assert trace["meta"]["engine_version"] == __version__
        assert trace["meta"]["compute_seconds"] > 0
        assert len(trace["meta"]["recorded_config_hash"]) == 16
