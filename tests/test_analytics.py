"""Unit tests for the analytical model, constants and estimator."""

from __future__ import annotations

import pytest

from repro.analytics.casestudy import HybridModel, q1_fast_hybrid, q2_hot_data
from repro.analytics.constants import TABLE6
from repro.analytics.estimator import SamplingEstimator, _first_crossing
from repro.analytics.model import AnalyticalModel, WorkloadParams

MB = 1024 * 1024


def _params(**overrides) -> WorkloadParams:
    base = dict(
        dataset_bytes=8 * 1024 * MB,  # Higgs
        model_bytes=224,
        epochs_faas=10.0,
        epochs_iaas=10.0,
        compute_faas_s=80.0,
        compute_iaas_s=80.0,
        rounds_per_epoch=1.0,
    )
    base.update(overrides)
    return WorkloadParams(**base)


class TestConstants:
    def test_startup_anchor_values(self):
        assert TABLE6.startup_faas(10) == pytest.approx(1.2)
        assert TABLE6.startup_iaas(200) == pytest.approx(606.0)

    def test_startup_interpolation_between_anchors(self):
        mid = TABLE6.startup_iaas(75)
        assert 160.0 < mid < 292.0

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            TABLE6.startup_faas(0)


class TestAnalyticalModel:
    def test_faas_has_extra_communication_leg(self):
        model = AnalyticalModel(_params())
        w = 10
        faas = model.faas_comm_seconds(w)
        # Same channel constants would give (3w-2)/(2w-2) ratio.
        params_same = _params(channel="s3")
        per_leg = faas / (3 * w - 2)
        assert faas == pytest.approx((3 * w - 2) * per_leg)

    def test_startup_dominates_faas_advantage(self):
        model = AnalyticalModel(_params())
        w = 10
        assert model.iaas_seconds(w) - model.faas_seconds(w) > 100.0

    def test_compute_term_shrinks_with_workers(self):
        model = AnalyticalModel(_params(epochs_faas=100.0))
        assert model.faas_seconds(100) < model.faas_seconds(2)

    def test_communication_term_grows_with_workers(self):
        model = AnalyticalModel(_params(model_bytes=90 * MB, compute_faas_s=0.0))
        assert model.faas_comm_seconds(100) > model.faas_comm_seconds(10)

    def test_scaling_factor_applied(self):
        lossy = _params(scaling_faas=lambda w: float(w))
        base = _params()
        assert (
            AnalyticalModel(lossy).faas_seconds(10)
            > AnalyticalModel(base).faas_seconds(10)
        )

    def test_elasticache_channel_faster_than_s3_for_big_models(self):
        s3 = AnalyticalModel(_params(model_bytes=12 * MB, channel="s3"))
        ec = AnalyticalModel(_params(model_bytes=12 * MB, channel="elasticache"))
        assert ec.faas_comm_seconds(10) < s3.faas_comm_seconds(10)

    def test_cost_positive_and_scales_with_runtime(self):
        model = AnalyticalModel(_params())
        assert model.faas_cost(10) > 0
        assert model.iaas_cost(10, "t2.medium") > 0
        longer = AnalyticalModel(_params(epochs_faas=100.0))
        assert longer.faas_cost(10) > model.faas_cost(10)

    def test_unknown_channel_rejected(self):
        model = AnalyticalModel(_params(channel="carrier-pigeon"))
        with pytest.raises(ValueError):
            model.faas_comm_seconds(10)


class TestHybridModel:
    def test_hybrid_gated_by_ps_startup(self):
        hybrid = HybridModel(_params())
        assert hybrid.seconds(10) >= TABLE6.startup_iaas(1)

    def test_10g_link_reduces_comm(self):
        now = HybridModel(_params(model_bytes=12 * MB))
        fast = HybridModel(
            _params(model_bytes=12 * MB),
            faas_vm_bandwidth=1250 * MB,
            serdes_bandwidth=1250 * MB,
        )
        assert fast.comm_seconds(10) < now.comm_seconds(10) / 5

    def test_q1_shapes(self):
        out = q1_fast_hybrid(_params(model_bytes=12 * MB, rounds_per_epoch=40.0), 10)
        assert set(out) == {"faas", "iaas", "hybrid", "hybrid-10g"}
        assert out["hybrid-10g"][0] < out["hybrid"][0]

    def test_q2_iaas_wins_on_hot_data(self):
        # 110 GB dataset resident in a VM: FaaS ingestion is the bottleneck.
        params = _params(dataset_bytes=110 * 1024 * MB, model_bytes=32 * 1024 * 8)
        out = q2_hot_data(params, 10)
        assert out["iaas"][0] < out["faas"][0]
        assert out["iaas"][0] < out["hybrid"][0]


class TestEstimator:
    def test_first_crossing_interpolates(self):
        trajectory = [(0.0, 1.0), (1.0, 0.5), (2.0, 0.1)]
        crossing = _first_crossing(trajectory, 0.3)
        assert 1.0 < crossing < 2.0

    def test_first_crossing_none_when_unreached(self):
        assert _first_crossing([(0.0, 1.0), (1.0, 0.9)], 0.5) is None

    def test_first_crossing_at_start(self):
        assert _first_crossing([(0.0, 0.2), (1.0, 0.1)], 0.3) == 0.0

    def test_estimates_reasonable_epochs_for_lr_higgs(self):
        estimator = SamplingEstimator(sample_fraction=0.1, seed=3)
        estimate = estimator.estimate(
            "lr", "higgs", "ma_sgd", lr=0.05, threshold=0.67, batch_size=100
        )
        assert estimate.converged
        assert 0 < estimate.epochs <= 30

    def test_admm_estimated_in_round_granularity(self):
        estimator = SamplingEstimator(sample_fraction=0.1, seed=3)
        estimate = estimator.estimate(
            "lr", "higgs", "admm", lr=0.05, threshold=0.67, batch_size=100
        )
        assert estimate.converged
        # ADMM progresses in 10-epoch rounds.
        assert estimate.epochs <= 30

    def test_invalid_fraction_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SamplingEstimator(sample_fraction=0.0)

    def test_trajectory_recorded(self):
        estimator = SamplingEstimator(sample_fraction=0.05, seed=3)
        estimate = estimator.estimate(
            "lr", "higgs", "ma_sgd", lr=0.05, threshold=0.0, batch_size=100,
            max_epochs=3,
        )
        assert not estimate.converged
        assert len(estimate.trajectory) == 4  # init + 3 epochs
