"""Unit tests for JobContext timing/billing helpers."""

from __future__ import annotations

import pytest

from repro.core.config import TrainingConfig
from repro.core.context import JobContext


def _ctx(**overrides) -> JobContext:
    base = dict(
        model="lr",
        dataset="higgs",
        algorithm="ma_sgd",
        system="lambdaml",
        workers=4,
        channel="s3",
        batch_size=10_000,
        lr=0.05,
        loss_threshold=None,
        max_epochs=5,
        seed=2,
    )
    base.update(overrides)
    return JobContext(TrainingConfig(**base))


class TestWorkerSpeed:
    def test_faas_speed_scales_with_memory(self):
        full = _ctx(lambda_memory_gb=3.0).worker_speed(0)
        third = _ctx(lambda_memory_gb=1.0).worker_speed(0)
        assert full == pytest.approx(3 * third)

    def test_straggler_jitter_slows_higher_ranks(self):
        ctx = _ctx(straggler_jitter=0.5)
        assert ctx.worker_speed(0) > ctx.worker_speed(3)

    def test_zero_jitter_uniform(self):
        ctx = _ctx(straggler_jitter=0.0)
        assert ctx.worker_speed(0) == ctx.worker_speed(3)

    def test_iaas_speed_from_instance(self):
        t2 = _ctx(system="pytorch", instance="t2.medium", straggler_jitter=0.0)
        c5 = _ctx(system="pytorch", instance="c5.4xlarge", straggler_jitter=0.0)
        assert c5.worker_speed(0) > 4 * t2.worker_speed(0)

    def test_angel_compute_penalty(self):
        pytorch = _ctx(system="pytorch", straggler_jitter=0.0)
        angel = _ctx(system="angel", straggler_jitter=0.0)
        assert angel.worker_speed(0) < pytorch.worker_speed(0)

    def test_gpu_speed_applies_only_to_deep_models(self):
        lr_gpu = _ctx(system="pytorch", instance="g3s.xlarge", straggler_jitter=0.0)
        assert lr_gpu.worker_speed(0) == pytest.approx(2.2)  # CPU path
        mn_gpu = _ctx(
            system="pytorch", instance="g3s.xlarge", model="mobilenet",
            dataset="cifar10", algorithm="ga_sgd", batch_size=128,
            batch_scope="per_worker", straggler_jitter=0.0,
        )
        assert mn_gpu.worker_speed(0) == pytest.approx(20.0)


class TestTiming:
    def test_round_seconds_uses_logical_volumes(self):
        """Compute time reflects the paper's 11M-row Higgs, not the
        scaled-down physical arrays."""
        ctx = _ctx(straggler_jitter=0.0)
        per_epoch = ctx.round_seconds(0)  # MA round == one local epoch
        # ~11M/4 rows * 7 us = ~19s on the reference worker.
        assert per_epoch == pytest.approx(11_000_000 / 4 * 7e-6, rel=0.2)

    def test_eval_cheaper_than_training_epoch(self):
        ctx = _ctx(straggler_jitter=0.0)
        assert ctx.eval_seconds(0) < ctx.round_seconds(0)

    def test_wire_bytes_matches_model(self):
        assert _ctx().wire_bytes == 224
        kmeans = _ctx(model="kmeans", algorithm="em", k=10)
        assert kmeans.wire_bytes == 10 * (28 + 1) * 8

    def test_partition_key_distinct_per_rank(self):
        ctx = _ctx()
        keys = {ctx.partition_key(r) for r in range(4)}
        assert len(keys) == 4


class TestRecording:
    def test_record_handles_nan(self):
        ctx = _ctx()
        ctx.record(0, 1.0, float("nan"))
        assert ctx.history[-1].loss == float("inf")

    def test_converged_requires_threshold(self):
        assert not _ctx(loss_threshold=None).converged(0.0)
        assert _ctx(loss_threshold=0.5).converged(0.4)
        assert not _ctx(loss_threshold=0.5).converged(0.6)
        assert not _ctx(loss_threshold=0.5).converged(float("nan"))
