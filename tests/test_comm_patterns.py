"""Integration tests for AllReduce / ScatterReduce over storage channels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.aggregator import reduce_vectors, split_chunks
from repro.comm.patterns import allreduce, scatter_reduce
from repro.errors import CommunicationError
from repro.simulation.engine import Engine
from repro.storage.services import S3Store

MB = 1024 * 1024


def exchange(pattern, workers, vectors, logical_nbytes=1024, reduce="mean"):
    """Run one full exchange; returns (results per worker, engine time)."""
    engine = Engine()
    store = S3Store()
    results = {}

    def worker(rank):
        merged = yield from pattern(
            store, rank, workers, "r0", vectors[rank],
            logical_nbytes=logical_nbytes, reduce=reduce,
        )
        results[rank] = merged

    for rank in range(workers):
        engine.spawn(worker(rank), f"w{rank}")
    engine.run()
    return results, engine.now


class TestAggregator:
    def test_mean(self):
        out = reduce_vectors([np.array([1.0, 2.0]), np.array([3.0, 4.0])], "mean")
        np.testing.assert_allclose(out, [2.0, 3.0])

    def test_sum(self):
        out = reduce_vectors([np.array([1.0]), np.array([2.0])], "sum")
        np.testing.assert_allclose(out, [3.0])

    def test_empty_rejected(self):
        with pytest.raises(CommunicationError):
            reduce_vectors([], "mean")

    def test_shape_mismatch_rejected(self):
        with pytest.raises(CommunicationError):
            reduce_vectors([np.zeros(2), np.zeros(3)], "mean")

    def test_unknown_reduction_rejected(self):
        with pytest.raises(CommunicationError):
            reduce_vectors([np.zeros(2)], "max")

    def test_split_chunks_concat_identity(self):
        v = np.arange(17, dtype=float)
        chunks = split_chunks(v, 5)
        np.testing.assert_allclose(np.concatenate(chunks), v)


@pytest.mark.parametrize("pattern", [allreduce, scatter_reduce])
class TestPatternsCorrectness:
    def test_mean_matches_numpy(self, pattern):
        rng = np.random.default_rng(3)
        vectors = [rng.standard_normal(23) for _ in range(4)]
        results, _ = exchange(pattern, 4, vectors, reduce="mean")
        expected = np.mean(vectors, axis=0)
        for merged in results.values():
            np.testing.assert_allclose(merged, expected, rtol=1e-12)

    def test_sum_matches_numpy(self, pattern):
        rng = np.random.default_rng(4)
        vectors = [rng.standard_normal(10) for _ in range(3)]
        results, _ = exchange(pattern, 3, vectors, reduce="sum")
        expected = np.sum(vectors, axis=0)
        for merged in results.values():
            np.testing.assert_allclose(merged, expected, rtol=1e-12)

    def test_all_workers_get_identical_results(self, pattern):
        rng = np.random.default_rng(5)
        vectors = [rng.standard_normal(8) for _ in range(5)]
        results, _ = exchange(pattern, 5, vectors)
        reference = results[0]
        for merged in results.values():
            np.testing.assert_array_equal(merged, reference)

    def test_single_worker(self, pattern):
        vectors = [np.arange(6, dtype=float)]
        results, _ = exchange(pattern, 1, vectors)
        np.testing.assert_allclose(results[0], vectors[0])


class TestPatternTiming:
    def test_scatter_reduce_faster_for_large_models(self):
        """Table 3: the AllReduce leader bottlenecks on ResNet50-size."""
        workers = 10
        vectors = [np.zeros(64) for _ in range(workers)]
        _, t_ar = exchange(allreduce, workers, vectors, logical_nbytes=89 * MB)
        _, t_sr = exchange(scatter_reduce, workers, vectors, logical_nbytes=89 * MB)
        assert t_sr < t_ar
        assert t_ar / t_sr > 1.5

    def test_allreduce_competitive_for_tiny_models(self):
        """Table 3: for a 224 B model ScatterReduce's extra requests lose."""
        workers = 10
        vectors = [np.zeros(28) for _ in range(workers)]
        _, t_ar = exchange(allreduce, workers, vectors, logical_nbytes=224)
        _, t_sr = exchange(scatter_reduce, workers, vectors, logical_nbytes=224)
        assert t_sr >= t_ar * 0.9

    def test_exchange_time_grows_with_size(self):
        workers = 4
        vectors = [np.zeros(16) for _ in range(workers)]
        _, small = exchange(allreduce, workers, vectors, logical_nbytes=1024)
        _, big = exchange(allreduce, workers, vectors, logical_nbytes=64 * MB)
        assert big > small


class TestRepeatedRounds:
    def test_multiple_rounds_do_not_leak_objects(self):
        engine = Engine()
        store = S3Store()
        workers = 3

        def worker(rank):
            for r in range(5):
                yield from allreduce(
                    store, rank, workers, f"{r:04d}", np.ones(4), 64, "mean"
                )

        for rank in range(workers):
            engine.spawn(worker(rank), f"w{rank}")
        engine.run()
        # Parts are discarded after merging; only merged files remain.
        assert store._count_prefix("ar/") <= 5 + workers


@settings(max_examples=10, deadline=None)
@given(
    workers=st.integers(min_value=2, max_value=6),
    dim=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=999),
)
def test_property_patterns_agree_with_each_other(workers, dim, seed):
    rng = np.random.default_rng(seed)
    vectors = [rng.standard_normal(dim) for _ in range(workers)]
    ar_results, _ = exchange(allreduce, workers, vectors)
    sr_results, _ = exchange(scatter_reduce, workers, vectors)
    np.testing.assert_allclose(ar_results[0], sr_results[0], rtol=1e-10, atol=1e-12)
