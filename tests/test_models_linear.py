"""Unit + property tests for the linear models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.models.linear import LinearSVM, LogisticRegression


def _toy_data(rng, n=200, d=6, separable=False):
    X = rng.standard_normal((n, d))
    w = rng.standard_normal(d)
    margin = X @ w
    if separable:
        y = np.where(margin >= 0, 1, -1)
    else:
        p = 1 / (1 + np.exp(-margin))
        y = np.where(rng.random(n) < p, 1, -1)
    return X, y.astype(np.int8)


class TestLogisticRegression:
    def test_zero_init_loss_is_ln2(self, rng):
        X, y = _toy_data(rng)
        model = LogisticRegression(X.shape[1])
        w = model.init_params(rng)
        assert model.loss(w, X, y) == pytest.approx(np.log(2))

    def test_gradient_matches_finite_differences(self, rng):
        X, y = _toy_data(rng, n=50)
        model = LogisticRegression(X.shape[1], l2=0.01)
        w = rng.standard_normal(X.shape[1]) * 0.1
        grad = model.gradient(w, X, y)
        eps = 1e-6
        for j in range(X.shape[1]):
            delta = np.zeros_like(w)
            delta[j] = eps
            numeric = (model.loss(w + delta, X, y) - model.loss(w - delta, X, y)) / (2 * eps)
            assert grad[j] == pytest.approx(numeric, rel=1e-4, abs=1e-7)

    def test_gd_decreases_loss(self, rng):
        X, y = _toy_data(rng)
        model = LogisticRegression(X.shape[1])
        w = model.init_params(rng)
        losses = [model.loss(w, X, y)]
        for _ in range(50):
            w = w - 0.5 * model.gradient(w, X, y)
            losses.append(model.loss(w, X, y))
        assert losses[-1] < losses[0] - 0.05

    def test_sparse_dense_agreement(self, rng):
        X, y = _toy_data(rng)
        model = LogisticRegression(X.shape[1])
        w = rng.standard_normal(X.shape[1])
        Xs = sparse.csr_matrix(X)
        assert model.loss(w, Xs, y) == pytest.approx(model.loss(w, X, y))
        np.testing.assert_allclose(model.gradient(w, Xs, y), model.gradient(w, X, y))

    def test_loss_and_gradient_consistent(self, rng):
        X, y = _toy_data(rng)
        model = LogisticRegression(X.shape[1], l2=1e-3)
        w = rng.standard_normal(X.shape[1])
        loss, grad = model.loss_and_gradient(w, X, y)
        assert loss == pytest.approx(model.loss(w, X, y))
        np.testing.assert_allclose(grad, model.gradient(w, X, y))

    def test_extreme_margins_are_stable(self):
        X = np.array([[1000.0], [-1000.0]])
        y = np.array([1, -1], dtype=np.int8)
        model = LogisticRegression(1)
        w = np.array([50.0])
        assert np.isfinite(model.loss(w, X, y))
        assert np.isfinite(model.gradient(w, X, y)).all()

    def test_accuracy_on_separable_data(self, rng):
        X, y = _toy_data(rng, separable=True)
        model = LogisticRegression(X.shape[1])
        w = model.init_params(rng)
        for _ in range(200):
            w = w - 0.5 * model.gradient(w, X, y)
        assert model.accuracy(w, X, y) > 0.95

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression(0)
        with pytest.raises(ValueError):
            LogisticRegression(5, l2=-1.0)


class TestLinearSVM:
    def test_zero_init_loss_is_half(self, rng):
        X, y = _toy_data(rng)
        model = LinearSVM(X.shape[1], l2=0.0)
        w = model.init_params(rng)
        assert model.loss(w, X, y) == pytest.approx(0.5)

    def test_gradient_matches_finite_differences(self, rng):
        X, y = _toy_data(rng, n=40)
        model = LinearSVM(X.shape[1], l2=0.01)
        w = rng.standard_normal(X.shape[1]) * 0.1
        grad = model.gradient(w, X, y)
        eps = 1e-6
        for j in range(X.shape[1]):
            delta = np.zeros_like(w)
            delta[j] = eps
            numeric = (model.loss(w + delta, X, y) - model.loss(w - delta, X, y)) / (2 * eps)
            assert grad[j] == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_separable_data_reaches_low_hinge(self, rng):
        X, y = _toy_data(rng, separable=True)
        model = LinearSVM(X.shape[1], l2=1e-5)
        w = model.init_params(rng)
        for _ in range(400):
            w = w - 0.5 * model.gradient(w, X, y)
        assert model.loss(w, X, y) < 0.1

    def test_sparse_dense_agreement(self, rng):
        X, y = _toy_data(rng)
        model = LinearSVM(X.shape[1])
        w = rng.standard_normal(X.shape[1])
        Xs = sparse.csr_matrix(X)
        assert model.loss(w, Xs, y) == pytest.approx(model.loss(w, X, y))
        np.testing.assert_allclose(model.gradient(w, Xs, y), model.gradient(w, X, y))


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=64),
    d=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_losses_are_finite_and_nonnegative(n, d, seed):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, d))
    y = np.where(rng.random(n) < 0.5, 1, -1).astype(np.int8)
    w = rng.standard_normal(d)
    for model in (LogisticRegression(d, l2=1e-4), LinearSVM(d, l2=1e-4)):
        loss = model.loss(w, X, y)
        assert np.isfinite(loss)
        assert loss >= 0.0
        grad = model.gradient(w, X, y)
        assert grad.shape == (d,)
        assert np.isfinite(grad).all()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_property_l2_penalises_larger_weights(seed):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((32, 4))
    y = np.where(rng.random(32) < 0.5, 1, -1).astype(np.int8)
    w = rng.standard_normal(4)
    light = LogisticRegression(4, l2=0.0).loss(w, X, y)
    heavy = LogisticRegression(4, l2=1.0).loss(w, X, y)
    assert heavy >= light
