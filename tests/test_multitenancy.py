"""Tests for the Q3 multi-tenancy extension experiment."""

from __future__ import annotations

import pytest

from repro.experiments.multitenancy import (
    ArrivalPattern,
    HORIZON_S,
    format_report,
    run,
)
from repro.analytics.model import WorkloadParams

MB = 1024 * 1024


def _params() -> WorkloadParams:
    return WorkloadParams(
        dataset_bytes=8 * 1024 * MB,
        model_bytes=224,
        epochs_faas=20.0,
        epochs_iaas=20.0,
        compute_faas_s=80.0,
        compute_iaas_s=80.0,
        rounds_per_epoch=0.1,
    )


class TestArrivals:
    def test_burst_structure(self):
        pattern = ArrivalPattern(burst_jobs=4, burst_interval_s=6 * 3600.0)
        arrivals = pattern.arrivals()
        assert len(arrivals) == 4 * 4  # four bursts in 24h
        assert arrivals[0] == arrivals[3] == 0.0
        assert max(arrivals) < HORIZON_S


class TestOutcomes:
    def test_all_platforms_present(self):
        outcomes = {o.platform: o for o in run(_params())}
        assert set(outcomes) == {"faas", "iaas-reserved", "iaas-ondemand"}

    def test_faas_latency_beats_ondemand_vms(self):
        outcomes = {o.platform: o for o in run(_params())}
        # On-demand VMs pay t_I(w) per job; FaaS pays ~1 s.
        assert outcomes["faas"].mean_latency_s < outcomes["iaas-ondemand"].mean_latency_s

    def test_reserved_cluster_queues_bursts(self):
        light = {o.platform: o for o in run(_params(), pattern=ArrivalPattern(1, 6 * 3600))}
        heavy = {o.platform: o for o in run(_params(), pattern=ArrivalPattern(16, 6 * 3600))}
        assert (
            heavy["iaas-reserved"].mean_latency_s
            > light["iaas-reserved"].mean_latency_s
        )

    def test_faas_cost_scales_with_jobs_reserved_does_not(self):
        light = {o.platform: o for o in run(_params(), pattern=ArrivalPattern(2, 6 * 3600))}
        heavy = {o.platform: o for o in run(_params(), pattern=ArrivalPattern(8, 6 * 3600))}
        assert heavy["faas"].total_cost == pytest.approx(
            4 * light["faas"].total_cost, rel=0.01
        )
        assert heavy["iaas-reserved"].total_cost == pytest.approx(
            light["iaas-reserved"].total_cost, rel=0.05
        )

    def test_faas_cheaper_than_reserved_for_sparse_peaky_load(self):
        """The Q3 hypothesis: on-demand FaaS wins peaky multi-tenancy."""
        outcomes = {o.platform: o for o in run(_params(), pattern=ArrivalPattern(4, 8 * 3600))}
        assert outcomes["faas"].total_cost < outcomes["iaas-reserved"].total_cost

    def test_report_renders(self):
        text = format_report(run(_params()))
        assert "Q3" in text and "faas" in text
