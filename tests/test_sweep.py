"""The sweep subsystem: grids, artifacts, orchestration, CLI.

The contract under test (ISSUE 2 acceptance criteria):

* configs are content-addressed — hashes cover defaults and survive
  spelling differences;
* artifacts are atomic, validated JSON — corrupt/partial/stale files
  are detected and simply re-run;
* ``--resume`` re-runs zero completed points;
* a pooled sweep (``jobs > 1``) produces byte-identical artifacts to a
  serial one (determinism across the process boundary).

All training here runs the registry's ``smoke`` grid (LR/Higgs at
1/5000 scale, 2-epoch cap): ~0.4 s per point.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal

import pytest

from repro.cli import main
from repro.core.config import TrainingConfig
from repro.errors import ConfigurationError
from repro.sweep.artifacts import (
    ArtifactError,
    artifact_path,
    load_artifact,
    result_from_artifact,
    scan_artifacts,
    write_artifact,
)
from repro.sweep.grid import SweepPoint, config_hash, dedupe_points, expand_grid
from repro.sweep.orchestrator import run_point, run_sweep
from repro.sweep.registry import get_experiment

SMOKE_POINTS = get_experiment("smoke").points


def strip_meta(artifact: dict) -> dict:
    return {key: value for key, value in artifact.items() if key != "meta"}


class TestConfigHash:
    def test_defaults_do_not_change_the_hash(self):
        implicit = TrainingConfig(model="lr", dataset="higgs", algorithm="admm")
        explicit = TrainingConfig(
            model="lr", dataset="higgs", algorithm="admm",
            workers=10, channel="s3", pattern="allreduce",  # the defaults, spelled out
        )
        assert config_hash(implicit) == config_hash(explicit)

    def test_any_field_change_changes_the_hash(self):
        base = TrainingConfig(model="lr", dataset="higgs", algorithm="admm")
        for change in (
            dict(workers=11), dict(channel="redis"), dict(seed=7),
            dict(pattern="scatterreduce"), dict(lr=0.2),
        ):
            other = TrainingConfig(
                model="lr", dataset="higgs", algorithm="admm", **change
            )
            assert config_hash(other) != config_hash(base), change

    def test_equal_configs_hash_equal_across_numeric_spellings(self):
        # argparse delivers floats (--max-epochs 40 -> 40.0) while grid
        # declarations use ints; equal configs must collide on hash or
        # resume re-runs entire sweeps.
        as_int = TrainingConfig(
            model="lr", dataset="higgs", algorithm="admm", max_epochs=40
        )
        as_float = TrainingConfig(
            model="lr", dataset="higgs", algorithm="admm", max_epochs=40.0
        )
        assert as_int == as_float
        assert config_hash(as_int) == config_hash(as_float)

    def test_expand_grid_order_and_base_collision(self):
        kwargs = list(expand_grid({"a": 1}, {"x": (1, 2), "y": ("p", "q")}))
        assert kwargs == [
            {"a": 1, "x": 1, "y": "p"},
            {"a": 1, "x": 1, "y": "q"},
            {"a": 1, "x": 2, "y": "p"},
            {"a": 1, "x": 2, "y": "q"},
        ]
        with pytest.raises(ConfigurationError):
            list(expand_grid({"x": 1}, {"x": (1, 2)}))

    def test_dedupe_collapses_identical_configs(self):
        points = SMOKE_POINTS()
        assert len(dedupe_points(points + points)) == len(points)


class TestArtifacts:
    @pytest.fixture(scope="class")
    def artifact(self):
        return run_point(SMOKE_POINTS()[0])

    def test_roundtrip_preserves_result(self, artifact, tmp_path):
        path = write_artifact(tmp_path, artifact)
        assert path == artifact_path(tmp_path, artifact["config_hash"])
        loaded = load_artifact(path, expected_hash=artifact["config_hash"])
        assert loaded == artifact
        result = result_from_artifact(loaded)
        assert result.duration_s == artifact["result"]["duration_s"]
        assert result.config.workers == artifact["config"]["workers"]
        assert result.loss_curve()  # history survives the roundtrip
        assert result.breakdown.get("compute") > 0

    def test_no_tmp_file_left_behind(self, artifact, tmp_path):
        write_artifact(tmp_path, artifact)
        assert [p.name for p in tmp_path.iterdir()] == [
            f"{artifact['config_hash']}.json"
        ]

    def test_partial_json_is_corrupt(self, artifact, tmp_path):
        path = write_artifact(tmp_path, artifact)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(ArtifactError, match="partial"):
            load_artifact(path)
        completed, corrupt = scan_artifacts(tmp_path)
        assert completed == {} and corrupt == [path]

    def test_tampered_config_is_corrupt(self, artifact, tmp_path):
        path = write_artifact(tmp_path, artifact)
        tampered = json.loads(path.read_text())
        tampered["config"]["workers"] += 1  # no longer matches config_hash
        path.write_text(json.dumps(tampered))
        with pytest.raises(ArtifactError, match="hash mismatch"):
            load_artifact(path)

    def test_misfiled_artifact_is_corrupt(self, artifact, tmp_path):
        write_artifact(tmp_path, artifact)
        misfiled = artifact_path(tmp_path, "0" * 16)
        artifact_path(tmp_path, artifact["config_hash"]).rename(misfiled)
        completed, corrupt = scan_artifacts(tmp_path)
        assert completed == {} and corrupt == [misfiled]

    def test_foreign_schema_is_corrupt(self, artifact, tmp_path):
        path = write_artifact(tmp_path, dict(artifact, schema=999))
        with pytest.raises(ArtifactError, match="schema"):
            load_artifact(path)

    def test_missing_schema_keys_are_corrupt(self, artifact, tmp_path):
        # The aggregators dereference tags/label/experiment; an artifact
        # without them must read as corrupt (re-run), not crash later.
        for key in ("tags", "label", "experiment", "result"):
            stripped = {k: v for k, v in artifact.items() if k != key}
            path = write_artifact(tmp_path, stripped)
            with pytest.raises(ArtifactError, match="missing keys"):
                load_artifact(path)

    def test_wrongly_typed_values_are_corrupt(self, artifact, tmp_path):
        # {"meta": null} must read as corrupt (re-run), not crash the
        # resume path on artifact["meta"].get(...).
        for key, bad in (("meta", None), ("tags", "faas"), ("result", [1])):
            path = write_artifact(tmp_path, dict(artifact, **{key: bad}))
            with pytest.raises(ArtifactError, match=key):
                load_artifact(path)

    def test_scan_ignores_foreign_files(self, artifact, tmp_path):
        write_artifact(tmp_path, artifact)
        (tmp_path / "notes.txt").write_text("not an artifact")
        (tmp_path / "deadbeef.json.tmp").write_text("{")
        completed, corrupt = scan_artifacts(tmp_path)
        assert list(completed) == [artifact["config_hash"]] and corrupt == []


class TestOrchestrator:
    def test_resume_skips_completed_hashes(self, tmp_path):
        points = SMOKE_POINTS()
        first = run_sweep(points, out_dir=tmp_path, jobs=1)
        assert (first.ran, first.skipped) == (len(points), 0)

        second = run_sweep(points, out_dir=tmp_path, jobs=1, resume=True)
        assert (second.ran, second.skipped) == (0, len(points))
        assert [a["config_hash"] for a in second.artifacts] == [
            a["config_hash"] for a in first.artifacts
        ]

        # Dropping one artifact re-runs exactly that point.
        victim = first.artifacts[1]["config_hash"]
        artifact_path(tmp_path, victim).unlink()
        third = run_sweep(points, out_dir=tmp_path, jobs=1, resume=True)
        assert (third.ran, third.skipped) == (1, len(points) - 1)

    def test_resume_reruns_corrupt_artifacts(self, tmp_path):
        points = SMOKE_POINTS()
        run_sweep(points, out_dir=tmp_path, jobs=1)
        victim = artifact_path(tmp_path, points[0].hash())
        victim.write_text('{"schema": 1, "config"')  # interrupted write
        resumed = run_sweep(points, out_dir=tmp_path, jobs=1, resume=True)
        assert (resumed.ran, resumed.skipped) == (1, len(points) - 1)
        assert resumed.corrupt == [str(victim)]
        load_artifact(victim)  # healed

    def test_resume_warns_on_engine_version_mismatch(self, tmp_path):
        import repro

        points = SMOKE_POINTS()[:1]
        run_sweep(points, out_dir=tmp_path, jobs=1)
        path = artifact_path(tmp_path, points[0].hash())
        artifact = json.loads(path.read_text())
        assert artifact["meta"]["engine_version"] == repro.__version__
        artifact["meta"]["engine_version"] = "0.0.1"  # meta is unhashed
        path.write_text(json.dumps(artifact, sort_keys=True, indent=1) + "\n")

        messages = []
        resumed = run_sweep(
            points, out_dir=tmp_path, jobs=1, resume=True, progress=messages.append
        )
        assert resumed.skipped == 1  # still reused — but loudly
        assert any(
            "engine 0.0.1" in m and repro.__version__ in m for m in messages
        ), messages

    def test_resume_refreshes_renamed_tags(self, tmp_path):
        import dataclasses

        points = SMOKE_POINTS()[:1]
        run_sweep(points, out_dir=tmp_path, jobs=1)
        # The grid evolves its tag schema; the config (hence hash) is
        # unchanged, so resume must reuse the result under the NEW tags.
        renamed = [
            dataclasses.replace(p, tags={"workload": p.tags["series"]})
            for p in points
        ]
        resumed = run_sweep(renamed, out_dir=tmp_path, jobs=1, resume=True)
        assert (resumed.ran, resumed.skipped) == (0, 1)
        assert resumed.artifacts[0]["tags"] == {"workload": "lr/higgs@1/5000"}
        # ...and the refresh is persisted for the next resume.
        on_disk = load_artifact(artifact_path(tmp_path, points[0].hash()))
        assert on_disk["tags"] == {"workload": "lr/higgs@1/5000"}

    def test_resume_ignores_corrupt_files_outside_the_grid(self, tmp_path):
        points = SMOKE_POINTS()
        run_sweep(points, out_dir=tmp_path, jobs=1)
        # A stale corrupt leftover whose hash no current point produces:
        foreign = artifact_path(tmp_path, "f" * 16)
        foreign.write_text("{not json")
        resumed = run_sweep(points, out_dir=tmp_path, jobs=1, resume=True)
        # Nothing re-runs and the summary doesn't claim otherwise...
        assert (resumed.ran, resumed.skipped, resumed.corrupt) == (0, len(points), [])
        # ...and the foreign file is left untouched for the operator.
        assert foreign.read_text() == "{not json"

    def test_pool_matches_serial_byte_for_byte(self, tmp_path):
        points = SMOKE_POINTS()
        serial_dir, pool_dir = tmp_path / "serial", tmp_path / "pool"
        serial = run_sweep(points, out_dir=serial_dir, jobs=1)
        pooled = run_sweep(points, out_dir=pool_dir, jobs=4)
        assert serial.ran == pooled.ran == len(points)
        names = sorted(p.name for p in serial_dir.iterdir())
        assert names == sorted(p.name for p in pool_dir.iterdir())
        for name in names:
            a = json.loads((serial_dir / name).read_text())
            b = json.loads((pool_dir / name).read_text())
            assert strip_meta(a) == strip_meta(b), name
        # artifacts come back in point order regardless of pool scheduling
        assert [a["label"] for a in pooled.artifacts] == [p.label for p in points]

    def test_resume_requires_out_dir(self):
        with pytest.raises(ConfigurationError):
            run_sweep(SMOKE_POINTS(), resume=True)

    def test_in_memory_sweep_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        run = run_sweep(SMOKE_POINTS()[:1])
        assert run.out_dir is None and run.ran == 1
        assert list(tmp_path.iterdir()) == []


needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="self-killing worker patch requires the fork start method",
)


class TestResilientPool:
    """A pooled sweep survives worker-process death (ISSUE 6, satellite)."""

    @needs_fork
    def test_dead_worker_marks_point_failed_and_sweep_continues(
        self, tmp_path, monkeypatch
    ):
        import repro.sweep.orchestrator as orchestrator

        points = SMOKE_POINTS()
        victim = points[1].label
        real_run_task = orchestrator.run_task

        def killer_run_task(task):
            if task.point.label == victim:
                os.kill(os.getpid(), signal.SIGKILL)  # simulated OOM kill
            return real_run_task(task)

        monkeypatch.setattr(orchestrator, "run_task", killer_run_task)
        run = run_sweep(points, out_dir=tmp_path, jobs=2)

        assert [f["label"] for f in run.failed] == [victim]
        reason = run.failed[0]["reason"]
        assert "died" in reason and "exit code" in reason
        assert run.failed[0]["config_hash"] == config_hash(points[1].config())
        # Every other point completed and was persisted.
        assert [a["label"] for a in run.artifacts] == [
            p.label for p in points if p.label != victim
        ]
        assert len(list(tmp_path.glob("*.json"))) == len(points) - 1

        # With the killer gone, resume re-runs exactly the dead point.
        monkeypatch.setattr(orchestrator, "run_task", real_run_task)
        resumed = run_sweep(points, out_dir=tmp_path, jobs=2, resume=True)
        assert resumed.failed == []
        assert resumed.ran == 1 and resumed.skipped == len(points) - 1
        assert [a["label"] for a in resumed.artifacts] == [p.label for p in points]

    @needs_fork
    def test_dead_recording_fails_its_replays_not_the_sweep(
        self, tmp_path, monkeypatch
    ):
        import repro.sweep.orchestrator as orchestrator

        # Two stat groups (seed is a statistical axis), so phase 0 has
        # two recordings and actually runs pooled; the smoke grid alone
        # is a single fingerprint, whose lone recording would run
        # inline — and an inline SIGKILL takes pytest with it.
        points = SMOKE_POINTS()
        points += [
            SweepPoint(
                experiment=p.experiment,
                label=f"{p.label},seed=7",
                config_kwargs={**p.config_kwargs, "seed": 7},
                tags=p.tags,
            )
            for p in points
        ]
        # Kill the phase-0 recording of the seed=7 stat group: all its
        # replay siblings must be marked failed, other groups finish.
        configs = [p.config() for p in points]
        doomed_stat = configs[-1].stat_hash()
        doomed = {
            p.label for p, c in zip(points, configs)
            if c.stat_hash() == doomed_stat and not c.timing_coupled
        }
        assert 0 < len(doomed) < len(points)
        real_run_task = orchestrator.run_task

        def killer_run_task(task):
            if task.mode == "record" and task.point.label in doomed:
                os.kill(os.getpid(), signal.SIGKILL)
            return real_run_task(task)

        monkeypatch.setattr(orchestrator, "run_task", killer_run_task)
        run = run_sweep(points, out_dir=tmp_path, jobs=2, substrate="auto")
        assert {f["label"] for f in run.failed} == doomed
        assert sum("nothing to replay" in f["reason"] for f in run.failed) == len(doomed) - 1
        assert [a["label"] for a in run.artifacts] == [
            p.label for p in points if p.label not in doomed
        ]

    @needs_fork
    def test_worker_exception_still_aborts_the_pool(self, tmp_path, monkeypatch):
        import repro.sweep.orchestrator as orchestrator

        points = SMOKE_POINTS()
        victim = points[2].label
        real_run_task = orchestrator.run_task

        def raising_run_task(task):
            if task.point.label == victim:
                raise ValueError("deliberate task failure")
            return real_run_task(task)

        monkeypatch.setattr(orchestrator, "run_task", raising_run_task)
        with pytest.raises(ValueError, match="deliberate task failure"):
            run_sweep(points, out_dir=tmp_path, jobs=2)


class TestSweepCli:
    def test_sweep_then_resume(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        assert main(["sweep", "--experiment", "smoke", "--jobs", "2",
                     "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "Smoke sweep" in stdout
        assert "6 point(s) run, 0 skipped" in stdout
        assert len(list(out.glob("*.json"))) == 6

        assert main(["sweep", "--experiment", "smoke", "--jobs", "2",
                     "--out", str(out), "--resume", "--no-report"]) == 0
        stdout = capsys.readouterr().out
        assert "0 point(s) run, 6 skipped" in stdout

    def test_sweep_substrate_auto_and_dry_run(self, tmp_path, capsys):
        out = tmp_path / "artifacts"
        assert main(["sweep", "--experiment", "smoke", "--out", str(out),
                     "--dry-run", "--substrate", "auto"]) == 0
        stdout = capsys.readouterr().out
        assert "dry run" in stdout
        assert "unique stat fingerprints:     1" in stdout
        assert "would train: 1 exact point(s) and replay 5" in stdout
        assert not out.exists()  # a dry run runs (and writes) nothing

        assert main(["sweep", "--experiment", "smoke", "--out", str(out),
                     "--substrate", "auto", "--no-report"]) == 0
        stdout = capsys.readouterr().out
        assert "1 recorded, 5 replayed, 0 exact" in stdout
        assert len(list((out / "traces").glob("*.json"))) == 1

        assert main(["sweep", "--experiment", "smoke", "--out", str(out),
                     "--dry-run", "--substrate", "auto", "--resume"]) == 0
        stdout = capsys.readouterr().out
        assert "would train: 0 exact point(s) and replay 0" in stdout

        # Without --resume the same dry run must NOT claim the work is
        # done — a non-resume invocation re-runs every point.
        assert main(["sweep", "--experiment", "smoke", "--out", str(out),
                     "--dry-run", "--substrate", "auto"]) == 0
        stdout = capsys.readouterr().out
        assert "would train: 1 exact point(s) and replay 5" in stdout
        assert "reused only with --resume" in stdout

    def test_unknown_experiment_rejected(self):
        # Unknown names are rejected by the registry (with the known
        # list), not by argparse choices — building the parser must not
        # import every experiment module.
        with pytest.raises(ConfigurationError, match="unknown study"):
            main(["sweep", "--experiment", "fig99"])

    def test_nonpositive_max_epochs_rejected(self):
        # `max_epochs or default` grids would silently swallow 0.
        for bad in ("0", "-3"):
            with pytest.raises(SystemExit):
                main(["sweep", "--experiment", "smoke", "--max-epochs", bad])

    def test_registry_grids_are_well_formed(self):
        for name in ("fig8", "fig9", "fig11", "fig12", "smoke"):
            points = get_experiment(name).points(max_epochs=1.0)
            assert points, name
            for point in points:
                assert point.experiment == name
                assert isinstance(point.config(), TrainingConfig)
        # the headline grid: fig11 crosses the paper's ~300-worker ceiling
        fig11_faas = [
            p.config_kwargs["workers"]
            for p in get_experiment("fig11").points()
            if p.tags == {"series": "lr/higgs", "system": "faas"}
        ]
        assert max(fig11_faas) >= 512

    def test_fig9_panel_honours_explicit_worker_count(self):
        # run_panel(workers=50) must scale the panel UP past the
        # Table-4 default (10), not silently cap at it.
        from repro.experiments.fig9_end_to_end import panel_points

        points = panel_points("lr", "higgs", 50, max_epochs=1.0)
        assert points and all(
            p.config_kwargs["workers"] == 50 for p in points
        )
        assert all(p.tags["panel"] == "lr/higgs,W=50" for p in points)

    def test_grid_hashes_are_unique(self):
        for name in ("fig8", "fig9", "fig11", "fig12", "smoke"):
            points = get_experiment(name).points()
            hashes = [p.hash() for p in points]
            assert len(set(hashes)) == len(hashes), name


class TestTwoPhaseSweep:
    """Record-once/replay-everywhere sweeps (``substrate="auto"``)."""

    def test_auto_records_once_and_replays_the_rest(self, tmp_path):
        points = SMOKE_POINTS()  # 6 points (2 fault-injected), 1 statistical fingerprint
        run = run_sweep(points, out_dir=tmp_path, substrate="auto")
        assert (run.stat_groups, run.recorded, run.replayed, run.exact_runs) == (
            1, 1, len(points) - 1, 0,
        )
        trace_files = list((tmp_path / "traces").glob("*.json"))
        assert len(trace_files) == 1
        stat_hash = points[0].config().stat_hash()
        assert trace_files[0].stem == stat_hash
        substrates = {a["meta"]["substrate"] for a in run.artifacts}
        assert substrates == {"record", "replay"}

    def test_auto_artifacts_match_exact_artifacts(self, tmp_path):
        points = SMOKE_POINTS()
        exact = run_sweep(points, out_dir=tmp_path / "exact", substrate="exact")
        auto = run_sweep(points, out_dir=tmp_path / "auto", substrate="auto")
        for a, b in zip(exact.artifacts, auto.artifacts):
            assert strip_meta(a) == strip_meta(b), a["label"]
        # Replayed points record (almost) zero statistical compute; the
        # single recording carries the numpy bill.
        replayed = [a for a in auto.artifacts if a["meta"]["substrate"] == "replay"]
        assert replayed and all(
            a["meta"]["compute_seconds"] < 0.05 for a in replayed
        )
        recorded = [a for a in auto.artifacts if a["meta"]["substrate"] == "record"]
        assert len(recorded) == 1 and recorded[0]["meta"]["compute_seconds"] > 0

    def test_auto_pool_matches_serial_byte_for_byte(self, tmp_path):
        points = SMOKE_POINTS()
        serial = run_sweep(points, out_dir=tmp_path / "serial", substrate="auto")
        pooled = run_sweep(points, out_dir=tmp_path / "pool", substrate="auto", jobs=4)
        assert serial.ran == pooled.ran == len(points)
        for a, b in zip(serial.artifacts, pooled.artifacts):
            assert strip_meta(a) == strip_meta(b), a["label"]

    def test_resume_skips_both_phases(self, tmp_path):
        points = SMOKE_POINTS()
        run_sweep(points, out_dir=tmp_path, substrate="auto")
        resumed = run_sweep(points, out_dir=tmp_path, substrate="auto", resume=True)
        assert (resumed.ran, resumed.skipped) == (0, len(points))
        assert (resumed.recorded, resumed.replayed) == (0, 0)

    def test_resume_reuses_traces_after_artifact_loss(self, tmp_path):
        # Phase-0 work survives even if every artifact is lost: the
        # trace makes the whole re-run replay-speed.
        points = SMOKE_POINTS()
        run_sweep(points, out_dir=tmp_path, substrate="auto")
        for path in tmp_path.glob("*.json"):
            path.unlink()
        resumed = run_sweep(points, out_dir=tmp_path, substrate="auto", resume=True)
        assert (resumed.recorded, resumed.replayed) == (0, len(points))

    def test_without_resume_existing_traces_are_not_reused(self, tmp_path):
        # Trace reuse is the same act of trust as artifact reuse: both
        # are opt-in via resume, so a code change followed by a plain
        # (non-resume) sweep can never stamp stale trajectories into
        # fresh artifacts.
        points = SMOKE_POINTS()
        run_sweep(points, out_dir=tmp_path, substrate="auto")
        trace_file = next((tmp_path / "traces").glob("*.json"))
        before = trace_file.read_text()
        rerun = run_sweep(points, out_dir=tmp_path, substrate="auto")
        assert rerun.recorded == 1  # re-recorded, not reused
        assert json.loads(trace_file.read_text())["stat_hash"] in before

    def test_corrupt_trace_is_rerecorded(self, tmp_path):
        points = SMOKE_POINTS()
        run_sweep(points, out_dir=tmp_path, substrate="auto")
        trace_file = next((tmp_path / "traces").glob("*.json"))
        trace_file.write_text("{broken")
        for path in tmp_path.glob("*.json"):
            path.unlink()
        messages = []
        rerun = run_sweep(
            points, out_dir=tmp_path, substrate="auto", resume=True,
            progress=messages.append,
        )
        assert rerun.recorded == 1 and rerun.replayed == len(points) - 1
        assert any("corrupt trace" in m for m in messages)
        from repro.substrate import load_trace

        load_trace(trace_file)  # healed by the re-recording

    def test_replay_mode_refuses_timing_coupled_points(self):
        asp = SweepPoint(
            "x", "asp-point",
            config_kwargs=dict(
                model="lr", dataset="higgs", algorithm="ga_sgd",
                protocol="asp", data_scale=5000, max_epochs=1.0, workers=4,
            ),
        )
        with pytest.raises(ConfigurationError, match="timing-coupled"):
            run_sweep([asp], substrate="replay")

    def test_auto_falls_back_to_exact_for_timing_coupled_points(self, tmp_path):
        asp = SweepPoint(
            "x", "asp-point",
            config_kwargs=dict(
                model="lr", dataset="higgs", algorithm="ga_sgd",
                protocol="asp", data_scale=5000, max_epochs=1.0, workers=4,
            ),
        )
        run = run_sweep([asp], out_dir=tmp_path, substrate="auto")
        assert (run.exact_runs, run.recorded, run.replayed) == (1, 0, 0)
        assert run.artifacts[0]["meta"]["substrate"] == "exact"
        assert not (tmp_path / "traces").exists()  # nothing replayable

    def test_unknown_substrate_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sweep substrate"):
            run_sweep(SMOKE_POINTS(), substrate="surrogate")

    def test_in_memory_two_phase_sweep(self):
        # out_dir=None keeps artifacts AND traces in memory only.
        run = run_sweep(SMOKE_POINTS(), substrate="auto")
        assert run.recorded == 1 and run.replayed == len(SMOKE_POINTS()) - 1
        assert run.traces_dir is None

    def test_schema_1_artifact_still_loads_with_resume_warning(self, tmp_path):
        points = SMOKE_POINTS()[:1]
        run_sweep(points, out_dir=tmp_path)
        path = artifact_path(tmp_path, points[0].hash())
        artifact = json.loads(path.read_text())
        artifact["schema"] = 1  # downgrade to the PR-2 schema...
        del artifact["meta"]["substrate"]  # ...which lacked these keys
        del artifact["meta"]["compute_seconds"]
        path.write_text(json.dumps(artifact, sort_keys=True, indent=1) + "\n")

        load_artifact(path)  # backward-compatible load
        messages = []
        resumed = run_sweep(
            points, out_dir=tmp_path, resume=True, progress=messages.append
        )
        assert resumed.skipped == 1
        assert any("schema 1" in m for m in messages), messages


class TestPlanSweep:
    def test_plan_counts_fingerprints_and_existing_work(self, tmp_path):
        from repro.sweep.orchestrator import plan_sweep

        points = SMOKE_POINTS()
        plan = plan_sweep(points, out_dir=tmp_path)
        assert plan["points"] == len(points)
        assert plan["unique_stat_fingerprints"] == 1
        assert plan["artifacts_present"] == 0 and plan["traces_present"] == 0
        assert plan["exact_trainings_needed"] == 1
        assert plan["replays_needed"] == len(points) - 1

        run_sweep(points[:2], out_dir=tmp_path, substrate="auto")
        plan = plan_sweep(points, out_dir=tmp_path, resume=True)
        assert plan["artifacts_present"] == 2
        assert plan["traces_present"] == 1
        assert plan["pending_points"] == len(points) - 2
        assert plan["exact_trainings_needed"] == 0  # trace already exists
        assert plan["replays_needed"] == len(points) - 2

        # Without resume the real run reuses nothing, and the plan must
        # say so — while still reporting what sits on disk.
        plan = plan_sweep(points, out_dir=tmp_path, resume=False)
        assert plan["artifacts_present"] == 2 and plan["traces_present"] == 1
        assert plan["pending_points"] == len(points)
        assert plan["exact_trainings_needed"] == 1
        assert plan["replays_needed"] == len(points) - 1

    def test_plan_runs_nothing(self, tmp_path):
        from repro.sweep.orchestrator import plan_sweep

        plan_sweep(SMOKE_POINTS(), out_dir=tmp_path)
        assert list(tmp_path.iterdir()) == []
        assert plan_sweep(SMOKE_POINTS())["out_dir"] is None


def test_smoke_sweep_is_deterministic_across_invocations(tmp_path):
    """Two fresh sweeps of the same grid agree exactly (no RNG leaks)."""
    a = run_sweep(SMOKE_POINTS(), out_dir=tmp_path / "a", jobs=1)
    b = run_sweep(SMOKE_POINTS(), out_dir=tmp_path / "b", jobs=1)
    for x, y in zip(a.artifacts, b.artifacts):
        assert strip_meta(x) == strip_meta(y)


def test_artifact_files_are_sorted_json(tmp_path):
    """Artifacts are sort_keys'd so diffs/dedup stay byte-stable."""
    run_sweep(SMOKE_POINTS()[:1], out_dir=tmp_path, jobs=1)
    path = next(iter(tmp_path.glob("*.json")))
    text = path.read_text()
    assert text == json.dumps(json.loads(text), sort_keys=True, indent=1) + "\n"
