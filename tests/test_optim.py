"""Unit tests for the distributed optimization algorithms.

Each algorithm is exercised in a *simulated-free* harness: payloads are
reduced with plain numpy, mimicking a perfect synchronous exchange, so
these tests isolate the optimization math from the event engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.loader import make_shards
from repro.data.synth import generate
from repro.errors import ConfigurationError
from repro.models.kmeans import KMeansModel
from repro.models.linear import LogisticRegression
from repro.optim.admm import ADMM
from repro.optim.base import make_algorithm
from repro.optim.em import KMeansEM
from repro.optim.gradient_averaging import GradientAveragingSGD
from repro.optim.local import sgd_epoch
from repro.optim.model_averaging import ModelAveragingSGD
from repro.optim.schedules import constant_lr, inv_sqrt_decay

WORKERS = 4


@pytest.fixture(scope="module")
def higgs_shards():
    split = generate("higgs", seed=11)
    return make_shards(split, WORKERS, global_batch=200, seed=11)


def lockstep(algos, rounds):
    """Drive algorithms through perfect synchronous rounds."""
    for _ in range(rounds):
        payloads = [np.asarray(a.round_payload(), dtype=np.float64) for a in algos]
        if algos[0].reduce == "mean":
            merged = np.mean(payloads, axis=0)
        else:
            merged = np.sum(payloads, axis=0)
        for a in algos:
            a.apply(merged)
    return algos


class TestFactory:
    def test_known_names(self, higgs_shards):
        model = LogisticRegression(28)
        for name in ("ga_sgd", "ma_sgd", "admm"):
            algo = make_algorithm(name, model, higgs_shards[0], lr=0.1)
            assert algo.epochs_per_round > 0

    def test_unknown_name_rejected(self, higgs_shards):
        with pytest.raises(ConfigurationError):
            make_algorithm("adamw", LogisticRegression(28), higgs_shards[0], lr=0.1)


class TestGradientAveraging:
    def test_workers_stay_in_consensus(self, higgs_shards):
        algos = [
            GradientAveragingSGD(LogisticRegression(28), s, lr=0.1, seed=5)
            for s in higgs_shards
        ]
        lockstep(algos, 30)
        for a in algos[1:]:
            np.testing.assert_allclose(a.params, algos[0].params)

    def test_loss_decreases(self, higgs_shards):
        algos = [
            GradientAveragingSGD(LogisticRegression(28), s, lr=0.1, seed=5)
            for s in higgs_shards
        ]
        before = np.mean([a.local_loss() for a in algos])
        lockstep(algos, 200)
        after = np.mean([a.local_loss() for a in algos])
        assert after < before

    def test_round_structure(self, higgs_shards):
        algo = GradientAveragingSGD(LogisticRegression(28), higgs_shards[0], lr=0.1)
        assert algo.epochs_per_round == pytest.approx(
            1.0 / higgs_shards[0].iterations_per_epoch
        )
        instances, iterations = algo.round_work()
        assert instances == higgs_shards[0].batch_size
        assert iterations == 1.0


class TestModelAveraging:
    def test_one_round_is_one_epoch(self, higgs_shards):
        algo = ModelAveragingSGD(LogisticRegression(28), higgs_shards[0], lr=0.05)
        assert algo.epochs_per_round == 1.0

    def test_sync_epochs_scale_round_work(self, higgs_shards):
        algo = ModelAveragingSGD(
            LogisticRegression(28), higgs_shards[0], lr=0.05, sync_epochs=3
        )
        instances, _ = algo.round_work()
        assert instances == higgs_shards[0].n_rows * 3

    def test_convergence(self, higgs_shards):
        algos = [
            ModelAveragingSGD(LogisticRegression(28), s, lr=0.05, seed=5)
            for s in higgs_shards
        ]
        lockstep(algos, 10)
        assert np.mean([a.local_loss() for a in algos]) < 0.69

    def test_invalid_sync_epochs(self, higgs_shards):
        with pytest.raises(ConfigurationError):
            ModelAveragingSGD(LogisticRegression(28), higgs_shards[0], lr=0.1, sync_epochs=0)


class TestADMM:
    def test_convergence_beats_single_round_of_ma(self, higgs_shards):
        admm = [
            ADMM(LogisticRegression(28, l2=1e-4), s, lr=0.05, seed=5, scans=10)
            for s in higgs_shards
        ]
        lockstep(admm, 2)
        assert np.mean([a.local_loss() for a in admm]) < 0.68

    def test_epochs_per_round_equals_scans(self, higgs_shards):
        algo = ADMM(LogisticRegression(28), higgs_shards[0], lr=0.05, scans=7)
        assert algo.epochs_per_round == 7.0

    def test_consensus_is_shared(self, higgs_shards):
        algos = [
            ADMM(LogisticRegression(28), s, lr=0.05, seed=5) for s in higgs_shards
        ]
        lockstep(algos, 2)
        for a in algos[1:]:
            np.testing.assert_allclose(a.params, algos[0].params)

    def test_dual_updates_nonzero(self, higgs_shards):
        algos = [
            ADMM(LogisticRegression(28), s, lr=0.05, seed=5) for s in higgs_shards
        ]
        lockstep(algos, 1)
        assert any(np.linalg.norm(a._u) > 0 for a in algos)

    def test_invalid_hyperparams(self, higgs_shards):
        with pytest.raises(ConfigurationError):
            ADMM(LogisticRegression(28), higgs_shards[0], lr=0.1, rho=0.0)
        with pytest.raises(ConfigurationError):
            ADMM(LogisticRegression(28), higgs_shards[0], lr=0.1, scans=0)


class TestKMeansEM:
    @staticmethod
    def _shared_init(shards, k, seed=5):
        model = KMeansModel(28, k=k)
        init = model.init_centroids(shards[0].X, rng=seed)
        return [
            KMeansEM(KMeansModel(28, k=k), s, seed=seed, init_centroids=init)
            for s in shards
        ]

    def test_loss_monotone_under_lockstep(self, higgs_shards):
        algos = self._shared_init(higgs_shards, k=8)
        losses = []
        for _ in range(6):
            lockstep(algos, 1)
            losses.append(algos[0].local_loss())
        for earlier, later in zip(losses, losses[1:]):
            assert later <= earlier + 1e-9

    def test_divergent_inits_break_monotonicity_guard(self, higgs_shards):
        """Without a broadcast initialisation, shards disagree — the
        exact bug the driver's shared init exists to prevent."""
        algos = [KMeansEM(KMeansModel(28, k=8), s, seed=5) for s in higgs_shards]
        inits = [a.params for a in algos]
        assert any(not np.allclose(inits[0], other) for other in inits[1:])

    def test_sum_reduction(self, higgs_shards):
        algo = self._shared_init(higgs_shards, k=4)[0]
        assert algo.reduce == "sum"

    def test_eval_is_free(self, higgs_shards):
        algo = self._shared_init(higgs_shards, k=4)[0]
        assert algo.eval_work() == (0.0, 0.0)

    def test_centroids_shared_across_workers(self, higgs_shards):
        algos = self._shared_init(higgs_shards, k=4)
        lockstep(algos, 3)
        for a in algos[1:]:
            np.testing.assert_allclose(a.params, algos[0].params)


class TestLocalSGD:
    def test_sgd_epoch_does_not_mutate_input(self, higgs_shards):
        model = LogisticRegression(28)
        params = np.ones(28)
        kept = params.copy()
        sgd_epoch(model, params, higgs_shards[0], lr=0.1)
        np.testing.assert_allclose(params, kept)

    def test_extra_grad_applied(self, higgs_shards):
        model = LogisticRegression(28)
        params = np.zeros(28)
        anchor = np.full(28, 5.0)
        pulled = sgd_epoch(
            model, params, higgs_shards[0], lr=0.1,
            extra_grad=lambda x: 1.0 * (x - anchor),
        )
        plain = sgd_epoch(model, params, higgs_shards[0], lr=0.1)
        # The proximal pull toward `anchor` must move params toward it.
        assert np.linalg.norm(pulled - anchor) < np.linalg.norm(plain - anchor)


class TestSchedules:
    def test_constant(self):
        schedule = constant_lr(0.3)
        assert schedule(0) == schedule(100) == 0.3

    def test_inv_sqrt(self):
        schedule = inv_sqrt_decay(1.0)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(3) == pytest.approx(0.5)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            constant_lr(0.0)
        with pytest.raises(ValueError):
            inv_sqrt_decay(-1.0)
