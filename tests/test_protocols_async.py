"""Tests for the asynchronous (S-ASP) protocol helpers and semantics."""

from __future__ import annotations

import numpy as np

from repro.comm.protocols import (
    GLOBAL_MODEL_KEY,
    async_read_model,
    async_should_stop,
    async_signal_stop,
    async_write_model,
    seed_global_model,
)
from repro.simulation.engine import Engine
from repro.storage.services import S3Store


class TestProtocolHelpers:
    def test_seed_and_read(self):
        engine = Engine()
        store = S3Store()
        seed_global_model(store, np.arange(4.0), 32)

        def proc():
            model = yield from async_read_model(store)
            return model

        p = engine.spawn(proc(), "reader")
        engine.run()
        np.testing.assert_allclose(p.result, np.arange(4.0))

    def test_write_overwrites_last_writer_wins(self):
        engine = Engine()
        store = S3Store()
        seed_global_model(store, np.zeros(2), 16)

        def writer(value, delay):
            from repro.simulation.commands import Sleep

            yield Sleep(delay)
            yield from async_write_model(store, np.full(2, value), 16)

        engine.spawn(writer(1.0, 1.0), "w1")
        engine.spawn(writer(2.0, 2.0), "w2")
        engine.run()
        final = store.peek(GLOBAL_MODEL_KEY)
        np.testing.assert_allclose(final.value, np.full(2, 2.0))

    def test_stop_flag_roundtrip(self):
        engine = Engine()
        store = S3Store()
        outcome = {}

        def proc():
            before = yield from async_should_stop(store)
            yield from async_signal_stop(store, rank=3)
            after = yield from async_should_stop(store)
            outcome["before"], outcome["after"] = before, after

        engine.spawn(proc(), "p")
        engine.run()
        assert outcome == {"before": False, "after": True}


class TestStalenessEmergence:
    def test_interleaved_read_modify_write_loses_updates(self):
        """Two workers read the same model version; the slower writer
        clobbers the faster one's contribution — the staleness that
        destabilises ASP in Figure 8."""
        engine = Engine()
        store = S3Store()
        seed_global_model(store, np.zeros(1), 8)

        def worker(delay_before_write):
            from repro.simulation.commands import Sleep

            model = yield from async_read_model(store)
            yield Sleep(delay_before_write)
            yield from async_write_model(store, model + 1.0, 8)

        engine.spawn(worker(0.5), "fast")
        engine.spawn(worker(5.0), "slow")
        engine.run()
        final = store.peek(GLOBAL_MODEL_KEY)
        # Two increments happened, but the final model shows only one.
        np.testing.assert_allclose(np.asarray(final.value), [1.0])
