"""Unit tests for the FaaS substrate: limits, startup, lifetime, checkpoints."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, FunctionTimeoutError
from repro.faas.checkpoint import Checkpoint, checkpoint_bytes
from repro.faas.limits import LambdaLimits, lambda_speed_factor, lambda_vcpus
from repro.faas.runtime import FunctionLifetime, faas_startup_seconds

import numpy as np


class TestLimits:
    def test_vcpu_scaling_matches_paper(self):
        # Table 2 annotations: 3 GB -> 1.8 vCPU, 1 GB -> 0.6 vCPU.
        assert lambda_vcpus(3.0) == pytest.approx(1.8)
        assert lambda_vcpus(1.0) == pytest.approx(0.6)

    def test_speed_factor_reference(self):
        assert lambda_speed_factor(3.0) == pytest.approx(1.0)
        assert lambda_speed_factor(1.0) == pytest.approx(1.0 / 3.0)

    def test_memory_cap_enforced(self):
        with pytest.raises(ConfigurationError):
            LambdaLimits(memory_gb=4.0)
        with pytest.raises(ConfigurationError):
            LambdaLimits(memory_gb=0.0)

    def test_lifetime_cap_enforced(self):
        with pytest.raises(ConfigurationError):
            LambdaLimits(lifetime_s=16 * 60.0)


class TestStartup:
    def test_anchors_match_table6(self):
        assert faas_startup_seconds(10) == pytest.approx(1.2)
        assert faas_startup_seconds(50) == pytest.approx(11.0)
        assert faas_startup_seconds(100) == pytest.approx(18.0)
        assert faas_startup_seconds(200) == pytest.approx(35.0)

    def test_interpolation_monotone(self):
        values = [faas_startup_seconds(w) for w in (1, 5, 10, 30, 75, 150, 200, 400)]
        assert values == sorted(values)

    def test_single_function_fast(self):
        assert faas_startup_seconds(1) <= 1.5

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            faas_startup_seconds(0)


class TestLifetime:
    def test_remaining_counts_down(self):
        lt = FunctionLifetime(LambdaLimits(), started_at=100.0)
        assert lt.remaining(100.0) == pytest.approx(900.0)
        assert lt.remaining(700.0) == pytest.approx(300.0)

    def test_needs_checkpoint_near_wall(self):
        lt = FunctionLifetime(LambdaLimits(), started_at=0.0)
        assert not lt.needs_checkpoint(0.0)
        assert lt.needs_checkpoint(880.0)
        # The estimate of the next round widens the margin.
        assert lt.needs_checkpoint(600.0, next_round_estimate_s=300.0)

    def test_ensure_alive_raises_past_wall(self):
        lt = FunctionLifetime(LambdaLimits(), started_at=0.0)
        lt.ensure_alive(899.0)
        with pytest.raises(FunctionTimeoutError):
            lt.ensure_alive(901.0)

    def test_reincarnation_resets_clock(self):
        lt = FunctionLifetime(LambdaLimits(), started_at=0.0)
        lt.reincarnate(850.0)
        assert lt.incarnations == 2
        assert lt.remaining(850.0) == pytest.approx(900.0)


class TestCheckpoint:
    def test_wire_size_includes_model(self):
        assert checkpoint_bytes(1000) == 1000 + 512

    def test_key_is_per_worker(self):
        ckpt = Checkpoint(3, 1.5, 7, np.zeros(4), 0.5)
        assert "3" in ckpt.key()


class TestLifetimeInTraining:
    @pytest.mark.slow
    def test_long_job_checkpoints_and_finishes(self):
        """ResNet50 epochs exceed 15 minutes: Figure 5's path triggers."""
        from repro.core.config import TrainingConfig
        from repro.core.driver import train

        result = train(
            TrainingConfig(
                model="resnet50", dataset="cifar10", algorithm="ga_sgd",
                system="lambdaml", workers=10, channel="memcached",
                batch_size=32, batch_scope="per_worker", lr=0.05,
                loss_threshold=None, max_epochs=1.0, seed=1,
            )
        )
        # One epoch of RN at ~80 min/worker must have crossed the
        # 15-minute wall several times.
        assert result.checkpoints >= 10
        assert result.breakdown.get("checkpoint") > 0

    def test_oversized_round_raises(self):
        """A single >15-minute iteration is the paper's unsupported case."""
        from repro.core.config import TrainingConfig
        from repro.core.driver import train

        with pytest.raises(FunctionTimeoutError):
            train(
                TrainingConfig(
                    model="resnet50", dataset="cifar10", algorithm="ma_sgd",
                    system="lambdaml", workers=10, channel="memcached",
                    batch_size=32, batch_scope="per_worker", lr=0.05,
                    loss_threshold=None, max_epochs=1.0, seed=1,
                )
            )
