"""CI mega-smoke: one 1024-worker fig11 point end to end.

The mega-scale engine's canary. A single W=1024 LR/Higgs FaaS exact
training through the sweep orchestrator takes ~20 s of host wall on
the chunked-index engine — comfortably inside pytest.ini's per-test
SIGALRM ceiling — while a complexity regression in the key index,
the batched event loop or service-slot booking blows straight
through the timeout and fails here in minutes instead of surfacing
as a hung ``sweep --mega`` hours later. Marked ``slow``: the fast
lane skips it, tier-1 full and the dedicated CI ``mega-smoke`` step
run it.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig11_scaling import lr_higgs_points
from repro.sweep.orchestrator import run_sweep

pytestmark = pytest.mark.slow


def test_w1024_fig11_point_completes(tmp_path):
    points = [
        p
        for p in lr_higgs_points(
            faas_workers=(), iaas_workers=(), iaas_instances=(),
            max_epochs=40, mega=True,
        )
        if p.config_kwargs["workers"] == 1024
    ]
    (point,) = points
    run = run_sweep([point], out_dir=tmp_path, substrate="auto")
    (artifact,) = run.artifacts
    assert artifact["config"]["workers"] == 1024
    result = artifact["result"]
    assert result["converged"]
    assert result["duration_s"] > 0
    assert result["cost_total"] > 0
    # The point is real training output, not a degenerate early exit.
    assert result["epochs"] > 0
    assert len(result["history"]) > 0
