"""The public ``repro.api`` facade: Scenario, Session, run/sweep/compare.

The contract under test (ISSUE 5 acceptance criteria):

* ``Scenario`` builds/varies/grids configs without touching internals;
* ``Session(out).sweep(study)`` persists artifacts and a second,
  identical call re-runs **zero** points (resume is the default);
* ``run``/``compare`` go through the same content-addressed cache;
* ad-hoc scenario lists sweep like registered studies.

Everything trains the 1/5000-scale LR/Higgs configuration (~0.4 s per
exact point; most points replay).
"""

from __future__ import annotations

import pytest

from repro import api
from repro.api import Scenario, Session
from repro.core.config import TrainingConfig
from repro.core.driver import train
from repro.errors import ConfigurationError

SMOKE = dict(
    model="lr", dataset="higgs", algorithm="admm", system="lambdaml",
    workers=4, data_scale=5000, loss_threshold=0.66, max_epochs=2.0,
)


class TestScenario:
    def test_kwargs_and_keyword_forms_agree(self):
        assert Scenario(SMOKE).kwargs == Scenario(**SMOKE).kwargs

    def test_workload_seeds_from_table4(self):
        s = Scenario.workload("lr", "higgs")
        config = s.config()
        assert (config.algorithm, config.workers) == ("admm", 10)
        assert config.loss_threshold == 0.66
        assert config.batch_size == 10_000

    def test_workload_overrides_win(self):
        s = Scenario.workload("lr", "higgs", workers=3, lr=0.5)
        assert s.config().workers == 3
        assert s.config().lr == 0.5

    def test_vary_returns_a_copy(self):
        base = Scenario(SMOKE)
        varied = base.vary(workers=8)
        assert varied.config().workers == 8
        assert base.config().workers == 4  # untouched

    def test_grid_expands_with_labels(self):
        scenarios = Scenario(SMOKE).grid(
            channel=("s3", "memcached"), pattern=("allreduce", "scatterreduce")
        )
        assert len(scenarios) == 4
        assert scenarios[0].label == "channel=s3,pattern=allreduce"
        assert {s.config().channel for s in scenarios} == {"s3", "memcached"}

    def test_config_validation_still_applies(self):
        with pytest.raises(ConfigurationError):
            Scenario(dict(SMOKE, system="borg")).config()

    def test_point_carries_label_and_tags(self):
        point = Scenario(SMOKE).named("probe", series="x").point("adhoc")
        assert (point.experiment, point.label) == ("adhoc", "probe")
        assert point.tags == {"series": "x"}


class TestRun:
    def test_run_matches_direct_train(self):
        via_api = api.run(Scenario(SMOKE))
        direct = train(TrainingConfig(**SMOKE))
        assert via_api.duration_s == direct.duration_s
        assert via_api.cost_total == direct.cost_total
        assert via_api.final_loss == direct.final_loss
        assert via_api.loss_curve() == direct.loss_curve()

    def test_session_run_is_cached(self, tmp_path):
        session = Session(tmp_path)
        first = session.run(Scenario(SMOKE))
        files = sorted((tmp_path / "runs").glob("*.json"))
        assert len(files) == 1
        second = session.run(Scenario(SMOKE))
        assert sorted((tmp_path / "runs").glob("*.json")) == files
        assert second.duration_s == first.duration_s
        assert second.loss_curve() == first.loss_curve()


class TestSessionSweep:
    def test_sweep_then_resweep_runs_zero_points(self, tmp_path):
        session = Session(tmp_path, jobs=2)
        first = session.sweep("smoke")
        assert (first.run.ran, first.run.skipped) == (6, 0)
        assert first.run.substrate == "auto"
        assert len(list((tmp_path / "smoke").glob("*.json"))) == 6

        second = session.sweep("smoke")
        assert (second.run.ran, second.run.skipped) == (0, 6)
        assert second.report().startswith("Smoke sweep")
        assert session.plan("smoke")["pending_points"] == 0

    def test_adhoc_scenario_sweep(self, tmp_path):
        grid = Scenario(SMOKE).grid(channel=("s3", "memcached"))
        session = Session(tmp_path)
        outcome = session.sweep(grid)
        assert outcome.study is None
        assert [label for label, _ in outcome.result] == [
            "channel=s3", "channel=memcached",
        ]
        assert "Ad-hoc sweep" in outcome.report()
        again = session.sweep(grid)
        assert (again.run.ran, again.run.skipped) == (0, 2)

    def test_in_memory_session_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        outcome = api.sweep([Scenario(SMOKE)])
        assert outcome.run.ran == 1
        assert list(tmp_path.iterdir()) == []


class TestCompare:
    def test_compare_labels_and_cache(self, tmp_path):
        session = Session(tmp_path)
        scenarios = {
            "faas": Scenario(SMOKE),
            "iaas": Scenario(SMOKE).vary(system="pytorch"),
        }
        verdict = session.compare(scenarios)
        assert list(verdict.results) == ["faas", "iaas"]
        assert verdict["faas"].duration_s != verdict["iaas"].duration_s
        report = verdict.report("head to head")
        assert report.splitlines()[0] == "head to head"
        assert "faas" in report and "iaas" in report
        # Both comparisons share the runs/ cache with session.run().
        assert len(list((tmp_path / "runs").glob("*.json"))) == 2
        session.compare(scenarios)  # second pass: nothing re-trained
        assert len(list((tmp_path / "runs").glob("*.json"))) == 2

    def test_unlabelled_compare_uses_describe(self):
        verdict = api.compare([Scenario(SMOKE).named("probe")])
        assert list(verdict.results) == ["probe"]

    def test_duplicate_configs_keep_their_labels(self):
        # The orchestrator dedupes identical configs; labels must still
        # map to their own scenario's result, never positionally.
        base = Scenario(SMOKE)
        verdict = api.compare({
            "a": base, "also-a": base, "bigger": base.vary(workers=8),
        })
        assert list(verdict.results) == ["a", "also-a", "bigger"]
        assert verdict["a"].duration_s == verdict["also-a"].duration_s
        assert verdict["bigger"].config.workers == 8
        assert verdict["bigger"].duration_s != verdict["a"].duration_s


class TestSeedHandling:
    def test_explicit_zero_seed_is_respected(self, tmp_path):
        outcome = Session(tmp_path).sweep("smoke", seed=0)
        assert outcome.artifacts
        assert all(a["config"]["seed"] == 0 for a in outcome.artifacts)
