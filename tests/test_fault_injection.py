"""Fault injection: the Figure-5 lifetime/checkpoint machinery under stress."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.driver import train
from repro.faas.checkpoint import Checkpoint
from repro.simulation.commands import Get, Put, Sleep
from repro.simulation.engine import Engine, ProcessState
from repro.storage.services import S3Store
from repro.utils.serialization import SizedPayload


class TestLifetimeCheckpointing:
    def _short_lifetime_config(self, lifetime_s: float = 120.0) -> TrainingConfig:
        return TrainingConfig(
            model="lr",
            dataset="higgs",
            algorithm="ma_sgd",
            system="lambdaml",
            workers=4,
            channel="s3",
            batch_size=10_000,
            lr=0.05,
            lambda_lifetime_s=lifetime_s,
            loss_threshold=None,
            max_epochs=12,
            seed=3,
        )

    def test_short_lifetime_triggers_checkpoints(self):
        result = train(self._short_lifetime_config())
        assert result.checkpoints > 0
        assert result.breakdown.get("checkpoint") > 0

    @pytest.mark.slow
    def test_checkpointing_does_not_change_statistics(self):
        """Lifetime resets cost time but never perturb the math."""
        short = train(self._short_lifetime_config(lifetime_s=120.0))
        long = train(
            TrainingConfig(
                model="lr", dataset="higgs", algorithm="ma_sgd",
                system="lambdaml", workers=4, channel="s3",
                batch_size=10_000, lr=0.05, loss_threshold=None,
                max_epochs=12, seed=3,
            )
        )
        assert short.final_loss == pytest.approx(long.final_loss)
        assert short.epochs == long.epochs
        assert short.duration_s > long.duration_s  # overhead is real

    def test_extra_invocations_billed(self):
        result = train(self._short_lifetime_config())
        # 1 initial + checkpoints re-invocations, all billed.
        assert result.checkpoints > 0
        assert result.cost_breakdown["lambda"] > 0


class TestCrashRecovery:
    """A killed worker's successor resumes from its S3 checkpoint."""

    def test_kill_and_resume_from_checkpoint(self):
        engine = Engine(on_error="record")
        store = S3Store()
        progress = []

        def worker(start_step: int):
            params = None
            if start_step > 0:
                obj = yield Get(store, "ckpt/worker_00000")
                params = obj.value.params
            state = np.zeros(4) if params is None else params
            step = start_step
            while step < 10:
                state = state + 1.0
                yield Sleep(1.0, "compute")
                ckpt = Checkpoint(0, float(step), step, state.copy(), 0.0)
                yield Put(store, ckpt.key(), SizedPayload(ckpt, 64))
                progress.append(step)
                step += 1
            return state

        first = engine.spawn(worker(0), "incarnation-1")
        engine.run(until=4.5)  # crash mid-flight
        engine.kill(first)
        assert first.state is ProcessState.KILLED

        # The self-trigger starts a successor from the last checkpoint.
        last_done = max(progress)
        second = engine.spawn(worker(last_done + 1), "incarnation-2")
        engine.run()
        assert second.state is ProcessState.DONE
        # Work was conserved: final counter equals total steps.
        np.testing.assert_allclose(second.result, np.full(4, 10.0))

    def test_checkpoint_object_roundtrips_through_storage(self):
        engine = Engine()
        store = S3Store()
        original = Checkpoint(2, 3.5, 7, np.arange(5.0), 0.42)

        def proc():
            yield Put(store, original.key(), SizedPayload(original, 128))
            restored = yield Get(store, original.key())
            return restored.value

        p = engine.spawn(proc(), "p")
        engine.run()
        assert p.result.rank == 2
        assert p.result.epoch_float == 3.5
        assert p.result.round_index == 7
        np.testing.assert_allclose(p.result.params, np.arange(5.0))


class TestStragglerInjection:
    def test_stragglers_slow_bsp_rounds(self):
        def run_with(jitter: float):
            return train(
                TrainingConfig(
                    model="lr", dataset="higgs", algorithm="ma_sgd",
                    system="lambdaml", workers=6, channel="s3",
                    batch_size=10_000, lr=0.05, loss_threshold=None,
                    max_epochs=5, straggler_jitter=jitter, seed=3,
                )
            )

        uniform = run_with(0.0)
        skewed = run_with(0.5)
        assert skewed.duration_s > uniform.duration_s
        # Statistics are unaffected: same merged math either way.
        assert skewed.final_loss == pytest.approx(uniform.final_loss)

    def test_stragglers_increase_wait_not_compute_of_fastest(self):
        result = train(
            TrainingConfig(
                model="lr", dataset="higgs", algorithm="ma_sgd",
                system="lambdaml", workers=6, channel="s3",
                batch_size=10_000, lr=0.05, loss_threshold=None,
                max_epochs=5, straggler_jitter=0.5, seed=3,
            )
        )
        fastest = result.per_worker[0]
        slowest = result.per_worker[-1]
        assert slowest.get("compute") > fastest.get("compute")
        # The fast worker pays for the slow one in waiting time.
        assert fastest.get("wait") + fastest.get("merge") > 0
